#!/usr/bin/env bash
# CI gate for the tempstream workspace. Runs entirely offline:
#   1. formatting check
#   2. clippy, warnings denied (workspace lint set in Cargo.toml)
#   3. exhaustive protocol model check (tables proved before simulation)
#   4. tier-1 build + test suite
#   5. determinism gate: the parallel pipeline must be byte-identical
#      to the serial runner
#   6. metrics gate: --metrics-json emits valid JSON with the expected
#      top-level keys and leaves stdout untouched
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== protocol model check =="
cargo test -q -p tempstream-checker
cargo run -q -p tempstream-checker --bin check-protocols

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== determinism gate: reproduce --jobs 1 vs --jobs 4 =="
# The lint gate above already covers every workspace crate (including
# tempstream-runtime, picked up by the crates/* glob); here the release
# binary must emit byte-identical stdout at any worker count. Summaries
# and progress go to stderr by design so stdout can be diffed.
det_dir=$(mktemp -d)
trap 'rm -rf "$det_dir"' EXIT
./target/release/reproduce all --quick --jobs 1 >"$det_dir/jobs1.out" 2>/dev/null
./target/release/reproduce all --quick --jobs 4 >"$det_dir/jobs4.out" 2>/dev/null
diff "$det_dir/jobs1.out" "$det_dir/jobs4.out" \
  || { echo "determinism gate FAILED: --jobs 4 output differs from --jobs 1"; exit 1; }

echo "== metrics gate: --metrics-json =="
# The flag must write parseable JSON with the documented top-level keys
# while stdout stays byte-identical to a plain run.
./target/release/reproduce fig2 --quick --jobs 2 >"$det_dir/plain.out" 2>/dev/null
./target/release/reproduce fig2 --quick --jobs 2 --metrics-json "$det_dir/metrics.json" \
  >"$det_dir/flagged.out" 2>/dev/null
diff "$det_dir/plain.out" "$det_dir/flagged.out" \
  || { echo "metrics gate FAILED: --metrics-json changed stdout"; exit 1; }
jq -e 'has("meta") and has("metrics") and has("runtime")' "$det_dir/metrics.json" >/dev/null \
  || { echo "metrics gate FAILED: missing top-level keys"; exit 1; }
jq -e '(.metrics.spans | has("stage")) and (.metrics.counters | has("sim")) and (.metrics.gauges | has("sequitur"))' \
  "$det_dir/metrics.json" >/dev/null \
  || { echo "metrics gate FAILED: registry missing stage/sim/sequitur sections"; exit 1; }

echo "CI OK"
