#!/usr/bin/env bash
# CI gate for the tempstream workspace. Runs entirely offline:
#   1. formatting check
#   2. clippy, warnings denied (workspace lint set in Cargo.toml)
#   3. source lint: runtime synchronization must go through the sync
#      shim (schedule-checker soundness), stages never read the clock
#   4. exhaustive protocol model check (tables proved before simulation)
#   5. schedule model check: bounded-preemption + seeded-random
#      exploration of the runtime primitives, plus the mutation gate
#      (the checker must still CATCH an injected lost notify_one)
#   6. tier-1 build + test suite
#   7. determinism gate: the parallel pipeline must be byte-identical
#      to the serial runner
#   8. engine differential gate: the unified AnalysisEngine fed
#      incrementally in interleaved chunks (with snapshots between
#      chunks) must digest byte-identically to one batch feed
#   9. metrics gate: --metrics-json emits valid JSON with the expected
#      top-level keys and leaves stdout untouched
#  10. serve soak gates: a live server on loopback, driven by the
#      in-tree load generator with --verify (online answers must match
#      the offline batch comparator bit-exactly); the metrics snapshot
#      must show zero dropped frames, and the server must drain cleanly.
#      Run twice: half-duplex v1, then pipelined v2 (--window 8 with
#      interleaved QueryDelta probes), whose throughput must not fall
#      below the single-in-flight baseline
#  11. perf smoke gate: the parallel pipeline must not be slower than
#      the serial runner (reduced sample count via
#      TEMPSTREAM_BENCH_SAMPLES), plus the serve ingest bench emitting
#      BENCH_serve.json (pipelined 1/2/4-shard runs and the
#      multi-connection scaling pair, gated core-aware)
#
# Opt-in: `./ci.sh --sanitize` appends a sanitizer stage (TSan with an
# instrumented std, or Miri, whichever toolchain components exist;
# prints a visible SKIP when neither can run offline).
set -euo pipefail
cd "$(dirname "$0")"

SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE=1 ;;
    *) echo "ci.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== lint-sources: sync-shim discipline =="
cargo run -q -p tempstream-checker --bin lint-sources

echo "== protocol model check =="
cargo test -q -p tempstream-checker
cargo run -q -p tempstream-checker --bin check-protocols

echo "== schedule model check =="
# Exhaustive bounded-preemption DFS + seeded random sweeps over the
# closed models of channel/deque/pool/spill; any counterexample prints
# a minimal replayable schedule. The time box degrades the random
# sweeps, never the exhaustive 2-thread proofs.
cargo run -q --release -p tempstream-schedcheck --bin check-schedules -- --budget-secs 120
# Mutation gate: the checker must still catch a dropped notify_one.
cargo run -q --release -p tempstream-schedcheck --bin check-schedules -- --expect-mutation

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== determinism gate: reproduce --jobs 1 vs --jobs 4 =="
# The lint gate above already covers every workspace crate (including
# tempstream-runtime, picked up by the crates/* glob); here the release
# binary must emit byte-identical stdout at any worker count. Summaries
# and progress go to stderr by design so stdout can be diffed.
det_dir=$(mktemp -d)
trap 'rm -rf "$det_dir"' EXIT
./target/release/reproduce all --quick --jobs 1 >"$det_dir/jobs1.out" 2>/dev/null
./target/release/reproduce all --quick --jobs 4 >"$det_dir/jobs4.out" 2>/dev/null
diff "$det_dir/jobs1.out" "$det_dir/jobs4.out" \
  || { echo "determinism gate FAILED: --jobs 4 output differs from --jobs 1"; exit 1; }

echo "== engine differential gate: incremental vs batch =="
# The unified AnalysisEngine (core::engine) fed in K interleaved chunks
# — snapshotting every accessor between chunks, as the online server
# does — must print a byte-identical digest to one batch feed (K=1).
# This is what entitles serve::offline to verify the server with the
# same engine: incremental-vs-batch identity is pinned here, transport
# correctness there.
./target/release/engine_diff --chunks 1 >"$det_dir/engine_batch.out"
for k in 2 7; do
  ./target/release/engine_diff --chunks "$k" >"$det_dir/engine_k$k.out"
  diff "$det_dir/engine_batch.out" "$det_dir/engine_k$k.out" \
    || { echo "engine differential gate FAILED: chunks=$k digest differs from batch"; exit 1; }
done
echo "engine differential: chunks {2,7} digests identical to batch"

echo "== metrics gate: --metrics-json =="
# The flag must write parseable JSON with the documented top-level keys
# while stdout stays byte-identical to a plain run.
./target/release/reproduce fig2 --quick --jobs 2 >"$det_dir/plain.out" 2>/dev/null
./target/release/reproduce fig2 --quick --jobs 2 --metrics-json "$det_dir/metrics.json" \
  >"$det_dir/flagged.out" 2>/dev/null
diff "$det_dir/plain.out" "$det_dir/flagged.out" \
  || { echo "metrics gate FAILED: --metrics-json changed stdout"; exit 1; }
jq -e 'has("meta") and has("metrics") and has("runtime")' "$det_dir/metrics.json" >/dev/null \
  || { echo "metrics gate FAILED: missing top-level keys"; exit 1; }
jq -e '(.metrics.spans | has("stage")) and (.metrics.counters | has("sim")) and (.metrics.gauges | has("sequitur"))' \
  "$det_dir/metrics.json" >/dev/null \
  || { echo "metrics gate FAILED: registry missing stage/sim/sequitur sections"; exit 1; }

echo "== serve soak: loopback ingest + verify + drain =="
# A real server process on an ephemeral loopback port, a real client.
# serve-load --verify recomputes the answers offline (same shard hash,
# same batch stages) and fails on any mismatch; one connection makes
# the check bit-exact. The snapshot then proves flow control did its
# job: every frame accepted or refused with Busy, none dropped.
./target/release/serve --shards 2 >"$det_dir/serve.out" 2>"$det_dir/serve.err" &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr=$(awk '/^LISTENING /{ print $2 }' "$det_dir/serve.out")
  [ -n "$serve_addr" ] && break
  sleep 0.1
done
[ -n "$serve_addr" ] \
  || { echo "serve soak FAILED: server never printed LISTENING"; cat "$det_dir/serve.err"; kill "$serve_pid" 2>/dev/null; exit 1; }
./target/release/serve-load --addr "$serve_addr" --shards 2 --verify \
    --bytes 262144 --batch 256 --metrics-out "$det_dir/serve_metrics.json" --shutdown >/dev/null \
  || { echo "serve soak FAILED: serve-load exited non-zero"; kill "$serve_pid" 2>/dev/null; exit 1; }
wait "$serve_pid" \
  || { echo "serve soak FAILED: server exited non-zero"; exit 1; }
grep -q '^DRAINED$' "$det_dir/serve.out" \
  || { echo "serve soak FAILED: server never reported a clean drain"; exit 1; }
jq -e '.verify == "exact"
       and .metrics.counters.serve.frames.dropped == 0
       and .metrics.counters.serve.records.ingested > 0
       and .metrics.counters.serve.records.ingested == .metrics.counters.serve.records.applied' \
    "$det_dir/serve_metrics.json" >/dev/null \
  || { echo "serve soak FAILED: metrics snapshot rejected"; jq . "$det_dir/serve_metrics.json"; exit 1; }
echo "serve soak: exact verify, $(jq -r '.metrics.counters.serve.records.ingested' "$det_dir/serve_metrics.json") records, 0 dropped frames, clean drain"
base_rps=$(jq -r '.records_per_sec' "$det_dir/serve_metrics.json")

echo "== serve soak: pipelined window=8 + incremental deltas =="
# Same soak over protocol v2: eight frames in flight on one connection
# with QueryDelta probes interleaved. Verification is still bit-exact
# (the client reconstructs the ack order and telescopes the deltas
# against the offline comparator), and pipelining must not be slower
# than the single-in-flight baseline above — that throughput win is the
# point of the feature. On a single CPU there is no idle round-trip
# time for pipelining to hide, and the delta probes' consistent-cut
# stalls cost real work, so — like the perf smoke gate below — the
# single-core form of the gate only demands the pipelined path stays
# within 20% of the baseline instead of beating it.
./target/release/serve --shards 2 >"$det_dir/serve8.out" 2>"$det_dir/serve8.err" &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr=$(awk '/^LISTENING /{ print $2 }' "$det_dir/serve8.out")
  [ -n "$serve_addr" ] && break
  sleep 0.1
done
[ -n "$serve_addr" ] \
  || { echo "pipelined soak FAILED: server never printed LISTENING"; cat "$det_dir/serve8.err"; kill "$serve_pid" 2>/dev/null; exit 1; }
./target/release/serve-load --addr "$serve_addr" --shards 2 --verify --window 8 \
    --bytes 262144 --batch 256 --metrics-out "$det_dir/serve8_metrics.json" --shutdown >/dev/null \
  || { echo "pipelined soak FAILED: serve-load exited non-zero"; kill "$serve_pid" 2>/dev/null; exit 1; }
wait "$serve_pid" \
  || { echo "pipelined soak FAILED: server exited non-zero"; exit 1; }
grep -q '^DRAINED$' "$det_dir/serve8.out" \
  || { echo "pipelined soak FAILED: server never reported a clean drain"; exit 1; }
jq -e '.verify == "exact"
       and .window == 8
       and .delta_queries > 0
       and .metrics.counters.serve.frames.dropped == 0
       and .metrics.counters.serve.records.ingested > 0
       and .metrics.counters.serve.records.ingested == .metrics.counters.serve.records.applied' \
    "$det_dir/serve8_metrics.json" >/dev/null \
  || { echo "pipelined soak FAILED: metrics snapshot rejected"; jq . "$det_dir/serve8_metrics.json"; exit 1; }
pipe_rps=$(jq -r '.records_per_sec' "$det_dir/serve8_metrics.json")
cores=$(nproc 2>/dev/null || echo 1)
rps_factor=$([ "$cores" -le 1 ] && echo 0.8 || echo 1.0)
awk -v p="$pipe_rps" -v b="$base_rps" -v f="$rps_factor" 'BEGIN { exit !(p >= b * f) }' \
  || { echo "pipelined soak FAILED: window=8 throughput $pipe_rps rec/s < ${rps_factor}x window=1 baseline $base_rps rec/s (cores: $cores)"; exit 1; }
echo "pipelined soak: exact verify, $(jq -r '.delta_queries' "$det_dir/serve8_metrics.json") delta queries, $pipe_rps rec/s (baseline $base_rps, factor $rps_factor), clean drain"

echo "== perf smoke: parallel/4w vs serial =="
# Three samples keep this a smoke test, not a benchmark: it exists to
# catch the parallel path regressing back to slower-than-serial, not to
# measure speedup precisely.
TEMPSTREAM_BENCH_SAMPLES=3 TEMPSTREAM_BENCH_DIR="$det_dir" \
  cargo bench -q -p tempstream-bench --bench runtime_scaling >/dev/null
speedup=$(jq -r '.results[] | select(.name == "parallel/4w") | .speedup_vs_serial' \
  "$det_dir/BENCH_runtime_scaling.json")
cores=$(nproc 2>/dev/null || echo 1)
# With a single CPU, four workers cannot beat serial — physically. The
# gate then only demands the parallel path stays within 15% of serial
# (i.e. the scheduling machinery costs little when it cannot help).
# On multi-core hosts the parallel path must actually win.
threshold=$([ "$cores" -le 1 ] && echo 0.85 || echo 1.0)
awk -v s="$speedup" -v t="$threshold" 'BEGIN { exit !(s >= t) }' \
  || { echo "perf smoke FAILED: parallel/4w speedup $speedup < $threshold (cores: $cores)"; exit 1; }
echo "parallel/4w speedup vs serial: $speedup (threshold $threshold, cores: $cores)"

# Serve ingest throughput: pipelined single-connection runs at 1/2/4
# shards plus the multi-connection pair (ingest-mc/{1,4}shard) that
# reader-side routing exists for. The scaling gate compares the
# multi-connection pair: on a >=4-core host, 4 shards must beat 1 shard
# by 1.5x; on fewer cores sharding cannot win, so the gate only demands
# the 4-shard run stays within 40% of 1 shard (the routing split and
# extra lanes must not cost real throughput when they cannot help).
TEMPSTREAM_BENCH_SAMPLES=3 TEMPSTREAM_BENCH_DIR="$det_dir" \
  cargo bench -q -p tempstream-bench --bench serve_ingest >/dev/null
jq -e '.results | length == 5' "$det_dir/BENCH_serve.json" >/dev/null \
  || { echo "perf smoke FAILED: BENCH_serve.json incomplete"; exit 1; }
mc1=$(jq -r '.results[] | select(.name == "ingest-mc/1shard") | .elements_per_sec' "$det_dir/BENCH_serve.json")
mc4=$(jq -r '.results[] | select(.name == "ingest-mc/4shard") | .elements_per_sec' "$det_dir/BENCH_serve.json")
cores=$(jq -r '.host_cores' "$det_dir/BENCH_serve.json")
scale_threshold=$([ "$cores" -ge 4 ] && echo 1.5 || echo 0.6)
awk -v a="$mc4" -v b="$mc1" -v t="$scale_threshold" 'BEGIN { exit !(a >= b * t) }' \
  || { echo "perf smoke FAILED: ingest-mc/4shard $mc4 rec/s < ${scale_threshold}x ingest-mc/1shard $mc1 rec/s (cores: $cores)"; exit 1; }
echo "serve ingest: $(jq -r '.results[] | "\(.name) \(.elements_per_sec | floor) rec/s"' "$det_dir/BENCH_serve.json" | paste -sd, -)"
echo "serve scaling: mc 4shard/1shard = $(awk -v a="$mc4" -v b="$mc1" 'BEGIN { printf "%.2f", a/b }') (threshold $scale_threshold, cores: $cores)"

if [ "$SANITIZE" = "1" ]; then
  echo "== sanitize (opt-in) =="
  # TSan needs every crate instrumented, including std (-Zbuild-std,
  # which needs the nightly rust-src component); an uninstrumented std
  # hides its futex-based Mutex/Condvar from TSan and floods false
  # positives. Miri is the fallback. Both probes degrade to a VISIBLE
  # skip so an offline container never fails CI for missing tooling.
  host=$(rustc -vV | awk '/^host:/ { print $2 }')
  if rustup toolchain list 2>/dev/null | grep -q '^nightly' \
     && rustup component list --toolchain nightly 2>/dev/null \
        | grep -q '^rust-src.*(installed)'; then
    echo "sanitize: ThreadSanitizer (nightly, instrumented std, $host)"
    RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
      CARGO_TARGET_DIR=target/tsan \
      cargo +nightly test -q -p tempstream-runtime --lib \
        -Zbuild-std --target "$host"
  elif cargo +nightly miri --version >/dev/null 2>&1; then
    echo "sanitize: Miri (nightly)"
    cargo +nightly miri test -q -p tempstream-runtime --lib
  else
    echo "sanitize: SKIPPED — needs nightly with rust-src (TSan) or the"
    echo "          miri component; neither is installed and this CI runs"
    echo "          offline. Install one and re-run ./ci.sh --sanitize."
  fi
fi

echo "CI OK"
