#!/usr/bin/env bash
# CI gate for the tempstream workspace. Runs entirely offline:
#   1. formatting check
#   2. clippy, warnings denied (workspace lint set in Cargo.toml)
#   3. exhaustive protocol model check (tables proved before simulation)
#   4. tier-1 build + test suite
#   5. determinism gate: the parallel pipeline must be byte-identical
#      to the serial runner
#   6. metrics gate: --metrics-json emits valid JSON with the expected
#      top-level keys and leaves stdout untouched
#   7. perf smoke gate: the parallel pipeline must not be slower than
#      the serial runner (reduced sample count via
#      TEMPSTREAM_BENCH_SAMPLES)
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== protocol model check =="
cargo test -q -p tempstream-checker
cargo run -q -p tempstream-checker --bin check-protocols

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== determinism gate: reproduce --jobs 1 vs --jobs 4 =="
# The lint gate above already covers every workspace crate (including
# tempstream-runtime, picked up by the crates/* glob); here the release
# binary must emit byte-identical stdout at any worker count. Summaries
# and progress go to stderr by design so stdout can be diffed.
det_dir=$(mktemp -d)
trap 'rm -rf "$det_dir"' EXIT
./target/release/reproduce all --quick --jobs 1 >"$det_dir/jobs1.out" 2>/dev/null
./target/release/reproduce all --quick --jobs 4 >"$det_dir/jobs4.out" 2>/dev/null
diff "$det_dir/jobs1.out" "$det_dir/jobs4.out" \
  || { echo "determinism gate FAILED: --jobs 4 output differs from --jobs 1"; exit 1; }

echo "== metrics gate: --metrics-json =="
# The flag must write parseable JSON with the documented top-level keys
# while stdout stays byte-identical to a plain run.
./target/release/reproduce fig2 --quick --jobs 2 >"$det_dir/plain.out" 2>/dev/null
./target/release/reproduce fig2 --quick --jobs 2 --metrics-json "$det_dir/metrics.json" \
  >"$det_dir/flagged.out" 2>/dev/null
diff "$det_dir/plain.out" "$det_dir/flagged.out" \
  || { echo "metrics gate FAILED: --metrics-json changed stdout"; exit 1; }
jq -e 'has("meta") and has("metrics") and has("runtime")' "$det_dir/metrics.json" >/dev/null \
  || { echo "metrics gate FAILED: missing top-level keys"; exit 1; }
jq -e '(.metrics.spans | has("stage")) and (.metrics.counters | has("sim")) and (.metrics.gauges | has("sequitur"))' \
  "$det_dir/metrics.json" >/dev/null \
  || { echo "metrics gate FAILED: registry missing stage/sim/sequitur sections"; exit 1; }

echo "== perf smoke: parallel/4w vs serial =="
# Three samples keep this a smoke test, not a benchmark: it exists to
# catch the parallel path regressing back to slower-than-serial, not to
# measure speedup precisely.
TEMPSTREAM_BENCH_SAMPLES=3 TEMPSTREAM_BENCH_DIR="$det_dir" \
  cargo bench -q -p tempstream-bench --bench runtime_scaling >/dev/null
speedup=$(jq -r '.results[] | select(.name == "parallel/4w") | .speedup_vs_serial' \
  "$det_dir/BENCH_runtime_scaling.json")
cores=$(nproc 2>/dev/null || echo 1)
# With a single CPU, four workers cannot beat serial — physically. The
# gate then only demands the parallel path stays within 15% of serial
# (i.e. the scheduling machinery costs little when it cannot help).
# On multi-core hosts the parallel path must actually win.
threshold=$([ "$cores" -le 1 ] && echo 0.85 || echo 1.0)
awk -v s="$speedup" -v t="$threshold" 'BEGIN { exit !(s >= t) }' \
  || { echo "perf smoke FAILED: parallel/4w speedup $speedup < $threshold (cores: $cores)"; exit 1; }
echo "parallel/4w speedup vs serial: $speedup (threshold $threshold, cores: $cores)"

echo "CI OK"
