#!/usr/bin/env bash
# CI gate for the tempstream workspace. Runs entirely offline:
#   1. formatting check
#   2. clippy, warnings denied (workspace lint set in Cargo.toml)
#   3. exhaustive protocol model check (tables proved before simulation)
#   4. tier-1 build + test suite
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== protocol model check =="
cargo test -q -p tempstream-checker
cargo run -q -p tempstream-checker --bin check-protocols

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "CI OK"
