#!/usr/bin/env bash
# CI gate for the tempstream workspace. Runs entirely offline:
#   1. formatting check
#   2. clippy, warnings denied (workspace lint set in Cargo.toml)
#   3. exhaustive protocol model check (tables proved before simulation)
#   4. tier-1 build + test suite
#   5. determinism gate: the parallel pipeline must be byte-identical
#      to the serial runner
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== protocol model check =="
cargo test -q -p tempstream-checker
cargo run -q -p tempstream-checker --bin check-protocols

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== determinism gate: reproduce --jobs 1 vs --jobs 4 =="
# The lint gate above already covers every workspace crate (including
# tempstream-runtime, picked up by the crates/* glob); here the release
# binary must emit byte-identical stdout at any worker count. Summaries
# and progress go to stderr by design so stdout can be diffed.
det_dir=$(mktemp -d)
trap 'rm -rf "$det_dir"' EXIT
./target/release/reproduce all --quick --jobs 1 >"$det_dir/jobs1.out" 2>/dev/null
./target/release/reproduce all --quick --jobs 4 >"$det_dir/jobs4.out" 2>/dev/null
diff "$det_dir/jobs1.out" "$det_dir/jobs4.out" \
  || { echo "determinism gate FAILED: --jobs 4 output differs from --jobs 1"; exit 1; }

echo "CI OK"
