//! The paper's second motivating example (§2.1): the Solaris dispatcher's
//! work-stealing scans form highly repetitive coherence streams.
//!
//! Threads are made runnable on random processors' dispatch queues; idle
//! processors scan the other queues in a fixed order via
//! `disp_getwork()`/`disp_getbest()`. The queue locks live at fixed
//! addresses, so every scan touches the same blocks in the same order.
//!
//! ```text
//! cargo run --release --example scheduler_streams
//! ```

use tempstream_coherence::{MultiChipConfig, MultiChipSim};
use tempstream_core::streams::StreamAnalysis;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{CpuId, MissCategory, SymbolTable, ThreadId};
use tempstream_workloads::kernel::{KernelConfig, Scheduler};
use tempstream_workloads::{AddressSpace, Emitter};

fn main() {
    let cpus = 8u32;
    let mut symbols = SymbolTable::new();
    symbols.intern("_start", MissCategory::Uncategorized);
    let mut space = AddressSpace::new();
    let config = KernelConfig {
        num_cpus: cpus,
        ..KernelConfig::default()
    };
    let mut sched = Scheduler::new(&config, &mut symbols, &mut space);

    let mut sim = MultiChipSim::new(MultiChipConfig {
        nodes: cpus,
        ..MultiChipConfig::paper()
    });
    let mut rng = SmallRng::seed_from_u64(7);
    {
        let mut em = Emitter::new(&mut sim);
        for round in 0..4_000u64 {
            let cpu = CpuId::new((round % u64::from(cpus)) as u32);
            let thread = ThreadId::new(rng.gen_range(0..64));
            em.set_context(cpu, thread);
            // A thread becomes runnable on a random processor's queue...
            let target = CpuId::new(rng.gen_range(0..cpus));
            sched.enqueue(&mut em, target, thread);
            // ...and this processor dispatches: often its own queue is
            // empty and it steals, scanning all queues in fixed order.
            sched.dispatch(&mut em, cpu);
        }
    }
    let trace = sim.finish(2_000_000);

    println!("collected {} off-chip read misses", trace.len());
    let coherence = trace.count_class(tempstream_trace::MissClass::Coherence);
    println!(
        "coherence misses: {} ({:.1}%) — queue locks bounce between nodes",
        coherence,
        coherence as f64 * 100.0 / trace.len().max(1) as f64
    );

    let analysis = StreamAnalysis::of_trace(&trace);
    println!(
        "misses in temporal streams: {:.1}% (all processors scan the \
         queues in the same order)",
        analysis.stream_fraction() * 100.0
    );
    let median = analysis.length_cdf().median();
    println!(
        "median stream length: {} misses",
        median.map_or("n/a".into(), |m| m.to_string())
    );

    // Show one recurring stream: the block sequence of a steal scan.
    if let Some(occ) = analysis
        .occurrences()
        .iter()
        .filter(|o| !o.new && o.len >= 6)
        .max_by_key(|o| o.len)
    {
        println!(
            "\nlongest recurring stream ({} misses, reuse distance {:?}):",
            occ.len, occ.reuse_distance
        );
        for r in &trace.records()[occ.start..occ.start + (occ.len as usize).min(10)] {
            println!("  {} [{}]", r.block, symbols.name(r.function));
        }
        if occ.len > 10 {
            println!("  ... ({} more)", occ.len - 10);
        }
    }
}
