//! The collect-then-analyze workflow: trace a web workload once, persist
//! the classified miss trace to disk, and re-analyze it offline — the way
//! the paper's FLEXUS traces were handled.
//!
//! ```text
//! cargo run --release --example web_pipeline
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use tempstream_coherence::{SingleChipConfig, SingleChipSim};
use tempstream_core::origins::OriginTable;
use tempstream_core::report::format_origin_table;
use tempstream_core::streams::StreamAnalysis;
use tempstream_trace::io::{read_trace, write_trace};
use tempstream_trace::{AppClass, IntraChipClass, MissTrace};
use tempstream_workloads::{Workload, WorkloadSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1: collect. Warm the CMP, then record ~2k requests.
    println!("collecting Zeus on the 4-core CMP...");
    let mut session = WorkloadSession::new(Workload::Zeus, 4, 99);
    let mut sim = SingleChipSim::new(SingleChipConfig::paper());
    sim.set_recording(false);
    session.run(&mut sim, 400);
    sim.set_recording(true);
    let stats = session.run(&mut sim, 2_000);
    let traces = sim.finish(stats.instructions);
    let symbols = session.into_symbols();
    println!(
        "  {} off-chip misses, {} intra-chip misses over {} instructions",
        traces.off_chip.len(),
        traces.intra_chip.len(),
        stats.instructions
    );

    // Phase 2: persist the intra-chip trace.
    let path = std::env::temp_dir().join("tempstream_web_intra.trace");
    write_trace(&traces.intra_chip, BufWriter::new(File::create(&path)?))?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("  wrote {} ({} bytes)", path.display(), bytes);

    // Phase 3: reload and analyze offline.
    let reloaded: MissTrace<IntraChipClass> = read_trace(BufReader::new(File::open(&path)?))?;
    assert_eq!(reloaded.len(), traces.intra_chip.len());
    let analysis = StreamAnalysis::of_trace(&reloaded);
    println!(
        "\nintra-chip stream fraction: {:.1}%",
        analysis.stream_fraction() * 100.0
    );
    let table = OriginTable::build(
        reloaded.records(),
        analysis.labels(),
        &symbols,
        AppClass::Web,
    );
    println!("\nintra-chip stream origins (Table 3 layout):");
    print!("{}", format_origin_table(&table));

    std::fs::remove_file(&path)?;
    Ok(())
}
