//! Quickstart: run one workload through both system organizations and
//! print the headline characterization.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tempstream_core::experiment::{Experiment, ExperimentConfig};
use tempstream_trace::MissClass;
use tempstream_workloads::Workload;

fn main() {
    // `quick()` uses reduced caches and a smoke-scale run so this example
    // finishes in seconds; swap in `ExperimentConfig::paper()` for the
    // full 16-node / 4-core configuration.
    let config = ExperimentConfig::quick();
    let experiment = Experiment::new(config);

    let workload = Workload::Apache;
    println!("running {workload} ({})...", workload.spec().paper_config);
    let results = experiment.run_workload(workload);

    println!("\noff-chip miss classification (multi-chip):");
    println!("{}", results.multi_chip.breakdown);
    println!("\noff-chip miss classification (single-chip):");
    println!("{}", results.single_chip.breakdown);
    println!(
        "\nnote: single-chip off-chip coherence misses = {} (a CMP keeps \
         communication on chip)",
        results.single_chip.breakdown.count(MissClass::Coherence)
    );

    println!("\ntemporal streams (Figure 2 style):");
    for (ctx, s) in [
        ("multi-chip ", &results.multi_chip.streams),
        ("single-chip", &results.single_chip.streams),
        ("intra-chip ", &results.intra_chip.streams),
    ] {
        println!(
            "  {ctx}: {}  (distinct streams: {})",
            s.stream_fraction, s.distinct_streams
        );
    }

    let median = results
        .multi_chip
        .streams
        .length_cdf
        .median()
        .map_or("n/a".to_string(), |m| m.to_string());
    println!("\nmedian stream length (multi-chip): {median} misses");
}
