//! Evaluate the three prefetcher families on one workload's miss trace —
//! the experiment that motivates the paper's whole characterization.
//!
//! ```text
//! cargo run --release --example prefetcher_coverage [apache|zeus|oltp|q1|q2|q17]
//! ```

use tempstream_coherence::{MultiChipConfig, MultiChipSim};
use tempstream_prefetch::prelude::*;
use tempstream_workloads::{Workload, WorkloadSession};

fn main() {
    let workload = match std::env::args().nth(1).as_deref().unwrap_or("oltp") {
        "apache" => Workload::Apache,
        "zeus" => Workload::Zeus,
        "oltp" | "db2" => Workload::Oltp,
        "q1" => Workload::DssQ1,
        "q2" => Workload::DssQ2,
        "q17" => Workload::DssQ17,
        other => {
            eprintln!("unknown workload {other}");
            std::process::exit(2);
        }
    };

    println!("collecting a multi-chip miss trace for {workload}...");
    let config = MultiChipConfig::small(8);
    let mut session = WorkloadSession::new(workload, config.nodes, 5);
    let mut sim = MultiChipSim::new(config);
    sim.set_recording(false);
    session.run(&mut sim, 200);
    sim.set_recording(true);
    session.run(&mut sim, 1_200);
    let trace = sim.finish(1);
    println!("  {} read misses\n", trace.len());

    let mut prefetchers: Vec<Box<dyn Prefetcher>> = vec![
        Box::new(StridePrefetcher::new(4)),
        Box::new(MarkovPrefetcher::new(2, 1 << 20)),
        Box::new(TemporalPrefetcher::fixed(8)),
        Box::new(TemporalPrefetcher::adaptive(4, 32)),
    ];
    for p in &mut prefetchers {
        let e = evaluate(p.as_mut(), trace.records(), 1024);
        println!("{:<18} {e}", p.name());
    }
    println!(
        "\nstride wins on copies/scans; temporal streaming wins on the \
         pointer-chasing workloads — the paper's motivating contrast."
    );
}
