//! Full single-workload characterization: every figure and table the
//! paper reports, for one workload.
//!
//! ```text
//! cargo run --release --example full_characterization [workload] [--paper]
//! ```
//!
//! `workload` is one of `apache`, `zeus`, `oltp`, `q1`, `q2`, `q17`
//! (default `oltp`). With `--paper` the full-scale systems are used
//! (tens of seconds); otherwise a reduced configuration runs in seconds.

use tempstream_core::experiment::{Experiment, ExperimentConfig};
use tempstream_core::report::{format_length_cdf, format_origin_table, format_reuse_pdf};
use tempstream_workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = match args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("oltp", String::as_str)
    {
        "apache" => Workload::Apache,
        "zeus" => Workload::Zeus,
        "oltp" | "db2" => Workload::Oltp,
        "q1" => Workload::DssQ1,
        "q2" => Workload::DssQ2,
        "q17" => Workload::DssQ17,
        other => {
            eprintln!("unknown workload {other}; use apache|zeus|oltp|q1|q2|q17");
            std::process::exit(2);
        }
    };
    let config = if args.iter().any(|a| a == "--paper") {
        ExperimentConfig::paper()
    } else {
        ExperimentConfig::quick()
    };

    println!("== {workload}: {}", workload.spec().paper_config);
    println!("   modeled as: {}", workload.spec().model_config);
    let results = Experiment::new(config).run_workload(workload);

    println!("\n-- Figure 1 (left): off-chip misses / 1000 instructions");
    println!("multi-chip:\n{}", results.multi_chip.breakdown);
    println!("single-chip:\n{}", results.single_chip.breakdown);
    println!("\n-- Figure 1 (right): intra-chip misses / 1000 instructions");
    println!("{}", results.intra_chip.breakdown);

    println!("\n-- Figure 2: fraction of misses in temporal streams");
    for (ctx, s) in [
        ("multi-chip ", &results.multi_chip.streams),
        ("single-chip", &results.single_chip.streams),
        ("intra-chip ", &results.intra_chip.streams),
    ] {
        println!("  {ctx}: {}", s.stream_fraction);
    }

    println!("\n-- Figure 3: strides and temporal streams");
    for (ctx, s) in [
        ("multi-chip", &results.multi_chip.streams),
        ("single-chip", &results.single_chip.streams),
        ("intra-chip", &results.intra_chip.streams),
    ] {
        println!("{ctx}:\n{}", s.stride_joint);
    }

    println!("\n-- Figure 4 (left): stream length CDF (multi-chip)");
    print!(
        "{}",
        format_length_cdf(&results.multi_chip.streams.length_cdf)
    );
    println!("-- Figure 4 (right): reuse distance PDF (multi-chip)");
    print!(
        "{}",
        format_reuse_pdf(&results.multi_chip.streams.reuse_pdf)
    );

    println!("\n-- Stream origins (Tables 3-5 layout), multi-chip:");
    print!(
        "{}",
        format_origin_table(&results.multi_chip.streams.origins)
    );
    println!("-- Stream origins, single-chip:");
    print!(
        "{}",
        format_origin_table(&results.single_chip.streams.origins)
    );
    println!("-- Stream origins, intra-chip:");
    print!(
        "{}",
        format_origin_table(&results.intra_chip.streams.origins)
    );
}
