//! The paper's first motivating example (§2.1): overlapping B+-tree range
//! scans form temporal streams along the sibling-linked leaves.
//!
//! Two processors scan overlapping key ranges of a shared index through
//! the multi-chip memory system; the analysis shows that the second scan's
//! leaf misses repeat the first scan's sequence — and that the leaves are
//! not stride-predictable.
//!
//! ```text
//! cargo run --release --example btree_range_scan
//! ```

use tempstream_coherence::{MultiChipConfig, MultiChipSim};
use tempstream_core::streams::StreamAnalysis;
use tempstream_core::stride::StrideDetector;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{CpuId, SymbolTable, ThreadId};
use tempstream_workloads::db::BPlusTree;
use tempstream_workloads::{AddressSpace, Emitter};

fn main() {
    let mut symbols = SymbolTable::new();
    symbols.intern("_start", tempstream_trace::MissCategory::Uncategorized);
    let mut space = AddressSpace::new();
    let mut rng = SmallRng::seed_from_u64(42);

    // A shared index over one million keys; leaves are scatter-allocated,
    // so the leaf chain is not contiguous in memory.
    let tree = BPlusTree::build(1_000_000, &mut symbols, &mut space, &mut rng);
    println!(
        "built a {}-level B+-tree over {} keys",
        tree.height(),
        tree.num_keys()
    );

    // Drive two overlapping range scans (plus a prefix of unrelated
    // probes) through the multi-chip memory system.
    let mut sim = MultiChipSim::new(MultiChipConfig::paper());
    {
        let mut em = Emitter::new(&mut sim);
        // CPU 0 runs the first range scan.
        em.set_context(CpuId::new(0), ThreadId::new(0));
        tree.range_scan(&mut em, 500_000, 2_000);
        // Unrelated index probes intervene.
        for k in 0..200 {
            tree.search(&mut em, k * 4_099);
        }
        // CPU 1 runs an overlapping scan: same leaves, same order.
        em.set_context(CpuId::new(1), ThreadId::new(1));
        tree.range_scan(&mut em, 500_000, 2_000);
    }
    let trace = sim.finish(1_000_000);
    println!("collected {} off-chip read misses", trace.len());

    let analysis = StreamAnalysis::of_trace(&trace);
    let (non, new, rec) = analysis.label_counts();
    println!("stream labels: {non} non-repetitive, {new} new-stream, {rec} recurring");
    println!(
        "the overlapping scan repeats the leaf sequence: {:.1}% of misses \
         are in temporal streams",
        analysis.stream_fraction() * 100.0
    );
    if let Some(longest) = analysis.occurrences().iter().map(|o| o.len).max() {
        println!("longest stream: {longest} misses");
    }

    let strides = StrideDetector::of_trace(&trace);
    println!(
        "stride-predictable misses: {:.1}% (scattered leaves defeat stride \
         prefetching)",
        strides.strided_fraction() * 100.0
    );
}
