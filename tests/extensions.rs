//! Integration tests for the extension analyses (prefetchers, spatial
//! patterns, per-function origins) on real workload traces.

use tempstream_coherence::{MultiChipConfig, MultiChipSim};
use tempstream_core::functions::FunctionTable;
use tempstream_core::spatial::SpatialAnalysis;
use tempstream_core::streams::StreamAnalysis;
use tempstream_prefetch::{evaluate, Prefetcher, StridePrefetcher, TemporalPrefetcher};
use tempstream_trace::{MissClass, MissTrace, SymbolTable};
use tempstream_workloads::{Workload, WorkloadSession};

fn collect(w: Workload, ops: u64) -> (MissTrace<MissClass>, SymbolTable) {
    let config = MultiChipConfig::small(8);
    let mut session = WorkloadSession::new(w, config.nodes, 5);
    let mut sim = MultiChipSim::new(config);
    sim.set_recording(false);
    session.run(&mut sim, 150);
    sim.set_recording(true);
    session.run(&mut sim, ops);
    (sim.finish(1), session.into_symbols())
}

fn coverage(p: &mut dyn Prefetcher, trace: &MissTrace<MissClass>) -> f64 {
    evaluate(p, trace.records(), 1024).coverage()
}

/// The paper's motivation: temporal streaming covers the pointer-chasing
/// web workload far better than stride prefetching...
#[test]
fn temporal_beats_stride_on_web() {
    let (trace, _) = collect(Workload::Zeus, 500);
    let stride = coverage(&mut StridePrefetcher::new(4), &trace);
    let temporal = coverage(&mut TemporalPrefetcher::fixed(8), &trace);
    assert!(
        temporal > 2.0 * stride,
        "temporal {temporal:.3} must dwarf stride {stride:.3} on web"
    );
    assert!(temporal > 0.3, "temporal coverage too low: {temporal:.3}");
}

/// ...and the reverse holds on the scan-dominated DSS query.
#[test]
fn stride_beats_temporal_on_dss_scan() {
    let (trace, _) = collect(Workload::DssQ1, 400);
    let stride = coverage(&mut StridePrefetcher::new(4), &trace);
    let temporal = coverage(&mut TemporalPrefetcher::fixed(8), &trace);
    assert!(
        stride > 2.0 * temporal,
        "stride {stride:.3} must dwarf temporal {temporal:.3} on Q1"
    );
    assert!(stride > 0.5, "stride coverage too low: {stride:.3}");
}

/// Deeper fixed replay never loses coverage on stream-heavy traces (the
/// §4.4 depth argument), and the adaptive engine is competitive with the
/// deepest fixed setting.
#[test]
fn replay_depth_monotonicity() {
    let (trace, _) = collect(Workload::Apache, 500);
    let d1 = coverage(&mut TemporalPrefetcher::fixed(1), &trace);
    let d8 = coverage(&mut TemporalPrefetcher::fixed(8), &trace);
    let adaptive = coverage(&mut TemporalPrefetcher::adaptive(4, 32), &trace);
    assert!(
        d8 >= d1,
        "depth 8 ({d8:.3}) must not lose to depth 1 ({d1:.3})"
    );
    assert!(
        adaptive >= d8 * 0.9,
        "adaptive ({adaptive:.3}) must be competitive with fixed-8 ({d8:.3})"
    );
}

/// DSS scans are far more spatially predictable than web serving — the
/// complementary phenomenon to temporal streams.
#[test]
fn spatial_predictability_ordering() {
    let (dss, _) = collect(Workload::DssQ1, 400);
    let (web, _) = collect(Workload::Apache, 500);
    let dss_spatial = SpatialAnalysis::of_trace(&dss);
    let web_spatial = SpatialAnalysis::of_trace(&web);
    assert!(
        dss_spatial.predicted_miss_fraction() > web_spatial.predicted_miss_fraction(),
        "DSS ({:.3}) must be more spatially predictable than web ({:.3})",
        dss_spatial.predicted_miss_fraction(),
        web_spatial.predicted_miss_fraction()
    );
    assert!(dss_spatial.mean_density() > web_spatial.mean_density());
}

/// The per-function table reproduces §5's function-level claims on a real
/// trace: `Perl_sv_gets` is near-perfectly repetitive and the dispatcher
/// family is visible in OLTP.
#[test]
fn function_table_supports_section5_claims() {
    let (web, web_sym) = collect(Workload::Apache, 500);
    let a = StreamAnalysis::of_trace(&web);
    let t = FunctionTable::build(web.records(), a.labels(), &web_sym);
    let perl = t.by_name("Perl_sv_gets").expect("perl input missed");
    assert!(
        perl.stream_fraction() > 0.9,
        "Perl_sv_gets only {:.3} repetitive",
        perl.stream_fraction()
    );

    let (oltp, oltp_sym) = collect(Workload::Oltp, 500);
    let a = StreamAnalysis::of_trace(&oltp);
    let t = FunctionTable::build(oltp.records(), a.labels(), &oltp_sym);
    let disp = t.share_of_prefix("disp");
    assert!(disp > 0.01, "dispatcher share too small: {disp:.4}");
    // Totals are consistent.
    let sum: u64 = t.rows().iter().map(|r| r.misses).sum();
    assert_eq!(sum, t.total_misses());
}
