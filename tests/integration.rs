//! Cross-crate integration tests: workload generation → memory-system
//! simulation → stream analysis → reports, plus trace serialization.

use tempstream_coherence::{MultiChipConfig, MultiChipSim, SingleChipConfig, SingleChipSim};
use tempstream_core::experiment::{Experiment, ExperimentConfig};
use tempstream_core::origins::OriginTable;
use tempstream_core::report::{format_length_cdf, format_origin_table, format_reuse_pdf};
use tempstream_core::streams::StreamAnalysis;
use tempstream_core::stride::StrideDetector;
use tempstream_trace::io::{read_trace, write_trace};
use tempstream_trace::{IntraChipClass, MissClass, MissTrace};
use tempstream_workloads::{Scale, Workload, WorkloadSession};

fn quick() -> ExperimentConfig {
    ExperimentConfig::quick()
}

#[test]
fn every_workload_runs_end_to_end() {
    let exp = Experiment::new(quick());
    for w in Workload::ALL {
        let r = exp.run_workload(w);
        assert!(r.multi_chip.total_misses > 100, "{w}: multi-chip too few");
        assert!(r.single_chip.total_misses > 50, "{w}: single-chip too few");
        assert!(
            r.intra_chip.total_misses >= r.single_chip.total_misses,
            "{w}: intra-chip must include every off-chip L1 miss"
        );
        // Figure-1 breakdowns account for every miss.
        let mc_sum: u64 = MissClass::ALL
            .iter()
            .map(|&c| r.multi_chip.breakdown.count(c))
            .sum();
        assert_eq!(mc_sum as usize, r.multi_chip.total_misses, "{w}");
        let ic_sum: u64 = IntraChipClass::ALL
            .iter()
            .map(|&c| r.intra_chip.breakdown.count(c))
            .sum();
        assert_eq!(ic_sum as usize, r.intra_chip.total_misses, "{w}");
        // Stream labels partition the analyzed misses.
        let f = &r.multi_chip.streams.stream_fraction;
        assert_eq!(
            (f.non_repetitive + f.new_stream + f.recurring_stream) as usize,
            r.multi_chip.streams.analyzed_misses,
            "{w}"
        );
        // Stride joint breakdown covers the same misses.
        assert_eq!(
            r.multi_chip.streams.stride_joint.total() as usize,
            r.multi_chip.streams.analyzed_misses,
            "{w}"
        );
        // Origin rows cover the same misses.
        let o = &r.multi_chip.streams.origins;
        let row_sum: u64 = o.rows.iter().map(|row| row.misses).sum();
        assert_eq!(row_sum, o.total_misses, "{w}");
    }
}

#[test]
fn experiments_are_deterministic_end_to_end() {
    let a = Experiment::new(quick()).run_workload(Workload::Zeus);
    let b = Experiment::new(quick()).run_workload(Workload::Zeus);
    assert_eq!(a.multi_chip.total_misses, b.multi_chip.total_misses);
    assert_eq!(a.single_chip.total_misses, b.single_chip.total_misses);
    assert_eq!(a.intra_chip.total_misses, b.intra_chip.total_misses);
    assert_eq!(
        a.multi_chip.streams.stream_fraction.recurring_stream,
        b.multi_chip.streams.stream_fraction.recurring_stream
    );
    assert_eq!(
        a.intra_chip.streams.stride_joint.repetitive_strided,
        b.intra_chip.streams.stride_joint.repetitive_strided
    );
}

#[test]
fn different_seed_changes_traces() {
    let a = Experiment::new(quick()).run_workload(Workload::Oltp);
    let b = Experiment::new(quick().with_seed(1234)).run_workload(Workload::Oltp);
    assert_ne!(
        (a.multi_chip.total_misses, a.single_chip.total_misses),
        (b.multi_chip.total_misses, b.single_chip.total_misses)
    );
}

#[test]
fn collected_traces_roundtrip_through_serialization() {
    // Collect a real multi-chip trace, write it, read it back, and verify
    // the analysis of both is identical.
    let mut session = WorkloadSession::new(Workload::Apache, 4, 11);
    let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
    session.run(&mut sim, 120);
    let trace = sim.finish(10_000);
    assert!(!trace.is_empty());

    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).expect("write");
    let back: MissTrace<MissClass> = read_trace(&buf[..]).expect("read");
    assert_eq!(back.records(), trace.records());
    assert_eq!(back.instructions(), trace.instructions());

    let a1 = StreamAnalysis::of_trace(&trace);
    let a2 = StreamAnalysis::of_trace(&back);
    assert_eq!(a1.label_counts(), a2.label_counts());
}

#[test]
fn intra_chip_trace_roundtrips_too() {
    let mut session = WorkloadSession::new(Workload::DssQ2, 2, 3);
    let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
    session.run(&mut sim, 60);
    let traces = sim.finish(5_000);
    let mut buf = Vec::new();
    write_trace(&traces.intra_chip, &mut buf).expect("write");
    let back: MissTrace<IntraChipClass> = read_trace(&buf[..]).expect("read");
    assert_eq!(back.records(), traces.intra_chip.records());
}

#[test]
fn warmup_recording_split_reduces_compulsory() {
    // Measuring after a warmup phase must shrink the compulsory share
    // relative to measuring from cold caches.
    let run = |warmup: u64| {
        let mut session = WorkloadSession::new(Workload::Apache, 4, 5);
        let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
        sim.set_recording(false);
        session.run(&mut sim, warmup);
        sim.set_recording(true);
        session.run(&mut sim, 150);
        let trace = sim.finish(1);
        let compulsory = trace.count_class(MissClass::Compulsory) as f64;
        compulsory / trace.len().max(1) as f64
    };
    let cold = run(0);
    let warm = run(400);
    assert!(
        warm < cold,
        "warmup must reduce compulsory share (cold {cold:.3}, warm {warm:.3})"
    );
}

#[test]
fn origin_table_matches_manual_join() {
    // Rebuild an origin table by hand from a collected trace and compare.
    let mut session = WorkloadSession::new(Workload::Oltp, 4, 2);
    let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
    session.run(&mut sim, 100);
    let trace = sim.finish(1);
    let symbols = session.into_symbols();
    let analysis = StreamAnalysis::of_trace(&trace);
    let table = OriginTable::build(
        trace.records(),
        analysis.labels(),
        &symbols,
        tempstream_trace::AppClass::Oltp,
    );
    // Manual totals.
    let mut by_cat = std::collections::HashMap::new();
    for r in trace.records() {
        *by_cat.entry(symbols.category(r.function)).or_insert(0u64) += 1;
    }
    for row in &table.rows {
        if let Some(&n) = by_cat.get(&row.category) {
            assert_eq!(row.misses, n, "{}", row.category);
        }
    }
}

#[test]
fn stride_and_stream_labels_align_with_trace() {
    let mut session = WorkloadSession::new(Workload::DssQ1, 2, 9);
    let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
    session.run(&mut sim, 60);
    let traces = sim.finish(1);
    let analysis = StreamAnalysis::of_trace(&traces.off_chip);
    let strides = StrideDetector::of_trace(&traces.off_chip);
    assert_eq!(analysis.labels().len(), traces.off_chip.len());
    assert_eq!(strides.flags().len(), traces.off_chip.len());
    // DSS scans must show a healthy strided fraction.
    assert!(
        strides.strided_fraction() > 0.2,
        "DSS scan should be heavily strided, got {:.3}",
        strides.strided_fraction()
    );
}

#[test]
fn report_formatters_render_real_results() {
    let r = Experiment::new(quick()).run_workload(Workload::Apache);
    let s1 = format_origin_table(&r.multi_chip.streams.origins);
    assert!(s1.contains("Kernel STREAMS subsystem"));
    assert!(s1.contains("Overall % in streams"));
    let s2 = format_length_cdf(&r.multi_chip.streams.length_cdf);
    assert!(s2.contains("median stream length"));
    let s3 = format_reuse_pdf(&r.multi_chip.streams.reuse_pdf);
    assert!(s3.contains("dist ~10^0"));
    assert!(!r.multi_chip.breakdown.to_string().is_empty());
    assert!(!r.intra_chip.breakdown.to_string().is_empty());
}

#[test]
fn run_all_covers_six_workloads() {
    let mut cfg = quick();
    cfg.scale_override = Some(Scale {
        warmup_ops: 10,
        ops: 60,
    });
    let all = Experiment::new(cfg).run_all();
    assert_eq!(all.len(), 6);
    let names: Vec<_> = all.iter().map(|r| r.workload.name()).collect();
    assert_eq!(
        names,
        vec!["Apache", "Zeus", "DB2", "Qry1", "Qry2", "Qry17"]
    );
}
