//! Shape tests: the paper's qualitative findings must hold on reduced
//! configurations that preserve the relevant footprint-to-cache ratios.
//!
//! These use small caches (4 KB L1 / 64 KB L2) and short runs so they are
//! viable under `cargo test`; the full-scale reproduction is exercised by
//! the `reproduce` binary and recorded in EXPERIMENTS.md.

use tempstream_coherence::{MultiChipConfig, SingleChipConfig};
use tempstream_core::experiment::{Experiment, ExperimentConfig, WorkloadResults};
use tempstream_trace::{MissCategory, MissClass};
use tempstream_workloads::{Scale, Workload};

fn shape_config() -> ExperimentConfig {
    ExperimentConfig {
        seed: 0xA11CE,
        multi_chip: MultiChipConfig::small(8),
        single_chip: SingleChipConfig::small(4),
        scale_override: Some(Scale {
            warmup_ops: 150,
            ops: 700,
        }),
        max_analysis_misses: 500_000,
    }
}

fn run(w: Workload) -> WorkloadResults {
    Experiment::new(shape_config()).run_workload(w)
}

/// §4.1 / Figure 1: a single-chip multiprocessor captures all (non-I/O)
/// coherence traffic on chip — no off-chip coherence misses.
#[test]
fn no_off_chip_coherence_in_single_chip() {
    for w in [Workload::Apache, Workload::Oltp, Workload::DssQ2] {
        let r = run(w);
        assert_eq!(
            r.single_chip.breakdown.count(MissClass::Coherence),
            0,
            "{w}: single-chip off-chip coherence must be zero"
        );
        assert!(
            r.multi_chip.breakdown.count(MissClass::Coherence) > 0,
            "{w}: multi-chip must show coherence misses"
        );
    }
}

/// §4.1 / [3]: with larger L2 caches, capacity misses melt away and
/// coherence comes to dominate the multi-chip off-chip profile — the
/// effect that motivates the paper's large-L2 configuration.
#[test]
fn coherence_share_grows_with_l2_capacity() {
    // Compare coherence against replacement (capacity/conflict) misses:
    // compulsory misses depend only on the footprint, not the caches, so
    // they are excluded from the ratio.
    let ratio_with_l2 = |l2_kb: u64| {
        let mut cfg = shape_config();
        cfg.multi_chip.l2 = tempstream_cache::CacheConfig::new(l2_kb * 1024, 16);
        let r = Experiment::new(cfg).run_workload(Workload::Oltp);
        let coh = r.multi_chip.breakdown.count(MissClass::Coherence) as f64;
        let repl = r.multi_chip.breakdown.count(MissClass::Replacement) as f64;
        coh / (coh + repl)
    };
    let small = ratio_with_l2(64);
    let large = ratio_with_l2(8192);
    assert!(
        large > 1.5 * small,
        "coherence:replacement ratio must grow with L2: 64KB -> {small:.3}, 8MB -> {large:.3}"
    );
    assert!(
        large > 0.3,
        "8MB-L2 coherence:(coh+repl) ratio too small: {large:.3}"
    );
}

/// §4.2 / Figure 2: web serving is the most stream-heavy workload class
/// and DSS scans the least; the ordering web > oltp > dss-q1 holds in the
/// multi-chip context.
#[test]
fn stream_fraction_ordering_across_classes() {
    let web = run(Workload::Apache)
        .multi_chip
        .streams
        .stream_fraction
        .in_streams();
    let oltp = run(Workload::Oltp)
        .multi_chip
        .streams
        .stream_fraction
        .in_streams();
    let dss = run(Workload::DssQ1)
        .multi_chip
        .streams
        .stream_fraction
        .in_streams();
    assert!(
        web > oltp && oltp > dss,
        "expected web > oltp > dss, got web {web:.2}, oltp {oltp:.2}, dss {dss:.2}"
    );
    assert!(web > 0.5, "web must be mostly repetitive, got {web:.2}");
}

/// §4.1: DSS query 1 visits most data exactly once — compulsory plus I/O
/// coherence dominate its off-chip misses.
#[test]
fn dss_scan_is_one_touch() {
    let r = run(Workload::DssQ1);
    let b = &r.single_chip.breakdown;
    let one_touch = b.fraction(MissClass::Compulsory) + b.fraction(MissClass::IoCoherence);
    assert!(
        one_touch > 0.5,
        "Q1 compulsory+I/O share too small: {one_touch:.3}"
    );
}

/// §4.3 / Figure 3: DSS is far more stride-predictable than web serving
/// (bulk page copies and sequential scans vs pointer chasing).
#[test]
fn dss_is_strided_web_is_not() {
    let dss = run(Workload::DssQ1)
        .single_chip
        .streams
        .stride_joint
        .strided_fraction();
    let web = run(Workload::Zeus)
        .multi_chip
        .streams
        .stride_joint
        .strided_fraction();
    assert!(dss > 0.3, "DSS strided fraction too small: {dss:.3}");
    assert!(
        web < dss,
        "web ({web:.3}) must be less strided than DSS ({dss:.3})"
    );
}

/// §4.4 / Figure 4: streams are long — the weighted median exceeds the
/// 2-4 block fixed depths of prior prefetchers for the stream-heavy
/// workloads.
#[test]
fn streams_are_long() {
    for w in [Workload::Apache, Workload::Oltp] {
        let r = run(w);
        let median = r
            .multi_chip
            .streams
            .length_cdf
            .median()
            .expect("streams exist");
        assert!(median >= 4, "{w}: median stream length {median} too short");
        let max = r.multi_chip.streams.length_cdf.max_len().unwrap();
        assert!(max >= 30, "{w}: longest stream {max} too short");
    }
}

/// §4.5 / Figure 4 (right): coherence-dominated (multi-chip) reuse
/// distances are shorter than capacity-dominated (single-chip) ones.
#[test]
fn reuse_distance_center_of_mass_shifts() {
    let r = run(Workload::Oltp);
    let mc_short = r.multi_chip.streams.reuse_pdf.fraction_below(10_000);
    let sc_short = r.single_chip.streams.reuse_pdf.fraction_below(10_000);
    assert!(
        mc_short >= sc_short,
        "multi-chip short-distance mass ({mc_short:.3}) should be >= single-chip ({sc_short:.3})"
    );
}

/// §2.1 example two / §5: the Solaris dispatcher's queue scans produce
/// repetitive coherence misses; the scheduler category is essentially
/// fully repetitive in OLTP's multi-chip profile.
#[test]
fn scheduler_misses_are_repetitive() {
    let r = run(Workload::Oltp);
    let row = r
        .multi_chip
        .streams
        .origins
        .row(MissCategory::KernelScheduler)
        .expect("scheduler row");
    assert!(row.misses > 0, "scheduler must miss");
    assert!(
        row.stream_fraction() > 0.8,
        "scheduler repetition too low: {:.3}",
        row.stream_fraction()
    );
}

/// §5.1: `Perl_sv_gets` is the most repetitive function-level category —
/// nearly all of its misses repeat a prior stream.
#[test]
fn perl_input_parsing_is_extremely_repetitive() {
    let r = run(Workload::Apache);
    let row = r
        .multi_chip
        .streams
        .origins
        .row(MissCategory::CgiPerlInput)
        .expect("perl input row");
    assert!(row.misses > 0);
    assert!(
        row.stream_fraction() > 0.9,
        "Perl_sv_gets repetition too low: {:.3}",
        row.stream_fraction()
    );
}

/// §5.3: DSS bulk copies dominate its miss profile, and most are not
/// repetitive (buffers are not reused at trace time-scales).
#[test]
fn dss_copies_dominate_and_mostly_do_not_repeat() {
    let r = run(Workload::DssQ1);
    let row = r
        .single_chip
        .streams
        .origins
        .row(MissCategory::BulkMemoryCopy)
        .expect("copy row");
    let share = row.miss_share(r.single_chip.streams.origins.total_misses);
    assert!(share > 0.3, "DSS copy share too small: {share:.3}");
    assert!(
        row.stream_fraction() < 0.6,
        "DSS copies too repetitive: {:.3}",
        row.stream_fraction()
    );
}

/// §5 headline: no single category dominates the stream origins of web
/// and OLTP ("no obvious, dominant memory bottlenecks remain").
#[test]
fn origins_are_spread_for_web_and_oltp() {
    for w in [Workload::Apache, Workload::Oltp] {
        let r = run(w);
        let t = &r.multi_chip.streams.origins;
        let max_share = t
            .rows
            .iter()
            .map(|row| row.miss_share(t.total_misses))
            .fold(0.0, f64::max);
        assert!(
            max_share < 0.55,
            "{w}: one category holds {max_share:.2} of misses"
        );
    }
}

/// Figure 2's headline range: across workloads and contexts, a
/// substantial fraction (but never all) of misses occur in streams.
#[test]
fn stream_fractions_in_headline_range() {
    for w in [Workload::Zeus, Workload::Oltp, Workload::DssQ17] {
        let r = run(w);
        for (ctx, s) in [
            ("multi", r.multi_chip.streams.stream_fraction.in_streams()),
            ("single", r.single_chip.streams.stream_fraction.in_streams()),
            ("intra", r.intra_chip.streams.stream_fraction.in_streams()),
        ] {
            assert!(
                (0.05..=0.995).contains(&s),
                "{w}/{ctx}: stream fraction {s:.3} out of range"
            );
        }
    }
}
