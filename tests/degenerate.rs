//! Degenerate-input coverage: empty, single-miss, and all-identical-
//! address traces must flow through every analysis (streams, strides,
//! origins, functions, class breakdowns) producing finite fractions and
//! stable report text — never NaN or infinity from a zero denominator.

use tempstream_core::report::{MissClassBreakdown, StreamFractionReport, StrideJointReport};
use tempstream_core::stages;
use tempstream_trace::miss::{MissRecord, MissTrace};
use tempstream_trace::{Block, CpuId, FunctionId, MissCategory, MissClass, SymbolTable, ThreadId};
use tempstream_workloads::Workload;

fn record(block: u64, cpu: u32, function: u32) -> MissRecord<MissClass> {
    MissRecord {
        block: Block::new(block),
        cpu: CpuId::new(cpu),
        thread: ThreadId::new(cpu),
        function: FunctionId::new(function),
        class: MissClass::Replacement,
    }
}

fn symbols() -> SymbolTable {
    let mut s = SymbolTable::new();
    s.intern("disp_main", MissCategory::KernelScheduler);
    s.intern("memcpy", MissCategory::BulkMemoryCopy);
    s
}

/// Runs the full composed analysis and asserts every derived fraction
/// is finite and within [0, 1] (shares can legitimately be 0 on these
/// inputs, never NaN).
fn assert_all_finite(records: &[MissRecord<MissClass>], num_cpus: u32) {
    let syms = symbols();
    let results = stages::analyze_stream_results(records, num_cpus, &syms, Workload::Apache);

    let sf = &results.stream_fraction;
    for v in [sf.in_streams(), sf.recurring_fraction()] {
        assert!(v.is_finite(), "stream fraction not finite: {v}");
        assert!(
            (0.0..=1.0).contains(&v),
            "stream fraction out of range: {v}"
        );
    }

    let j = &results.stride_joint;
    for v in [j.strided_fraction(), j.repetitive_fraction()] {
        assert!(v.is_finite(), "stride fraction not finite: {v}");
        assert!(
            (0.0..=1.0).contains(&v),
            "stride fraction out of range: {v}"
        );
    }

    let v = results.origins.overall_stream_fraction();
    assert!(
        v.is_finite() && (0.0..=1.0).contains(&v),
        "origin fraction: {v}"
    );
    for row in results.functions.rows() {
        let v = row.stream_fraction();
        assert!(
            v.is_finite() && (0.0..=1.0).contains(&v),
            "function fraction: {v}"
        );
    }
    let v = results.functions.share_of_prefix("disp");
    assert!(
        v.is_finite() && (0.0..=1.0).contains(&v),
        "prefix share: {v}"
    );

    // Rendered reports must never show NaN/inf either.
    for text in [
        sf.to_string(),
        j.to_string(),
        tempstream_core::report::format_length_cdf(&results.length_cdf),
        tempstream_core::report::format_reuse_pdf(&results.reuse_pdf),
        tempstream_core::report::format_origin_table(&results.origins),
        tempstream_core::functions::format_function_table(&results.functions, 12),
    ] {
        assert!(!text.contains("NaN"), "report shows NaN: {text}");
        assert!(!text.contains("inf"), "report shows inf: {text}");
    }
}

#[test]
fn empty_trace_is_finite_everywhere() {
    assert_all_finite(&[], 4);
}

#[test]
fn single_miss_trace_is_finite_everywhere() {
    assert_all_finite(&[record(0x40, 0, 0)], 4);
}

#[test]
fn all_identical_address_trace_is_finite_everywhere() {
    let records: Vec<_> = (0..1000).map(|_| record(0x80, 1, 1)).collect();
    assert_all_finite(&records, 4);
}

#[test]
fn empty_breakdown_has_finite_mpki_and_fractions() {
    let trace: MissTrace<MissClass> = MissTrace::new(4);
    let b = MissClassBreakdown::of_trace(&trace);
    assert_eq!(b.total(), 0);
    assert_eq!(b.total_mpki(), 0.0);
    for class in MissClass::ALL {
        assert_eq!(b.mpki(class), 0.0);
        assert_eq!(b.fraction(class), 0.0);
    }
    let text = b.to_string();
    assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
}

#[test]
fn empty_reports_render_stable_text() {
    let sf = StreamFractionReport {
        non_repetitive: 0,
        new_stream: 0,
        recurring_stream: 0,
    };
    assert_eq!(
        sf.to_string(),
        "non-repetitive   0.0% | new stream   0.0% | recurring stream   0.0%"
    );
    assert_eq!(sf.in_streams(), 0.0);

    let j = StrideJointReport::default();
    assert_eq!(j.strided_fraction(), 0.0);
    assert_eq!(j.repetitive_fraction(), 0.0);
    assert!(!j.to_string().contains("NaN"));
}

#[test]
fn single_miss_stream_counts_are_consistent() {
    let syms = symbols();
    let results = stages::analyze_stream_results(&[record(0x40, 0, 0)], 4, &syms, Workload::Apache);
    assert_eq!(results.analyzed_misses, 1);
    assert_eq!(results.stream_fraction.total(), 1);
    assert_eq!(results.stride_joint.total(), 1);
    // One miss can never be repetitive.
    assert_eq!(results.stream_fraction.non_repetitive, 1);
    assert_eq!(results.stream_fraction.in_streams(), 0.0);
}
