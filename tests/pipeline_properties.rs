//! Randomized property tests over the analysis pipeline, validated against
//! brute-force reference implementations on randomly generated miss
//! traces. Inputs come from the in-tree seeded PRNG, so every run checks
//! the same deterministic corpus.

use tempstream_core::streams::{StreamAnalysis, StreamLabel};
use tempstream_core::stride::{StrideDetector, MAX_STRIDE, MIN_RUN};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, MissTrace, ThreadId};

fn trace_from(blocks: &[(u64, u8)]) -> MissTrace<MissClass> {
    let cpus = u32::from(blocks.iter().map(|&(_, c)| c).max().unwrap_or(0)) + 1;
    let mut t = MissTrace::new(cpus);
    for &(b, c) in blocks {
        t.push(MissRecord {
            block: Block::new(b),
            cpu: CpuId::new(u32::from(c)),
            thread: ThreadId::new(u32::from(c)),
            function: FunctionId::new(0),
            class: MissClass::Replacement,
        });
    }
    t
}

/// Generates a random `(block, cpu)` sequence.
fn gen_blocks(rng: &mut SmallRng, block_span: u64, cpus: u8, max_len: usize) -> Vec<(u64, u8)> {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| (rng.gen_range(0..block_span), rng.gen_range(0..cpus)))
        .collect()
}

/// Brute-force stride reference mirroring the detector's contract: runs of
/// same-cpu misses with a constant usable delta; runs of >= MIN_RUN misses
/// are strided.
fn reference_strided(blocks: &[(u64, u8)]) -> Vec<bool> {
    let mut out = vec![false; blocks.len()];
    let cpus: std::collections::BTreeSet<u8> = blocks.iter().map(|&(_, c)| c).collect();
    for c in cpus {
        let idx: Vec<usize> = (0..blocks.len()).filter(|&i| blocks[i].1 == c).collect();
        let mut run: Vec<usize> = Vec::new();
        let mut last_delta: Option<i64> = None;
        for w in 1..idx.len() {
            let d = blocks[idx[w]].0 as i64 - blocks[idx[w - 1]].0 as i64;
            let usable = d != 0 && d.abs() <= MAX_STRIDE;
            if usable && last_delta == Some(d) {
                run.push(idx[w]);
            } else if usable {
                run = vec![idx[w - 1], idx[w]];
            } else {
                run = Vec::new();
            }
            last_delta = if usable || w == 0 { Some(d) } else { None };
            if !usable {
                last_delta = None;
            }
            if run.len() >= MIN_RUN {
                for &j in &run {
                    out[j] = true;
                }
            }
        }
    }
    out
}

/// Labels always align one-to-one with the trace and partition it.
#[test]
fn labels_partition_trace() {
    let mut rng = SmallRng::seed_from_u64(0x11a1);
    for _ in 0..128 {
        let blocks = gen_blocks(&mut rng, 12, 3, 250);
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        assert_eq!(a.labels().len(), t.len());
        let (non, new, rec) = a.label_counts();
        assert_eq!(non + new + rec, t.len() as u64);
        assert!(a.stream_fraction() >= 0.0 && a.stream_fraction() <= 1.0);
    }
}

/// Occurrences tile exactly the positions labeled as stream misses,
/// without overlap.
#[test]
fn occurrences_tile_stream_positions() {
    let mut rng = SmallRng::seed_from_u64(0x11a2);
    for _ in 0..128 {
        let blocks = gen_blocks(&mut rng, 8, 2, 250);
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        let mut covered = vec![false; t.len()];
        for occ in a.occurrences() {
            assert!(occ.len >= 2, "streams are >= 2 misses");
            let span = occ.start..occ.start + occ.len as usize;
            for (i, c) in covered[span.clone()].iter_mut().enumerate() {
                assert!(!*c, "overlapping occurrences at {}", occ.start + i);
                *c = true;
                assert_ne!(a.labels()[occ.start + i], StreamLabel::NonRepetitive);
            }
        }
        for ((i, &cov), &label) in covered.iter().enumerate().zip(a.labels()) {
            assert_eq!(
                cov,
                label != StreamLabel::NonRepetitive,
                "position {i} label/occurrence mismatch"
            );
        }
    }
}

/// New occurrences carry no reuse distance; repeats always do.
#[test]
fn first_occurrence_is_new() {
    let mut rng = SmallRng::seed_from_u64(0x11a3);
    for _ in 0..128 {
        let blocks = gen_blocks(&mut rng, 6, 2, 200);
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        let mut seen = std::collections::HashSet::new();
        for occ in a.occurrences() {
            if seen.insert(occ.rule) {
                if occ.new {
                    assert_eq!(occ.reuse_distance, None);
                }
            } else {
                assert!(!occ.new, "repeat occurrence flagged new");
                assert!(occ.reuse_distance.is_some());
            }
        }
    }
}

/// Reuse distance never exceeds the total misses between occurrences.
#[test]
fn reuse_distance_bounded() {
    let mut rng = SmallRng::seed_from_u64(0x11a4);
    for _ in 0..128 {
        let blocks = gen_blocks(&mut rng, 6, 3, 200);
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        let mut last_end: std::collections::HashMap<_, usize> = Default::default();
        for occ in a.occurrences() {
            if let Some(d) = occ.reuse_distance {
                let prev_end = last_end[&occ.rule];
                assert!(
                    (d as usize) <= occ.start - prev_end,
                    "distance {} exceeds gap {}",
                    d,
                    occ.start - prev_end
                );
            }
            last_end.insert(occ.rule, occ.start + occ.len as usize);
        }
    }
}

/// Stride detector agrees with the brute-force reference.
#[test]
fn stride_matches_reference() {
    let mut rng = SmallRng::seed_from_u64(0x11a5);
    for _ in 0..256 {
        let blocks = gen_blocks(&mut rng, 40, 2, 120);
        let t = trace_from(&blocks);
        let d = StrideDetector::of_trace(&t);
        let reference = reference_strided(&blocks);
        assert_eq!(d.flags(), &reference[..]);
    }
}

/// A doubled random sequence is mostly covered by streams.
#[test]
fn doubled_trace_is_repetitive() {
    let mut rng = SmallRng::seed_from_u64(0x11a6);
    for _ in 0..128 {
        let len = rng.gen_range(4..80usize);
        let base: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000)).collect();
        let doubled: Vec<(u64, u8)> = base.iter().chain(base.iter()).map(|&b| (b, 0)).collect();
        let t = trace_from(&doubled);
        let a = StreamAnalysis::of_trace(&t);
        assert!(
            a.stream_fraction() > 0.5,
            "doubled sequence only {:.2} in streams",
            a.stream_fraction()
        );
    }
}

/// Single-occurrence content yields no recurring labels.
#[test]
fn unique_blocks_never_recur() {
    for n in [1usize, 2, 3, 7, 50, 199] {
        let blocks: Vec<(u64, u8)> = (0..n as u64).map(|b| (b * 7 + 1, 0)).collect();
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        let (_, _, rec) = a.label_counts();
        assert_eq!(rec, 0);
    }
}

/// Length CDF total weight equals the stream-labeled miss count.
#[test]
fn length_cdf_weight_matches_labels() {
    let mut rng = SmallRng::seed_from_u64(0x11a7);
    for _ in 0..128 {
        let blocks = gen_blocks(&mut rng, 10, 2, 250);
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        let (_, new, rec) = a.label_counts();
        assert_eq!(a.length_cdf().total_weight(), new + rec);
    }
}

/// A hand-checked reuse-distance scenario with interleaved CPUs, verifying
/// the "misses on the first processor" rule end to end.
#[test]
fn reuse_distance_first_processor_rule() {
    // cpu0: A B ... A B (stream [A,B]); cpu1 interleaves 5 misses and cpu0
    // interleaves 3 between the occurrences.
    let blocks = [
        (100, 0),
        (101, 0),
        (1, 1),
        (200, 0),
        (2, 1),
        (201, 0),
        (3, 1),
        (202, 0),
        (4, 1),
        (5, 1),
        (100, 0),
        (101, 0),
    ];
    let t = trace_from(&blocks);
    let a = StreamAnalysis::of_trace(&t);
    let occ: Vec<_> = a
        .occurrences()
        .iter()
        .filter(|o| o.len == 2 && t.records()[o.start].block == Block::new(100))
        .collect();
    assert_eq!(occ.len(), 2);
    assert_eq!(
        occ[1].reuse_distance,
        Some(3),
        "three cpu0 misses intervene"
    );
}
