//! Property-based tests over the analysis pipeline, validated against
//! brute-force reference implementations on randomly generated miss
//! traces.

use proptest::prelude::*;
use tempstream_core::streams::{StreamAnalysis, StreamLabel};
use tempstream_core::stride::{StrideDetector, MAX_STRIDE, MIN_RUN};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, MissTrace, ThreadId};

fn trace_from(blocks: &[(u64, u8)]) -> MissTrace<MissClass> {
    let cpus = u32::from(blocks.iter().map(|&(_, c)| c).max().unwrap_or(0)) + 1;
    let mut t = MissTrace::new(cpus);
    for &(b, c) in blocks {
        t.push(MissRecord {
            block: Block::new(b),
            cpu: CpuId::new(u32::from(c)),
            thread: ThreadId::new(u32::from(c)),
            function: FunctionId::new(0),
            class: MissClass::Replacement,
        });
    }
    t
}

/// Brute-force stride reference mirroring the detector's contract: runs of
/// same-cpu misses with a constant usable delta; runs of >= MIN_RUN misses
/// are strided.
fn reference_strided(blocks: &[(u64, u8)]) -> Vec<bool> {
    let mut out = vec![false; blocks.len()];
    let cpus: std::collections::BTreeSet<u8> = blocks.iter().map(|&(_, c)| c).collect();
    for c in cpus {
        let idx: Vec<usize> = (0..blocks.len()).filter(|&i| blocks[i].1 == c).collect();
        let mut run: Vec<usize> = Vec::new();
        let mut last_delta: Option<i64> = None;
        for w in 1..idx.len() {
            let d = blocks[idx[w]].0 as i64 - blocks[idx[w - 1]].0 as i64;
            let usable = d != 0 && d.abs() <= MAX_STRIDE;
            if usable && last_delta == Some(d) {
                run.push(idx[w]);
            } else if usable {
                run = vec![idx[w - 1], idx[w]];
            } else {
                run = Vec::new();
            }
            last_delta = if usable || w == 0 { Some(d) } else { None };
            if !usable {
                last_delta = None;
            }
            if run.len() >= MIN_RUN {
                for &j in &run {
                    out[j] = true;
                }
            }
        }
    }
    out
}

proptest! {
    /// Labels always align one-to-one with the trace and partition it.
    #[test]
    fn labels_partition_trace(
        blocks in proptest::collection::vec((0u64..12, 0u8..3), 0..250),
    ) {
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        prop_assert_eq!(a.labels().len(), t.len());
        let (non, new, rec) = a.label_counts();
        prop_assert_eq!(non + new + rec, t.len() as u64);
        prop_assert!(a.stream_fraction() >= 0.0 && a.stream_fraction() <= 1.0);
    }

    /// Occurrences tile exactly the positions labeled as stream misses,
    /// without overlap.
    #[test]
    fn occurrences_tile_stream_positions(
        blocks in proptest::collection::vec((0u64..8, 0u8..2), 0..250),
    ) {
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        let mut covered = vec![false; t.len()];
        for occ in a.occurrences() {
            prop_assert!(occ.len >= 2, "streams are >= 2 misses");
            let span = occ.start..occ.start + occ.len as usize;
            for (i, c) in covered[span.clone()].iter_mut().enumerate() {
                prop_assert!(!*c, "overlapping occurrences at {}", occ.start + i);
                *c = true;
                prop_assert_ne!(
                    a.labels()[occ.start + i],
                    StreamLabel::NonRepetitive
                );
            }
        }
        for ((i, &cov), &label) in covered.iter().enumerate().zip(a.labels()) {
            prop_assert_eq!(
                cov,
                label != StreamLabel::NonRepetitive,
                "position {} label/occurrence mismatch", i
            );
        }
    }

    /// New occurrences carry no reuse distance; repeats always do.
    #[test]
    fn first_occurrence_is_new(
        blocks in proptest::collection::vec((0u64..6, 0u8..2), 0..200),
    ) {
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        let mut seen = std::collections::HashSet::new();
        for occ in a.occurrences() {
            if seen.insert(occ.rule) {
                if occ.new {
                    prop_assert_eq!(occ.reuse_distance, None);
                }
            } else {
                prop_assert!(!occ.new, "repeat occurrence flagged new");
                prop_assert!(occ.reuse_distance.is_some());
            }
        }
    }

    /// Reuse distance never exceeds the total misses between occurrences.
    #[test]
    fn reuse_distance_bounded(
        blocks in proptest::collection::vec((0u64..6, 0u8..3), 0..200),
    ) {
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        let mut last_end: std::collections::HashMap<_, usize> = Default::default();
        for occ in a.occurrences() {
            if let Some(d) = occ.reuse_distance {
                let prev_end = last_end[&occ.rule];
                prop_assert!(
                    (d as usize) <= occ.start - prev_end,
                    "distance {} exceeds gap {}",
                    d,
                    occ.start - prev_end
                );
            }
            last_end.insert(occ.rule, occ.start + occ.len as usize);
        }
    }

    /// Stride detector agrees with the brute-force reference.
    #[test]
    fn stride_matches_reference(
        blocks in proptest::collection::vec((0u64..40, 0u8..2), 0..120),
    ) {
        let t = trace_from(&blocks);
        let d = StrideDetector::of_trace(&t);
        let reference = reference_strided(&blocks);
        prop_assert_eq!(d.flags(), &reference[..]);
    }

    /// A doubled random sequence is mostly covered by streams.
    #[test]
    fn doubled_trace_is_repetitive(
        base in proptest::collection::vec(0u64..1000, 4..80),
    ) {
        let doubled: Vec<(u64, u8)> =
            base.iter().chain(base.iter()).map(|&b| (b, 0)).collect();
        let t = trace_from(&doubled);
        let a = StreamAnalysis::of_trace(&t);
        prop_assert!(
            a.stream_fraction() > 0.5,
            "doubled sequence only {:.2} in streams",
            a.stream_fraction()
        );
    }

    /// Single-occurrence content yields no recurring labels.
    #[test]
    fn unique_blocks_never_recur(n in 1usize..200) {
        let blocks: Vec<(u64, u8)> = (0..n as u64).map(|b| (b * 7 + 1, 0)).collect();
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        let (_, _, rec) = a.label_counts();
        prop_assert_eq!(rec, 0);
    }

    /// Length CDF total weight equals the stream-labeled miss count.
    #[test]
    fn length_cdf_weight_matches_labels(
        blocks in proptest::collection::vec((0u64..10, 0u8..2), 0..250),
    ) {
        let t = trace_from(&blocks);
        let a = StreamAnalysis::of_trace(&t);
        let (_, new, rec) = a.label_counts();
        prop_assert_eq!(a.length_cdf().total_weight(), new + rec);
    }
}

/// A hand-checked reuse-distance scenario with interleaved CPUs, verifying
/// the "misses on the first processor" rule end to end.
#[test]
fn reuse_distance_first_processor_rule() {
    // cpu0: A B ... A B (stream [A,B]); cpu1 interleaves 5 misses and cpu0
    // interleaves 3 between the occurrences.
    let blocks = [
        (100, 0),
        (101, 0),
        (1, 1),
        (200, 0),
        (2, 1),
        (201, 0),
        (3, 1),
        (202, 0),
        (4, 1),
        (5, 1),
        (100, 0),
        (101, 0),
    ];
    let t = trace_from(&blocks);
    let a = StreamAnalysis::of_trace(&t);
    let occ: Vec<_> = a
        .occurrences()
        .iter()
        .filter(|o| o.len == 2 && t.records()[o.start].block == Block::new(100))
        .collect();
    assert_eq!(occ.len(), 2);
    assert_eq!(occ[1].reuse_distance, Some(3), "three cpu0 misses intervene");
}
