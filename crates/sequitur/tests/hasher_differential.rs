//! Differential tests for the digram-index hasher swap.
//!
//! The digram index moved from SipHash (`RandomState`) to the in-tree
//! seedless `FxBuildHasher`. SEQUITUR only ever asks the index
//! exact-match questions — it never iterates it — so the produced
//! grammar must be a function of the input alone, independent of the
//! hasher. These tests pin that claim by building the same inputs under
//! both hashers and requiring *structurally identical* grammars (same
//! rules, same bodies, same order), not merely equal reconstructions.

use std::collections::hash_map::RandomState;
use tempstream_sequitur::{Grammar, Sequitur};
use tempstream_trace::rng::SmallRng;

fn grammar_with<H: std::hash::BuildHasher + Default>(input: &[u64]) -> Grammar {
    let mut s = Sequitur::<H>::with_hasher();
    s.extend(input.iter().copied());
    s.into_grammar()
}

fn assert_identical(a: &Grammar, b: &Grammar, input: &[u64]) {
    assert_eq!(
        a.rule_count(),
        b.rule_count(),
        "rule counts diverge for input {input:?}"
    );
    for r in a.rule_ids() {
        assert_eq!(
            a.rule_body(r),
            b.rule_body(r),
            "rule {r} body diverges for input {input:?}"
        );
    }
    assert_eq!(a.reconstruct(), input, "reconstruction broken");
}

/// The default (Fx) build and a SipHash build produce structurally
/// identical grammars over a randomized corpus spanning tiny to large
/// alphabets.
#[test]
fn fx_and_siphash_grammars_identical() {
    let mut rng = SmallRng::seed_from_u64(0xd1f);
    for round in 0..64 {
        let alphabet = [2u64, 3, 8, 64, 4096][round % 5];
        let len = rng.gen_range(0..600usize);
        let input: Vec<u64> = (0..len).map(|_| rng.gen_range(0..alphabet)).collect();
        let fx = grammar_with::<tempstream_fxhash::FxBuildHasher>(&input);
        let sip = grammar_with::<RandomState>(&input);
        assert_identical(&fx, &sip, &input);
    }
}

/// `Sequitur::new()` (the default hasher) agrees with an explicit
/// SipHash build on the regression shapes that stress index churn:
/// runs, alternations, and overlapping digrams.
#[test]
fn default_hasher_matches_siphash_on_regression_shapes() {
    let cases: &[&[u64]] = &[
        &[1, 1, 1, 1, 1, 1, 1, 1, 1],
        &[1, 2, 2, 2, 1, 2, 3, 2, 2],
        &[1, 2, 1, 2, 1, 2, 1, 2],
        &[1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4],
        &[2, 1, 1, 1, 2, 1, 1, 1, 2],
        &[5, 5, 4, 5, 5, 4, 4, 5, 5, 5, 4],
    ];
    for &case in cases {
        let mut s = Sequitur::new();
        s.extend(case.iter().copied());
        s.verify_invariants();
        let default_build = s.into_grammar();
        let sip = grammar_with::<RandomState>(case);
        assert_identical(&default_build, &sip, case);
    }
}

/// Two independent default-hasher builds of the same input take the
/// exact same internal path (same arena size, same index size) — the
/// determinism the seedless hasher buys over SipHash.
#[test]
fn fx_builds_are_bit_stable_across_instances() {
    let mut rng = SmallRng::seed_from_u64(0xace);
    let input: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..32)).collect();
    let mut a = Sequitur::with_capacity(input.len());
    let mut b = Sequitur::with_capacity(input.len());
    a.extend(input.iter().copied());
    b.extend(input.iter().copied());
    assert_eq!(a.digram_index_len(), b.digram_index_len());
    assert_eq!(a.node_arena_len(), b.node_arena_len());
    assert_eq!(a.rules_created(), b.rules_created());
    assert_eq!(a.live_rules(), b.live_rules());
    assert_identical(&a.into_grammar(), &b.into_grammar(), &input);
}
