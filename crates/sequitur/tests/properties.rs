//! Property-based tests for the SEQUITUR implementation.
//!
//! The lossless-reconstruction property plus the two grammar invariants
//! (digram uniqueness, rule utility) fully characterize a correct SEQUITUR;
//! small alphabets maximize repetition and stress the reduction machinery.

use proptest::prelude::*;
use tempstream_sequitur::{GrammarSymbol, RuleId, Sequitur};

proptest! {
    /// Reconstruction is lossless for arbitrary inputs over a tiny alphabet
    /// (alphabet size 2-4 forces heavy rule churn, including runs and
    /// overlapping digrams).
    #[test]
    fn reconstruct_tiny_alphabet(input in proptest::collection::vec(0u64..3, 0..400)) {
        let mut s = Sequitur::new();
        s.extend(input.iter().copied());
        prop_assert_eq!(s.into_grammar().reconstruct(), input);
    }

    /// Reconstruction is lossless for a mid-size alphabet.
    #[test]
    fn reconstruct_mid_alphabet(input in proptest::collection::vec(0u64..50, 0..600)) {
        let mut s = Sequitur::new();
        s.extend(input.iter().copied());
        prop_assert_eq!(s.into_grammar().reconstruct(), input);
    }

    /// Both grammar invariants hold after every single push.
    #[test]
    fn invariants_after_every_push(input in proptest::collection::vec(0u64..4, 0..120)) {
        let mut s = Sequitur::new();
        for x in input {
            s.push(x);
            s.verify_invariants();
        }
    }

    /// Every non-root rule expands to at least two symbols and is referenced
    /// at least twice in the final grammar.
    #[test]
    fn final_rules_are_useful(input in proptest::collection::vec(0u64..5, 0..300)) {
        let mut s = Sequitur::new();
        s.extend(input.iter().copied());
        let g = s.into_grammar();
        let mut refs = vec![0u32; g.rule_count()];
        for r in g.rule_ids() {
            for sym in g.rule_body(r) {
                if let GrammarSymbol::Rule(sub) = sym {
                    prop_assert!(!sub.is_root(), "root referenced from a body");
                    refs[sub.index()] += 1;
                }
            }
        }
        for r in g.rule_ids().skip(1) {
            prop_assert!(g.rule_body(r).len() >= 2, "rule {r} body too short");
            prop_assert!(g.expansion_len(r) >= 2, "rule {r} expands to < 2");
            prop_assert!(refs[r.index()] >= 2, "rule {r} used {} times", refs[r.index()]);
        }
    }

    /// Pushing a sequence twice yields a grammar whose root contains a rule
    /// covering the repetition (compression actually happens).
    #[test]
    fn doubled_sequence_compresses(
        base in proptest::collection::vec(0u64..1000, 2..100),
    ) {
        let mut s = Sequitur::new();
        s.extend(base.iter().copied());
        s.extend(base.iter().copied());
        let g = s.into_grammar();
        prop_assert!(
            g.rule_count() >= 2,
            "doubled sequence of len {} produced no rules",
            base.len()
        );
        let mut out = g.reconstruct();
        let second = out.split_off(base.len());
        prop_assert_eq!(&out, &base);
        prop_assert_eq!(&second, &base);
    }

    /// The root expansion length always equals the input length.
    #[test]
    fn root_length_matches_input(input in proptest::collection::vec(0u64..8, 0..500)) {
        let mut s = Sequitur::new();
        s.extend(input.iter().copied());
        let expected = s.input_len();
        let g = s.into_grammar();
        prop_assert_eq!(g.expansion_len(RuleId::ROOT), expected);
    }
}

/// Deterministic regression corpus for shapes that broke draft
/// implementations of SEQUITUR (overlapping digrams, nested utility
/// collapses, alternations).
#[test]
fn regression_corpus() {
    let cases: &[&[u64]] = &[
        &[1, 1, 1, 1],
        &[1, 1, 1, 1, 1],
        &[1, 1, 1, 1, 1, 1, 1, 1, 1],
        &[1, 2, 2, 2, 1, 2, 3, 2, 2], // "abbbabcbb"
        &[1, 2, 1, 2, 1, 2, 1, 2],
        &[1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4],
        &[1, 1, 2, 1, 1, 2, 1, 1, 2],
        &[2, 1, 1, 1, 2, 1, 1, 1, 2],
        &[1, 2, 1, 1, 2, 1, 1, 2, 1, 1],
        &[5, 5, 4, 5, 5, 4, 4, 5, 5, 5, 4],
    ];
    for &case in cases {
        let mut s = Sequitur::new();
        for &x in case {
            s.push(x);
            s.verify_invariants();
        }
        assert_eq!(s.into_grammar().reconstruct(), case, "case {case:?}");
    }
}

/// A long pseudo-random walk over a small alphabet exercises millions of
/// digram operations without pathological memory use.
#[test]
fn long_random_walk() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xfeed);
    let input: Vec<u64> = (0..50_000).map(|_| rng.gen_range(0..16)).collect();
    let mut s = Sequitur::with_capacity(input.len());
    s.extend(input.iter().copied());
    s.verify_invariants();
    let g = s.into_grammar();
    assert_eq!(g.reconstruct(), input);
}
