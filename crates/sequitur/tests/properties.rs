//! Randomized property tests for the SEQUITUR implementation.
//!
//! The lossless-reconstruction property plus the two grammar invariants
//! (digram uniqueness, rule utility) fully characterize a correct SEQUITUR;
//! small alphabets maximize repetition and stress the reduction machinery.
//! Inputs come from the in-tree seeded PRNG, so every run checks the same
//! deterministic corpus.

use tempstream_sequitur::{GrammarSymbol, RuleId, Sequitur};
use tempstream_trace::rng::SmallRng;

fn gen_input(rng: &mut SmallRng, alphabet: u64, max_len: usize) -> Vec<u64> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| rng.gen_range(0..alphabet)).collect()
}

/// Reconstruction is lossless for arbitrary inputs over a tiny alphabet
/// (alphabet size 2-4 forces heavy rule churn, including runs and
/// overlapping digrams).
#[test]
fn reconstruct_tiny_alphabet() {
    let mut rng = SmallRng::seed_from_u64(0x5e91);
    for _ in 0..256 {
        let input = gen_input(&mut rng, 3, 400);
        let mut s = Sequitur::new();
        s.extend(input.iter().copied());
        assert_eq!(s.into_grammar().reconstruct(), input);
    }
}

/// Reconstruction is lossless for a mid-size alphabet.
#[test]
fn reconstruct_mid_alphabet() {
    let mut rng = SmallRng::seed_from_u64(0x5e92);
    for _ in 0..128 {
        let input = gen_input(&mut rng, 50, 600);
        let mut s = Sequitur::new();
        s.extend(input.iter().copied());
        assert_eq!(s.into_grammar().reconstruct(), input);
    }
}

/// Both grammar invariants hold after every single push.
#[test]
fn invariants_after_every_push() {
    let mut rng = SmallRng::seed_from_u64(0x5e93);
    for _ in 0..128 {
        let input = gen_input(&mut rng, 4, 120);
        let mut s = Sequitur::new();
        for x in input {
            s.push(x);
            s.verify_invariants();
        }
    }
}

/// Every non-root rule expands to at least two symbols and is referenced
/// at least twice in the final grammar.
#[test]
fn final_rules_are_useful() {
    let mut rng = SmallRng::seed_from_u64(0x5e94);
    for _ in 0..256 {
        let input = gen_input(&mut rng, 5, 300);
        let mut s = Sequitur::new();
        s.extend(input.iter().copied());
        let g = s.into_grammar();
        let mut refs = vec![0u32; g.rule_count()];
        for r in g.rule_ids() {
            for sym in g.rule_body(r) {
                if let GrammarSymbol::Rule(sub) = sym {
                    assert!(!sub.is_root(), "root referenced from a body");
                    refs[sub.index()] += 1;
                }
            }
        }
        for r in g.rule_ids().skip(1) {
            assert!(g.rule_body(r).len() >= 2, "rule {r} body too short");
            assert!(g.expansion_len(r) >= 2, "rule {r} expands to < 2");
            assert!(
                refs[r.index()] >= 2,
                "rule {r} used {} times",
                refs[r.index()]
            );
        }
    }
}

/// Pushing a sequence twice yields a grammar whose root contains a rule
/// covering the repetition (compression actually happens).
#[test]
fn doubled_sequence_compresses() {
    let mut rng = SmallRng::seed_from_u64(0x5e95);
    for _ in 0..256 {
        let len = rng.gen_range(2..100usize);
        let base: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000)).collect();
        let mut s = Sequitur::new();
        s.extend(base.iter().copied());
        s.extend(base.iter().copied());
        let g = s.into_grammar();
        assert!(
            g.rule_count() >= 2,
            "doubled sequence of len {} produced no rules",
            base.len()
        );
        let mut out = g.reconstruct();
        let second = out.split_off(base.len());
        assert_eq!(&out, &base);
        assert_eq!(&second, &base);
    }
}

/// The root expansion length always equals the input length.
#[test]
fn root_length_matches_input() {
    let mut rng = SmallRng::seed_from_u64(0x5e96);
    for _ in 0..256 {
        let input = gen_input(&mut rng, 8, 500);
        let mut s = Sequitur::new();
        s.extend(input.iter().copied());
        let expected = s.input_len();
        let g = s.into_grammar();
        assert_eq!(g.expansion_len(RuleId::ROOT), expected);
    }
}

/// Deterministic regression corpus for shapes that broke draft
/// implementations of SEQUITUR (overlapping digrams, nested utility
/// collapses, alternations).
#[test]
fn regression_corpus() {
    let cases: &[&[u64]] = &[
        &[1, 1, 1, 1],
        &[1, 1, 1, 1, 1],
        &[1, 1, 1, 1, 1, 1, 1, 1, 1],
        &[1, 2, 2, 2, 1, 2, 3, 2, 2], // "abbbabcbb"
        &[1, 2, 1, 2, 1, 2, 1, 2],
        &[1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4],
        &[1, 1, 2, 1, 1, 2, 1, 1, 2],
        &[2, 1, 1, 1, 2, 1, 1, 1, 2],
        &[1, 2, 1, 1, 2, 1, 1, 2, 1, 1],
        &[5, 5, 4, 5, 5, 4, 4, 5, 5, 5, 4],
    ];
    for &case in cases {
        let mut s = Sequitur::new();
        for &x in case {
            s.push(x);
            s.verify_invariants();
        }
        assert_eq!(s.into_grammar().reconstruct(), case, "case {case:?}");
    }
}

/// A long pseudo-random walk over a small alphabet exercises millions of
/// digram operations without pathological memory use.
#[test]
fn long_random_walk() {
    let mut rng = SmallRng::seed_from_u64(0xfeed);
    let input: Vec<u64> = (0..50_000).map(|_| rng.gen_range(0..16)).collect();
    let mut s = Sequitur::with_capacity(input.len());
    s.extend(input.iter().copied());
    s.verify_invariants();
    let g = s.into_grammar();
    assert_eq!(g.reconstruct(), input);
}
