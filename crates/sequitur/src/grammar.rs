//! The immutable grammar produced by a finished SEQUITUR run.

use std::fmt;

/// Identifier of a grammar rule. [`RuleId::ROOT`] is the root production.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(u32);

impl RuleId {
    /// The root rule (the whole input).
    pub const ROOT: RuleId = RuleId(0);

    /// Creates a rule id from its index.
    pub fn new(index: usize) -> Self {
        RuleId(u32::try_from(index).expect("rule id overflow"))
    }

    /// The rule's index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the root rule.
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One symbol on a rule's right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrammarSymbol {
    /// A terminal input symbol.
    Terminal(u64),
    /// A reference to another rule.
    Rule(RuleId),
}

impl fmt::Display for GrammarSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarSymbol::Terminal(t) => write!(f, "{t}"),
            GrammarSymbol::Rule(r) => write!(f, "{r}"),
        }
    }
}

/// A finished SEQUITUR grammar: rule 0 is the root; every other rule is a
/// subsequence that occurred at least twice in the input (a temporal
/// stream).
#[derive(Debug, Clone, Default)]
pub struct Grammar {
    bodies: Vec<Vec<GrammarSymbol>>,
    expansion_lens: Vec<u64>,
}

impl Grammar {
    /// Builds a grammar from raw rule bodies (rule 0 = root).
    ///
    /// # Panics
    ///
    /// Panics if `bodies` is empty or a rule references a later-undefined
    /// rule id or itself (SEQUITUR grammars are acyclic, so expansion
    /// lengths must be computable).
    pub fn from_bodies(bodies: Vec<Vec<GrammarSymbol>>) -> Self {
        assert!(!bodies.is_empty(), "grammar must have a root rule");
        let mut g = Grammar {
            expansion_lens: vec![u64::MAX; bodies.len()],
            bodies,
        };
        // Compute memoized expansion lengths; detect cycles with a visiting
        // mark.
        let mut visiting = vec![false; g.bodies.len()];
        for r in 0..g.bodies.len() {
            g.compute_len(r, &mut visiting);
        }
        g
    }

    fn compute_len(&mut self, rule: usize, visiting: &mut [bool]) -> u64 {
        if self.expansion_lens[rule] != u64::MAX {
            return self.expansion_lens[rule];
        }
        assert!(!visiting[rule], "cyclic rule reference at rule {rule}");
        visiting[rule] = true;
        let mut len = 0u64;
        let body = std::mem::take(&mut self.bodies[rule]);
        for sym in &body {
            len += match *sym {
                GrammarSymbol::Terminal(_) => 1,
                GrammarSymbol::Rule(r) => self.compute_len(r.index(), visiting),
            };
        }
        self.bodies[rule] = body;
        visiting[rule] = false;
        self.expansion_lens[rule] = len;
        len
    }

    /// Number of rules, including the root.
    pub fn rule_count(&self) -> usize {
        self.bodies.len()
    }

    /// All rule ids, root first.
    pub fn rule_ids(&self) -> impl Iterator<Item = RuleId> {
        (0..self.bodies.len()).map(RuleId::new)
    }

    /// The right-hand side of `rule`.
    ///
    /// # Panics
    ///
    /// Panics if `rule` is out of range.
    pub fn rule_body(&self, rule: RuleId) -> &[GrammarSymbol] {
        &self.bodies[rule.index()]
    }

    /// Number of terminals `rule` expands to.
    ///
    /// # Panics
    ///
    /// Panics if `rule` is out of range.
    pub fn expansion_len(&self, rule: RuleId) -> u64 {
        self.expansion_lens[rule.index()]
    }

    /// Fully expands `rule` to its terminal sequence.
    ///
    /// # Panics
    ///
    /// Panics if `rule` is out of range.
    pub fn expand(&self, rule: RuleId) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.expansion_len(rule) as usize);
        self.expand_into(rule, &mut out);
        out
    }

    /// Appends `rule`'s terminal expansion to `out`.
    pub fn expand_into(&self, rule: RuleId, out: &mut Vec<u64>) {
        // Explicit stack: rule hierarchies from long inputs can be deep.
        let mut stack: Vec<(usize, usize)> = vec![(rule.index(), 0)];
        while let Some((r, i)) = stack.pop() {
            let body = &self.bodies[r];
            if i >= body.len() {
                continue;
            }
            stack.push((r, i + 1));
            match body[i] {
                GrammarSymbol::Terminal(t) => out.push(t),
                GrammarSymbol::Rule(sub) => stack.push((sub.index(), 0)),
            }
        }
    }

    /// Reconstructs the original input (the root's expansion).
    pub fn reconstruct(&self) -> Vec<u64> {
        self.expand(RuleId::ROOT)
    }

    /// Total number of symbols across all rule bodies (the grammar's
    /// compressed size).
    pub fn grammar_size(&self) -> usize {
        self.bodies.iter().map(Vec::len).sum()
    }

    /// Compression ratio: input length / grammar size. Returns 0.0 for an
    /// empty grammar.
    pub fn compression_ratio(&self) -> f64 {
        let size = self.grammar_size();
        if size == 0 {
            0.0
        } else {
            self.expansion_len(RuleId::ROOT) as f64 / size as f64
        }
    }
}

impl fmt::Display for Grammar {
    /// Renders the grammar one rule per line, e.g. `R1 -> 5 R2 9`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.bodies.len() {
            write!(f, "R{r} ->")?;
            for sym in &self.bodies[r] {
                write!(f, " {sym}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use GrammarSymbol::{Rule, Terminal};

    fn sample() -> Grammar {
        // root -> R1 7 R1 ; R1 -> 1 2
        Grammar::from_bodies(vec![
            vec![Rule(RuleId::new(1)), Terminal(7), Rule(RuleId::new(1))],
            vec![Terminal(1), Terminal(2)],
        ])
    }

    #[test]
    fn expansion_lengths() {
        let g = sample();
        assert_eq!(g.expansion_len(RuleId::ROOT), 5);
        assert_eq!(g.expansion_len(RuleId::new(1)), 2);
    }

    #[test]
    fn reconstruct_expands_nested() {
        let g = sample();
        assert_eq!(g.reconstruct(), vec![1, 2, 7, 1, 2]);
        assert_eq!(g.expand(RuleId::new(1)), vec![1, 2]);
    }

    #[test]
    fn grammar_size_and_ratio() {
        let g = sample();
        assert_eq!(g.grammar_size(), 5);
        assert!((g.compression_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deep_nesting_does_not_overflow_stack() {
        // R_k -> R_{k+1} R_{k+1}, 200 levels deep; expansion via explicit
        // stack must not recurse.
        let depth = 50;
        let mut bodies = Vec::new();
        for i in 0..depth {
            bodies.push(vec![Rule(RuleId::new(i + 1)), Rule(RuleId::new(i + 1))]);
        }
        bodies.push(vec![Terminal(1), Terminal(2)]);
        // Hierarchy above is not a valid SEQUITUR output (root reused), but
        // is a valid Grammar. Only check lengths, not full expansion.
        let g = Grammar::from_bodies(bodies);
        assert_eq!(g.expansion_len(RuleId::new(depth)), 2);
        assert_eq!(g.expansion_len(RuleId::ROOT), 2u64 << depth as u64);
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn cycle_detected() {
        Grammar::from_bodies(vec![vec![Rule(RuleId::new(1))], vec![Rule(RuleId::new(1))]]);
    }

    #[test]
    fn display_lists_rules() {
        let g = sample();
        let s = g.to_string();
        assert!(s.contains("R0 -> R1 7 R1"));
        assert!(s.contains("R1 -> 1 2"));
    }
}
