//! The incremental SEQUITUR builder.
//!
//! The implementation follows the canonical C++ implementation by
//! Nevill-Manning (symbol nodes in doubly-linked rule bodies, one guard node
//! per rule, and a digram hash table), including the subtle re-indexing
//! fix-ups for runs of identical symbols ("triples") in `join`.

use crate::grammar::{Grammar, GrammarSymbol, RuleId};
use std::collections::HashMap;
use std::hash::BuildHasher;
use tempstream_fxhash::{FxBuildHasher, FxHashMap};

type NodeId = u32;
const NIL: NodeId = u32::MAX;

/// The payload of a symbol node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Payload {
    /// A terminal input symbol.
    Terminal(u64),
    /// A reference to a rule.
    NonTerminal(u32),
    /// The guard node of a rule's circular body list; `u32` is the rule id.
    Guard(u32),
}

/// A digram hash key: the payloads of two adjacent non-guard symbols.
type DigramKey = (Payload, Payload);

#[derive(Debug, Clone)]
struct Node {
    prev: NodeId,
    next: NodeId,
    payload: Payload,
    alive: bool,
}

#[derive(Debug, Clone)]
struct RuleData {
    guard: NodeId,
    /// Number of non-terminal symbols referencing this rule.
    refcount: u32,
    alive: bool,
}

/// Incremental SEQUITUR grammar builder.
///
/// Feed the input with [`push`](Sequitur::push), then call
/// [`into_grammar`](Sequitur::into_grammar) to obtain the final, immutable
/// [`Grammar`].
///
/// The digram index defaults to the in-tree seedless
/// [`FxBuildHasher`]: digram keys are simulator-generated integers (never
/// attacker-controlled), the index is probed on every pushed symbol, and
/// a seedless hash keeps index behavior identical across processes. The
/// hasher is a type parameter only so differential tests can pin the
/// grammar against a [`std::collections::hash_map::RandomState`] build —
/// the produced grammar never depends on hash order (see
/// [`with_hasher`](Sequitur::with_hasher)).
#[derive(Debug, Clone, Default)]
pub struct Sequitur<H: BuildHasher = FxBuildHasher> {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    rules: Vec<RuleData>,
    index: HashMap<DigramKey, NodeId, H>,
    input_len: u64,
}

impl Sequitur {
    /// Creates a builder with an empty root rule.
    pub fn new() -> Self {
        Self::with_hasher()
    }

    /// Creates a builder with node capacity preallocated for an input of
    /// roughly `len` symbols.
    pub fn with_capacity(len: usize) -> Self {
        let mut s = Self::new();
        s.nodes.reserve(len + len / 2);
        s.index.reserve(len);
        s
    }
}

impl<H: BuildHasher + Default> Sequitur<H> {
    /// Creates a builder whose digram index hashes with `H`.
    ///
    /// The grammar SEQUITUR produces is a function of the input alone —
    /// the index only answers exact-match digram lookups, never drives
    /// iteration — so any two hashers must yield identical grammars.
    /// Differential tests instantiate this with `RandomState` to prove
    /// the default [`FxBuildHasher`] swap changed nothing.
    pub fn with_hasher() -> Self {
        let mut s = Sequitur {
            nodes: Vec::new(),
            free: Vec::new(),
            rules: Vec::new(),
            index: HashMap::default(),
            input_len: 0,
        };
        s.new_rule(); // rule 0 = root
        s
    }
}

impl<H: BuildHasher> Sequitur<H> {
    /// Number of symbols pushed so far.
    pub fn input_len(&self) -> u64 {
        self.input_len
    }

    /// Current number of entries in the digram hash index.
    pub fn digram_index_len(&self) -> usize {
        self.index.len()
    }

    /// Rules ever created (including the root and rules later deleted
    /// by the utility constraint).
    pub fn rules_created(&self) -> usize {
        self.rules.len()
    }

    /// Rules currently alive (including the root).
    pub fn live_rules(&self) -> usize {
        self.rules.iter().filter(|r| r.alive).count()
    }

    /// Size of the symbol-node arena, live and freed slots together —
    /// the builder's peak memory footprint in nodes.
    pub fn node_arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Appends one input symbol, restoring both grammar invariants.
    pub fn push(&mut self, symbol: u64) {
        self.input_len += 1;
        let node = self.alloc(Payload::Terminal(symbol));
        let root_guard = self.rules[0].guard;
        let last = self.nodes[root_guard as usize].prev;
        self.insert_after(last, node);
        let prev = self.nodes[node as usize].prev;
        if prev != root_guard {
            self.check(prev);
        }
    }

    /// Appends every symbol of `input`.
    pub fn extend<I: IntoIterator<Item = u64>>(&mut self, input: I) {
        for s in input {
            self.push(s);
        }
    }

    /// Consumes the builder and produces the final immutable grammar with
    /// contiguously renumbered rules (root first).
    pub fn into_grammar(self) -> Grammar {
        self.grammar()
    }

    /// Snapshots the current grammar without consuming the builder, with
    /// contiguously renumbered rules (root first).
    ///
    /// This is what lets `tempstream-serve` answer stream queries from a
    /// live, still-growing builder: the snapshot over the first `n`
    /// pushed symbols is identical to `into_grammar()` on a fresh
    /// builder fed the same `n` symbols, because SEQUITUR is an online
    /// algorithm whose state depends only on the input prefix.
    pub fn grammar(&self) -> Grammar {
        // Map live internal rule ids -> contiguous output ids, root first.
        let mut mapping: Vec<Option<RuleId>> = vec![None; self.rules.len()];
        let mut next = 0usize;
        for (i, r) in self.rules.iter().enumerate() {
            if r.alive {
                mapping[i] = Some(RuleId::new(next));
                next += 1;
            }
        }
        let mut bodies: Vec<Vec<GrammarSymbol>> = Vec::with_capacity(next);
        for (i, r) in self.rules.iter().enumerate() {
            if !r.alive {
                continue;
            }
            let mut body = Vec::new();
            let mut cur = self.nodes[r.guard as usize].next;
            while cur != r.guard {
                let n = &self.nodes[cur as usize];
                body.push(match n.payload {
                    Payload::Terminal(t) => GrammarSymbol::Terminal(t),
                    Payload::NonTerminal(rid) => {
                        GrammarSymbol::Rule(mapping[rid as usize].expect("reference to dead rule"))
                    }
                    Payload::Guard(_) => unreachable!("guard inside rule body"),
                });
                cur = n.next;
            }
            bodies.push(body);
            debug_assert_eq!(mapping[i], Some(RuleId::new(bodies.len() - 1)));
        }
        Grammar::from_bodies(bodies)
    }

    // --- node & rule management ------------------------------------------

    fn alloc(&mut self, payload: Payload) -> NodeId {
        if let Payload::NonTerminal(r) = payload {
            self.rules[r as usize].refcount += 1;
        }
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = Node {
                prev: NIL,
                next: NIL,
                payload,
                alive: true,
            };
            id
        } else {
            let id = u32::try_from(self.nodes.len()).expect("node arena overflow");
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                payload,
                alive: true,
            });
            id
        }
    }

    fn new_rule(&mut self) -> u32 {
        let rule_id = u32::try_from(self.rules.len()).expect("rule id overflow");
        let guard = self.alloc(Payload::Guard(rule_id));
        // The guard closes the circular list on itself while the body is
        // empty.
        self.nodes[guard as usize].prev = guard;
        self.nodes[guard as usize].next = guard;
        self.rules.push(RuleData {
            guard,
            refcount: 0,
            alive: true,
        });
        rule_id
    }

    fn node(&self, id: NodeId) -> &Node {
        let n = &self.nodes[id as usize];
        debug_assert!(n.alive, "access to freed node {id}");
        n
    }

    /// The digram key starting at `first`, or `None` if either symbol is a
    /// guard.
    fn digram_key(&self, first: NodeId) -> Option<DigramKey> {
        let n = self.node(first);
        if matches!(n.payload, Payload::Guard(_)) {
            return None;
        }
        let second = self.node(n.next);
        if matches!(second.payload, Payload::Guard(_)) {
            return None;
        }
        Some((n.payload, second.payload))
    }

    /// Removes the digram starting at `first` from the index, if the index
    /// entry points at `first`.
    fn delete_digram(&mut self, first: NodeId) {
        if let Some(key) = self.digram_key(first) {
            if self.index.get(&key) == Some(&first) {
                self.index.remove(&key);
            }
        }
    }

    /// Links `left -> right`, removing `left`'s old digram from the index
    /// and re-indexing overlapping digrams in runs of identical symbols.
    fn join(&mut self, left: NodeId, right: NodeId) {
        if self.nodes[left as usize].next != NIL {
            self.delete_digram(left);

            // Triple fix-ups (see canonical implementation): when digrams
            // overlap in a run of equal symbols only the later one is
            // indexed; on deletion of the later one, restore the earlier.
            let rp = self.nodes[right as usize].prev;
            let rn = self.nodes[right as usize].next;
            if rp != NIL && rn != NIL {
                let v = self.nodes[right as usize].payload;
                if !matches!(v, Payload::Guard(_))
                    && self.nodes[rp as usize].payload == v
                    && self.nodes[rn as usize].payload == v
                {
                    self.index.insert((v, v), right);
                }
            }
            let lp = self.nodes[left as usize].prev;
            let ln = self.nodes[left as usize].next;
            if lp != NIL && ln != NIL {
                let v = self.nodes[left as usize].payload;
                if !matches!(v, Payload::Guard(_))
                    && self.nodes[lp as usize].payload == v
                    && self.nodes[ln as usize].payload == v
                {
                    self.index.insert((v, v), lp);
                }
            }
        }
        self.nodes[left as usize].next = right;
        self.nodes[right as usize].prev = left;
    }

    /// Inserts `new` immediately after `node`.
    fn insert_after(&mut self, node: NodeId, new: NodeId) {
        let next = self.nodes[node as usize].next;
        self.join(new, next);
        self.join(node, new);
    }

    /// Unlinks and frees `node` (canonical symbol destructor): relinks its
    /// neighbors, removes its digram from the index, and drops a rule
    /// reference if it was a non-terminal.
    fn delete_symbol(&mut self, node: NodeId) {
        let prev = self.nodes[node as usize].prev;
        let next = self.nodes[node as usize].next;
        self.join(prev, next);
        // Own digram removal uses the *old* neighbor, which `join` left
        // intact in this node's link fields.
        self.delete_digram(node);
        if let Payload::NonTerminal(r) = self.nodes[node as usize].payload {
            self.rules[r as usize].refcount -= 1;
        }
        self.nodes[node as usize].alive = false;
        self.free.push(node);
    }

    /// Checks the digram starting at `first` against the index, performing a
    /// reduction if it already occurs elsewhere. Returns `true` if the
    /// digram was already in the index (at this or another position).
    fn check(&mut self, first: NodeId) -> bool {
        let Some(key) = self.digram_key(first) else {
            return false;
        };
        match self.index.get(&key) {
            None => {
                self.index.insert(key, first);
                false
            }
            Some(&found) => {
                // Skip self-hits and overlapping occurrences (runs like
                // "aaa", where found's second symbol is our first).
                if found != first && self.nodes[found as usize].next != first {
                    self.match_digrams(first, found);
                }
                true
            }
        }
    }

    /// Handles a repeated digram: `new_d` just formed, `found` is the
    /// indexed earlier occurrence.
    fn match_digrams(&mut self, new_d: NodeId, found: NodeId) {
        let found_prev = self.nodes[found as usize].prev;
        let found_next = self.nodes[found as usize].next;
        let found_next_next = self.nodes[found_next as usize].next;

        let rule_id;
        if let (Payload::Guard(r1), Payload::Guard(r2)) = (
            self.nodes[found_prev as usize].payload,
            self.nodes[found_next_next as usize].payload,
        ) {
            // `found`'s digram is the entire body of an existing rule:
            // reuse it.
            debug_assert_eq!(r1, r2, "rule body bounded by two different guards");
            rule_id = r1;
            self.substitute(new_d, rule_id);
        } else {
            // Create a new rule from the digram and substitute both
            // occurrences.
            rule_id = self.new_rule();
            let guard = self.rules[rule_id as usize].guard;
            let c1 = self.alloc(self.nodes[new_d as usize].payload);
            let second = self.nodes[new_d as usize].next;
            let second_payload = self.nodes[second as usize].payload;
            let last = self.nodes[guard as usize].prev;
            self.insert_after(last, c1);
            let c2 = self.alloc(second_payload);
            let last = self.nodes[guard as usize].prev;
            self.insert_after(last, c2);
            self.substitute(found, rule_id);
            self.substitute(new_d, rule_id);
            // Index the digram inside the new rule body.
            let first_body = self.nodes[guard as usize].next;
            if let Some(key) = self.digram_key(first_body) {
                self.index.insert(key, first_body);
            }
        }

        // Rule utility: if the first symbol of the (re)used rule is a
        // non-terminal whose rule is now referenced only once, inline it.
        if !self.rules[rule_id as usize].alive {
            return;
        }
        let guard = self.rules[rule_id as usize].guard;
        let first_body = self.nodes[guard as usize].next;
        if let Payload::NonTerminal(inner) = self.nodes[first_body as usize].payload {
            if self.rules[inner as usize].refcount == 1 {
                self.expand(first_body);
            }
        }
    }

    /// Replaces the digram starting at `first` with a non-terminal for
    /// `rule`, then re-checks the digrams formed on either side.
    fn substitute(&mut self, first: NodeId, rule: u32) {
        let prev = self.nodes[first as usize].prev;
        let a = self.nodes[prev as usize].next;
        self.delete_symbol(a);
        let b = self.nodes[prev as usize].next;
        self.delete_symbol(b);
        let nt = self.alloc(Payload::NonTerminal(rule));
        self.insert_after(prev, nt);
        if !self.check(prev) {
            let pn = self.nodes[prev as usize].next;
            self.check(pn);
        }
    }

    /// Rule utility repair: inlines the single-use rule referenced by the
    /// non-terminal `node` into its surrounding body and deletes the rule.
    fn expand(&mut self, node: NodeId) {
        let Payload::NonTerminal(rule) = self.nodes[node as usize].payload else {
            unreachable!("expand on non-non-terminal");
        };
        let left = self.nodes[node as usize].prev;
        let right = self.nodes[node as usize].next;
        let guard = self.rules[rule as usize].guard;
        let body_first = self.nodes[guard as usize].next;
        let body_last = self.nodes[guard as usize].prev;
        debug_assert_ne!(body_first, guard, "expanding an empty rule");

        // Remove the digram starting at `node`, splice the body in place of
        // `node`, and only then free `node` and the rule's guard (the joins
        // read through the old links, so the frees must come last).
        self.delete_digram(node);
        self.join(left, body_first);
        self.join(body_last, right);
        if let Some(key) = self.digram_key(body_last) {
            self.index.insert(key, body_last);
        }

        self.rules[rule as usize].refcount -= 1;
        debug_assert_eq!(self.rules[rule as usize].refcount, 0);
        self.nodes[node as usize].alive = false;
        self.free.push(node);
        self.nodes[guard as usize].alive = false;
        self.free.push(guard);
        self.rules[rule as usize].alive = false;
    }

    // --- verification (testing aid) --------------------------------------

    /// Exhaustively verifies both SEQUITUR invariants plus index/link/
    /// refcount consistency.
    ///
    /// Intended for tests; cost is linear in grammar size.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn verify_invariants(&self) {
        let mut digrams_seen: FxHashMap<DigramKey, (usize, usize)> = FxHashMap::default();
        let mut refcounts: Vec<u32> = vec![0; self.rules.len()];

        for (rid, rule) in self.rules.iter().enumerate() {
            if !rule.alive {
                continue;
            }
            // Walk the body; verify links and collect digrams.
            let guard = rule.guard;
            assert!(
                matches!(self.nodes[guard as usize].payload, Payload::Guard(g) if g as usize == rid),
                "rule {rid}: guard payload mismatch"
            );
            let mut cur = self.nodes[guard as usize].next;
            let mut pos = 0usize;
            let mut body_len = 0usize;
            while cur != guard {
                let n = &self.nodes[cur as usize];
                assert!(n.alive, "rule {rid}: dead node {cur} in body");
                assert_eq!(
                    self.nodes[n.next as usize].prev, cur,
                    "rule {rid}: broken back-link at node {cur}"
                );
                if let Payload::NonTerminal(r) = n.payload {
                    assert!(
                        self.rules[r as usize].alive,
                        "rule {rid}: reference to dead rule {r}"
                    );
                    refcounts[r as usize] += 1;
                }
                if let Some(key) = self.digram_key(cur) {
                    if let Some(&(orid, opos)) = digrams_seen.get(&key) {
                        // Digram uniqueness allows overlapping repetitions
                        // within a run of identical symbols (aaa): adjacent
                        // positions in the same rule.
                        let overlapping = orid == rid && (pos == opos + 1);
                        assert!(
                            overlapping,
                            "digram uniqueness violated: {key:?} at rule {orid} pos {opos} \
                             and rule {rid} pos {pos}"
                        );
                    } else {
                        digrams_seen.insert(key, (rid, pos));
                    }
                    assert!(
                        self.index.contains_key(&key),
                        "digram {key:?} (rule {rid} pos {pos}) missing from index"
                    );
                }
                cur = n.next;
                pos += 1;
                body_len += 1;
                assert!(
                    body_len <= self.nodes.len(),
                    "cycle without guard in rule {rid}"
                );
            }
            assert!(
                rid == 0 || body_len >= 2,
                "rule {rid} has body length {body_len} < 2"
            );
        }

        for (rid, rule) in self.rules.iter().enumerate() {
            if !rule.alive {
                continue;
            }
            assert_eq!(
                rule.refcount, refcounts[rid],
                "rule {rid}: stored refcount {} != actual {}",
                rule.refcount, refcounts[rid]
            );
            if rid != 0 {
                assert!(
                    rule.refcount >= 2,
                    "rule utility violated: rule {rid} referenced {} time(s)",
                    rule.refcount
                );
            }
        }

        // Every index entry must point at a live node whose current digram
        // matches its key.
        for (key, &node) in &self.index {
            let n = &self.nodes[node as usize];
            assert!(n.alive, "index entry {key:?} points at dead node {node}");
            assert_eq!(
                self.digram_key(node),
                Some(*key),
                "index entry {key:?} points at node {node} with different digram"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(input: &[u64]) -> Grammar {
        let mut s = Sequitur::new();
        for &x in input {
            s.push(x);
            s.verify_invariants();
        }
        s.into_grammar()
    }

    #[test]
    fn empty_input() {
        let g = build(&[]);
        assert_eq!(g.reconstruct(), Vec::<u64>::new());
        assert_eq!(g.rule_count(), 1);
    }

    #[test]
    fn no_repetition() {
        let g = build(&[1, 2, 3, 4, 5]);
        assert_eq!(g.reconstruct(), vec![1, 2, 3, 4, 5]);
        assert_eq!(g.rule_count(), 1);
    }

    #[test]
    fn single_repeated_digram() {
        let g = build(&[1, 2, 7, 1, 2]);
        assert_eq!(g.reconstruct(), vec![1, 2, 7, 1, 2]);
        assert_eq!(g.rule_count(), 2);
    }

    #[test]
    fn repeated_triple_forms_hierarchy() {
        // "abcabc" -> root: A A, A -> a b c (via nested digram rules
        // collapsed by utility).
        let g = build(&[1, 2, 3, 1, 2, 3]);
        assert_eq!(g.reconstruct(), vec![1, 2, 3, 1, 2, 3]);
        assert_eq!(g.rule_count(), 2);
        assert_eq!(g.expansion_len(RuleId::new(1)), 3);
    }

    #[test]
    fn run_of_identical_symbols() {
        for n in 2..=40 {
            let input = vec![9u64; n];
            let g = build(&input);
            assert_eq!(g.reconstruct(), input, "aaa-run length {n}");
        }
    }

    #[test]
    fn alternation() {
        let input: Vec<u64> = (0..40).map(|i| (i % 2) as u64).collect();
        let g = build(&input);
        assert_eq!(g.reconstruct(), input);
    }

    #[test]
    fn canonical_paper_example() {
        // From Nevill-Manning & Witten: "abcdbcabcdbc".
        let input: Vec<u64> = "abcdbcabcdbc".bytes().map(u64::from).collect();
        let g = build(&input);
        assert_eq!(g.reconstruct(), input);
        // Rules: root + "bc" + "a bc d bc" (exact count depends on utility
        // collapsing; reconstruction is the hard guarantee).
        assert!(g.rule_count() >= 3);
    }

    #[test]
    fn triple_overlap_stress() {
        // The comment in the canonical source cites "abbbabcbb".
        let input: Vec<u64> = "abbbabcbb".bytes().map(u64::from).collect();
        let g = build(&input);
        assert_eq!(g.reconstruct(), input);
    }

    #[test]
    fn long_periodic_input() {
        let pattern = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let input: Vec<u64> = pattern.iter().cycle().take(800).copied().collect();
        let g = build(&input);
        assert_eq!(g.reconstruct(), input);
        // High compression: few root symbols relative to input.
        assert!(g.rule_body(RuleId::ROOT).len() < 50);
    }

    #[test]
    fn size_accessors_track_construction() {
        let mut s = Sequitur::new();
        assert_eq!(s.digram_index_len(), 0);
        assert_eq!(s.rules_created(), 1);
        assert_eq!(s.live_rules(), 1);
        s.extend([1, 2, 7, 1, 2]);
        assert!(s.digram_index_len() >= 1);
        assert_eq!(s.rules_created(), 2);
        assert_eq!(s.live_rules(), 2);
        assert!(s.node_arena_len() >= 5);
    }

    #[test]
    fn extend_matches_push() {
        let mut a = Sequitur::new();
        a.extend([1, 2, 1, 2, 3]);
        let mut b = Sequitur::new();
        for x in [1, 2, 1, 2, 3] {
            b.push(x);
        }
        assert_eq!(a.input_len(), b.input_len());
        assert_eq!(
            a.into_grammar().reconstruct(),
            b.into_grammar().reconstruct()
        );
    }

    #[test]
    fn live_snapshot_matches_fresh_builder_per_prefix() {
        // The serve-crate contract: grammar() over the first n symbols
        // equals into_grammar() of a fresh builder fed the same prefix.
        let pattern = [7u64, 3, 7, 3, 9, 7, 3, 1, 2, 1, 2];
        let input: Vec<u64> = pattern.iter().cycle().take(120).copied().collect();
        let mut live = Sequitur::new();
        for (n, &sym) in input.iter().enumerate() {
            live.push(sym);
            if n % 17 == 0 {
                let snap = live.grammar();
                let mut fresh = Sequitur::new();
                fresh.extend(input[..=n].iter().copied());
                let batch = fresh.into_grammar();
                assert_eq!(snap.reconstruct(), input[..=n]);
                assert_eq!(snap.rule_count(), batch.rule_count(), "prefix {n}");
                for r in 0..snap.rule_count() {
                    assert_eq!(
                        snap.rule_body(RuleId::new(r)),
                        batch.rule_body(RuleId::new(r)),
                        "prefix {n} rule {r}"
                    );
                }
            }
        }
        // And the final snapshot equals the consuming conversion.
        let snap = live.grammar();
        let whole = live.into_grammar();
        assert_eq!(snap.rule_count(), whole.rule_count());
        assert_eq!(snap.reconstruct(), whole.reconstruct());
    }
}
