//! Grammar statistics: structural summaries of a finished SEQUITUR run.

use crate::grammar::{Grammar, GrammarSymbol, RuleId};
use std::fmt;

/// Structural summary of a grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarStats {
    /// Rules including the root.
    pub rule_count: usize,
    /// Symbols across all rule bodies (compressed size).
    pub grammar_size: usize,
    /// Terminals the root expands to (input length).
    pub input_len: u64,
    /// Longest rule expansion (excluding the root).
    pub max_expansion: u64,
    /// Deepest rule nesting (root at depth 0).
    pub max_depth: u32,
    /// Distinct terminal symbols.
    pub alphabet: usize,
}

impl GrammarStats {
    /// Computes the summary in one pass over the grammar.
    pub fn of(grammar: &Grammar) -> Self {
        let mut alphabet = std::collections::HashSet::new();
        let mut max_expansion = 0;
        for rule in grammar.rule_ids() {
            if !rule.is_root() {
                max_expansion = max_expansion.max(grammar.expansion_len(rule));
            }
            for sym in grammar.rule_body(rule) {
                if let GrammarSymbol::Terminal(t) = sym {
                    alphabet.insert(*t);
                }
            }
        }
        GrammarStats {
            rule_count: grammar.rule_count(),
            grammar_size: grammar.grammar_size(),
            input_len: grammar.expansion_len(RuleId::ROOT),
            max_expansion,
            max_depth: depth_of(grammar),
            alphabet: alphabet.len(),
        }
    }

    /// Compression ratio (input length over grammar size).
    pub fn compression_ratio(&self) -> f64 {
        tempstream_obsv::frac(self.input_len, self.grammar_size as u64)
    }

    /// Writes the summary into `registry` as gauges under `prefix`
    /// (e.g. `sequitur`). Gauges take the maximum across exports, so
    /// after a multi-workload run they describe the largest grammar.
    pub fn export(&self, registry: &tempstream_obsv::Registry, prefix: &str) {
        registry
            .gauge(&format!("{prefix}/rules"))
            .set_max(self.rule_count as u64);
        registry
            .gauge(&format!("{prefix}/grammar_size"))
            .set_max(self.grammar_size as u64);
        registry
            .gauge(&format!("{prefix}/input_len"))
            .set_max(self.input_len);
        registry
            .gauge(&format!("{prefix}/max_expansion"))
            .set_max(self.max_expansion);
        registry
            .gauge(&format!("{prefix}/max_depth"))
            .set_max(u64::from(self.max_depth));
        registry
            .gauge(&format!("{prefix}/alphabet"))
            .set_max(self.alphabet as u64);
    }
}

impl fmt::Display for GrammarStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rules / {} symbols over {} input terminals \
             ({:.2}x compression), max expansion {}, depth {}, alphabet {}",
            self.rule_count,
            self.grammar_size,
            self.input_len,
            self.compression_ratio(),
            self.max_expansion,
            self.max_depth,
            self.alphabet
        )
    }
}

/// Maximum nesting depth of rule references (root = 0). Iterative
/// (memoized) to handle deep hierarchies.
fn depth_of(grammar: &Grammar) -> u32 {
    let n = grammar.rule_count();
    let mut depth: Vec<Option<u32>> = vec![None; n];
    let mut stack: Vec<(usize, bool)> = vec![(RuleId::ROOT.index(), false)];
    while let Some((r, expanded)) = stack.pop() {
        if depth[r].is_some() {
            continue;
        }
        if expanded {
            let mut d = 0;
            for sym in grammar.rule_body(RuleId::new(r)) {
                if let GrammarSymbol::Rule(sub) = sym {
                    d = d.max(1 + depth[sub.index()].expect("children resolved"));
                }
            }
            depth[r] = Some(d);
        } else {
            stack.push((r, true));
            for sym in grammar.rule_body(RuleId::new(r)) {
                if let GrammarSymbol::Rule(sub) = sym {
                    if depth[sub.index()].is_none() {
                        stack.push((sub.index(), false));
                    }
                }
            }
        }
    }
    depth[RuleId::ROOT.index()].unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sequitur;

    fn stats_of(input: &[u64]) -> GrammarStats {
        let mut s = Sequitur::new();
        s.extend(input.iter().copied());
        GrammarStats::of(&s.into_grammar())
    }

    #[test]
    fn flat_input() {
        let s = stats_of(&[1, 2, 3, 4]);
        assert_eq!(s.rule_count, 1);
        assert_eq!(s.grammar_size, 4);
        assert_eq!(s.input_len, 4);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.max_expansion, 0);
        assert_eq!(s.alphabet, 4);
        assert!((s.compression_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_repetition_has_depth() {
        // abcabc -> rules nest at least one level.
        let s = stats_of(&[1, 2, 3, 1, 2, 3]);
        assert!(s.rule_count >= 2);
        assert!(s.max_depth >= 1);
        assert_eq!(s.input_len, 6);
        assert_eq!(s.max_expansion, 3);
        assert_eq!(s.alphabet, 3);
    }

    #[test]
    fn high_compression_on_periodic_input() {
        let input: Vec<u64> = [7u64, 8, 9, 10].repeat(64);
        let s = stats_of(&input);
        assert!(
            s.compression_ratio() > 5.0,
            "ratio {:.2}",
            s.compression_ratio()
        );
        assert!(s.max_depth >= 2);
    }

    #[test]
    fn display_is_informative() {
        let s = stats_of(&[1, 2, 1, 2]);
        let text = s.to_string();
        assert!(text.contains("rules"));
        assert!(text.contains("compression"));
    }

    #[test]
    fn empty_input_stats() {
        let s = stats_of(&[]);
        assert_eq!(s.input_len, 0);
        assert_eq!(s.compression_ratio(), 0.0);
    }

    #[test]
    fn export_populates_registry() {
        let s = stats_of(&[1, 2, 3, 1, 2, 3]);
        let r = tempstream_obsv::Registry::new();
        s.export(&r, "sequitur");
        assert_eq!(r.gauge("sequitur/input_len").get(), 6);
        assert!(r.gauge("sequitur/rules").get() >= 2);
        assert_eq!(r.gauge("sequitur/alphabet").get(), 3);
        // Gauges keep the maximum across exports.
        stats_of(&[1, 2]).export(&r, "sequitur");
        assert_eq!(r.gauge("sequitur/input_len").get(), 6);
    }
}
