//! SEQUITUR hierarchical grammar inference.
//!
//! SEQUITUR (Nevill-Manning & Witten, JAIR 1997) incrementally builds a
//! context-free grammar whose production rules correspond to repeated
//! subsequences of its input. The paper uses it to identify *temporal
//! streams*: every non-root rule of the final grammar is a distinct miss
//! sequence that occurred at least twice.
//!
//! The algorithm maintains two invariants as each symbol is appended:
//!
//! 1. **digram uniqueness** — no pair of adjacent symbols appears more than
//!    once in the grammar; a repeated digram is replaced by a rule.
//! 2. **rule utility** — every rule (except the root) is referenced at least
//!    twice; a rule reduced to one use is inlined and deleted.
//!
//! # Example
//!
//! ```
//! use tempstream_sequitur::Sequitur;
//!
//! let mut s = Sequitur::new();
//! for sym in [1u64, 2, 3, 1, 2, 3] {
//!     s.push(sym);
//! }
//! let g = s.into_grammar();
//! assert_eq!(g.reconstruct(), vec![1, 2, 3, 1, 2, 3]);
//! assert_eq!(g.rule_count(), 2); // the root plus one rule for "1 2 3"
//! ```

mod builder;
mod grammar;
pub mod stats;

pub use builder::Sequitur;
pub use grammar::{Grammar, GrammarSymbol, RuleId};
pub use stats::GrammarStats;
