//! Property-based tests of the memory-system simulators over random
//! access streams.

use proptest::prelude::*;
use tempstream_coherence::{MultiChipConfig, MultiChipSim, SingleChipConfig, SingleChipSim};
use tempstream_trace::{
    AccessKind, Address, CpuId, FunctionId, IntraChipClass, MemoryAccess, MissClass, ThreadId,
};

/// A compact random-access description: (kind, cpu, block).
type Op = (u8, u8, u64);

fn to_access(op: Op, cpus: u32) -> MemoryAccess {
    let (kind, cpu, block) = op;
    let cpu = u32::from(cpu) % cpus;
    let kind = match kind % 8 {
        0..=3 => AccessKind::Read,
        4 | 5 => AccessKind::Write,
        6 => AccessKind::DmaWrite,
        _ => AccessKind::CopyoutWrite,
    };
    MemoryAccess::new(
        Address::new(block * 64),
        kind,
        CpuId::new(cpu),
        ThreadId::new(cpu),
        FunctionId::new(0),
    )
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..8, 0u8..4, 0u64..200), 0..600)
}

proptest! {
    /// The single-chip system never reports a (non-I/O) coherence miss off
    /// chip, for any access stream.
    #[test]
    fn single_chip_has_no_off_chip_coherence(ops in ops_strategy()) {
        let mut sim = SingleChipSim::new(SingleChipConfig::small(4));
        for op in &ops {
            sim.access(&to_access(*op, 4));
        }
        let t = sim.finish(1);
        prop_assert!(t
            .off_chip
            .records()
            .iter()
            .all(|r| r.class != MissClass::Coherence));
    }

    /// Every off-chip miss of the single-chip system also appears as an
    /// `OffChip` intra-chip record; intra-chip misses are a superset.
    #[test]
    fn intra_chip_superset_of_off_chip(ops in ops_strategy()) {
        let mut sim = SingleChipSim::new(SingleChipConfig::small(4));
        for op in &ops {
            sim.access(&to_access(*op, 4));
        }
        let t = sim.finish(1);
        let intra_offchip = t
            .intra_chip
            .records()
            .iter()
            .filter(|r| r.class == IntraChipClass::OffChip)
            .count();
        prop_assert_eq!(intra_offchip, t.off_chip.len());
        prop_assert!(t.intra_chip.len() >= t.off_chip.len());
    }

    /// Two consecutive reads by the same cpu to the same block never miss
    /// twice in a row (the first fill must stick until something else
    /// intervenes).
    #[test]
    fn back_to_back_reads_hit(block in 0u64..1000, cpu in 0u32..4) {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
        let a = MemoryAccess::read(
            Address::new(block * 64),
            CpuId::new(cpu),
            FunctionId::new(0),
        );
        sim.access(&a);
        let before = sim.miss_count();
        sim.access(&a);
        prop_assert_eq!(sim.miss_count(), before);
    }

    /// The first read miss of any block is Compulsory unless a processor
    /// wrote it first.
    #[test]
    fn first_read_classification(ops in ops_strategy()) {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
        let mut cpu_written: std::collections::HashSet<u64> = Default::default();
        let mut read_blocks: std::collections::HashSet<u64> = Default::default();
        let mut io_written: std::collections::HashSet<u64> = Default::default();
        let mut firsts: Vec<(u64, bool, bool)> = Vec::new(); // block, cpu_touched, io
        for op in &ops {
            let a = to_access(*op, 4);
            let block = a.addr.block().raw();
            if a.kind == AccessKind::Read && !read_blocks.contains(&block) {
                firsts.push((
                    block,
                    cpu_written.contains(&block),
                    io_written.contains(&block),
                ));
                read_blocks.insert(block);
            }
            match a.kind {
                AccessKind::Write => {
                    cpu_written.insert(block);
                }
                AccessKind::DmaWrite | AccessKind::CopyoutWrite => {
                    io_written.insert(block);
                }
                AccessKind::Read => {}
            }
            sim.access(&a);
        }
        let trace = sim.finish(1);
        // For each block's first-ever read: find its (necessarily first)
        // trace record and check the class.
        let mut seen: std::collections::HashSet<u64> = Default::default();
        let mut first_class = std::collections::HashMap::new();
        for r in trace.records() {
            if seen.insert(r.block.raw()) {
                first_class.insert(r.block.raw(), r.class);
            }
        }
        for (block, cpu_touched, _io) in firsts {
            let Some(&class) = first_class.get(&block) else { continue };
            if !cpu_touched {
                prop_assert_eq!(
                    class,
                    MissClass::Compulsory,
                    "first read of never-cpu-written block {} must be cold",
                    block
                );
            }
        }
    }

    /// Simulators are deterministic functions of the access stream.
    #[test]
    fn simulators_are_deterministic(ops in ops_strategy()) {
        let run = |ops: &[Op]| {
            let mut m = MultiChipSim::new(MultiChipConfig::small(4));
            let mut s = SingleChipSim::new(SingleChipConfig::small(4));
            for op in ops {
                m.access(&to_access(*op, 4));
                s.access(&to_access(*op, 4));
            }
            let mt = m.finish(1);
            let st = s.finish(1);
            (
                mt.records().to_vec(),
                st.off_chip.records().to_vec(),
                st.intra_chip.records().to_vec(),
            )
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }

    /// A remote write always invalidates: the previous reader's next read
    /// of that block misses.
    #[test]
    fn write_invalidates_remote_copies(block in 0u64..100) {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
        let addr = Address::new(block * 64);
        let f = FunctionId::new(0);
        sim.access(&MemoryAccess::read(addr, CpuId::new(0), f));
        sim.access(&MemoryAccess::write(addr, CpuId::new(1), f));
        let before = sim.miss_count();
        sim.access(&MemoryAccess::read(addr, CpuId::new(0), f));
        let trace = sim.finish(1);
        prop_assert_eq!(trace.len(), before + 1, "read after remote write must miss");
        prop_assert_eq!(
            trace.records().last().unwrap().class,
            MissClass::Coherence
        );
    }

    /// Recording toggles trace capture without changing simulator state:
    /// the visible (recorded) suffix is identical whether or not a prefix
    /// was recorded.
    #[test]
    fn recording_toggle_is_transparent(ops in ops_strategy()) {
        let split = ops.len() / 2;
        let run = |record_prefix: bool| {
            let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
            sim.set_recording(record_prefix);
            for op in &ops[..split] {
                sim.access(&to_access(*op, 4));
            }
            sim.set_recording(true);
            let skip = sim.miss_count();
            for op in &ops[split..] {
                sim.access(&to_access(*op, 4));
            }
            let t = sim.finish(1);
            t.records()[skip..].to_vec()
        };
        prop_assert_eq!(run(true), run(false));
    }
}
