//! Property tests for the cache-independent miss-classification history
//! (`HistoryTracker`), driven by seeded in-tree generators.
//!
//! Two properties anchor the paper's methodology (§4.1):
//!
//! 1. **Exactly one classification per miss** — `classify_read` is a
//!    pure, total function of the recorded history: it always returns
//!    one class, never mutates the tracker, and repeated calls agree.
//! 2. **Replay stability** — classifications are a deterministic
//!    function of the access trace: replaying the same trace through a
//!    fresh tracker reproduces the classification sequence exactly.

use tempstream_coherence::HistoryTracker;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Block, MissClass};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Read(u32, u64),
    Write(u32, u64),
    Dma(u64),
    Copyout(u64),
}

fn gen_ops(rng: &mut SmallRng, len: usize, agents: u32, block_span: u64) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let agent = rng.gen_range(0..agents);
            let block = rng.gen_range(0..block_span);
            match rng.gen_range(0..10u32) {
                0 => Op::Dma(block),
                1 => Op::Copyout(block),
                2 | 3 => Op::Write(agent, block),
                _ => Op::Read(agent, block),
            }
        })
        .collect()
}

/// Replays `ops`, classifying before every read, and returns the
/// classification sequence.
fn replay(tracker: &mut HistoryTracker, ops: &[Op]) -> Vec<MissClass> {
    let mut classes = Vec::new();
    for op in ops {
        match *op {
            Op::Read(a, b) => {
                classes.push(tracker.classify_read(a, Block::new(b)));
                tracker.record_read(a, Block::new(b));
            }
            Op::Write(a, b) => tracker.record_write(a, Block::new(b)),
            Op::Dma(b) => tracker.record_dma_write(Block::new(b)),
            Op::Copyout(b) => tracker.record_copyout_write(Block::new(b)),
        }
    }
    classes
}

#[test]
fn every_miss_gets_exactly_one_stable_classification() {
    let mut rng = SmallRng::seed_from_u64(0x4115_7001);
    for _ in 0..64 {
        let agents = rng.gen_range(1..=8u32);
        let ops = gen_ops(&mut rng, 300, agents, 40);
        let mut tracker = HistoryTracker::new(agents);
        for op in &ops {
            if let Op::Read(a, b) = *op {
                let block = Block::new(b);
                let footprint = tracker.footprint_blocks();
                let first = tracker.classify_read(a, block);
                let second = tracker.classify_read(a, block);
                // One class, agreed upon across calls, with no mutation.
                assert_eq!(first, second, "classification must be pure");
                assert_eq!(
                    tracker.footprint_blocks(),
                    footprint,
                    "classify_read must not record history"
                );
            }
            match *op {
                Op::Read(a, b) => tracker.record_read(a, Block::new(b)),
                Op::Write(a, b) => tracker.record_write(a, Block::new(b)),
                Op::Dma(b) => tracker.record_dma_write(Block::new(b)),
                Op::Copyout(b) => tracker.record_copyout_write(Block::new(b)),
            }
        }
    }
}

#[test]
fn classification_is_stable_under_trace_replay() {
    let mut rng = SmallRng::seed_from_u64(0x4115_7002);
    for _ in 0..64 {
        let agents = rng.gen_range(1..=8u32);
        let ops = gen_ops(&mut rng, 400, agents, 60);
        let a = replay(&mut HistoryTracker::new(agents), &ops);
        let b = replay(&mut HistoryTracker::new(agents), &ops);
        assert_eq!(a, b, "same trace must classify identically");
    }
}

#[test]
fn first_processor_touch_is_always_compulsory() {
    let mut rng = SmallRng::seed_from_u64(0x4115_7003);
    for _ in 0..32 {
        let ops = gen_ops(&mut rng, 300, 4, 50);
        let mut tracker = HistoryTracker::new(4);
        // Blocks no processor has loaded or stored yet.
        let mut touched = std::collections::HashSet::new();
        for op in &ops {
            if let Op::Read(a, b) = *op {
                if !touched.contains(&b) {
                    assert_eq!(
                        tracker.classify_read(a, Block::new(b)),
                        MissClass::Compulsory,
                        "first processor touch of block {b}"
                    );
                }
            }
            match *op {
                Op::Read(a, b) => {
                    tracker.record_read(a, Block::new(b));
                    touched.insert(b);
                }
                Op::Write(a, b) => {
                    tracker.record_write(a, Block::new(b));
                    touched.insert(b);
                }
                // Device writes alone do not make a block processor-
                // accessed (its first read stays compulsory).
                Op::Dma(b) => tracker.record_dma_write(Block::new(b)),
                Op::Copyout(b) => tracker.record_copyout_write(Block::new(b)),
            }
        }
    }
}

#[test]
fn last_writer_never_classifies_as_coherence() {
    let mut rng = SmallRng::seed_from_u64(0x4115_7004);
    for _ in 0..32 {
        let ops = gen_ops(&mut rng, 400, 6, 30);
        let mut tracker = HistoryTracker::new(6);
        let mut last_writer: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for op in &ops {
            match *op {
                Op::Read(a, b) => {
                    let class = tracker.classify_read(a, Block::new(b));
                    if last_writer.get(&b) == Some(&a) {
                        assert_ne!(
                            class,
                            MissClass::Coherence,
                            "agent {a} wrote block {b} last; its own miss cannot be coherence"
                        );
                    }
                    tracker.record_read(a, Block::new(b));
                }
                Op::Write(a, b) => {
                    tracker.record_write(a, Block::new(b));
                    last_writer.insert(b, a);
                }
                Op::Dma(b) | Op::Copyout(b) => {
                    tracker.record_dma_write(Block::new(b));
                    last_writer.remove(&b);
                }
            }
        }
    }
}

#[test]
fn io_write_invalidates_every_reader() {
    // After a DMA or copyout write to a processor-accessed block, every
    // agent's next miss on it is IoCoherence until that agent re-reads.
    let mut rng = SmallRng::seed_from_u64(0x4115_7005);
    for _ in 0..32 {
        let agents = rng.gen_range(2..=6u32);
        let mut tracker = HistoryTracker::new(agents);
        let block = Block::new(rng.gen_range(0..100u64));
        tracker.record_read(rng.gen_range(0..agents), block);
        if rng.gen_ratio(1, 2) {
            tracker.record_dma_write(block);
        } else {
            tracker.record_copyout_write(block);
        }
        for a in 0..agents {
            assert_eq!(tracker.classify_read(a, block), MissClass::IoCoherence);
        }
        let reader = rng.gen_range(0..agents);
        tracker.record_read(reader, block);
        assert_eq!(tracker.classify_read(reader, block), MissClass::Replacement);
        for a in (0..agents).filter(|&a| a != reader) {
            assert_eq!(tracker.classify_read(a, block), MissClass::IoCoherence);
        }
    }
}
