//! Protocol-activity tallies shared by both simulators.
//!
//! The simulators are single-threaded on their hot path, so these are
//! plain `u64` fields bumped inline; [`export`](CoherenceEvents::export)
//! copies them into an observability registry at the end of a run.

use tempstream_obsv::Registry;

/// Counts of coherence-protocol activity observed during a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceEvents {
    /// Remote copies invalidated by writes.
    pub invalidations: u64,
    /// Dirty victims written back on eviction.
    pub writebacks: u64,
    /// Misses supplied by a remote/peer cache instead of memory.
    pub supplies: u64,
    /// DMA/copy-out invalidation rounds.
    pub io_invalidates: u64,
}

impl CoherenceEvents {
    /// Adds the counts to `registry` under `{prefix}/events/...`.
    pub fn export(&self, registry: &Registry, prefix: &str) {
        registry
            .counter(&format!("{prefix}/events/invalidations"))
            .add(self.invalidations);
        registry
            .counter(&format!("{prefix}/events/writebacks"))
            .add(self.writebacks);
        registry
            .counter(&format!("{prefix}/events/supplies"))
            .add(self.supplies);
        registry
            .counter(&format!("{prefix}/events/io_invalidates"))
            .add(self.io_invalidates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_writes_all_four_counters() {
        let r = Registry::new();
        let e = CoherenceEvents {
            invalidations: 3,
            writebacks: 2,
            supplies: 1,
            io_invalidates: 4,
        };
        e.export(&r, "sim/x");
        assert_eq!(r.counter("sim/x/events/invalidations").get(), 3);
        assert_eq!(r.counter("sim/x/events/writebacks").get(), 2);
        assert_eq!(r.counter("sim/x/events/supplies").get(), 1);
        assert_eq!(r.counter("sim/x/events/io_invalidates").get(), 4);
    }
}
