//! Memory-system simulators producing the paper's classified read-miss
//! traces.
//!
//! Three *system contexts* are modeled (paper §3):
//!
//! - [`multi_chip::MultiChipSim`] — a 16-node distributed-shared-memory
//!   multiprocessor (per node: 64 KB 2-way L1, 8 MB 16-way L2, MSI
//!   write-invalidate coherence). Every local L2 miss is an **off-chip**
//!   miss.
//! - [`single_chip::SingleChipSim`] — a 4-core CMP (per core 64 KB 2-way
//!   L1, shared 8 MB 16-way L2, MOSI intra-chip protocol modeled on
//!   Piranha, non-inclusive hierarchy). It produces two traces: **off-chip**
//!   misses (L2 misses) and **intra-chip** misses (L1 misses satisfied on
//!   chip, classified by cause and responder).
//!
//! Both protocols are *declarative*: [`protocol::MSI`] and
//! [`protocol::MOSI`] express states, events, and guarded transitions as
//! static tables, and the simulators advance coherence state only through
//! the table-driven [`protocol::ProtocolEngine`]. The `tempstream-checker`
//! crate model-checks the same tables exhaustively (SWMR, single owner,
//! inclusion/non-inclusion consistency, no stuck states, total coverage),
//! and `debug_assert!` hooks in the simulators cross-check cache residency
//! against the table state on every access.
//!
//! Miss-cause classification implements the paper's "4 C's"-style rules via
//! a cache-independent [`history::HistoryTracker`]; see
//! [`MissClass`](tempstream_trace::MissClass) for the rules.

pub mod events;
pub mod history;
pub mod multi_chip;
pub mod protocol;
pub mod single_chip;

pub use events::CoherenceEvents;
pub use history::HistoryTracker;
pub use multi_chip::{MultiChipConfig, MultiChipSim};
pub use protocol::{
    Action, ApplyOutcome, Event, MosiState, MsiState, ProtocolEngine, ProtocolSpec, ProtocolState,
    Transition, MOSI, MSI,
};
pub use single_chip::{SingleChipConfig, SingleChipSim};

// The parallel runtime runs simulators on pool workers; keep the bounds
// checked here so a non-Send field is caught at its source.
tempstream_trace::assert_send_sync!(
    MultiChipConfig,
    MultiChipSim,
    SingleChipConfig,
    SingleChipSim,
    single_chip::SingleChipTraces,
);
