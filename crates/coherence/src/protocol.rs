//! Declarative coherence-protocol transition tables and the table-driven
//! engine both simulators run on.
//!
//! The MSI (multi-chip, paper §3) and MOSI (single-chip Piranha-style,
//! paper §3) protocols are expressed as *data*: per-block cache states,
//! events, and guarded transitions in [`ProtocolSpec`] tables ([`MSI`],
//! [`MOSI`]). The simulators do not hard-code any state logic — they feed
//! events into a [`ProtocolEngine`] that looks every step up in the table,
//! and they act on the returned [`Action`]s (who to invalidate, who
//! supplies data, whether a victim writes back). The `tempstream-checker`
//! crate model-checks the same tables exhaustively, so the traces the
//! paper's figures are built from and the statically verified protocol can
//! never drift apart.
//!
//! Every `(state, event)` pair is either an explicit [`Transition`] or an
//! explicit entry in [`ProtocolSpec::impossible`]; the engine panics on a
//! table hole, and the checker proves reachable executions never hit an
//! impossible pair.
//!
//! # Example
//!
//! ```
//! use tempstream_coherence::protocol::{Event, MosiState, MOSI};
//!
//! // A modified line snooped by a peer read degrades to Owned.
//! let t = MOSI.transition(MosiState::M, Event::RemoteRead).unwrap();
//! assert_eq!(t.to, MosiState::O);
//! ```

use std::fmt;
use std::hash::Hash;
use tempstream_fxhash::FxHashMap;
use tempstream_trace::Block;

/// Coherence events, from the perspective of one cache and one block.
///
/// `Local*` events are issued by the cache's own processor; `Remote*`
/// events are induced at every other cache by a peer's local event;
/// `Evict` is a capacity/conflict victimization of a *valid* line;
/// `IoInvalidate` models DMA and copyout writes that invalidate every
/// cached copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// The local processor reads the block.
    LocalRead,
    /// The local processor writes the block.
    LocalWrite,
    /// Another cache's processor reads the block.
    RemoteRead,
    /// Another cache's processor writes the block.
    RemoteWrite,
    /// The cache evicts its (valid) copy of the block.
    Evict,
    /// A DMA or copyout write invalidates every cached copy.
    IoInvalidate,
}

impl Event {
    /// Every event, in table order.
    pub const ALL: [Event; 6] = [
        Event::LocalRead,
        Event::LocalWrite,
        Event::RemoteRead,
        Event::RemoteWrite,
        Event::Evict,
        Event::IoInvalidate,
    ];
}

/// The memory-system side effect a transition demands.
///
/// The simulators translate these into cache-structure mutations; the
/// model checker translates them into ghost-state updates of the shared
/// L2 / backing memory, which is how the non-inclusion and data-loss
/// invariants are phrased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// No data movement (e.g. a remote event this cache ignores).
    None,
    /// Local access satisfied by the cache's own copy.
    Hit,
    /// Local miss: fill from a peer, the next level, or memory.
    Fill,
    /// Local write: every peer copy and any stale next-level copy is
    /// invalidated.
    InvalidateSharers,
    /// This cache supplies its (owned) data to the requester.
    SupplyToPeer,
    /// Dirty victim: the data must be written back to the next level.
    WritebackVictim,
    /// Clean victim installed in the next level (non-inclusive victim
    /// path of the single-chip hierarchy).
    InstallVictim,
    /// Copy dropped because a device overwrote the block.
    Invalidate,
}

/// One guarded row of a protocol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition<S: 'static> {
    /// State the cache holds the block in before the event.
    pub from: S,
    /// The observed event.
    pub event: Event,
    /// State after the event.
    pub to: S,
    /// Required memory-system side effect.
    pub action: Action,
}

/// A complete protocol description: states, transitions, and the
/// explicitly-impossible `(state, event)` pairs.
#[derive(Debug)]
pub struct ProtocolSpec<S: 'static> {
    /// Human-readable protocol name.
    pub name: &'static str,
    /// Every per-cache state, `initial` first.
    pub states: &'static [S],
    /// State of a block a cache has never loaded.
    pub initial: S,
    /// Every legal transition.
    pub transitions: &'static [Transition<S>],
    /// `(state, event)` pairs that must never occur in any reachable
    /// execution (the checker proves this; the engine panics on them).
    pub impossible: &'static [(S, Event)],
}

impl<S: ProtocolState> ProtocolSpec<S> {
    /// Looks up the transition for `(state, event)`, or `None` if the
    /// pair is declared impossible.
    ///
    /// # Panics
    ///
    /// Panics if the pair is neither handled nor declared impossible —
    /// a malformed table. (`tempstream-checker` verifies totality
    /// statically, so a released table never panics here.)
    pub fn transition(&self, state: S, event: Event) -> Option<&'static Transition<S>> {
        if let Some(t) = self
            .transitions
            .iter()
            .find(|t| t.from == state && t.event == event)
        {
            return Some(t);
        }
        assert!(
            self.impossible.contains(&(state, event)),
            "{} table hole: ({state:?}, {event:?}) is neither handled nor declared impossible",
            self.name
        );
        None
    }
}

/// Behavior every per-cache protocol state exposes to the generic engine
/// and checker.
pub trait ProtocolState: Copy + Eq + Hash + fmt::Debug + 'static {
    /// The cache holds a usable copy (any state but Invalid).
    fn is_valid(self) -> bool;
    /// The cache is responsible for the latest data (M or O).
    fn is_owner(self) -> bool;
    /// The cache may write without a bus transaction (M).
    fn is_writable(self) -> bool;
    /// Dense index of the state within `ProtocolSpec::states`.
    fn index(self) -> usize;
}

/// MSI per-node states of the multi-chip protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsiState {
    /// Not present in the node's hierarchy.
    I,
    /// Clean shared copy, consistent with memory.
    S,
    /// Modified: the only copy; memory is stale.
    M,
}

impl ProtocolState for MsiState {
    fn is_valid(self) -> bool {
        self != MsiState::I
    }
    fn is_owner(self) -> bool {
        self == MsiState::M
    }
    fn is_writable(self) -> bool {
        self == MsiState::M
    }
    fn index(self) -> usize {
        self as usize
    }
}

/// MOSI per-core L1 states of the single-chip (Piranha-style) protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosiState {
    /// Not present in this core's L1.
    I,
    /// Clean shared copy.
    S,
    /// Owned: dirty, shared; this L1 supplies peer reads.
    O,
    /// Modified: dirty, exclusive.
    M,
}

impl ProtocolState for MosiState {
    fn is_valid(self) -> bool {
        self != MosiState::I
    }
    fn is_owner(self) -> bool {
        matches!(self, MosiState::O | MosiState::M)
    }
    fn is_writable(self) -> bool {
        self == MosiState::M
    }
    fn index(self) -> usize {
        self as usize
    }
}

use Action::{Fill, Hit, InstallVictim, InvalidateSharers, SupplyToPeer, WritebackVictim};

macro_rules! t {
    ($from:expr, $ev:ident, $to:expr, $act:expr) => {
        Transition {
            from: $from,
            event: Event::$ev,
            to: $to,
            action: $act,
        }
    };
}

/// The multi-chip MSI write-invalidate protocol (paper §3), node
/// granularity: one state per 16-node hierarchy (L1+L2 inclusive).
///
/// A remote read of a Modified line downgrades it to Shared and writes
/// the data back, so Shared copies are always memory-consistent.
pub static MSI: ProtocolSpec<MsiState> = {
    use MsiState::{I, M, S};
    ProtocolSpec {
        name: "MSI",
        states: &[I, S, M],
        initial: I,
        transitions: &[
            t!(I, LocalRead, S, Fill),
            t!(S, LocalRead, S, Hit),
            t!(M, LocalRead, M, Hit),
            t!(I, LocalWrite, M, InvalidateSharers),
            t!(S, LocalWrite, M, InvalidateSharers),
            t!(M, LocalWrite, M, Hit),
            t!(I, RemoteRead, I, Action::None),
            t!(S, RemoteRead, S, Action::None),
            t!(M, RemoteRead, S, SupplyToPeer),
            t!(I, RemoteWrite, I, Action::None),
            t!(S, RemoteWrite, I, Action::Invalidate),
            t!(M, RemoteWrite, I, SupplyToPeer),
            t!(S, Evict, I, Action::None),
            t!(M, Evict, I, WritebackVictim),
            t!(I, IoInvalidate, I, Action::None),
            t!(S, IoInvalidate, I, Action::Invalidate),
            t!(M, IoInvalidate, I, Action::Invalidate),
        ],
        impossible: &[(I, Event::Evict)],
    }
};

/// The single-chip MOSI intra-chip protocol modeled on Piranha (paper
/// §3), core granularity: one state per L1; the shared L2 is the next
/// level.
///
/// A dirty line is supplied core-to-core on a peer read (M → O at the
/// owner); victims — clean or dirty — are installed into the
/// non-inclusive L2.
pub static MOSI: ProtocolSpec<MosiState> = {
    use MosiState::{I, M, O, S};
    ProtocolSpec {
        name: "MOSI",
        states: &[I, S, O, M],
        initial: I,
        transitions: &[
            t!(I, LocalRead, S, Fill),
            t!(S, LocalRead, S, Hit),
            t!(O, LocalRead, O, Hit),
            t!(M, LocalRead, M, Hit),
            t!(I, LocalWrite, M, InvalidateSharers),
            t!(S, LocalWrite, M, InvalidateSharers),
            t!(O, LocalWrite, M, InvalidateSharers),
            t!(M, LocalWrite, M, Hit),
            t!(I, RemoteRead, I, Action::None),
            t!(S, RemoteRead, S, Action::None),
            t!(O, RemoteRead, O, SupplyToPeer),
            t!(M, RemoteRead, O, SupplyToPeer),
            t!(I, RemoteWrite, I, Action::None),
            t!(S, RemoteWrite, I, Action::Invalidate),
            t!(O, RemoteWrite, I, SupplyToPeer),
            t!(M, RemoteWrite, I, SupplyToPeer),
            t!(S, Evict, I, InstallVictim),
            t!(O, Evict, I, WritebackVictim),
            t!(M, Evict, I, WritebackVictim),
            t!(I, IoInvalidate, I, Action::None),
            t!(S, IoInvalidate, I, Action::Invalidate),
            t!(O, IoInvalidate, I, Action::Invalidate),
            t!(M, IoInvalidate, I, Action::Invalidate),
        ],
        impossible: &[(I, Event::Evict)],
    }
};

/// Result of applying a local event: the local transition taken plus the
/// peers whose copies the event invalidated.
#[derive(Debug)]
pub struct ApplyOutcome<S: 'static> {
    /// The transition the acting cache took.
    pub local: &'static Transition<S>,
    /// Peers that went from valid to invalid (the simulator must drop
    /// their cached lines).
    pub invalidated: Vec<u32>,
    /// The peer that supplied the data, if any (it held M or O).
    pub supplier: Option<u32>,
}

/// Table-driven tracker of one protocol's per-block, per-cache states.
///
/// The engine is the *only* component that advances coherence state in
/// the simulators; every step is a table lookup, so the imperative
/// simulators cannot diverge from the checked tables.
#[derive(Debug)]
pub struct ProtocolEngine<S: ProtocolState> {
    spec: &'static ProtocolSpec<S>,
    agents: u32,
    /// Per-block agent states; absent entry = all agents in `initial`.
    /// Entries whose agents are all invalid are dropped to keep the map
    /// bounded by live sharing, not footprint.
    states: FxHashMap<Block, Vec<S>>,
}

impl<S: ProtocolState> ProtocolEngine<S> {
    /// Creates an engine for `agents` caches, all blocks Invalid.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is zero or greater than 32.
    pub fn new(spec: &'static ProtocolSpec<S>, agents: u32) -> Self {
        assert!((1..=32).contains(&agents), "agent count must be in 1..=32");
        ProtocolEngine {
            spec,
            agents,
            states: FxHashMap::default(),
        }
    }

    /// The protocol table this engine runs.
    pub fn spec(&self) -> &'static ProtocolSpec<S> {
        self.spec
    }

    /// The state `agent` holds `block` in.
    pub fn state(&self, agent: u32, block: Block) -> S {
        debug_assert!(agent < self.agents);
        self.states
            .get(&block)
            .map_or(self.spec.initial, |v| v[agent as usize])
    }

    /// The agent owning the block (M or O state), if any.
    pub fn owner(&self, block: Block) -> Option<u32> {
        let v = self.states.get(&block)?;
        v.iter().position(|s| s.is_owner()).map(|i| i as u32)
    }

    /// Whether any agent other than `agent` holds a valid copy.
    pub fn other_valid(&self, agent: u32, block: Block) -> bool {
        self.states.get(&block).is_some_and(|v| {
            v.iter()
                .enumerate()
                .any(|(i, s)| i as u32 != agent && s.is_valid())
        })
    }

    /// Number of distinct blocks with at least one valid copy.
    pub fn live_blocks(&self) -> usize {
        self.states.len()
    }

    /// Applies `event` at `agent` and the induced remote event at every
    /// other agent, all by table lookup.
    ///
    /// # Panics
    ///
    /// Panics if the table declares any implied `(state, event)` pair
    /// impossible — i.e. the simulator drove the protocol into a state
    /// the tables forbid.
    pub fn apply(&mut self, agent: u32, block: Block, event: Event) -> ApplyOutcome<S> {
        debug_assert!(agent < self.agents);
        let remote = match event {
            Event::LocalRead => Some(Event::RemoteRead),
            Event::LocalWrite => Some(Event::RemoteWrite),
            Event::Evict | Event::IoInvalidate => None,
            Event::RemoteRead | Event::RemoteWrite => {
                panic!("remote events are induced, not applied directly")
            }
        };
        let agents = self.agents as usize;
        let v = self
            .states
            .entry(block)
            .or_insert_with(|| vec![self.spec.initial; agents]);
        let local = self
            .spec
            .transition(v[agent as usize], event)
            .unwrap_or_else(|| {
                panic!(
                    "{}: ({:?}, {event:?}) at agent {agent} is declared impossible",
                    self.spec.name, v[agent as usize]
                )
            });
        v[agent as usize] = local.to;
        let mut invalidated = Vec::new();
        let mut supplier = None;
        if let Some(remote) = remote {
            for (i, s) in v.iter_mut().enumerate() {
                if i as u32 == agent {
                    continue;
                }
                let t = self
                    .spec
                    .transition(*s, remote)
                    .expect("remote events must be total over all states");
                if t.action == Action::SupplyToPeer {
                    debug_assert!(supplier.is_none(), "two suppliers for one block");
                    supplier = Some(i as u32);
                }
                if s.is_valid() && !t.to.is_valid() {
                    invalidated.push(i as u32);
                }
                *s = t.to;
            }
        }
        if v.iter().all(|s| !s.is_valid()) {
            self.states.remove(&block);
        }
        ApplyOutcome {
            local,
            invalidated,
            supplier,
        }
    }

    /// Applies an [`Event::IoInvalidate`] to every agent, returning the
    /// agents that held valid copies.
    pub fn apply_io_invalidate(&mut self, block: Block) -> Vec<u32> {
        let Some(v) = self.states.get_mut(&block) else {
            return Vec::new();
        };
        let mut dropped = Vec::new();
        for (i, s) in v.iter_mut().enumerate() {
            let t = self
                .spec
                .transition(*s, Event::IoInvalidate)
                .expect("IoInvalidate must be total over all states");
            if s.is_valid() && !t.to.is_valid() {
                dropped.push(i as u32);
            }
            *s = t.to;
        }
        if v.iter().all(|s| !s.is_valid()) {
            self.states.remove(&block);
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: Block = Block::new(7);

    #[test]
    fn tables_are_total() {
        for s in MSI.states {
            for e in Event::ALL {
                let handled = MSI.transitions.iter().any(|t| t.from == *s && t.event == e);
                let imp = MSI.impossible.contains(&(*s, e));
                assert!(handled ^ imp, "MSI ({s:?}, {e:?}) coverage");
            }
        }
        for s in MOSI.states {
            for e in Event::ALL {
                let handled = MOSI
                    .transitions
                    .iter()
                    .any(|t| t.from == *s && t.event == e);
                let imp = MOSI.impossible.contains(&(*s, e));
                assert!(handled ^ imp, "MOSI ({s:?}, {e:?}) coverage");
            }
        }
    }

    #[test]
    fn msi_write_invalidates_sharers() {
        let mut e = ProtocolEngine::new(&MSI, 4);
        e.apply(0, B, Event::LocalRead);
        e.apply(1, B, Event::LocalRead);
        let out = e.apply(2, B, Event::LocalWrite);
        assert_eq!(out.invalidated, vec![0, 1]);
        assert_eq!(e.state(2, B), MsiState::M);
        assert_eq!(e.owner(B), Some(2));
    }

    #[test]
    fn mosi_peer_read_downgrades_owner() {
        let mut e = ProtocolEngine::new(&MOSI, 4);
        e.apply(0, B, Event::LocalWrite);
        assert_eq!(e.state(0, B), MosiState::M);
        let out = e.apply(1, B, Event::LocalRead);
        assert_eq!(out.supplier, Some(0));
        assert_eq!(e.state(0, B), MosiState::O);
        assert_eq!(e.state(1, B), MosiState::S);
        assert_eq!(e.owner(B), Some(0));
    }

    #[test]
    fn owner_eviction_clears_ownership() {
        let mut e = ProtocolEngine::new(&MOSI, 2);
        e.apply(0, B, Event::LocalWrite);
        let out = e.apply(0, B, Event::Evict);
        assert_eq!(out.local.action, Action::WritebackVictim);
        assert_eq!(e.owner(B), None);
        assert_eq!(e.state(0, B), MosiState::I);
    }

    #[test]
    fn all_invalid_entries_are_dropped() {
        let mut e = ProtocolEngine::new(&MOSI, 2);
        e.apply(0, B, Event::LocalRead);
        assert_eq!(e.live_blocks(), 1);
        e.apply(0, B, Event::Evict);
        assert_eq!(e.live_blocks(), 0, "all-invalid block must be dropped");
        assert_eq!(e.apply_io_invalidate(B), Vec::<u32>::new());
    }

    #[test]
    fn io_invalidate_drops_every_copy() {
        let mut e = ProtocolEngine::new(&MSI, 3);
        e.apply(0, B, Event::LocalRead);
        e.apply(1, B, Event::LocalRead);
        assert_eq!(e.apply_io_invalidate(B), vec![0, 1]);
        assert_eq!(e.live_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn evicting_invalid_line_panics() {
        let mut e = ProtocolEngine::new(&MSI, 2);
        e.apply(0, B, Event::Evict);
    }
}
