//! The 16-node distributed-shared-memory multiprocessor model.
//!
//! Each node has a private 64 KB 2-way L1 and a private 8 MB 16-way L2; an
//! MSI write-invalidate protocol keeps them coherent (paper §3). Because
//! every cache is private to its node, every local L2 miss crosses the
//! interconnect — it is an **off-chip** miss, classified by the
//! [`HistoryTracker`] rules and appended to the output trace.

use crate::history::HistoryTracker;
use std::collections::HashMap;
use tempstream_cache::{CacheConfig, SetAssocCache};
use tempstream_trace::{
    AccessKind, Block, MemoryAccess, MissClass, MissRecord, MissTrace,
};

/// Configuration of the multi-chip system.
#[derive(Debug, Clone, Copy)]
pub struct MultiChipConfig {
    /// Number of single-processor nodes.
    pub nodes: u32,
    /// Per-node L1 data cache geometry.
    pub l1: CacheConfig,
    /// Per-node L2 cache geometry.
    pub l2: CacheConfig,
}

impl MultiChipConfig {
    /// The paper's system: 16 nodes, 64 KB 2-way L1, 8 MB 16-way L2.
    pub fn paper() -> Self {
        MultiChipConfig {
            nodes: 16,
            l1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
        }
    }

    /// A reduced-scale configuration for fast tests.
    pub fn small(nodes: u32) -> Self {
        MultiChipConfig {
            nodes,
            l1: CacheConfig::new(4 * 1024, 2),
            l2: CacheConfig::new(64 * 1024, 16),
        }
    }
}

struct Node {
    l1: SetAssocCache<()>,
    l2: SetAssocCache<()>,
}

/// Trace-driven simulator of the multi-chip system.
///
/// Feed accesses with [`access`](Self::access); collect the off-chip miss
/// trace with [`finish`](Self::finish).
///
/// # Example
///
/// ```
/// use tempstream_coherence::{MultiChipConfig, MultiChipSim};
/// use tempstream_trace::prelude::*;
///
/// let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
/// let f = FunctionId::new(0);
/// sim.access(&MemoryAccess::read(Address::new(0x100), CpuId::new(0), f));
/// sim.access(&MemoryAccess::read(Address::new(0x100), CpuId::new(0), f));
/// let trace = sim.finish(1000);
/// assert_eq!(trace.len(), 1); // second read hits in L1
/// assert_eq!(trace.records()[0].class, MissClass::Compulsory);
/// ```
pub struct MultiChipSim {
    config: MultiChipConfig,
    nodes: Vec<Node>,
    history: HistoryTracker,
    /// Performance hint: bit `n` set means node `n` *may* hold the block.
    presence: HashMap<Block, u32>,
    trace: MissTrace<MissClass>,
    recording: bool,
}

impl MultiChipSim {
    /// Creates a simulator with cold caches.
    ///
    /// # Panics
    ///
    /// Panics if `config.nodes` is zero or greater than 32.
    pub fn new(config: MultiChipConfig) -> Self {
        assert!(
            (1..=32).contains(&config.nodes),
            "node count must be in 1..=32"
        );
        MultiChipSim {
            nodes: (0..config.nodes)
                .map(|_| Node {
                    l1: SetAssocCache::new(config.l1),
                    l2: SetAssocCache::new(config.l2),
                })
                .collect(),
            history: HistoryTracker::new(config.nodes),
            presence: HashMap::new(),
            trace: MissTrace::new(config.nodes),
            recording: true,
            config,
        }
    }

    /// Enables or disables miss recording. With recording off, accesses
    /// still update caches and history (cache warmup, matching the paper's
    /// warm-before-trace methodology), but no records are appended.
    pub fn set_recording(&mut self, recording: bool) {
        self.recording = recording;
    }

    /// The system configuration.
    pub fn config(&self) -> &MultiChipConfig {
        &self.config
    }

    /// Number of off-chip read misses recorded so far.
    pub fn miss_count(&self) -> usize {
        self.trace.len()
    }

    /// Simulates one memory access.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the access names a CPU outside the
    /// configured node range.
    pub fn access(&mut self, a: &MemoryAccess) {
        let block = a.block();
        match a.kind {
            AccessKind::Read => self.read(a, block),
            AccessKind::Write => self.write(a.cpu.raw(), block),
            AccessKind::DmaWrite => {
                self.invalidate_all(block);
                self.history.record_dma_write(block);
            }
            AccessKind::CopyoutWrite => {
                self.invalidate_all(block);
                self.history.record_copyout_write(block);
            }
        }
    }

    /// Simulates every access of `iter`.
    pub fn run<'a, I: IntoIterator<Item = &'a MemoryAccess>>(&mut self, iter: I) {
        for a in iter {
            self.access(a);
        }
    }

    /// Finalizes the off-chip miss trace, attaching the instruction count
    /// over which it was collected.
    pub fn finish(mut self, instructions: u64) -> MissTrace<MissClass> {
        self.trace.set_instructions(instructions);
        self.trace
    }

    fn read(&mut self, a: &MemoryAccess, block: Block) {
        let n = a.cpu.index();
        debug_assert!(n < self.nodes.len(), "cpu {n} out of range");
        let node = &mut self.nodes[n];
        if node.l1.touch(block).is_some() {
            self.history.record_read(a.cpu.raw(), block);
            return;
        }
        if node.l2.touch(block).is_some() {
            // L2 hit: fill L1. Not an off-chip miss.
            if node.l1.insert(block, ()).is_some() {
                // L1 victim remains in (inclusive-ish) L2; nothing to do.
            }
            self.history.record_read(a.cpu.raw(), block);
            return;
        }
        // Off-chip miss: classify from history, then fill both levels.
        if self.recording {
            let class = self.history.classify_read(a.cpu.raw(), block);
            self.trace.push(MissRecord {
                block,
                cpu: a.cpu,
                thread: a.thread,
                function: a.function,
                class,
            });
        }
        node.l2.insert(block, ());
        node.l1.insert(block, ());
        *self.presence.entry(block).or_insert(0) |= 1 << n;
        self.history.record_read(a.cpu.raw(), block);
    }

    fn write(&mut self, node_id: u32, block: Block) {
        // MSI write-invalidate: remove every other node's copies.
        let mask = self.presence.get(&block).copied().unwrap_or(0);
        if mask & !(1 << node_id) != 0 {
            for n in 0..self.nodes.len() as u32 {
                if n != node_id && mask & (1 << n) != 0 {
                    self.nodes[n as usize].l1.invalidate(block);
                    self.nodes[n as usize].l2.invalidate(block);
                }
            }
        }
        // Write-allocate in the writer's hierarchy.
        let node = &mut self.nodes[node_id as usize];
        if node.l1.touch(block).is_none() {
            node.l1.insert(block, ());
        }
        if node.l2.touch(block).is_none() {
            node.l2.insert(block, ());
        }
        self.presence.insert(block, 1 << node_id);
        self.history.record_write(node_id, block);
    }

    fn invalidate_all(&mut self, block: Block) {
        if let Some(mask) = self.presence.remove(&block) {
            for n in 0..self.nodes.len() as u32 {
                if mask & (1 << n) != 0 {
                    self.nodes[n as usize].l1.invalidate(block);
                    self.nodes[n as usize].l2.invalidate(block);
                }
            }
        }
    }
}

impl tempstream_trace::sink::AccessSink for MultiChipSim {
    fn access(&mut self, access: &MemoryAccess) {
        MultiChipSim::access(self, access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Address, CpuId, FunctionId};

    fn read(cpu: u32, addr: u64) -> MemoryAccess {
        MemoryAccess::read(Address::new(addr), CpuId::new(cpu), FunctionId::new(0))
    }

    fn write(cpu: u32, addr: u64) -> MemoryAccess {
        MemoryAccess::write(Address::new(addr), CpuId::new(cpu), FunctionId::new(0))
    }

    fn dma(addr: u64) -> MemoryAccess {
        MemoryAccess::new(
            Address::new(addr),
            AccessKind::DmaWrite,
            CpuId::new(0),
            tempstream_trace::ThreadId::new(0),
            FunctionId::new(0),
        )
    }

    #[test]
    fn cold_miss_then_hits() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
        sim.access(&read(0, 0x1000));
        sim.access(&read(0, 0x1000));
        sim.access(&read(0, 0x1010)); // same block
        let t = sim.finish(100);
        assert_eq!(t.len(), 1);
        assert_eq!(t.records()[0].class, MissClass::Compulsory);
    }

    #[test]
    fn remote_write_invalidates_and_classifies_coherence() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
        sim.access(&read(0, 0x1000)); // compulsory at node 0
        sim.access(&write(1, 0x1000)); // node 1 takes ownership
        sim.access(&read(0, 0x1000)); // coherence miss at node 0
        let t = sim.finish(100);
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].class, MissClass::Coherence);
    }

    #[test]
    fn producer_reread_is_not_coherence() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
        sim.access(&write(1, 0x1000));
        sim.access(&read(1, 0x1000)); // hits: write-allocated
        let t = sim.finish(100);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn dma_invalidate_gives_io_coherence() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
        sim.access(&read(0, 0x2000));
        sim.access(&dma(0x2000));
        sim.access(&read(0, 0x2000));
        let t = sim.finish(100);
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].class, MissClass::IoCoherence);
    }

    #[test]
    fn capacity_eviction_gives_replacement() {
        // Small config: L2 = 64KB = 1024 blocks. Touch 2048 distinct blocks
        // then re-touch the first: it must have been evicted.
        let mut sim = MultiChipSim::new(MultiChipConfig::small(1));
        for i in 0..2048u64 {
            sim.access(&read(0, i * 64));
        }
        sim.access(&read(0, 0));
        let t = sim.finish(100);
        assert_eq!(t.len(), 2049);
        let last = t.records().last().unwrap();
        assert_eq!(last.class, MissClass::Replacement);
    }

    #[test]
    fn sharing_readers_all_miss_once() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
        for cpu in 0..4 {
            sim.access(&read(cpu, 0x4000));
        }
        let t = sim.finish(100);
        // One compulsory then three coherence-or-replacement misses: the
        // block was never written, so reads by other nodes are replacement
        // (remote fetch of clean data).
        assert_eq!(t.len(), 4);
        assert_eq!(t.records()[0].class, MissClass::Compulsory);
        for r in &t.records()[1..] {
            assert_eq!(r.class, MissClass::Replacement);
        }
    }

    #[test]
    fn migratory_sharing_pattern() {
        // A lock-like block bouncing between nodes: every handoff is a
        // coherence miss.
        let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
        sim.access(&write(0, 0x8000));
        for round in 1..=6u32 {
            let cpu = round % 4;
            sim.access(&read(cpu, 0x8000));
            sim.access(&write(cpu, 0x8000));
        }
        let t = sim.finish(100);
        assert_eq!(t.len(), 6);
        assert!(t.records().iter().all(|r| r.class == MissClass::Coherence));
    }

    #[test]
    fn mpki_uses_instruction_count() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(1));
        sim.access(&read(0, 0));
        let t = sim.finish(2000);
        assert!((t.misses_per_kilo_instruction() - 0.5).abs() < 1e-12);
    }
}
