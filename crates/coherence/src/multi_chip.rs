//! The 16-node distributed-shared-memory multiprocessor model.
//!
//! Each node has a private 64 KB 2-way L1 and a private 8 MB 16-way L2; an
//! MSI write-invalidate protocol keeps them coherent (paper §3). Because
//! every cache is private to its node, every local L2 miss crosses the
//! interconnect — it is an **off-chip** miss, classified by the
//! [`HistoryTracker`] rules and appended to the output trace.
//!
//! Coherence state is tracked at node granularity by a [`ProtocolEngine`]
//! running the declarative [`MSI`] table: the node hierarchy is inclusive
//! (an L2 victim back-invalidates the L1), so "node holds a valid MSI
//! state" and "block is in the node's L2" are the same predicate — which
//! the simulator `debug_assert!`s at every step. The same table is
//! model-checked exhaustively by `tempstream-checker`.

use crate::events::CoherenceEvents;
use crate::history::HistoryTracker;
use crate::protocol::{Action, Event, MsiState, ProtocolEngine, ProtocolState, MSI};
use tempstream_cache::{CacheConfig, SetAssocCache};
use tempstream_obsv::Registry;
use tempstream_trace::{AccessKind, Block, MemoryAccess, MissClass, MissRecord, MissTrace};

/// Configuration of the multi-chip system.
#[derive(Debug, Clone, Copy)]
pub struct MultiChipConfig {
    /// Number of single-processor nodes.
    pub nodes: u32,
    /// Per-node L1 data cache geometry.
    pub l1: CacheConfig,
    /// Per-node L2 cache geometry.
    pub l2: CacheConfig,
}

impl MultiChipConfig {
    /// The paper's system: 16 nodes, 64 KB 2-way L1, 8 MB 16-way L2.
    pub fn paper() -> Self {
        MultiChipConfig {
            nodes: 16,
            l1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
        }
    }

    /// A reduced-scale configuration for fast tests.
    pub fn small(nodes: u32) -> Self {
        MultiChipConfig {
            nodes,
            l1: CacheConfig::new(4 * 1024, 2),
            l2: CacheConfig::new(64 * 1024, 16),
        }
    }
}

struct Node {
    l1: SetAssocCache<()>,
    l2: SetAssocCache<()>,
}

/// Trace-driven simulator of the multi-chip system.
///
/// Feed accesses with [`access`](Self::access); collect the off-chip miss
/// trace with [`finish`](Self::finish).
///
/// # Example
///
/// ```
/// use tempstream_coherence::{MultiChipConfig, MultiChipSim};
/// use tempstream_trace::prelude::*;
///
/// let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
/// let f = FunctionId::new(0);
/// sim.access(&MemoryAccess::read(Address::new(0x100), CpuId::new(0), f));
/// sim.access(&MemoryAccess::read(Address::new(0x100), CpuId::new(0), f));
/// let trace = sim.finish(1000);
/// assert_eq!(trace.len(), 1); // second read hits in L1
/// assert_eq!(trace.records()[0].class, MissClass::Compulsory);
/// ```
pub struct MultiChipSim {
    config: MultiChipConfig,
    nodes: Vec<Node>,
    history: HistoryTracker,
    /// Per-node MSI states, advanced exclusively by the declarative
    /// [`MSI`] table. Replaces the old `presence` bitmask *hint* with
    /// exact sharer tracking: the engine observes every fill, write,
    /// eviction, and I/O invalidate as an event.
    engine: ProtocolEngine<MsiState>,
    trace: MissTrace<MissClass>,
    recording: bool,
    events: CoherenceEvents,
}

impl MultiChipSim {
    /// Creates a simulator with cold caches.
    ///
    /// # Panics
    ///
    /// Panics if `config.nodes` is zero or greater than 32.
    pub fn new(config: MultiChipConfig) -> Self {
        assert!(
            (1..=32).contains(&config.nodes),
            "node count must be in 1..=32"
        );
        MultiChipSim {
            nodes: (0..config.nodes)
                .map(|_| Node {
                    l1: SetAssocCache::new(config.l1),
                    l2: SetAssocCache::new(config.l2),
                })
                .collect(),
            history: HistoryTracker::new(config.nodes),
            engine: ProtocolEngine::new(&MSI, config.nodes),
            trace: MissTrace::new(config.nodes),
            recording: true,
            events: CoherenceEvents::default(),
            config,
        }
    }

    /// Enables or disables miss recording. With recording off, accesses
    /// still update caches and history (cache warmup, matching the paper's
    /// warm-before-trace methodology), but no records are appended.
    pub fn set_recording(&mut self, recording: bool) {
        self.recording = recording;
    }

    /// The system configuration.
    pub fn config(&self) -> &MultiChipConfig {
        &self.config
    }

    /// Number of off-chip read misses recorded so far.
    pub fn miss_count(&self) -> usize {
        self.trace.len()
    }

    /// Protocol-activity counts accumulated so far.
    pub fn events(&self) -> CoherenceEvents {
        self.events
    }

    /// Exports miss-class counters, protocol-event counters, and cache
    /// occupancy gauges into `registry` under `prefix` (e.g.
    /// `sim/apache/multi_chip`). Call before [`finish`](Self::finish).
    pub fn export_obsv(&self, registry: &Registry, prefix: &str) {
        let mut counts = [0u64; 4];
        for r in self.trace.records() {
            let i = MissClass::ALL
                .iter()
                .position(|&c| c == r.class)
                .expect("class in ALL");
            counts[i] += 1;
        }
        for (class, n) in MissClass::ALL.iter().zip(counts) {
            registry
                .counter(&format!("{prefix}/miss_class/{class:?}"))
                .add(n);
        }
        registry
            .counter(&format!("{prefix}/misses"))
            .add(self.trace.len() as u64);
        self.events.export(registry, prefix);
        let l1: u64 = self.nodes.iter().map(|n| n.l1.len() as u64).sum();
        let l2: u64 = self.nodes.iter().map(|n| n.l2.len() as u64).sum();
        registry
            .gauge(&format!("{prefix}/occupancy/l1_blocks"))
            .set(l1);
        registry
            .gauge(&format!("{prefix}/occupancy/l2_blocks"))
            .set(l2);
    }

    /// Simulates one memory access.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the access names a CPU outside the
    /// configured node range.
    pub fn access(&mut self, a: &MemoryAccess) {
        let block = a.block();
        match a.kind {
            AccessKind::Read => self.read(a, block),
            AccessKind::Write => self.write(a.cpu.raw(), block),
            AccessKind::DmaWrite => {
                self.invalidate_all(block);
                self.history.record_dma_write(block);
            }
            AccessKind::CopyoutWrite => {
                self.invalidate_all(block);
                self.history.record_copyout_write(block);
            }
        }
    }

    /// Simulates every access of `iter`.
    pub fn run<'a, I: IntoIterator<Item = &'a MemoryAccess>>(&mut self, iter: I) {
        for a in iter {
            self.access(a);
        }
    }

    /// Finalizes the off-chip miss trace, attaching the instruction count
    /// over which it was collected.
    pub fn finish(mut self, instructions: u64) -> MissTrace<MissClass> {
        self.trace.set_instructions(instructions);
        self.trace
    }

    fn read(&mut self, a: &MemoryAccess, block: Block) {
        let n = a.cpu.index();
        debug_assert!(n < self.nodes.len(), "cpu {n} out of range");
        // Differential hook: the inclusive hierarchy makes "valid MSI
        // state" and "present in L2" the same predicate.
        debug_assert_eq!(
            self.engine.state(a.cpu.raw(), block).is_valid(),
            self.nodes[n].l2.contains(block),
            "node MSI state out of sync with L2 residency"
        );
        if self.nodes[n].l1.touch(block).is_some() {
            let out = self.engine.apply(a.cpu.raw(), block, Event::LocalRead);
            debug_assert_eq!(out.local.action, Action::Hit, "L1 hit in invalid state");
            self.history.record_read(a.cpu.raw(), block);
            return;
        }
        if self.nodes[n].l2.touch(block).is_some() {
            // L2 hit: fill the L1. Not an off-chip miss. The L1 victim
            // (if any) remains in the inclusive L2 — no protocol event.
            let out = self.engine.apply(a.cpu.raw(), block, Event::LocalRead);
            debug_assert_eq!(out.local.action, Action::Hit, "L2 hit in invalid state");
            self.nodes[n].l1.insert(block, ());
            self.history.record_read(a.cpu.raw(), block);
            return;
        }
        // Off-chip miss: classify from history, then fill both levels.
        if self.recording {
            let class = self.history.classify_read(a.cpu.raw(), block);
            self.trace.push(MissRecord {
                block,
                cpu: a.cpu,
                thread: a.thread,
                function: a.function,
                class,
            });
        }
        // Table step: requester I -> S; a remote M node (if any) supplies
        // the data and downgrades to S. Its cached copies stay valid.
        let out = self.engine.apply(a.cpu.raw(), block, Event::LocalRead);
        debug_assert_eq!(out.local.action, Action::Fill);
        debug_assert!(out.invalidated.is_empty(), "a read never invalidates");
        debug_assert!(
            out.supplier
                .is_none_or(|s| self.nodes[s as usize].l2.contains(block)),
            "supplier node does not hold the block"
        );
        if out.supplier.is_some() {
            self.events.supplies += 1;
        }
        self.fill_node(n, block);
        self.history.record_read(a.cpu.raw(), block);
    }

    /// Installs `block` in node `n`'s L2 and L1, back-invalidating the L1
    /// copy of any L2 victim to preserve inclusion (the victim eviction is
    /// a protocol event of its own).
    fn fill_node(&mut self, n: usize, block: Block) {
        if let Some((victim, ())) = self.nodes[n].l2.insert(block, ()) {
            self.nodes[n].l1.invalidate(victim);
            let out = self.engine.apply(n as u32, victim, Event::Evict);
            debug_assert!(
                matches!(out.local.action, Action::None | Action::WritebackVictim),
                "L2 eviction of a valid line is silent (S) or a writeback (M)"
            );
            if out.local.action == Action::WritebackVictim {
                self.events.writebacks += 1;
            }
        }
        // The L1 victim (if any) remains in the inclusive L2.
        self.nodes[n].l1.insert(block, ());
    }

    fn write(&mut self, node_id: u32, block: Block) {
        // Table step: writer -> M; every valid remote copy is invalidated.
        let out = self.engine.apply(node_id, block, Event::LocalWrite);
        self.events.invalidations += out.invalidated.len() as u64;
        for r in &out.invalidated {
            self.nodes[*r as usize].l1.invalidate(block);
            self.nodes[*r as usize].l2.invalidate(block);
        }
        // Write-allocate in the writer's hierarchy.
        let n = node_id as usize;
        match out.local.action {
            Action::InvalidateSharers => {
                if self.nodes[n].l2.touch(block).is_none() {
                    self.fill_node(n, block);
                } else if self.nodes[n].l1.touch(block).is_none() {
                    self.nodes[n].l1.insert(block, ());
                }
            }
            Action::Hit => {
                // Write hit in M: inclusion guarantees the L2 copy.
                debug_assert!(
                    self.nodes[n].l2.contains(block),
                    "M-state write hit outside the L2"
                );
                self.nodes[n].l2.touch(block);
                if self.nodes[n].l1.touch(block).is_none() {
                    self.nodes[n].l1.insert(block, ());
                }
            }
            other => debug_assert!(false, "unexpected write action {other:?}"),
        }
        // Differential hook: nodes the table did not invalidate must not
        // hold the block.
        debug_assert!((0..self.config.nodes).all(|r| {
            r == node_id
                || out.invalidated.contains(&r)
                || !self.nodes[r as usize].l2.contains(block)
        }));
        self.history.record_write(node_id, block);
    }

    fn invalidate_all(&mut self, block: Block) {
        self.events.io_invalidates += 1;
        for r in self.engine.apply_io_invalidate(block) {
            self.nodes[r as usize].l1.invalidate(block);
            self.nodes[r as usize].l2.invalidate(block);
        }
        // Differential hook: after an I/O invalidate no node may hold the
        // block.
        debug_assert!(self
            .nodes
            .iter()
            .all(|node| !node.l1.contains(block) && !node.l2.contains(block)));
    }
}

impl tempstream_trace::sink::AccessSink for MultiChipSim {
    fn access(&mut self, access: &MemoryAccess) {
        MultiChipSim::access(self, access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Address, CpuId, FunctionId};

    fn read(cpu: u32, addr: u64) -> MemoryAccess {
        MemoryAccess::read(Address::new(addr), CpuId::new(cpu), FunctionId::new(0))
    }

    fn write(cpu: u32, addr: u64) -> MemoryAccess {
        MemoryAccess::write(Address::new(addr), CpuId::new(cpu), FunctionId::new(0))
    }

    fn dma(addr: u64) -> MemoryAccess {
        MemoryAccess::new(
            Address::new(addr),
            AccessKind::DmaWrite,
            CpuId::new(0),
            tempstream_trace::ThreadId::new(0),
            FunctionId::new(0),
        )
    }

    #[test]
    fn cold_miss_then_hits() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
        sim.access(&read(0, 0x1000));
        sim.access(&read(0, 0x1000));
        sim.access(&read(0, 0x1010)); // same block
        let t = sim.finish(100);
        assert_eq!(t.len(), 1);
        assert_eq!(t.records()[0].class, MissClass::Compulsory);
    }

    #[test]
    fn remote_write_invalidates_and_classifies_coherence() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
        sim.access(&read(0, 0x1000)); // compulsory at node 0
        sim.access(&write(1, 0x1000)); // node 1 takes ownership
        sim.access(&read(0, 0x1000)); // coherence miss at node 0
        let t = sim.finish(100);
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].class, MissClass::Coherence);
    }

    #[test]
    fn producer_reread_is_not_coherence() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
        sim.access(&write(1, 0x1000));
        sim.access(&read(1, 0x1000)); // hits: write-allocated
        let t = sim.finish(100);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn dma_invalidate_gives_io_coherence() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
        sim.access(&read(0, 0x2000));
        sim.access(&dma(0x2000));
        sim.access(&read(0, 0x2000));
        let t = sim.finish(100);
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].class, MissClass::IoCoherence);
    }

    #[test]
    fn capacity_eviction_gives_replacement() {
        // Small config: L2 = 64KB = 1024 blocks. Touch 2048 distinct blocks
        // then re-touch the first: it must have been evicted.
        let mut sim = MultiChipSim::new(MultiChipConfig::small(1));
        for i in 0..2048u64 {
            sim.access(&read(0, i * 64));
        }
        sim.access(&read(0, 0));
        let t = sim.finish(100);
        assert_eq!(t.len(), 2049);
        let last = t.records().last().unwrap();
        assert_eq!(last.class, MissClass::Replacement);
    }

    #[test]
    fn sharing_readers_all_miss_once() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
        for cpu in 0..4 {
            sim.access(&read(cpu, 0x4000));
        }
        let t = sim.finish(100);
        // One compulsory then three coherence-or-replacement misses: the
        // block was never written, so reads by other nodes are replacement
        // (remote fetch of clean data).
        assert_eq!(t.len(), 4);
        assert_eq!(t.records()[0].class, MissClass::Compulsory);
        for r in &t.records()[1..] {
            assert_eq!(r.class, MissClass::Replacement);
        }
    }

    #[test]
    fn migratory_sharing_pattern() {
        // A lock-like block bouncing between nodes: every handoff is a
        // coherence miss.
        let mut sim = MultiChipSim::new(MultiChipConfig::small(4));
        sim.access(&write(0, 0x8000));
        for round in 1..=6u32 {
            let cpu = round % 4;
            sim.access(&read(cpu, 0x8000));
            sim.access(&write(cpu, 0x8000));
        }
        let t = sim.finish(100);
        assert_eq!(t.len(), 6);
        assert!(t.records().iter().all(|r| r.class == MissClass::Coherence));
    }

    #[test]
    fn mpki_uses_instruction_count() {
        let mut sim = MultiChipSim::new(MultiChipConfig::small(1));
        sim.access(&read(0, 0));
        let t = sim.finish(2000);
        assert!((t.misses_per_kilo_instruction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn l2_eviction_back_invalidates_l1() {
        // Inclusive hierarchy: when a block leaves the L2, the L1 copy
        // goes with it, and the MSI state returns to Invalid (otherwise
        // the engine would see a stale sharer and over-invalidate).
        let mut sim = MultiChipSim::new(MultiChipConfig::small(2));
        for i in 0..2048u64 {
            sim.access(&read(0, i * 64));
        }
        // Block 0 was evicted from node 0's L2, so node 0 must be Invalid
        // in the table and a remote write finds no sharer to invalidate
        // (a stale sharer would trip the residency debug_assert on the
        // next read). The re-read still classifies as Coherence —
        // history-based classification is deliberately cache-independent.
        sim.access(&write(1, 0));
        sim.access(&read(0, 0));
        let t = sim.finish(100);
        let last = t.records().last().unwrap();
        assert_eq!(last.class, MissClass::Coherence);
    }
}
