//! The 4-core single-chip (CMP) model.
//!
//! Per-core 64 KB 2-way L1s and a shared 8 MB 16-way L2 are kept coherent
//! with a MOSI protocol modeled on Piranha (paper §3): a dirty line lives in
//! its owner's L1 and is supplied core-to-core on a peer read; the hierarchy
//! is non-inclusive (L1 victims are installed into the L2).
//!
//! All coherence-state transitions are driven by the declarative
//! [`MOSI`] table through a [`ProtocolEngine`]: the simulator feeds
//! events, acts on the returned [`Action`]s (who to invalidate, who
//! supplies, whether a victim writes back), and `debug_assert!`s that the
//! cache structures agree with the table-tracked states. The same table
//! is model-checked exhaustively by `tempstream-checker`.
//!
//! The simulator produces the paper's two traces at once:
//!
//! - **off-chip** misses — L1+L2 misses, classified at *chip* granularity
//!   (so non-I/O coherence never appears off chip, matching the paper's
//!   observation that a CMP captures all communication on chip);
//! - **intra-chip** misses — L1 misses satisfied on chip, classified by
//!   cause (core-granularity history) and responder: `Coherence:Peer-L1`,
//!   `Coherence:L2`, or `Replacement:L2`. An L1 miss that also misses the
//!   L2 appears in the intra-chip trace as `Off-chip` *and* in the off-chip
//!   trace, mirroring Figure 1 (right)'s "Off-chip" segment.

use crate::events::CoherenceEvents;
use crate::history::HistoryTracker;
use crate::protocol::{Action, Event, MosiState, ProtocolEngine, ProtocolState, MOSI};
use tempstream_cache::{CacheConfig, SetAssocCache};
use tempstream_obsv::Registry;
use tempstream_trace::{
    AccessKind, Block, IntraChipClass, MemoryAccess, MissClass, MissRecord, MissTrace,
};

/// Configuration of the single-chip system.
#[derive(Debug, Clone, Copy)]
pub struct SingleChipConfig {
    /// Number of cores.
    pub cores: u32,
    /// Per-core L1 data cache geometry.
    pub l1: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
}

impl SingleChipConfig {
    /// The paper's system: 4 cores, 64 KB 2-way L1s, shared 8 MB 16-way L2.
    pub fn paper() -> Self {
        SingleChipConfig {
            cores: 4,
            l1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
        }
    }

    /// A reduced-scale configuration for fast tests.
    pub fn small(cores: u32) -> Self {
        SingleChipConfig {
            cores,
            l1: CacheConfig::new(4 * 1024, 2),
            l2: CacheConfig::new(64 * 1024, 16),
        }
    }
}

/// Both traces produced by a single-chip simulation.
#[derive(Debug, Clone)]
pub struct SingleChipTraces {
    /// Off-chip read misses (Figure 1 left, "single-chip" bars).
    pub off_chip: MissTrace<MissClass>,
    /// Intra-chip L1 read misses (Figure 1 right).
    pub intra_chip: MissTrace<IntraChipClass>,
}

/// Trace-driven simulator of the single-chip system.
///
/// # Example
///
/// ```
/// use tempstream_coherence::{SingleChipConfig, SingleChipSim};
/// use tempstream_trace::prelude::*;
///
/// let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
/// let f = FunctionId::new(0);
/// sim.access(&MemoryAccess::write(Address::new(0x40), CpuId::new(0), f));
/// sim.access(&MemoryAccess::read(Address::new(0x40), CpuId::new(1), f));
/// let traces = sim.finish(1000);
/// // Core 1's read was supplied dirty by core 0's L1: on-chip coherence.
/// assert_eq!(traces.intra_chip.records()[0].class, IntraChipClass::CoherencePeerL1);
/// assert!(traces.off_chip.is_empty());
/// ```
pub struct SingleChipSim {
    config: SingleChipConfig,
    l1s: Vec<SetAssocCache<()>>,
    l2: SetAssocCache<()>,
    /// Per-core MOSI states, advanced exclusively by the declarative
    /// [`MOSI`] table. Ownership (M/O) queries replace the old ad-hoc
    /// `owner` map, so stale-owner bugs are structurally impossible: the
    /// engine observes every eviction and invalidation as an event.
    engine: ProtocolEngine<MosiState>,
    /// Chip-granularity history (off-chip classification).
    chip_history: HistoryTracker,
    /// Core-granularity history (intra-chip cause classification).
    core_history: HistoryTracker,
    off_chip: MissTrace<MissClass>,
    intra_chip: MissTrace<IntraChipClass>,
    recording: bool,
    events: CoherenceEvents,
}

impl SingleChipSim {
    /// Creates a simulator with cold caches.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores` is zero or greater than 32.
    pub fn new(config: SingleChipConfig) -> Self {
        assert!(
            (1..=32).contains(&config.cores),
            "core count must be in 1..=32"
        );
        SingleChipSim {
            l1s: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l1))
                .collect(),
            l2: SetAssocCache::new(config.l2),
            engine: ProtocolEngine::new(&MOSI, config.cores),
            chip_history: HistoryTracker::new(1),
            core_history: HistoryTracker::new(config.cores),
            off_chip: MissTrace::new(config.cores),
            intra_chip: MissTrace::new(config.cores),
            recording: true,
            events: CoherenceEvents::default(),
            config,
        }
    }

    /// Enables or disables miss recording. With recording off, accesses
    /// still warm caches and history but no records are appended.
    pub fn set_recording(&mut self, recording: bool) {
        self.recording = recording;
    }

    /// The system configuration.
    pub fn config(&self) -> &SingleChipConfig {
        &self.config
    }

    /// The core whose L1 owns `block` (MOSI M or O state), if any.
    ///
    /// Exposed for invariant-driven tests: the returned core's L1 always
    /// contains the block (the engine sees every eviction as an event, so
    /// ownership can never go stale).
    pub fn owner(&self, block: Block) -> Option<u32> {
        self.engine.owner(block)
    }

    /// Protocol-activity counts accumulated so far.
    pub fn events(&self) -> CoherenceEvents {
        self.events
    }

    /// Exports miss-class counters (both traces), protocol-event
    /// counters, and cache occupancy gauges into `registry` under
    /// `prefix` (e.g. `sim/apache/single_chip`). Call before
    /// [`finish`](Self::finish).
    pub fn export_obsv(&self, registry: &Registry, prefix: &str) {
        let mut off = [0u64; 4];
        for r in self.off_chip.records() {
            let i = MissClass::ALL
                .iter()
                .position(|&c| c == r.class)
                .expect("class in ALL");
            off[i] += 1;
        }
        for (class, n) in MissClass::ALL.iter().zip(off) {
            registry
                .counter(&format!("{prefix}/miss_class/{class:?}"))
                .add(n);
        }
        let mut intra = [0u64; 4];
        for r in self.intra_chip.records() {
            let i = IntraChipClass::ALL
                .iter()
                .position(|&c| c == r.class)
                .expect("class in ALL");
            intra[i] += 1;
        }
        for (class, n) in IntraChipClass::ALL.iter().zip(intra) {
            registry
                .counter(&format!("{prefix}/intra_class/{class:?}"))
                .add(n);
        }
        registry
            .counter(&format!("{prefix}/misses"))
            .add(self.off_chip.len() as u64);
        registry
            .counter(&format!("{prefix}/intra_misses"))
            .add(self.intra_chip.len() as u64);
        self.events.export(registry, prefix);
        let l1: u64 = self.l1s.iter().map(|c| c.len() as u64).sum();
        registry
            .gauge(&format!("{prefix}/occupancy/l1_blocks"))
            .set(l1);
        registry
            .gauge(&format!("{prefix}/occupancy/l2_blocks"))
            .set(self.l2.len() as u64);
    }

    /// Simulates one memory access.
    pub fn access(&mut self, a: &MemoryAccess) {
        let block = a.block();
        match a.kind {
            AccessKind::Read => self.read(a, block),
            AccessKind::Write => self.write(a.cpu.raw(), block),
            AccessKind::DmaWrite => {
                self.invalidate_chip(block);
                self.chip_history.record_dma_write(block);
                self.core_history.record_dma_write(block);
            }
            AccessKind::CopyoutWrite => {
                self.invalidate_chip(block);
                self.chip_history.record_copyout_write(block);
                self.core_history.record_copyout_write(block);
            }
        }
    }

    /// Simulates every access of `iter`.
    pub fn run<'a, I: IntoIterator<Item = &'a MemoryAccess>>(&mut self, iter: I) {
        for a in iter {
            self.access(a);
        }
    }

    /// Finalizes both traces, attaching the instruction count.
    pub fn finish(mut self, instructions: u64) -> SingleChipTraces {
        self.off_chip.set_instructions(instructions);
        self.intra_chip.set_instructions(instructions);
        SingleChipTraces {
            off_chip: self.off_chip,
            intra_chip: self.intra_chip,
        }
    }

    fn record_reads(&mut self, core: u32, block: Block) {
        self.chip_history.record_read(0, block);
        self.core_history.record_read(core, block);
    }

    fn read(&mut self, a: &MemoryAccess, block: Block) {
        let core = a.cpu.raw();
        debug_assert!((core as usize) < self.l1s.len(), "core {core} out of range");
        if self.l1s[core as usize].touch(block).is_some() {
            // Differential hook: an L1 hit must be a table-level Hit.
            let out = self.engine.apply(core, block, Event::LocalRead);
            debug_assert_eq!(out.local.action, Action::Hit, "L1 hit in invalid state");
            self.record_reads(core, block);
            return;
        }
        // Differential hook: L1 residency and table state agree.
        debug_assert!(
            !self.engine.state(core, block).is_valid(),
            "L1 miss while the table holds a valid state"
        );

        // L1 miss: classify the cause at core granularity, then find the
        // responder from the protocol state.
        let cause = self.core_history.classify_read(core, block);
        let coherence_cause = cause == MissClass::Coherence;

        let peer_owner = self.engine.owner(block);
        debug_assert!(
            peer_owner.is_none_or(|o| o != core && self.l1s[o as usize].contains(block)),
            "stale owner: table owner's L1 does not hold the block"
        );
        let in_l2 = self.l2.touch(block).is_some();
        debug_assert!(
            !(in_l2 && peer_owner.is_some_and(|o| self.engine.state(o, block).is_writable())),
            "L2 holds a copy of an M-state block"
        );
        let clean_peer = !in_l2 && peer_owner.is_none() && self.engine.other_valid(core, block);

        let on_chip = peer_owner.is_some() || in_l2 || clean_peer;
        let intra_class = if !on_chip {
            IntraChipClass::OffChip
        } else if coherence_cause {
            if peer_owner.is_some() {
                IntraChipClass::CoherencePeerL1
            } else {
                IntraChipClass::CoherenceL2
            }
        } else {
            IntraChipClass::ReplacementL2
        };
        if self.recording {
            self.intra_chip.push(MissRecord {
                block,
                cpu: a.cpu,
                thread: a.thread,
                function: a.function,
                class: intra_class,
            });
        }

        if !on_chip {
            // Off-chip miss, classified at chip granularity.
            if self.recording {
                let class = self.chip_history.classify_read(0, block);
                debug_assert_ne!(
                    class,
                    MissClass::Coherence,
                    "chip-granularity history produced an off-chip coherence miss"
                );
                self.off_chip.push(MissRecord {
                    block,
                    cpu: a.cpu,
                    thread: a.thread,
                    function: a.function,
                    class,
                });
            }
            // Fill L2 and the requesting L1.
            self.l2.insert(block, ());
        }

        // Table step: requester I -> S; a dirty peer (if any) supplies the
        // data and downgrades M -> O.
        let out = self.engine.apply(core, block, Event::LocalRead);
        debug_assert_eq!(out.local.action, Action::Fill);
        debug_assert_eq!(
            out.supplier, peer_owner,
            "table supplier disagrees with the responder used for classification"
        );
        if out.supplier.is_some() {
            self.events.supplies += 1;
        }
        // Fill the requesting L1 (data came from a peer, the L2, or
        // memory); install the L1 victim into the non-inclusive L2.
        self.fill_l1(core, block);
        self.record_reads(core, block);
    }

    fn fill_l1(&mut self, core: u32, block: Block) {
        if let Some((victim, ())) = self.l1s[core as usize].insert(block, ()) {
            // Non-inclusive hierarchy: L1 victims are installed in the L2.
            // The table decides what the eviction means: a dirty victim
            // (M/O) is written back — ownership moves to the L2 (plain
            // data in our model) — and a clean one is a victim-cache
            // install.
            let out = self.engine.apply(core, victim, Event::Evict);
            debug_assert!(
                matches!(
                    out.local.action,
                    Action::WritebackVictim | Action::InstallVictim
                ),
                "eviction of a valid line must write back or install"
            );
            if out.local.action == Action::WritebackVictim {
                self.events.writebacks += 1;
            }
            if self.l2.peek_mut(victim).is_none() {
                self.l2.insert(victim, ());
            }
        }
    }

    fn write(&mut self, core: u32, block: Block) {
        // Write-allocate: bring the line into the writer's L1 first (the
        // victim eviction is a table event of its own).
        if self.l1s[core as usize].touch(block).is_none() {
            self.fill_l1(core, block);
        }
        // Table step: writer -> M; every valid peer copy is invalidated.
        let out = self.engine.apply(core, block, Event::LocalWrite);
        self.events.invalidations += out.invalidated.len() as u64;
        for c in &out.invalidated {
            self.l1s[*c as usize].invalidate(block);
        }
        match out.local.action {
            Action::InvalidateSharers => {
                // The L2 copy (if any) is stale after the write: ownership
                // lives in the L1 (non-inclusive), so drop it.
                self.l2.invalidate(block);
            }
            Action::Hit => {
                // Write hit in M: the invariant "M implies no L2 copy"
                // makes the L2 invalidate unnecessary.
                debug_assert!(
                    !self.l2.contains(block),
                    "M-state write hit while the L2 holds a copy"
                );
            }
            other => debug_assert!(false, "unexpected write action {other:?}"),
        }
        // Differential hook: peers the table did not invalidate must not
        // hold the block.
        debug_assert!((0..self.config.cores).all(|c| {
            c == core || out.invalidated.contains(&c) || !self.l1s[c as usize].contains(block)
        }));
        self.chip_history.record_write(0, block);
        self.core_history.record_write(core, block);
    }

    fn invalidate_chip(&mut self, block: Block) {
        self.events.io_invalidates += 1;
        for c in self.engine.apply_io_invalidate(block) {
            self.l1s[c as usize].invalidate(block);
        }
        self.l2.invalidate(block);
        // Differential hook: after an I/O invalidate no L1 may hold the
        // block.
        debug_assert!((0..self.config.cores).all(|c| !self.l1s[c as usize].contains(block)));
    }
}

impl tempstream_trace::sink::AccessSink for SingleChipSim {
    fn access(&mut self, access: &MemoryAccess) {
        SingleChipSim::access(self, access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Address, CpuId, FunctionId, ThreadId};

    fn read(cpu: u32, addr: u64) -> MemoryAccess {
        MemoryAccess::read(Address::new(addr), CpuId::new(cpu), FunctionId::new(0))
    }

    fn write(cpu: u32, addr: u64) -> MemoryAccess {
        MemoryAccess::write(Address::new(addr), CpuId::new(cpu), FunctionId::new(0))
    }

    fn dma(addr: u64) -> MemoryAccess {
        MemoryAccess::new(
            Address::new(addr),
            AccessKind::DmaWrite,
            CpuId::new(0),
            ThreadId::new(0),
            FunctionId::new(0),
        )
    }

    fn copyout(addr: u64) -> MemoryAccess {
        MemoryAccess::new(
            Address::new(addr),
            AccessKind::CopyoutWrite,
            CpuId::new(0),
            ThreadId::new(0),
            FunctionId::new(0),
        )
    }

    #[test]
    fn cold_read_goes_off_chip() {
        let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
        sim.access(&read(0, 0x40));
        let t = sim.finish(100);
        assert_eq!(t.off_chip.len(), 1);
        assert_eq!(t.off_chip.records()[0].class, MissClass::Compulsory);
        assert_eq!(t.intra_chip.len(), 1);
        assert_eq!(t.intra_chip.records()[0].class, IntraChipClass::OffChip);
    }

    #[test]
    fn dirty_peer_supplies_on_chip() {
        let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
        sim.access(&write(0, 0x40));
        sim.access(&read(1, 0x40));
        let t = sim.finish(100);
        assert!(t.off_chip.is_empty(), "communication must stay on chip");
        assert_eq!(t.intra_chip.len(), 1);
        assert_eq!(
            t.intra_chip.records()[0].class,
            IntraChipClass::CoherencePeerL1
        );
    }

    #[test]
    fn l2_supplies_replacement_miss() {
        // Fill core 0's tiny L1 (4KB = 64 blocks) past capacity; re-read an
        // early block: L1 miss, L2 hit, no coherence involved.
        let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
        for i in 0..128u64 {
            sim.access(&read(0, i * 64));
        }
        sim.access(&read(0, 0));
        let t = sim.finish(100);
        let last = t.intra_chip.records().last().unwrap();
        assert_eq!(last.class, IntraChipClass::ReplacementL2);
        // Off-chip trace saw only the 128 compulsory fills.
        assert_eq!(t.off_chip.len(), 128);
    }

    #[test]
    fn coherence_after_owner_eviction_is_coherence_l2() {
        // Core 1 writes, core 1's L1 evicts the dirty block into L2; core
        // 0's subsequent read is coherence-caused but supplied by L2.
        let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
        sim.access(&read(0, 0x40)); // core 0 has read the block
        sim.access(&write(1, 0x40)); // core 1 dirties it
        for i in 1..=128u64 {
            // Evict core 1's dirty copy into the L2.
            sim.access(&read(1, 0x40 + i * 64));
        }
        sim.access(&read(0, 0x40));
        let t = sim.finish(100);
        let last = t.intra_chip.records().last().unwrap();
        assert_eq!(last.class, IntraChipClass::CoherenceL2);
        // Still nothing coherence-related off chip.
        assert!(t
            .off_chip
            .records()
            .iter()
            .all(|r| r.class != MissClass::Coherence));
    }

    #[test]
    fn off_chip_never_coherence() {
        // Random-ish mix of reads and writes by both cores over a footprint
        // larger than the small L2.
        let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
        for i in 0..4000u64 {
            let cpu = (i % 2) as u32;
            let addr = (i * 97 % 3000) * 64;
            if i % 3 == 0 {
                sim.access(&write(cpu, addr));
            } else {
                sim.access(&read(cpu, addr));
            }
        }
        let t = sim.finish(100);
        assert!(t
            .off_chip
            .records()
            .iter()
            .all(|r| r.class != MissClass::Coherence));
    }

    #[test]
    fn dma_then_read_is_io_coherence_off_chip() {
        let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
        sim.access(&read(0, 0x40));
        sim.access(&dma(0x40));
        sim.access(&read(0, 0x40));
        let t = sim.finish(100);
        assert_eq!(t.off_chip.len(), 2);
        assert_eq!(t.off_chip.records()[1].class, MissClass::IoCoherence);
    }

    #[test]
    fn copyout_then_read_is_io_coherence() {
        let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
        sim.access(&read(1, 0x80));
        sim.access(&copyout(0x80));
        sim.access(&read(1, 0x80));
        let t = sim.finish(100);
        assert_eq!(t.off_chip.records()[1].class, MissClass::IoCoherence);
    }

    #[test]
    fn l1_victims_land_in_l2() {
        let mut sim = SingleChipSim::new(SingleChipConfig::small(1));
        // Touch 65 blocks mapping everywhere; block 0 gets evicted from the
        // 64-block L1 eventually but must hit in L2.
        for i in 0..128u64 {
            sim.access(&read(0, i * 64));
        }
        sim.access(&read(0, 0));
        let t = sim.finish(100);
        assert_eq!(t.off_chip.len(), 128, "re-read must not go off chip");
    }

    #[test]
    fn write_hit_keeps_ownership() {
        let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
        sim.access(&write(0, 0x40));
        sim.access(&write(0, 0x40));
        sim.access(&read(1, 0x40));
        let t = sim.finish(100);
        assert_eq!(
            t.intra_chip.records()[0].class,
            IntraChipClass::CoherencePeerL1
        );
    }

    #[test]
    fn traces_share_instruction_count() {
        let mut sim = SingleChipSim::new(SingleChipConfig::small(1));
        sim.access(&read(0, 0));
        let t = sim.finish(5000);
        assert_eq!(t.off_chip.instructions(), 5000);
        assert_eq!(t.intra_chip.instructions(), 5000);
    }

    #[test]
    fn owner_is_never_stale_after_evictions() {
        // Regression for the stale-owner audit: drive enough traffic to
        // evict owning lines repeatedly; the table-tracked owner must
        // always point at an L1 that actually holds the block.
        let mut sim = SingleChipSim::new(SingleChipConfig::small(2));
        for i in 0..2000u64 {
            let cpu = (i % 2) as u32;
            let addr = (i * 131 % 500) * 64;
            if i % 5 == 0 {
                sim.access(&write(cpu, addr));
            } else {
                sim.access(&read(cpu, addr));
            }
            // The owner query itself debug_asserts L1 residency inside
            // read(); here we check the exposed accessor directly.
            let block = Block::new(addr / 64);
            if let Some(o) = sim.owner(block) {
                assert!((o as usize) < 2);
            }
        }
    }
}
