//! Cache-independent per-block access history for miss classification.
//!
//! The paper's classification (§4.1) is defined in terms of *history*, not
//! cache state: a miss is Coherence "if the cache block was written by
//! another processor since last read at this processor", I/O Coherence "if
//! the block was written by a DMA transfer or OS-to-user bulk memory copy",
//! and Compulsory "if the corresponding cache block has never previously
//! been accessed". [`HistoryTracker`] records exactly that per-block
//! history, parameterized by the *agent* granularity:
//!
//! - multi-chip off-chip classification: one agent per node;
//! - single-chip off-chip classification: a single agent (the chip) — which
//!   is why non-I/O coherence misses never appear off chip in a CMP;
//! - single-chip intra-chip classification: one agent per core.

use tempstream_fxhash::FxHashMap;
use tempstream_trace::{Block, MissClass};

/// The most recent writer of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Writer {
    /// A processor-agent store.
    Agent(u32),
    /// A DMA transfer from an I/O device.
    Dma,
    /// A bulk kernel-to-user copy with non-allocating stores.
    Copyout,
}

#[derive(Debug, Clone, Copy)]
struct BlockHistory {
    last_writer: Option<Writer>,
    /// Bit `a` set: agent `a` has read the block since the last write.
    read_since_write: u64,
    /// A processor has ever loaded or stored the block. Blocks only ever
    /// written by devices are still *compulsory* on first read: the
    /// paper's I/O-coherence category covers previously-used blocks
    /// invalidated by DMA or bulk copies, not first touches of fresh I/O
    /// data.
    cpu_accessed: bool,
}

/// Tracks per-block read/write history and classifies read misses.
///
/// The block map is consulted on *every* simulated access (hits
/// included), so it hashes with the in-tree seedless
/// [`FxHashMap`] — block numbers are simulator-generated, never
/// attacker-controlled, and the map is only ever probed by key, never
/// iterated, so hash order cannot leak into results.
#[derive(Debug, Clone)]
pub struct HistoryTracker {
    num_agents: u32,
    blocks: FxHashMap<Block, BlockHistory>,
}

impl HistoryTracker {
    /// Creates a tracker for `num_agents` coherence agents.
    ///
    /// # Panics
    ///
    /// Panics if `num_agents` is zero or greater than 64 (the read-bit
    /// mask width).
    pub fn new(num_agents: u32) -> Self {
        assert!(
            (1..=64).contains(&num_agents),
            "agent count must be in 1..=64"
        );
        HistoryTracker {
            num_agents,
            blocks: FxHashMap::default(),
        }
    }

    /// Number of coherence agents.
    pub fn num_agents(&self) -> u32 {
        self.num_agents
    }

    /// Number of distinct blocks ever accessed.
    pub fn footprint_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Classifies a read *miss* by `agent` to `block`.
    ///
    /// Call before [`record_read`](Self::record_read) for the same access.
    /// Classification priority: Compulsory, then I/O Coherence, then
    /// Coherence, then Replacement.
    pub fn classify_read(&self, agent: u32, block: Block) -> MissClass {
        debug_assert!(agent < self.num_agents);
        let Some(h) = self.blocks.get(&block) else {
            return MissClass::Compulsory;
        };
        if !h.cpu_accessed {
            return MissClass::Compulsory;
        }
        if h.read_since_write & (1 << agent) == 0 {
            match h.last_writer {
                Some(Writer::Dma) | Some(Writer::Copyout) => return MissClass::IoCoherence,
                Some(Writer::Agent(w)) if w != agent => return MissClass::Coherence,
                _ => {}
            }
        }
        MissClass::Replacement
    }

    /// Records a read by `agent`.
    pub fn record_read(&mut self, agent: u32, block: Block) {
        debug_assert!(agent < self.num_agents);
        let h = self.blocks.entry(block).or_insert(BlockHistory {
            last_writer: None,
            read_since_write: 0,
            cpu_accessed: false,
        });
        h.read_since_write |= 1 << agent;
        h.cpu_accessed = true;
    }

    /// Records a store by `agent`: all other agents' read marks are
    /// cleared; the writer itself holds the current data.
    pub fn record_write(&mut self, agent: u32, block: Block) {
        debug_assert!(agent < self.num_agents);
        let h = self.blocks.entry(block).or_insert(BlockHistory {
            last_writer: None,
            read_since_write: 0,
            cpu_accessed: false,
        });
        h.last_writer = Some(Writer::Agent(agent));
        h.read_since_write = 1 << agent;
        h.cpu_accessed = true;
    }

    /// Records a DMA write: every agent's read mark is cleared.
    pub fn record_dma_write(&mut self, block: Block) {
        let h = self.blocks.entry(block).or_insert(BlockHistory {
            last_writer: None,
            read_since_write: 0,
            cpu_accessed: false,
        });
        h.last_writer = Some(Writer::Dma);
        h.read_since_write = 0;
    }

    /// Records a non-allocating bulk-copy (copyout) store: every agent's
    /// read mark is cleared.
    pub fn record_copyout_write(&mut self, block: Block) {
        let h = self.blocks.entry(block).or_insert(BlockHistory {
            last_writer: None,
            read_since_write: 0,
            cpu_accessed: false,
        });
        h.last_writer = Some(Writer::Copyout);
        h.read_since_write = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: Block = Block::new(42);

    #[test]
    fn first_access_is_compulsory() {
        let t = HistoryTracker::new(4);
        assert_eq!(t.classify_read(0, B), MissClass::Compulsory);
    }

    #[test]
    fn reread_after_own_read_is_replacement() {
        let mut t = HistoryTracker::new(4);
        t.record_read(0, B);
        assert_eq!(t.classify_read(0, B), MissClass::Replacement);
    }

    #[test]
    fn remote_write_makes_coherence() {
        let mut t = HistoryTracker::new(4);
        t.record_read(0, B);
        t.record_write(1, B);
        assert_eq!(t.classify_read(0, B), MissClass::Coherence);
        // The writer itself re-reading is not a coherence miss.
        assert_eq!(t.classify_read(1, B), MissClass::Replacement);
    }

    #[test]
    fn cold_sharing_is_coherence() {
        // First access by this agent to a block another agent created is a
        // coherence miss per the paper's rule (the block *has* been
        // accessed, and was written by another processor).
        let mut t = HistoryTracker::new(4);
        t.record_write(1, B);
        assert_eq!(t.classify_read(0, B), MissClass::Coherence);
    }

    #[test]
    fn read_clears_coherence_for_that_agent_only() {
        let mut t = HistoryTracker::new(4);
        t.record_write(1, B);
        t.record_read(0, B);
        assert_eq!(t.classify_read(0, B), MissClass::Replacement);
        assert_eq!(t.classify_read(2, B), MissClass::Coherence);
    }

    #[test]
    fn dma_and_copyout_are_io_coherence() {
        let mut t = HistoryTracker::new(2);
        t.record_read(0, B);
        t.record_dma_write(B);
        assert_eq!(t.classify_read(0, B), MissClass::IoCoherence);
        t.record_read(0, B);
        t.record_copyout_write(B);
        assert_eq!(t.classify_read(0, B), MissClass::IoCoherence);
        assert_eq!(t.classify_read(1, B), MissClass::IoCoherence);
    }

    #[test]
    fn first_read_of_fresh_io_data_is_compulsory() {
        // A block only ever written by a device has never been processor-
        // accessed: its first read is a cold miss, not I/O coherence.
        let mut t = HistoryTracker::new(2);
        t.record_dma_write(B);
        assert_eq!(t.classify_read(0, B), MissClass::Compulsory);
        t.record_read(0, B);
        t.record_dma_write(B);
        assert_eq!(t.classify_read(0, B), MissClass::IoCoherence);
    }

    #[test]
    fn io_write_then_read_then_reread_is_replacement() {
        let mut t = HistoryTracker::new(2);
        t.record_dma_write(B);
        t.record_read(0, B);
        assert_eq!(t.classify_read(0, B), MissClass::Replacement);
        // Agent 1 never read since the write, and the block has been
        // processor-accessed: I/O coherence.
        assert_eq!(t.classify_read(1, B), MissClass::IoCoherence);
    }

    #[test]
    fn single_agent_never_sees_cpu_coherence() {
        // Chip-granularity classification: with one agent, only Compulsory,
        // IoCoherence, and Replacement are reachable.
        let mut t = HistoryTracker::new(1);
        assert_eq!(t.classify_read(0, B), MissClass::Compulsory);
        t.record_write(0, B);
        assert_eq!(t.classify_read(0, B), MissClass::Replacement);
        t.record_dma_write(B);
        assert_eq!(t.classify_read(0, B), MissClass::IoCoherence);
    }

    #[test]
    fn write_after_io_supersedes() {
        let mut t = HistoryTracker::new(2);
        t.record_read(0, B);
        t.record_dma_write(B);
        t.record_write(1, B);
        assert_eq!(t.classify_read(0, B), MissClass::Coherence);
    }

    #[test]
    fn footprint_counts_unique_blocks() {
        let mut t = HistoryTracker::new(2);
        t.record_read(0, Block::new(1));
        t.record_read(1, Block::new(1));
        t.record_write(0, Block::new(2));
        assert_eq!(t.footprint_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "agent count")]
    fn rejects_too_many_agents() {
        HistoryTracker::new(65);
    }
}
