//! Composition-level tests: each workload emits the activity mix its
//! paper origin table expects, with correctly stamped context.

use std::collections::HashSet;
use tempstream_trace::{AccessKind, AppClass, MemoryAccess, MissCategory};
use tempstream_workloads::{Workload, WorkloadSession};

fn collect(w: Workload, cpus: u32, ops: u64) -> (Vec<MemoryAccess>, WorkloadSession) {
    let mut out: Vec<MemoryAccess> = Vec::new();
    let mut s = WorkloadSession::new(w, cpus, 77);
    s.run(&mut out, ops);
    (out, s)
}

fn categories_of(accesses: &[MemoryAccess], session: &WorkloadSession) -> HashSet<MissCategory> {
    accesses
        .iter()
        .map(|a| session.symbols().category(a.function))
        .collect()
}

#[test]
fn oltp_exercises_every_table4_category() {
    let (accesses, session) = collect(Workload::Oltp, 4, 300);
    let cats = categories_of(&accesses, &session);
    for expected in [
        MissCategory::BulkMemoryCopy,
        MissCategory::SystemCall,
        MissCategory::KernelScheduler,
        MissCategory::KernelMmuTrap,
        MissCategory::KernelSynchronization,
        MissCategory::KernelOther,
        MissCategory::KernelBlockDevice,
        MissCategory::Db2IndexPageTuple,
        MissCategory::Db2RequestControl,
        MissCategory::Db2Ipc,
        MissCategory::Db2RuntimeInterpreter,
        MissCategory::Db2Other,
        MissCategory::Uncategorized,
    ] {
        assert!(cats.contains(&expected), "OLTP missing {expected}");
    }
    // No web-only categories leak into a DB2 workload.
    assert!(!cats.contains(&MissCategory::KernelStreams));
    assert!(!cats.contains(&MissCategory::CgiPerlEngine));
}

#[test]
fn web_exercises_every_table3_category() {
    for w in [Workload::Apache, Workload::Zeus] {
        let (accesses, session) = collect(w, 4, 400);
        let cats = categories_of(&accesses, &session);
        for expected in [
            MissCategory::BulkMemoryCopy,
            MissCategory::SystemCall,
            MissCategory::KernelScheduler,
            MissCategory::KernelMmuTrap,
            MissCategory::KernelSynchronization,
            MissCategory::KernelOther,
            MissCategory::KernelStreams,
            MissCategory::KernelIpPacket,
            MissCategory::WebServerWorker,
            MissCategory::CgiPerlInput,
            MissCategory::CgiPerlEngine,
            MissCategory::CgiPerlOther,
        ] {
            assert!(cats.contains(&expected), "{w} missing {expected}");
        }
        assert!(!cats.contains(&MissCategory::Db2IndexPageTuple), "{w}");
    }
}

#[test]
fn dss_exercises_its_categories_and_skips_ipc() {
    let (accesses, session) = collect(Workload::DssQ17, 4, 200);
    let cats = categories_of(&accesses, &session);
    for expected in [
        MissCategory::BulkMemoryCopy,
        MissCategory::KernelBlockDevice,
        MissCategory::Db2IndexPageTuple,
        MissCategory::Db2RuntimeInterpreter,
        MissCategory::Db2Other,
        MissCategory::KernelMmuTrap,
    ] {
        assert!(cats.contains(&expected), "DSS missing {expected}");
    }
    // DSS queries run without client round-trips per tuple.
    assert!(!cats.contains(&MissCategory::Db2Ipc));
}

#[test]
fn dss_scan_partitions_are_disjoint_across_cpus() {
    // Q1 partitions the fact table by CPU: the DMA'd staging pages and
    // copied frames differ, but the *pages* (tracked via distinct fault
    // sequences) must not overlap. We check a proxy: the per-cpu sets of
    // DMA target block addresses are disjoint.
    let (accesses, _) = collect(Workload::DssQ1, 4, 160);
    let mut per_cpu: Vec<HashSet<u64>> = vec![HashSet::new(); 4];
    for a in &accesses {
        if a.kind == AccessKind::DmaWrite {
            per_cpu[a.cpu.index()].insert(a.addr.block().raw());
        }
    }
    for i in 0..4 {
        for j in i + 1..4 {
            let overlap = per_cpu[i].intersection(&per_cpu[j]).count();
            assert_eq!(overlap, 0, "cpu{i} and cpu{j} share {overlap} DMA blocks");
        }
    }
}

#[test]
fn web_mixes_static_and_dynamic_requests() {
    let (accesses, session) = collect(Workload::Apache, 4, 500);
    // Dynamic requests invoke perl; static ones do not. Over 500 requests
    // both paths must appear, with the SPECweb-style static majority by
    // request count reflected in a healthy perl share (not 0, not all).
    let perl: u64 = accesses
        .iter()
        .filter(|a| {
            matches!(
                session.symbols().category(a.function),
                MissCategory::CgiPerlInput | MissCategory::CgiPerlEngine
            )
        })
        .count() as u64;
    assert!(perl > 0, "no dynamic requests");
    assert!(
        (perl as f64) < accesses.len() as f64 * 0.9,
        "static path never taken"
    );
}

#[test]
fn dma_and_copyout_present_in_all_db_workloads() {
    for w in [Workload::Oltp, Workload::DssQ1, Workload::DssQ2] {
        let (accesses, _) = collect(w, 2, 250);
        assert!(
            accesses.iter().any(|a| a.kind == AccessKind::DmaWrite),
            "{w}: no DMA traffic"
        );
        assert!(
            accesses.iter().any(|a| a.kind == AccessKind::CopyoutWrite),
            "{w}: no copyout traffic"
        );
    }
}

#[test]
fn threads_and_cpus_are_stamped_consistently() {
    for w in Workload::ALL {
        let (accesses, _) = collect(w, 4, 60);
        for a in &accesses {
            assert!(a.cpu.raw() < 4, "{w}: cpu {} out of range", a.cpu);
        }
        let threads: HashSet<_> = accesses.iter().map(|a| a.thread).collect();
        assert!(!threads.is_empty());
    }
}

#[test]
fn reads_dominate_the_access_mix() {
    // Commercial traces are load-dominated; every model workload should
    // emit more reads than stores.
    for w in Workload::ALL {
        let (accesses, _) = collect(w, 4, 120);
        let reads = accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Read)
            .count();
        let writes = accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .count();
        assert!(reads > writes, "{w}: {reads} reads vs {writes} writes");
    }
}

#[test]
fn app_classes_match_expected() {
    assert_eq!(Workload::Apache.app_class(), AppClass::Web);
    assert_eq!(Workload::Oltp.app_class(), AppClass::Oltp);
    assert_eq!(Workload::DssQ1.app_class(), AppClass::Dss);
}
