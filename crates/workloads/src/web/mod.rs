//! Web-serving substrates: the HTTP server worker structures and the
//! perl CGI engine.

pub mod http;
pub mod perl;

pub use http::WebServer;
pub use perl::PerlEngine;
