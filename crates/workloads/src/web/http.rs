//! HTTP server worker structures (Apache / Zeus).
//!
//! The paper's surprising finding: the server binaries themselves account
//! for only ~3% of off-chip misses — most work happens in the kernel on
//! the server's behalf. This model therefore emits modest traffic: the
//! connection table, a small set of hot configuration blocks, and a
//! static-file cache whose entries back the kernel's response copies.

use crate::emitter::Emitter;
use crate::layout::AddressSpace;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES, PAGE_BYTES};

/// The server flavor, matching Table 1's two web configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFlavor {
    /// Apache HTTP Server v2.0 (worker threading model).
    Apache,
    /// Zeus Web Server v4.3 (event-driven).
    Zeus,
}

/// The web-server substrate.
#[derive(Debug)]
pub struct WebServer {
    flavor: ServerFlavor,
    conn_table: Address,
    num_conns: u32,
    config_blocks: Vec<Address>,
    file_cache: Address,
    file_cache_pages: u64,
    f_process: FunctionId,
    f_parse: FunctionId,
    f_sendfile: FunctionId,
}

impl WebServer {
    /// Lays out the connection table (`num_conns` one-block entries), hot
    /// config blocks, and a static-file cache of `file_cache_pages` pages.
    pub fn new(
        flavor: ServerFlavor,
        num_conns: u32,
        file_cache_pages: u64,
        symbols: &mut SymbolTable,
        space: &mut AddressSpace,
    ) -> Self {
        let conn_region = space.region("conn-table", u64::from(num_conns.max(1)) * BLOCK_BYTES);
        let mut cfg_region = space.region("server-config", 8 * BLOCK_BYTES);
        let config_blocks = (0..8).map(|_| cfg_region.alloc(64)).collect();
        let cache_region = space.region("file-cache", file_cache_pages.max(1) * PAGE_BYTES);
        let (f_process, f_parse, f_sendfile) = match flavor {
            ServerFlavor::Apache => (
                symbols.intern("ap_process_connection", MissCategory::WebServerWorker),
                symbols.intern("ap_read_request", MissCategory::WebServerWorker),
                symbols.intern("default_handler", MissCategory::WebServerWorker),
            ),
            ServerFlavor::Zeus => (
                symbols.intern("zeus_event_dispatch", MissCategory::WebServerWorker),
                symbols.intern("zeus_parse_request", MissCategory::WebServerWorker),
                symbols.intern("zeus_send_static", MissCategory::WebServerWorker),
            ),
        };
        WebServer {
            flavor,
            conn_table: conn_region.base(),
            num_conns: num_conns.max(1),
            config_blocks,
            file_cache: cache_region.base(),
            file_cache_pages: file_cache_pages.max(1),
            f_process,
            f_parse,
            f_sendfile,
        }
    }

    /// The server flavor.
    pub fn flavor(&self) -> ServerFlavor {
        self.flavor
    }

    /// Request bookkeeping for `conn`: connection entry + config reads.
    pub fn handle_connection(&self, em: &mut Emitter<'_>, conn: u32) {
        let entry = self
            .conn_table
            .offset(u64::from(conn % self.num_conns) * BLOCK_BYTES);
        em.in_function(self.f_process, |em| {
            em.read(entry);
            em.write(entry);
            em.in_function(self.f_parse, |em| {
                em.read(self.config_blocks[(conn % 8) as usize]);
                em.read(self.config_blocks[0]);
                em.work(80);
            });
        });
    }

    /// Picks a static file page for `sendfile`-style delivery. Returns its
    /// address; the kernel copy engine emits the actual data movement.
    pub fn static_file_page(&self, em: &mut Emitter<'_>, rng: &mut SmallRng) -> Address {
        // SPECweb99's Zipf-ish popularity: most hits in a small hot set.
        let page = if rng.gen_ratio(4, 5) {
            rng.gen_range(0..self.file_cache_pages.div_ceil(20).max(1))
        } else {
            rng.gen_range(0..self.file_cache_pages)
        };
        let addr = self.file_cache.offset(page * PAGE_BYTES);
        em.in_function(self.f_sendfile, |em| {
            em.read(addr); // cache directory entry / first block
            em.work(40);
        });
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup(flavor: ServerFlavor) -> (WebServer, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        (WebServer::new(flavor, 1024, 256, &mut sym, &mut space), sym)
    }

    #[test]
    fn connection_entries_are_distinct() {
        let (s, _) = setup(ServerFlavor::Apache);
        let entry = |conn: u32| {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            s.handle_connection(&mut em, conn);
            a[0].addr
        };
        assert_ne!(entry(1), entry(2));
        assert_eq!(entry(1), entry(1 + 1024)); // wraps
    }

    #[test]
    fn flavors_use_distinct_symbols() {
        let (a, sym_a) = setup(ServerFlavor::Apache);
        let (z, sym_z) = setup(ServerFlavor::Zeus);
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        a.handle_connection(&mut em, 0);
        assert_eq!(sym_a.name(out[0].function), "ap_process_connection");
        out.clear();
        let mut em = Emitter::new(&mut out);
        z.handle_connection(&mut em, 0);
        assert_eq!(sym_z.name(out[0].function), "zeus_event_dispatch");
    }

    #[test]
    fn static_pages_are_zipf_hot() {
        let (s, _) = setup(ServerFlavor::Zeus);
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        let mut rng = SmallRng::seed_from_u64(5);
        let hot_limit = s.file_cache.raw() + (256u64.div_ceil(20)) * PAGE_BYTES;
        let mut hot = 0;
        for _ in 0..200 {
            let p = s.static_file_page(&mut em, &mut rng);
            if p.raw() < hot_limit {
                hot += 1;
            }
        }
        assert!(hot > 120, "hot set must dominate ({hot}/200)");
    }

    #[test]
    fn worker_category() {
        let (s, sym) = setup(ServerFlavor::Apache);
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        s.handle_connection(&mut em, 7);
        for x in &out {
            assert_eq!(sym.category(x.function), MissCategory::WebServerWorker);
        }
    }
}
