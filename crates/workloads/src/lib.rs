//! Synthetic commercial-server workload models.
//!
//! The paper characterizes Apache, Zeus, DB2 OLTP (TPC-C), and three DB2
//! DSS (TPC-H) queries running on Solaris 8. Those binaries and datasets
//! are unavailable, so this crate implements *behavioural models* of the
//! mechanisms the paper names as the sources of memory activity (its
//! Table 2 and Section 5), each emitting a labeled access stream:
//!
//! - Solaris kernel substrates ([`kernel`]): per-processor dispatch queues
//!   with work stealing, mutex/condvar sleep queues, STREAMS message
//!   queues, IP packet assembly, a software-TLB page-table walker, syscall
//!   state machines, a block-device driver, and a bulk-copy engine with
//!   DMA and non-allocating `default_copyout` stores;
//! - database substrates ([`db`]): a B+-tree index with sibling-linked
//!   leaves, a hashed buffer pool, heap tables, a log manager, a
//!   transaction table, and a plan interpreter (the `sqlri` analogue);
//! - web substrates ([`web`]): a perl-like bytecode interpreter with a
//!   control-flow graph of heap-allocated op nodes, `Perl_sv_gets` input
//!   parsing, and server worker structures.
//!
//! The six paper workloads are composed from these substrates in
//! [`workload::Workload`]; every emitted access carries a function label
//! interned in a [`SymbolTable`](tempstream_trace::SymbolTable) so the
//! Section-5 code-module analysis can be reproduced.
//!
//! Miss *behaviour* (repetitiveness, strided-ness, sharing) is emergent
//! from the data structures — e.g. overlapping B+-tree range scans produce
//! temporal streams over sibling leaves exactly as the paper's §2.1
//! example describes — not hard-coded.

pub mod db;
pub mod emitter;
pub mod kernel;
pub mod layout;
pub mod misc;
pub mod spec;
pub mod web;
pub mod workload;

pub use emitter::Emitter;
pub use layout::{AddressSpace, Region};
pub use spec::WorkloadSpec;
pub use workload::{DriveResult, RunStats, Scale, Workload, WorkloadSession};

// The parallel runtime moves sessions onto emit companion threads; keep
// the bounds checked here so a non-Send field is caught at its source,
// not at a distant spawn site.
tempstream_trace::assert_send_sync!(Workload, Scale, WorkloadSession);
