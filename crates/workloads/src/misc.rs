//! Generic residual-activity pools.
//!
//! The paper's origin tables contain rows like "Kernel - other activity",
//! "DB2 - other activity", and "Uncategorized / Unknown" — broad
//! collections of functions with mixed behaviour. [`MiscPool`] models such
//! a row honestly: a set of fixed pointer *chains* (scattered but stable
//! addresses, so re-walks produce temporal streams) plus a cold region of
//! one-touch reads (non-repetitive). The hot/cold mix a workload chooses
//! determines the category's emergent stream fraction.

use crate::emitter::Emitter;
use crate::layout::AddressSpace;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES};

/// A pool of miscellaneous activity under one Table-2 category.
#[derive(Debug)]
pub struct MiscPool {
    functions: Vec<FunctionId>,
    /// Fixed pointer chains through a scattered region.
    chains: Vec<Vec<Address>>,
    cold_base: Address,
    cold_blocks: u64,
    cold_cursor: u64,
}

impl MiscPool {
    /// Builds a pool named `name` under `category`.
    ///
    /// `chain_count` chains of `chain_len` blocks are carved from a hot
    /// region; `cold_bytes` of one-touch data back the cold reads. The
    /// function labels are `name_0 .. name_{n}`.
    #[allow(clippy::too_many_arguments)] // construction-time sizing knobs
    pub fn new(
        name: &str,
        category: MissCategory,
        symbols: &mut SymbolTable,
        space: &mut AddressSpace,
        rng: &mut SmallRng,
        chain_count: usize,
        chain_len: usize,
        cold_bytes: u64,
    ) -> Self {
        assert!(
            chain_count > 0 && chain_len > 0,
            "pool needs at least one chain"
        );
        let hot = space.region(
            "misc-hot",
            (chain_count * chain_len) as u64 * 4 * BLOCK_BYTES,
        );
        let chains = (0..chain_count)
            .map(|_| {
                (0..chain_len)
                    .map(|_| hot.alloc_scattered(rng, 64))
                    .collect()
            })
            .collect();
        let cold = space.region("misc-cold", cold_bytes.max(BLOCK_BYTES));
        let functions = (0..4)
            .map(|i| symbols.intern(&format!("{name}_{i}"), category))
            .collect();
        MiscPool {
            functions,
            chains,
            cold_base: cold.base(),
            cold_blocks: cold.size() / BLOCK_BYTES,
            cold_cursor: 0,
        }
    }

    /// Walks a prefix of one fixed chain (repetitive activity).
    ///
    /// Re-walking the same chain produces the same miss sequence — a
    /// temporal stream.
    pub fn hot_walk(&self, em: &mut Emitter<'_>, rng: &mut SmallRng, len: usize) {
        let chain = &self.chains[rng.gen_range(0..self.chains.len())];
        let f = self.functions[rng.gen_range(0..self.functions.len())];
        em.in_function(f, |em| {
            for addr in chain.iter().take(len.max(1)) {
                em.read(*addr);
                em.work(10);
            }
        });
    }

    /// Reads `n` never-revisited cold blocks (compulsory, non-repetitive).
    pub fn cold_reads(&mut self, em: &mut Emitter<'_>, n: u64) {
        let f = self.functions[0];
        em.in_function(f, |em| {
            for _ in 0..n {
                let b = self.cold_cursor % self.cold_blocks;
                self.cold_cursor += 1;
                em.read(self.cold_base.offset(b * BLOCK_BYTES));
                em.work(10);
            }
        });
    }

    /// Reads `n` random blocks from the cold region (low-locality but
    /// revisitable — replacement misses without stream structure).
    pub fn random_reads(&self, em: &mut Emitter<'_>, rng: &mut SmallRng, n: u64) {
        let f = self.functions[self.functions.len() - 1];
        em.in_function(f, |em| {
            for _ in 0..n {
                let b = rng.gen_range(0..self.cold_blocks);
                em.read(self.cold_base.offset(b * BLOCK_BYTES));
                em.work(14);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup() -> (MiscPool, SymbolTable, SmallRng) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let p = MiscPool::new(
            "kmem",
            MissCategory::KernelOther,
            &mut sym,
            &mut space,
            &mut rng,
            4,
            32,
            1 << 20,
        );
        (p, sym, rng)
    }

    #[test]
    fn hot_walks_repeat() {
        let (p, _, _) = setup();
        let walk = |p: &MiscPool| {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            let mut r = SmallRng::seed_from_u64(9);
            p.hot_walk(&mut em, &mut r, 16);
            a.iter().map(|x| x.addr).collect::<Vec<_>>()
        };
        assert_eq!(walk(&p), walk(&p));
    }

    #[test]
    fn cold_reads_never_repeat_until_wrap() {
        let (mut p, _, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        p.cold_reads(&mut em, 100);
        let mut addrs: Vec<_> = a.iter().map(|x| x.addr).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 100);
    }

    #[test]
    fn labels_carry_category() {
        let (mut p, sym, mut rng) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        p.hot_walk(&mut em, &mut rng, 4);
        p.cold_reads(&mut em, 2);
        p.random_reads(&mut em, &mut rng, 2);
        for x in &a {
            assert_eq!(sym.category(x.function), MissCategory::KernelOther);
        }
    }
}
