//! The access emitter: execution context, function labels, and instruction
//! accounting.
//!
//! Substrate models receive an [`Emitter`] and call [`read`](Emitter::read)
//! / [`write`](Emitter::write) (plus [`dma_write`](Emitter::dma_write) and
//! [`copyout`](Emitter::copyout) for I/O); the emitter stamps each access
//! with the current CPU, thread, and enclosing function — the same
//! annotations the paper's FLEXUS tracing collects at each miss — and
//! maintains the executed-instruction counter that Figure 1 normalizes by.

use tempstream_trace::{
    AccessKind, AccessSink, Address, CpuId, FunctionId, MemoryAccess, ThreadId,
};

/// Instructions charged per emitted memory access (a rough commercial-code
/// ratio of one memory reference every few instructions).
pub const INSTRUCTIONS_PER_ACCESS: u64 = 4;

/// Emits labeled accesses into an [`AccessSink`] while tracking execution
/// context.
///
/// The function *stack* mirrors the paper's call-stack inspection: the
/// innermost function is attached to each access. Pushing/popping is the
/// substrate models' responsibility via [`call`](Emitter::call) /
/// [`ret`](Emitter::ret) (or the scoped [`in_function`](Emitter::in_function)).
pub struct Emitter<'a> {
    sink: &'a mut dyn AccessSink,
    instructions: u64,
    accesses: u64,
    cpu: CpuId,
    thread: ThreadId,
    stack: Vec<FunctionId>,
}

impl<'a> Emitter<'a> {
    /// Creates an emitter feeding `sink`, initially on CPU 0 / thread 0
    /// with an anonymous root function.
    pub fn new(sink: &'a mut dyn AccessSink) -> Self {
        Emitter {
            sink,
            instructions: 0,
            accesses: 0,
            cpu: CpuId::new(0),
            thread: ThreadId::new(0),
            stack: vec![FunctionId::new(0)],
        }
    }

    /// Instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Accesses emitted so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Switches the execution context (scheduler dispatch).
    pub fn set_context(&mut self, cpu: CpuId, thread: ThreadId) {
        self.cpu = cpu;
        self.thread = thread;
    }

    /// The current CPU.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// The current thread.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Enters `function` (pushes it on the label stack).
    pub fn call(&mut self, function: FunctionId) {
        self.stack.push(function);
        self.instructions += 2; // call overhead
    }

    /// Leaves the innermost function.
    ///
    /// # Panics
    ///
    /// Panics if called more times than [`call`](Emitter::call).
    pub fn ret(&mut self) {
        assert!(self.stack.len() > 1, "ret without matching call");
        self.stack.pop();
        self.instructions += 2;
    }

    /// Runs `body` with `function` as the innermost label.
    pub fn in_function<R>(&mut self, function: FunctionId, body: impl FnOnce(&mut Self) -> R) -> R {
        self.call(function);
        let r = body(self);
        self.ret();
        r
    }

    /// The innermost function label.
    pub fn current_function(&self) -> FunctionId {
        *self.stack.last().expect("label stack never empty")
    }

    /// Advances the instruction counter by `n` without memory traffic
    /// (register-only computation).
    pub fn work(&mut self, n: u64) {
        self.instructions += n;
    }

    fn emit(&mut self, addr: Address, kind: AccessKind) {
        self.instructions += INSTRUCTIONS_PER_ACCESS;
        self.accesses += 1;
        let access = MemoryAccess::new(addr, kind, self.cpu, self.thread, self.current_function());
        self.sink.access(&access);
    }

    /// Emits a load.
    pub fn read(&mut self, addr: Address) {
        self.emit(addr, AccessKind::Read);
    }

    /// Emits a store.
    pub fn write(&mut self, addr: Address) {
        self.emit(addr, AccessKind::Write);
    }

    /// Emits a DMA write (device-to-memory; invalidates caches, charged no
    /// CPU instructions).
    pub fn dma_write(&mut self, addr: Address) {
        self.accesses += 1;
        let access = MemoryAccess::new(
            addr,
            AccessKind::DmaWrite,
            self.cpu,
            self.thread,
            self.current_function(),
        );
        self.sink.access(&access);
    }

    /// Emits a non-allocating bulk-copy store (Solaris `default_copyout`).
    pub fn copyout(&mut self, addr: Address) {
        self.emit(addr, AccessKind::CopyoutWrite);
    }

    /// Emits sequential reads over `[addr, addr+len)`, one per cache block.
    pub fn read_range(&mut self, addr: Address, len: u64) {
        let mut b = addr.block();
        let end = addr.offset(len.max(1) - 1).block();
        loop {
            self.read(b.base_address());
            if b == end {
                break;
            }
            b = b.offset(1);
        }
    }

    /// Emits sequential writes over `[addr, addr+len)`, one per cache block.
    pub fn write_range(&mut self, addr: Address, len: u64) {
        let mut b = addr.block();
        let end = addr.offset(len.max(1) - 1).block();
        loop {
            self.write(b.base_address());
            if b == end {
                break;
            }
            b = b.offset(1);
        }
    }
}

impl std::fmt::Debug for Emitter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Emitter")
            .field("instructions", &self.instructions)
            .field("accesses", &self.accesses)
            .field("cpu", &self.cpu)
            .field("thread", &self.thread)
            .field("stack_depth", &self.stack.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_follow_call_stack() {
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        let f1 = FunctionId::new(1);
        let f2 = FunctionId::new(2);
        em.call(f1);
        em.read(Address::new(64));
        em.in_function(f2, |em| em.write(Address::new(128)));
        em.read(Address::new(192));
        em.ret();
        assert_eq!(out[0].function, f1);
        assert_eq!(out[1].function, f2);
        assert_eq!(out[2].function, f1);
    }

    #[test]
    fn context_is_stamped() {
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        em.set_context(CpuId::new(3), ThreadId::new(9));
        em.read(Address::new(0x40));
        assert_eq!(out[0].cpu, CpuId::new(3));
        assert_eq!(out[0].thread, ThreadId::new(9));
    }

    #[test]
    fn instruction_accounting() {
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        em.read(Address::new(0));
        em.work(100);
        em.write(Address::new(64));
        assert_eq!(em.instructions(), 2 * INSTRUCTIONS_PER_ACCESS + 100);
        assert_eq!(em.accesses(), 2);
    }

    #[test]
    fn dma_charges_no_instructions() {
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        em.dma_write(Address::new(0));
        assert_eq!(em.instructions(), 0);
        assert_eq!(out[0].kind, AccessKind::DmaWrite);
    }

    #[test]
    fn ranges_touch_every_block_once() {
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        em.read_range(Address::new(32), 64); // spans blocks 0 and 1
        em.write_range(Address::new(4096), 4096); // exactly one page
        assert_eq!(em.accesses(), 2 + 64);
        drop(em);
        assert_eq!(out.len(), 2 + 64);
    }

    #[test]
    #[should_panic(expected = "ret without matching call")]
    fn unbalanced_ret_panics() {
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        em.ret();
    }
}
