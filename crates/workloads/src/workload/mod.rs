//! The six paper workloads, composed from the substrate models.

mod dss_app;
mod oltp_app;
mod web_app;

use crate::emitter::Emitter;
use dss_app::{DssApp, DssQuery};
use oltp_app::OltpApp;
use tempstream_trace::{AccessSink, AppClass, SymbolTable};
use web_app::WebApp;

pub use crate::web::http::ServerFlavor;

/// One of the paper's six workloads (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// SPECweb99 on Apache (worker threading).
    Apache,
    /// SPECweb99 on Zeus (event-driven).
    Zeus,
    /// TPC-C on DB2.
    Oltp,
    /// TPC-H query 1 (scan-dominated).
    DssQ1,
    /// TPC-H query 2 (join-dominated).
    DssQ2,
    /// TPC-H query 17 (balanced).
    DssQ17,
}

impl Workload {
    /// All workloads in the paper's figure order.
    pub const ALL: [Workload; 6] = [
        Workload::Apache,
        Workload::Zeus,
        Workload::Oltp,
        Workload::DssQ1,
        Workload::DssQ2,
        Workload::DssQ17,
    ];

    /// Short display name matching the figures' x-axis labels.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Apache => "Apache",
            Workload::Zeus => "Zeus",
            Workload::Oltp => "DB2",
            Workload::DssQ1 => "Qry1",
            Workload::DssQ2 => "Qry2",
            Workload::DssQ17 => "Qry17",
        }
    }

    /// The application class this workload belongs to.
    pub fn app_class(self) -> AppClass {
        match self {
            Workload::Apache | Workload::Zeus => AppClass::Web,
            Workload::Oltp => AppClass::Oltp,
            Workload::DssQ1 | Workload::DssQ2 | Workload::DssQ17 => AppClass::Dss,
        }
    }

    /// The Table-1 spec row for this workload.
    pub fn spec(self) -> crate::spec::WorkloadSpec {
        let name = self.name();
        crate::spec::table1()
            .into_iter()
            .find(|s| s.name == name || (name == "DB2" && s.name == "OLTP"))
            .expect("every workload has a spec row")
    }

    /// Default measurement scale: operations that yield a statistically
    /// useful miss trace at the paper's cache sizes.
    pub fn default_scale(self) -> Scale {
        match self {
            Workload::Apache | Workload::Zeus => Scale {
                warmup_ops: 4_000,
                ops: 24_000,
            },
            Workload::Oltp => Scale {
                warmup_ops: 2_000,
                ops: 14_000,
            },
            // One DSS op = one page batch; the scan passes over the table
            // once, so warmup is minimal.
            Workload::DssQ1 | Workload::DssQ2 | Workload::DssQ17 => Scale {
                warmup_ops: 200,
                ops: 3_800,
            },
        }
    }

    /// A fast scale for tests.
    pub fn smoke_scale(self) -> Scale {
        Scale {
            warmup_ops: 20,
            ops: 150,
        }
    }

    /// Convenience: builds a session and drives `scale` through `sink`.
    /// Returns the measured-phase statistics and the symbol table.
    ///
    /// Warmup accesses also pass through `sink`; callers that distinguish
    /// warmup (the simulators' `set_recording`) should build a
    /// [`WorkloadSession`] and run the phases themselves.
    pub fn drive(
        self,
        sink: &mut dyn AccessSink,
        num_cpus: u32,
        scale: Scale,
        seed: u64,
    ) -> DriveResult {
        let mut session = WorkloadSession::new(self, num_cpus, seed);
        session.run(sink, scale.warmup_ops);
        let stats = session.run(sink, scale.ops);
        DriveResult {
            instructions: stats.instructions,
            accesses: stats.accesses,
            symbols: session.into_symbols(),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How much work to run: warmup operations (not normally recorded) and
/// measured operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Operations run to warm caches before measurement.
    pub warmup_ops: u64,
    /// Measured operations (requests / transactions / page batches).
    pub ops: u64,
}

/// Statistics for one [`WorkloadSession::run`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions executed in this run.
    pub instructions: u64,
    /// Accesses emitted in this run.
    pub accesses: u64,
}

/// Result of [`Workload::drive`].
#[derive(Debug)]
pub struct DriveResult {
    /// Instructions executed during the measured phase.
    pub instructions: u64,
    /// Accesses emitted during the measured phase.
    pub accesses: u64,
    /// Function-name table for code-module attribution.
    pub symbols: SymbolTable,
}

enum AppInner {
    Web(WebApp),
    Oltp(OltpApp),
    Dss(DssApp),
}

/// A constructed workload instance whose operations can be driven in
/// phases (warmup vs. measurement) into different sinks.
pub struct WorkloadSession {
    app: AppInner,
    symbols: SymbolTable,
    next_op: u64,
}

impl WorkloadSession {
    /// Builds the workload's data structures for a `num_cpus`-processor
    /// system, deterministically from `seed`.
    pub fn new(workload: Workload, num_cpus: u32, seed: u64) -> Self {
        let mut symbols = SymbolTable::new();
        // Function id 0 is the anonymous root label.
        symbols.intern("_start", tempstream_trace::MissCategory::Uncategorized);
        let app = match workload {
            Workload::Apache => AppInner::Web(WebApp::new(
                ServerFlavor::Apache,
                num_cpus,
                seed,
                &mut symbols,
            )),
            Workload::Zeus => AppInner::Web(WebApp::new(
                ServerFlavor::Zeus,
                num_cpus,
                seed,
                &mut symbols,
            )),
            Workload::Oltp => AppInner::Oltp(OltpApp::new(num_cpus, seed, &mut symbols)),
            Workload::DssQ1 => {
                AppInner::Dss(DssApp::new(DssQuery::Q1, num_cpus, seed, &mut symbols))
            }
            Workload::DssQ2 => {
                AppInner::Dss(DssApp::new(DssQuery::Q2, num_cpus, seed, &mut symbols))
            }
            Workload::DssQ17 => {
                AppInner::Dss(DssApp::new(DssQuery::Q17, num_cpus, seed, &mut symbols))
            }
        };
        WorkloadSession {
            app,
            symbols,
            next_op: 0,
        }
    }

    /// The function-name table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Consumes the session, yielding the symbol table.
    pub fn into_symbols(self) -> SymbolTable {
        self.symbols
    }

    /// Operations run so far.
    pub fn ops_run(&self) -> u64 {
        self.next_op
    }

    /// Runs `ops` operations, emitting their accesses into `sink`.
    pub fn run(&mut self, sink: &mut dyn AccessSink, ops: u64) -> RunStats {
        let mut em = Emitter::new(sink);
        for _ in 0..ops {
            let op = self.next_op;
            self.next_op += 1;
            match &mut self.app {
                AppInner::Web(a) => a.op(&mut em, op),
                AppInner::Oltp(a) => a.op(&mut em, op),
                AppInner::Dss(a) => a.op(&mut em, op),
            }
        }
        RunStats {
            instructions: em.instructions(),
            accesses: em.accesses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    #[test]
    fn all_workloads_emit_deterministically() {
        for w in Workload::ALL {
            let gen = || {
                let mut out: Vec<MemoryAccess> = Vec::new();
                let mut s = WorkloadSession::new(w, 4, 42);
                s.run(&mut out, 30);
                out
            };
            let a = gen();
            let b = gen();
            assert_eq!(a.len(), b.len(), "{w}: nondeterministic length");
            assert_eq!(a, b, "{w}: nondeterministic content");
            assert!(!a.is_empty(), "{w}: no accesses");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let gen = |seed| {
            let mut out: Vec<MemoryAccess> = Vec::new();
            let mut s = WorkloadSession::new(Workload::Oltp, 4, seed);
            s.run(&mut out, 30);
            out
        };
        assert_ne!(gen(1), gen(2));
    }

    #[test]
    fn accesses_use_configured_cpus() {
        for cpus in [1u32, 4, 16] {
            let mut out: Vec<MemoryAccess> = Vec::new();
            let mut s = WorkloadSession::new(Workload::Apache, cpus, 7);
            s.run(&mut out, 64);
            assert!(out.iter().all(|a| a.cpu.raw() < cpus), "{cpus} cpus");
            if cpus > 1 {
                let used: std::collections::HashSet<_> = out.iter().map(|a| a.cpu.raw()).collect();
                assert!(used.len() > 1, "work must spread across cpus");
            }
        }
    }

    #[test]
    fn every_access_has_valid_symbol() {
        for w in Workload::ALL {
            let mut out: Vec<MemoryAccess> = Vec::new();
            let mut s = WorkloadSession::new(w, 4, 9);
            s.run(&mut out, 40);
            let symbols = s.symbols();
            for a in &out {
                assert!(a.function.index() < symbols.len(), "{w}: dangling symbol");
            }
        }
    }

    #[test]
    fn drive_runs_both_phases() {
        let mut sink = tempstream_trace::sink::CountingSink::default();
        let r = Workload::Zeus.drive(
            &mut sink,
            4,
            Scale {
                warmup_ops: 5,
                ops: 20,
            },
            3,
        );
        assert!(r.instructions > 0);
        assert!(r.accesses > 0);
        assert!(sink.count > r.accesses, "warmup accesses also hit the sink");
    }

    #[test]
    fn names_and_classes() {
        assert_eq!(Workload::Oltp.name(), "DB2");
        assert_eq!(
            Workload::DssQ17.app_class(),
            tempstream_trace::AppClass::Dss
        );
        assert_eq!(Workload::ALL.len(), 6);
        for w in Workload::ALL {
            let _ = w.spec();
            assert!(w.default_scale().ops > 0);
        }
    }
}
