//! TPC-H-style decision-support composition (DB2).
//!
//! One op is a page *batch*. Query 1 scans the fact table once —
//! partitioned across CPUs, every page faulted through the buffer pool
//! with a page-sized kernel-to-user copy (the copies that dominate Table
//! 5), tuples visited exactly once (compulsory). Query 2 nested-loop
//! joins against a dimension table that fits in the L2 but not in an L1
//! (intra-chip repetition). Query 17 alternates scan and join batches.

use crate::db::{BPlusTree, BufferPool, HeapTable, PlanInterpreter};
use crate::emitter::Emitter;
use crate::kernel::{Kernel, KernelConfig};
use crate::layout::AddressSpace;
use crate::misc::MiscPool;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{CpuId, MissCategory, SymbolTable, ThreadId, PAGE_BYTES};

/// Fact-table pages (64 MB).
const FACT_PAGES: u64 = 16_384;

/// Dimension-table pages (2 MB: fits the 8 MB L2, exceeds a 64 KB L1).
const DIM_PAGES: u64 = 512;

/// Buffer-pool frames (48 MB): scaled so that frames recycle at most
/// about once within a measurement window, as the paper's 450 MB pool
/// does relative to its trace lengths — copies stay mostly
/// non-repetitive.
const POOL_FRAMES: u32 = 12_288;

/// Staging-ring slots (no in-window source reuse).
const STAGING_SLOTS: u64 = 20_480;

/// Fact pages per scan batch.
const BATCH_PAGES: u64 = 4;

/// Which TPC-H query shape to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DssQuery {
    /// Scan-dominated (query 1).
    Q1,
    /// Join-dominated (query 2).
    Q2,
    /// Balanced scan-join (query 17).
    Q17,
}

pub struct DssApp {
    query: DssQuery,
    kern: Kernel,
    fact: HeapTable,
    dim: HeapTable,
    dim_index: BPlusTree,
    pool: BufferPool,
    interp: PlanInterpreter,
    db2_other: MiscPool,
    kern_other: MiscPool,
    uncat: MiscPool,
    /// Per-CPU scan cursors (partitioned scan).
    cursors: Vec<u64>,
    /// Per-CPU aggregation state block index.
    agg_state: Vec<tempstream_trace::Address>,
    rng: SmallRng,
    num_cpus: u32,
}

impl DssApp {
    pub fn new(query: DssQuery, num_cpus: u32, seed: u64, symbols: &mut SymbolTable) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD5_5000);
        let mut space = AddressSpace::new();
        let config = KernelConfig {
            num_cpus,
            num_threads: 32,
            num_streams_channels: 2,
            num_mutexes: 32,
            num_condvars: 16,
            num_processes: 4,
            fds_per_process: 128,
        };
        let kern = Kernel::new(&config, symbols, &mut space, &mut rng);
        let fact = HeapTable::new(0, FACT_PAGES, symbols);
        let dim = HeapTable::new(FACT_PAGES, DIM_PAGES, symbols);
        let dim_index = BPlusTree::build(DIM_PAGES * 64, symbols, &mut space, &mut rng);
        let pool =
            BufferPool::with_staging_reuse(POOL_FRAMES, STAGING_SLOTS, 30, symbols, &mut space);
        let interp = PlanInterpreter::new(3, 64, symbols, &mut space, &mut rng);
        let db2_other = MiscPool::new(
            "sqlo_dss",
            MissCategory::Db2Other,
            symbols,
            &mut space,
            &mut rng,
            512,
            96,
            16 << 20,
        );
        let kern_other = MiscPool::new(
            "kmem_dss",
            MissCategory::KernelOther,
            symbols,
            &mut space,
            &mut rng,
            512,
            96,
            48 << 20,
        );
        let uncat = MiscPool::new(
            "unknown_dss",
            MissCategory::Uncategorized,
            symbols,
            &mut space,
            &mut rng,
            256,
            64,
            8 << 20,
        );
        let mut agg_region = space.region("agg-state", u64::from(num_cpus) * 128);
        let agg_state = (0..num_cpus).map(|_| agg_region.alloc(128)).collect();
        DssApp {
            query,
            kern,
            fact,
            dim,
            dim_index,
            pool,
            interp,
            db2_other,
            kern_other,
            uncat,
            cursors: vec![0; num_cpus as usize],
            agg_state,
            rng,
            num_cpus,
        }
    }

    /// Runs one page batch.
    pub fn op(&mut self, em: &mut Emitter<'_>, op: u64) {
        let cpu = CpuId::new((op % u64::from(self.num_cpus)) as u32);
        let thread = ThreadId::new(cpu.raw());
        em.set_context(cpu, thread);

        let join_batch = match self.query {
            DssQuery::Q1 => false,
            DssQuery::Q2 => true,
            DssQuery::Q17 => op % 2 == 1,
        };
        if join_batch {
            self.join_batch(em, cpu);
        } else {
            self.scan_batch(em, cpu);
        }

        // Light residual activity; DSS has little scheduling or
        // synchronization (few long-running threads).
        if op.is_multiple_of(16) {
            self.kern.sched.dispatch(em, cpu);
        }
        if op.is_multiple_of(4) {
            self.kern.mmu.window_trap(em, thread.raw());
        }
        self.db2_other.hot_walk(em, &mut self.rng, 10);
        self.kern_other.hot_walk(em, &mut self.rng, 12);
        self.kern_other.cold_reads(em, 5);
        if op.is_multiple_of(9) {
            self.uncat.hot_walk(em, &mut self.rng, 4);
        }
        em.work(500);
    }

    /// A partitioned sequential scan batch over the fact table: every page
    /// faults (one-touch), incurring the disk-DMA-copyout path, then all
    /// tuple blocks are read once.
    fn scan_batch(&mut self, em: &mut Emitter<'_>, cpu: CpuId) {
        let c = cpu.index();
        let partition = FACT_PAGES / u64::from(self.num_cpus);
        let base = u64::from(cpu.raw()) * partition;
        for _ in 0..BATCH_PAGES {
            let page_index = base + (self.cursors[c] % partition);
            self.cursors[c] += 1;
            let page_va = tempstream_trace::Address::new(page_index * PAGE_BYTES);
            self.kern.mmu.translate(em, cpu, page_va);
            self.fact.scan_pages(
                em,
                &mut self.pool,
                &self.kern.copy,
                &mut self.kern.blockdev,
                page_index,
                1,
                4,
            );
            // Per-page interpreter work + aggregation state update (hot).
            self.interp.execute_with_stats(em, 0, 10);
            for t in 0..8u64 {
                self.interp.per_tuple_ops(em, 0, page_index * 64 + t);
            }
            em.read(self.agg_state[c]);
            em.write(self.agg_state[c]);
            // Predicate evaluation and aggregation arithmetic over the
            // page's tuples (MPKI calibration).
            em.work(4_500);
        }
    }

    /// A nested-loop join batch: one outer fact page drives repeated inner
    /// index probes and dimension-tuple reads. The dimension working set
    /// fits in the L2 but not in an L1, so the repetition is intra-chip.
    fn join_batch(&mut self, em: &mut Emitter<'_>, cpu: CpuId) {
        let c = cpu.index();
        let partition = FACT_PAGES / u64::from(self.num_cpus);
        let base = u64::from(cpu.raw()) * partition;
        let page_index = base + (self.cursors[c] % partition);
        self.cursors[c] += 1;
        self.kern.mmu.translate(
            em,
            cpu,
            tempstream_trace::Address::new(page_index * PAGE_BYTES),
        );
        // Outer page: scan a quarter of its blocks.
        self.fact.scan_pages(
            em,
            &mut self.pool,
            &self.kern.copy,
            &mut self.kern.blockdev,
            page_index,
            1,
            4,
        );
        // Inner loop: probe the dimension index and read matching tuples.
        for _ in 0..12 {
            let key = self.rng.gen_range(0..DIM_PAGES * 64);
            self.dim_index.search(em, key);
            self.dim.fetch_tuple(
                em,
                &mut self.pool,
                &self.kern.copy,
                &mut self.kern.blockdev,
                key / 64,
                key % 60,
            );
            self.interp.per_tuple_ops(em, 1, key);
        }
        self.interp.execute(em, 1, 12);
        em.read(self.agg_state[c]);
        em.write(self.agg_state[c]);
        // Join predicate work per outer tuple (MPKI calibration).
        em.work(4_500);
    }
}
