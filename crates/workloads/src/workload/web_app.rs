//! SPECweb99-style web serving composition (Apache / Zeus).
//!
//! Per request: network receive (DMA into a small reused per-CPU ring),
//! `poll`, connection bookkeeping, then either static-file delivery
//! (kernel copyout from the file cache into reused user buffers + IP
//! packet assembly) or FastCGI dynamic content (STREAMS hand-off to a
//! perl process, `Perl_sv_gets`, script execution, STREAMS reply). Worker
//! dispatch, condvar hand-offs, TLB fills, and residual kernel activity
//! round out the profile, following the paper's Table 3 category mix.

use crate::emitter::Emitter;
use crate::kernel::streams_ipc::{ChannelId, Dir};
use crate::kernel::syscall::ProcId;
use crate::kernel::{ip::ConnId, Kernel, KernelConfig};
use crate::layout::AddressSpace;
use crate::misc::MiscPool;
use crate::web::http::{ServerFlavor, WebServer};
use crate::web::perl::PerlEngine;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{
    Address, CpuId, MissCategory, SymbolTable, ThreadId, BLOCK_BYTES, PAGE_BYTES,
};

/// Receive-ring slots per CPU (aggressively reused network buffers).
const RX_SLOTS: u64 = 4;

/// Perl FastCGI processes in the pool.
const PERL_PROCS: u32 = 12;

/// Per-connection socket STREAMS channels (hashed connection buckets).
const SOCKET_CHANNELS: u32 = 4096;

pub struct WebApp {
    kern: Kernel,
    server: WebServer,
    perl: PerlEngine,
    kern_other: MiscPool,
    uncat: MiscPool,
    rng: SmallRng,
    num_cpus: u32,
    /// Per-CPU network receive rings (RX_SLOTS pages each).
    rx_rings: Vec<Address>,
    /// Per-CPU user-space response staging buffers (reused).
    user_bufs: Vec<Address>,
}

impl WebApp {
    pub fn new(flavor: ServerFlavor, num_cpus: u32, seed: u64, symbols: &mut SymbolTable) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EB0_57EB);
        let mut space = AddressSpace::new();
        let config = KernelConfig {
            num_cpus,
            num_threads: 96,
            num_streams_channels: PERL_PROCS + SOCKET_CHANNELS,
            num_mutexes: 48,
            num_condvars: 32,
            num_processes: PERL_PROCS + 1,
            fds_per_process: 16384,
        };
        let kern = Kernel::new(&config, symbols, &mut space, &mut rng);
        // 16K connections, 4096-page (16 MB) static file set: larger than
        // the 8 MB L2, so static serving produces replacement misses.
        let server = WebServer::new(flavor, 16 * 1024, 4096, symbols, &mut space);
        let perl = PerlEngine::new(PERL_PROCS, 3, 256, symbols, &mut space, &mut rng);
        let kern_other = MiscPool::new(
            "kmem_web",
            MissCategory::KernelOther,
            symbols,
            &mut space,
            &mut rng,
            768,
            96,
            24 << 20,
        );
        let uncat = MiscPool::new(
            "unknown_web",
            MissCategory::Uncategorized,
            symbols,
            &mut space,
            &mut rng,
            768,
            96,
            24 << 20,
        );
        let mut rx_region = space.region("rx-rings", u64::from(num_cpus) * RX_SLOTS * PAGE_BYTES);
        let rx_rings = (0..num_cpus)
            .map(|_| rx_region.alloc(RX_SLOTS * PAGE_BYTES))
            .collect();
        let mut user_region = space.region("user-io", u64::from(num_cpus) * 2 * PAGE_BYTES);
        let user_bufs = (0..num_cpus)
            .map(|_| user_region.alloc(2 * PAGE_BYTES))
            .collect();
        WebApp {
            kern,
            server,
            perl,
            kern_other,
            uncat,
            rng,
            num_cpus,
            rx_rings,
            user_bufs,
        }
    }

    /// Handles one HTTP request.
    pub fn op(&mut self, em: &mut Emitter<'_>, op: u64) {
        let cpu = CpuId::new((op % u64::from(self.num_cpus)) as u32);
        let conn = self.rng.gen_range(0..16 * 1024u32);
        let worker_thread = ThreadId::new(16 + (conn % 96));
        em.set_context(cpu, worker_thread);

        let apache = self.server.flavor() == ServerFlavor::Apache;

        // Incoming request data: DMA into this CPU's receive ring, then a
        // copy into the server's address space.
        let rx = self.rx_rings[cpu.index()]
            .offset((op / u64::from(self.num_cpus) % RX_SLOTS) * PAGE_BYTES);
        self.kern.copy.dma_fill(em, rx, 1024);
        self.kern.mmu.translate(em, cpu, rx);

        // Event loop: poll over a window of the fd table. Zeus (single
        // event loop) polls wider than Apache's per-worker accept.
        let nfds = if apache { 48 } else { 96 };
        let window = ((op % (16384 / u64::from(nfds))) as u32) * nfds;
        self.kern.syscalls.poll(em, ProcId(0), window, nfds);
        self.kern.syscalls.sys_read(em, ProcId(0), conn);
        // Socket-side STREAMS: the TCP stream head queues inbound data on
        // this connection's (hashed) queue pair.
        let sock = ChannelId(PERL_PROCS + conn % SOCKET_CHANNELS);
        self.kern.streams.put(em, sock, Dir::Up, 1);
        self.kern.streams.get(em, sock, Dir::Up, 2);
        let user = self.user_bufs[cpu.index()];
        self.kern.copy.bcopy(em, user, rx, 512);

        self.server.handle_connection(em, conn);
        self.kern.mmu.translate(em, cpu, user);
        // Connection table spans hundreds of pages; entries regularly
        // need translations.
        self.kern.mmu.translate(
            em,
            cpu,
            Address::new(0x7000_0000 + u64::from(conn) * BLOCK_BYTES),
        );

        // Worker hand-off: Apache's worker model dispatches per request;
        // Zeus dispatches occasionally (event loop stays on-CPU).
        if apache || op.is_multiple_of(4) {
            // Affinity keeps most wakeups local; some land elsewhere and
            // trigger the steal scan.
            let target = if self.rng.gen_ratio(3, 5) {
                cpu
            } else {
                CpuId::new(self.rng.gen_range(0..self.num_cpus))
            };
            self.kern.sched.enqueue(em, target, worker_thread);
            let cv = self.kern.sync.condvar(conn % 32);
            self.kern.sync.cv_signal(em, cv);
            self.kern.sched.dispatch(em, cpu);
        }
        if apache && op.is_multiple_of(8) {
            // A worker blocks waiting for its next request.
            let cv = self.kern.sync.condvar((conn + 7) % 32);
            self.kern.sync.cv_wait(em, cv, worker_thread);
        }
        self.kern.mmu.window_trap(em, worker_thread.raw());

        // SPECweb99 mix: ~30% dynamic (CGI), ~70% static.
        if self.rng.gen_ratio(3, 10) {
            self.dynamic_request(em, op, cpu, conn);
        } else {
            self.static_request(em, cpu, conn);
        }

        // Residual kernel + unknown activity: a mix of repetitive chains
        // and irregular reads (kernel memory/resource management touches
        // different objects per request).
        self.kern_other.hot_walk(em, &mut self.rng, 10);
        if op.is_multiple_of(3) {
            self.kern_other.random_reads(em, &mut self.rng, 2);
        }
        if op.is_multiple_of(5) {
            self.kern_other.cold_reads(em, 2);
        }
        self.uncat.hot_walk(em, &mut self.rng, 8);
        if op.is_multiple_of(3) {
            self.uncat.random_reads(em, &mut self.rng, 2);
        }
        if op.is_multiple_of(7) {
            self.uncat.cold_reads(em, 2);
        }
        // Request parsing, TCP processing, logging, and script compute
        // between memory references (calibrates Figure 1's per-1000-
        // instruction axis to the paper's range).
        em.work(22_000);
    }

    fn static_request(&mut self, em: &mut Emitter<'_>, cpu: CpuId, conn: u32) {
        // Locate the file, stat it, copy it out of the (kernel) file cache
        // into the reused user buffer, then packetize.
        let page = self.server.static_file_page(em, &mut self.rng);
        self.kern.mmu.translate(em, cpu, page);
        self.kern.syscalls.sys_stat(em, ProcId(0), conn % 512);
        let user = self.user_bufs[cpu.index()];
        let bytes = 1024 + u64::from(conn % 4) * 512;
        self.kern.copy.copyout(em, user, page, bytes);
        self.kern.syscalls.sys_write(em, ProcId(0), conn % 512);
        let sock = ChannelId(PERL_PROCS + conn % SOCKET_CHANNELS);
        self.kern.streams.put(em, sock, Dir::Down, 2);
        self.kern.ip.send(em, cpu.raw(), ConnId(conn), bytes);
        self.kern.streams.get(em, sock, Dir::Down, 4);
    }

    fn dynamic_request(&mut self, em: &mut Emitter<'_>, op: u64, cpu: CpuId, conn: u32) {
        let proc_idx = conn % PERL_PROCS;
        let ch = ChannelId(proc_idx);
        let perl_proc = ProcId(1 + proc_idx);

        // Server -> perl over STREAMS stdio.
        self.kern.syscalls.sys_write(em, ProcId(0), conn % 512);
        let descs = self.kern.streams.put(em, ch, Dir::Down, 2);
        let user = self.user_bufs[cpu.index()];
        self.kern
            .copy
            .bcopy(em, self.perl.input_buffer(proc_idx), user, 512);
        drop(descs);

        // The perl process runs on another CPU (its own process context).
        let perl_cpu =
            CpuId::new(((op + 1 + u64::from(proc_idx)) % u64::from(self.num_cpus)) as u32);
        let perl_thread = ThreadId::new(128 + proc_idx);
        em.set_context(perl_cpu, perl_thread);
        self.kern.sched.enqueue(em, perl_cpu, perl_thread);
        self.kern.sched.dispatch(em, perl_cpu);
        self.kern.streams.get(em, ch, Dir::Down, 4);
        self.kern.streams.put(em, ch, Dir::Down, 1);
        self.kern.streams.get(em, ch, Dir::Down, 2);
        self.kern.syscalls.sys_read(em, perl_proc, 0);
        self.kern
            .mmu
            .translate(em, perl_cpu, self.perl.input_buffer(proc_idx));
        self.perl.sv_gets(em, proc_idx, 512);
        self.perl.run_script(em, proc_idx, conn % 3);
        for _ in 0..2 {
            self.perl
                .touch_arena(em, proc_idx, self.rng.gen_range(0..64), 48);
        }
        // Reply path.
        self.kern.syscalls.sys_write(em, perl_proc, 1);
        let reply = self.kern.streams.put(em, ch, Dir::Up, 4);
        self.kern.mmu.window_trap(em, perl_thread.raw());

        // Back on the server CPU: read the reply, copy it out, send it.
        em.set_context(cpu, ThreadId::new(16 + (conn % 96)));
        let got = self.kern.streams.get(em, ch, Dir::Up, 8);
        let src = got.first().or(reply.first()).copied().unwrap_or(user);
        let bytes = 3 * 1024;
        self.kern.copy.copyout(em, user, src, BLOCK_BYTES * 2);
        self.kern.syscalls.sys_write(em, ProcId(0), conn % 512);
        let sock = ChannelId(PERL_PROCS + conn % SOCKET_CHANNELS);
        self.kern.streams.put(em, sock, Dir::Down, 2);
        self.kern.ip.send(em, cpu.raw(), ConnId(conn), bytes);
        self.kern.streams.get(em, sock, Dir::Down, 4);
    }
}
