//! TPC-C-style OLTP composition (DB2).
//!
//! Per transaction: client IPC, request-context touch, transaction-table
//! begin, plan interpretation, a handful of B+-tree index probes (with
//! occasional range scans — the paper's first motivating example), tuple
//! fetches/updates through the buffer pool, a log append, and commit.
//! Scheduler, synchronization, and MMU activity surround every
//! transaction, following the paper's Table 4 category mix: shared
//! metadata is hot and read-write (coherence in multi-chip), while index
//! and tuple data exceed the L2 (replacement + I/O off chip).

use crate::db::{
    BPlusTree, BufferPool, Db2Ipc, HeapTable, LogManager, PlanInterpreter, RequestControl,
    TransactionTable,
};
use crate::emitter::Emitter;
use crate::kernel::{Kernel, KernelConfig};
use crate::layout::AddressSpace;
use crate::misc::MiscPool;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{CpuId, MissCategory, SymbolTable, ThreadId};

/// Client connections (Table 1: 64 clients).
const CLIENTS: u32 = 64;

/// Keys in the shared primary index.
const INDEX_KEYS: u64 = 1_000_000;

/// Hot keys probed with extra frequency (popular warehouses/items);
/// repeated probes walk the same root-to-leaf paths, forming streams.
/// The hot leaves span ~8 MB — larger than the L2, so the repetition is
/// visible off chip in the single-chip context too.
const HOT_KEYS: u64 = 65_536;

/// Popular range-scan start keys (e.g. recent-order scans); overlapping
/// scans along sibling leaves are the paper's first motivating example.
const HOT_RANGES: u64 = 64;

/// Heap-table pages (96 MB of data).
const DATA_PAGES: u64 = 24_576;

/// Hot data pages that stay pool-resident (TPC-C's high buffer hit
/// rate); the remainder fault through the disk-DMA-copyout path.
const HOT_PAGES: u64 = 3_200;

/// Buffer-pool frames (16 MB — well above the 8 MB L2, far below the
/// data size, preserving the paper's pool:data ratio class).
const POOL_FRAMES: u32 = 4_096;

/// Staging-ring slots: large enough that copy sources do not recur
/// within a measurement window.
const STAGING_SLOTS: u64 = 65_536;

pub struct OltpApp {
    kern: Kernel,
    index: BPlusTree,
    table: HeapTable,
    pool: BufferPool,
    interp: PlanInterpreter,
    txns: TransactionTable,
    reqctl: RequestControl,
    ipc: Db2Ipc,
    log: LogManager,
    db2_other: MiscPool,
    kern_other: MiscPool,
    uncat: MiscPool,
    /// Per-connection request-unmarshalling scratch buffers (reused).
    scratch: Vec<tempstream_trace::Address>,
    rng: SmallRng,
    num_cpus: u32,
}

impl OltpApp {
    pub fn new(num_cpus: u32, seed: u64, symbols: &mut SymbolTable) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x01_7001);
        let mut space = AddressSpace::new();
        let config = KernelConfig {
            num_cpus,
            num_threads: 128,
            num_streams_channels: 2,
            num_mutexes: 96,
            num_condvars: 64,
            num_processes: 64,
            fds_per_process: 1024,
        };
        let kern = Kernel::new(&config, symbols, &mut space, &mut rng);
        let index = BPlusTree::build(INDEX_KEYS, symbols, &mut space, &mut rng);
        let table = HeapTable::new(0, DATA_PAGES, symbols);
        let pool =
            BufferPool::with_staging_reuse(POOL_FRAMES, STAGING_SLOTS, 25, symbols, &mut space);
        let interp = PlanInterpreter::new(8, 48, symbols, &mut space, &mut rng);
        let txns = TransactionTable::new(CLIENTS, symbols, &mut space);
        let reqctl = RequestControl::new(CLIENTS, symbols, &mut space);
        let ipc = Db2Ipc::new(CLIENTS, symbols, &mut space);
        let log = LogManager::new(1 << 20, symbols, &mut space);
        let db2_other = MiscPool::new(
            "sqlo_misc",
            MissCategory::Db2Other,
            symbols,
            &mut space,
            &mut rng,
            1536,
            96,
            24 << 20,
        );
        let kern_other = MiscPool::new(
            "kmem_oltp",
            MissCategory::KernelOther,
            symbols,
            &mut space,
            &mut rng,
            1024,
            96,
            16 << 20,
        );
        let uncat = MiscPool::new(
            "unknown_oltp",
            MissCategory::Uncategorized,
            symbols,
            &mut space,
            &mut rng,
            1024,
            96,
            32 << 20,
        );
        let mut scratch_region = space.region("agent-scratch", u64::from(CLIENTS) * 1024);
        let scratch = (0..CLIENTS).map(|_| scratch_region.alloc(1024)).collect();
        OltpApp {
            kern,
            index,
            table,
            pool,
            interp,
            txns,
            reqctl,
            ipc,
            log,
            db2_other,
            kern_other,
            uncat,
            scratch,
            rng,
            num_cpus,
        }
    }

    /// Picks a data page: mostly the pool-resident hot set, occasionally
    /// a cold page that faults through the disk path.
    fn pick_page(&mut self) -> u64 {
        if self.rng.gen_ratio(63, 64) {
            self.rng.gen_range(0..HOT_PAGES)
        } else {
            self.rng.gen_range(0..DATA_PAGES)
        }
    }

    /// Runs one transaction.
    pub fn op(&mut self, em: &mut Emitter<'_>, op: u64) {
        let cpu = CpuId::new((op % u64::from(self.num_cpus)) as u32);
        let conn = (self.rng.gen_range(0..CLIENTS) + (op as u32 % CLIENTS)) % CLIENTS;
        let thread = ThreadId::new(conn);
        em.set_context(cpu, thread);

        // Agent wakeup: a runnable agent lands on a random processor's
        // queue, so the dispatching processor often finds its own queue
        // empty and runs the disp_getwork/disp_getbest steal scan — the
        // paper's second motivating example.
        let target = CpuId::new(self.rng.gen_range(0..self.num_cpus));
        self.kern.sched.enqueue(em, target, thread);
        let cv = self.kern.sync.condvar(conn % 64);
        self.kern.sync.cv_signal(em, cv);
        self.kern.sched.dispatch(em, cpu);
        self.kern.mmu.window_trap(em, thread.raw());

        // Request arrival: the agent polls its connection, then reads the
        // IPC request.
        let agent = crate::kernel::syscall::ProcId(conn);
        let fd = self.rng.gen_range(0..1024u32);
        self.kern.syscalls.poll(em, agent, fd.saturating_sub(8), 8);
        self.kern.syscalls.sys_read(em, agent, fd);
        self.ipc.recv(em, conn, &mut self.rng);
        // Unmarshal the request: a small copy between reused per-connection
        // buffers (the repetitive slice of OLTP's bulk-copy activity).
        let scratch = self.scratch[conn as usize % self.scratch.len()];
        self.kern.copy.bcopy(em, scratch, scratch.offset(512), 256);
        self.reqctl.touch(em, conn);
        let slot = self.txns.begin(em);

        // Interpret the (cached, statistics-updating) plan.
        self.interp.execute_with_stats(em, conn % 8, 24);

        // Index probes over the shared B+-tree: half go to popular keys
        // (repeating root-to-leaf paths), half are uniform. A TPC-C
        // transaction touches a few dozen index entries.
        let probes = self.rng.gen_range(9..=15);
        for p in 0..probes {
            let key = if self.rng.gen_ratio(3, 5) {
                self.rng.gen_range(0..HOT_KEYS) * (INDEX_KEYS / HOT_KEYS)
            } else {
                self.rng.gen_range(0..INDEX_KEYS)
            };
            if p % 4 == 0 {
                // Record clusters share pages; one fill covers several
                // probes.
                self.kern.mmu.translate(
                    em,
                    cpu,
                    tempstream_trace::Address::new(key * 64), // va of key's record
                );
            }
            self.index.search(em, key);
            let m = self.kern.sync.mutex(96 - 1 - (key % 16) as u32);
            self.kern.sync.with_mutex(em, m, |em| em.work(20));
        }
        // Range scans start from a popular key (order-status style), so
        // successive scans overlap and walk the same sibling leaves.
        if self.rng.gen_ratio(1, 5) {
            let hot = self.rng.gen_range(0..HOT_RANGES);
            let start = hot * (INDEX_KEYS / HOT_RANGES);
            self.index.range_scan(em, start, 192);
        }

        // Tuple accesses through the buffer pool: TPC-C hit rates are
        // high, so most land in the resident hot set; rare cold fetches
        // take the disk-DMA-copyout path.
        let fetches = self.rng.gen_range(2..=4);
        for _ in 0..fetches {
            let page = self.pick_page();
            self.table.fetch_tuple(
                em,
                &mut self.pool,
                &self.kern.copy,
                &mut self.kern.blockdev,
                page,
                self.rng.gen_range(0..60),
            );
            self.interp.per_tuple_ops(em, conn % 8, page);
        }
        // One update + WAL append.
        let upage = self.pick_page();
        self.table.update_tuple(
            em,
            &mut self.pool,
            &self.kern.copy,
            &mut self.kern.blockdev,
            upage,
            self.rng.gen_range(0..60),
        );
        self.log.append(em, 192);

        if self.rng.gen_ratio(1, 4) {
            let key = self.rng.gen_range(0..INDEX_KEYS);
            self.index.insert(em, key, &mut self.rng);
        }

        // Cursor advance, commit, reply.
        self.reqctl.cursor_step(em, conn);
        self.txns.commit(em, slot);
        self.ipc.send(em, conn, &mut self.rng);
        self.kern
            .syscalls
            .sys_write(em, agent, self.rng.gen_range(0..1024u32));

        // Residual activity.
        self.db2_other.hot_walk(em, &mut self.rng, 14);
        if op.is_multiple_of(7) {
            self.db2_other.random_reads(em, &mut self.rng, 5);
        }
        self.kern_other.hot_walk(em, &mut self.rng, 10);
        if op.is_multiple_of(9) {
            self.kern_other.random_reads(em, &mut self.rng, 4);
        }
        self.uncat.hot_walk(em, &mut self.rng, 10);
        if op.is_multiple_of(8) {
            self.uncat.random_reads(em, &mut self.rng, 4);
        }
        // Transaction logic between memory references (MPKI calibration).
        em.work(4_000);
    }
}
