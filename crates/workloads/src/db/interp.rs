//! The SQL runtime interpreter (`sqlri`).
//!
//! DB2 executes a parsed plan by walking a graph of primitive-operation
//! nodes, "analogous to the Perl_pp_* functions of the perl interpreter"
//! (Table 2). Plans are built once and re-executed for every request, so
//! the walk over the scattered op nodes repeats — the paper measures ~90%
//! stream fractions here in OLTP.

use crate::emitter::Emitter;
use crate::layout::AddressSpace;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES};

#[derive(Debug)]
struct Plan {
    /// Scatter-allocated op nodes, walked in order.
    ops: Vec<Address>,
    /// Constant-pool blocks referenced by every third op.
    consts: Vec<Address>,
}

/// The plan-interpreter substrate.
#[derive(Debug)]
pub struct PlanInterpreter {
    plans: Vec<Plan>,
    f_exec: FunctionId,
    f_eval: FunctionId,
    f_fetchrow: FunctionId,
}

impl PlanInterpreter {
    /// Builds `num_plans` plans of `ops_per_plan` scattered op nodes each.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(
        num_plans: u32,
        ops_per_plan: u32,
        symbols: &mut SymbolTable,
        space: &mut AddressSpace,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(num_plans > 0 && ops_per_plan > 0, "need plans and ops");
        let region = space.region(
            "sql-plans",
            u64::from(num_plans) * u64::from(ops_per_plan) * 4 * BLOCK_BYTES + (1 << 16),
        );
        let plans = (0..num_plans)
            .map(|_| Plan {
                ops: (0..ops_per_plan)
                    .map(|_| region.alloc_scattered(rng, 64))
                    .collect(),
                consts: (0..(ops_per_plan / 4).max(1))
                    .map(|_| region.alloc_scattered(rng, 64))
                    .collect(),
            })
            .collect();
        PlanInterpreter {
            plans,
            f_exec: symbols.intern("sqlriExecThread", MissCategory::Db2RuntimeInterpreter),
            f_eval: symbols.intern("sqlriEvalPred", MissCategory::Db2RuntimeInterpreter),
            f_fetchrow: symbols.intern("sqlriFetch", MissCategory::Db2RuntimeInterpreter),
        }
    }

    /// Number of plans.
    pub fn num_plans(&self) -> u32 {
        self.plans.len() as u32
    }

    /// Executes `steps` ops of plan `plan_id` starting at op 0 (one request
    /// walks the plan from the top).
    pub fn execute(&self, em: &mut Emitter<'_>, plan_id: u32, steps: u32) {
        let plan = &self.plans[plan_id as usize % self.plans.len()];
        em.in_function(self.f_exec, |em| {
            for i in 0..steps as usize {
                let op = plan.ops[i % plan.ops.len()];
                em.read(op);
                em.work(18);
                if i % 3 == 0 {
                    let c = plan.consts[(i / 3) % plan.consts.len()];
                    em.in_function(self.f_eval, |em| em.read(c));
                }
            }
        });
    }

    /// Like [`execute`](Self::execute), but also updates the per-op
    /// runtime statistics counters embedded in the plan (every eighth op
    /// is written). DB2 plans are read-mostly but *not* read-only — the
    /// paper attributes their coherence activity to exactly this kind of
    /// shared-metadata mutation.
    pub fn execute_with_stats(&self, em: &mut Emitter<'_>, plan_id: u32, steps: u32) {
        let plan = &self.plans[plan_id as usize % self.plans.len()];
        em.in_function(self.f_exec, |em| {
            for i in 0..steps as usize {
                let op = plan.ops[i % plan.ops.len()];
                em.read(op);
                em.work(18);
                if i % 8 == 7 {
                    em.write(op);
                }
                if i % 3 == 0 {
                    let c = plan.consts[(i / 3) % plan.consts.len()];
                    em.in_function(self.f_eval, |em| em.read(c));
                }
            }
        });
    }

    /// The per-tuple inner-loop ops (predicate evaluation + row fetch
    /// bookkeeping) used by scans.
    pub fn per_tuple_ops(&self, em: &mut Emitter<'_>, plan_id: u32, tuple: u64) {
        let plan = &self.plans[plan_id as usize % self.plans.len()];
        em.in_function(self.f_fetchrow, |em| {
            // A tuple evaluates a short fixed chain of ops.
            let base = (tuple as usize % 3) * 2;
            em.read(plan.ops[base % plan.ops.len()]);
            em.read(plan.ops[(base + 1) % plan.ops.len()]);
            em.work(22);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup() -> (PlanInterpreter, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        let mut rng = SmallRng::seed_from_u64(21);
        (
            PlanInterpreter::new(4, 32, &mut sym, &mut space, &mut rng),
            sym,
        )
    }

    #[test]
    fn re_execution_repeats_op_walk() {
        let (p, _) = setup();
        let run = || {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            p.execute(&mut em, 1, 32);
            a.iter().map(|x| x.addr).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_plans_touch_different_ops() {
        let (p, _) = setup();
        let first_op = |id: u32| {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            p.execute(&mut em, id, 1);
            a[0].addr
        };
        assert_ne!(first_op(0), first_op(1));
    }

    #[test]
    fn plan_id_wraps() {
        let (p, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        p.execute(&mut em, 400, 4);
        assert!(!a.is_empty());
    }

    #[test]
    fn labels_are_interpreter() {
        let (p, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        p.execute(&mut em, 0, 9);
        p.per_tuple_ops(&mut em, 0, 5);
        for x in &a {
            assert_eq!(
                sym.category(x.function),
                MissCategory::Db2RuntimeInterpreter
            );
        }
    }
}
