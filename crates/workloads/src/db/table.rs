//! Heap tables: pages of tuples accessed through the buffer pool.
//!
//! Models DB2's `sqld` row layer (`sqldRowFetch`, `sqldRowUpdate`) on top
//! of `sqlpg` pages. Table scans touch tuple blocks sequentially within
//! each page (strided); random fetches touch one or two blocks.

use crate::db::bufpool::BufferPool;
use crate::emitter::Emitter;
use crate::kernel::{BlockDev, CopyEngine};
use tempstream_trace::{FunctionId, MissCategory, SymbolTable, BLOCK_BYTES, PAGE_BYTES};

/// A heap table: a contiguous range of page ids.
#[derive(Debug, Clone)]
pub struct HeapTable {
    first_page: u64,
    num_pages: u64,
    f_fetch: FunctionId,
    f_update: FunctionId,
    f_scan: FunctionId,
}

impl HeapTable {
    /// Defines a table over `num_pages` pages starting at `first_page`
    /// (page-id space is shared with the buffer pool).
    ///
    /// # Panics
    ///
    /// Panics if `num_pages == 0`.
    pub fn new(first_page: u64, num_pages: u64, symbols: &mut SymbolTable) -> Self {
        assert!(num_pages > 0, "table needs pages");
        HeapTable {
            first_page,
            num_pages,
            f_fetch: symbols.intern("sqldRowFetch", MissCategory::Db2IndexPageTuple),
            f_update: symbols.intern("sqldRowUpdate", MissCategory::Db2IndexPageTuple),
            f_scan: symbols.intern("sqldScan", MissCategory::Db2IndexPageTuple),
        }
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// The page id of the `i`-th page (wrapping).
    pub fn page_id(&self, i: u64) -> u64 {
        self.first_page + (i % self.num_pages)
    }

    /// Fetches one tuple: pin the page, read its slot blocks.
    pub fn fetch_tuple(
        &self,
        em: &mut Emitter<'_>,
        pool: &mut BufferPool,
        copy: &CopyEngine,
        disk: &mut BlockDev,
        page_index: u64,
        slot: u64,
    ) {
        let page = self.page_id(page_index);
        let frame = pool.get_page(em, copy, disk, page);
        em.in_function(self.f_fetch, |em| {
            let blocks = PAGE_BYTES / BLOCK_BYTES;
            let b = slot % (blocks - 1);
            em.read(frame.offset(b * BLOCK_BYTES));
            em.read(frame.offset((b + 1) * BLOCK_BYTES));
            em.work(30);
        });
    }

    /// Updates one tuple: fetch plus a slot write; the page becomes dirty.
    pub fn update_tuple(
        &self,
        em: &mut Emitter<'_>,
        pool: &mut BufferPool,
        copy: &CopyEngine,
        disk: &mut BlockDev,
        page_index: u64,
        slot: u64,
    ) {
        let page = self.page_id(page_index);
        let frame = pool.get_page(em, copy, disk, page);
        em.in_function(self.f_update, |em| {
            let blocks = PAGE_BYTES / BLOCK_BYTES;
            let b = slot % blocks;
            em.read(frame.offset(b * BLOCK_BYTES));
            em.write(frame.offset(b * BLOCK_BYTES));
            em.work(45);
        });
        pool.mark_dirty(page);
    }

    /// Scans `num` consecutive pages starting at `from`, reading every
    /// `step`-th tuple block of each page.
    #[allow(clippy::too_many_arguments)] // emitter + 3 substrates + 3 scan params
    pub fn scan_pages(
        &self,
        em: &mut Emitter<'_>,
        pool: &mut BufferPool,
        copy: &CopyEngine,
        disk: &mut BlockDev,
        from: u64,
        num: u64,
        step: u64,
    ) {
        let step = step.max(1);
        for i in 0..num {
            let page = self.page_id(from + i);
            let frame = pool.get_page(em, copy, disk, page);
            em.in_function(self.f_scan, |em| {
                let blocks = PAGE_BYTES / BLOCK_BYTES;
                let mut b = 0;
                while b < blocks {
                    em.read(frame.offset(b * BLOCK_BYTES));
                    em.work(12);
                    b += step;
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::AddressSpace;
    use tempstream_trace::{AccessKind, MemoryAccess};

    fn setup() -> (HeapTable, BufferPool, CopyEngine, BlockDev, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        let pool = BufferPool::new(8, &mut sym, &mut space);
        let copy = CopyEngine::new(&mut sym);
        let disk = BlockDev::new(&mut sym, &mut space);
        let table = HeapTable::new(100, 50, &mut sym);
        (table, pool, copy, disk, sym)
    }

    #[test]
    fn fetch_pins_page_and_reads_slot() {
        let (t, mut pool, copy, mut disk, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        t.fetch_tuple(&mut em, &mut pool, &copy, &mut disk, 3, 5);
        assert!(pool.is_resident(103));
        assert_eq!(pool.faults(), 1);
        // Second fetch of the same page hits the pool.
        t.fetch_tuple(&mut em, &mut pool, &copy, &mut disk, 3, 9);
        assert_eq!(pool.faults(), 1);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn update_dirties_page() {
        let (t, mut pool, copy, mut disk, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        t.update_tuple(&mut em, &mut pool, &copy, &mut disk, 0, 0);
        assert!(a.iter().any(|x| x.kind == AccessKind::Write));
    }

    #[test]
    fn scan_reads_blocks_with_stride() {
        let (t, mut pool, copy, mut disk, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        t.scan_pages(&mut em, &mut pool, &copy, &mut disk, 0, 1, 1);
        let scan_reads: Vec<_> = a
            .iter()
            .filter(|x| sym.name(x.function) == "sqldScan")
            .collect();
        assert_eq!(scan_reads.len() as u64, PAGE_BYTES / BLOCK_BYTES);
        // Consecutive scan reads are block-strided.
        assert_eq!(
            scan_reads[1].addr.raw() - scan_reads[0].addr.raw(),
            BLOCK_BYTES
        );
    }

    #[test]
    fn page_index_wraps() {
        let (t, _, _, _, _) = setup();
        assert_eq!(t.page_id(0), 100);
        assert_eq!(t.page_id(49), 149);
        assert_eq!(t.page_id(50), 100);
    }
}
