//! DB2-analogue database substrates.
//!
//! The paper's DB2-specific categories (Table 2) map onto these modules:
//!
//! - `sqli`/`sqld`/`sqlpg` (index, row, page) → [`btree`], [`table`],
//!   [`bufpool`];
//! - `sqlrr`/`sqlra` (request control) and client IPC → [`txn`];
//! - `sqlri` (runtime interpreter) → [`interp`];
//! - the log manager → [`log`].

pub mod btree;
pub mod bufpool;
pub mod interp;
pub mod log;
pub mod table;
pub mod txn;

pub use btree::BPlusTree;
pub use bufpool::BufferPool;
pub use interp::PlanInterpreter;
pub use log::LogManager;
pub use table::HeapTable;
pub use txn::{Db2Ipc, RequestControl, TransactionTable};
