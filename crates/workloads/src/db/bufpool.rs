//! The database buffer pool.
//!
//! Models DB2's `sqlpg` page layer: a hashed page table maps page ids to
//! 4 KB frames; a clock policy picks victims. A page fault goes through
//! the kernel: block-device I/O, a DMA fill of a filesystem staging
//! buffer, and a `default_copyout` of the page into the user-space frame —
//! the bulk kernel-to-user copies that dominate the paper's DSS miss
//! profiles. The staging buffers rotate through a large ring (filesystem
//! page cache), so DSS-style copies do *not* reuse buffers and are
//! non-repetitive, exactly as the paper observes.

use crate::emitter::Emitter;
use crate::kernel::{BlockDev, CopyEngine};
use crate::layout::AddressSpace;
use tempstream_fxhash::FxHashMap;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES, PAGE_BYTES};

/// Default staging buffers in the filesystem cache ring. Large enough
/// that staging addresses do not recur within a typical measurement
/// window — the property that makes DSS copies non-repetitive in the
/// paper.
pub const DEFAULT_STAGING_RING: u64 = 16_384;

/// The buffer-pool substrate.
#[derive(Debug)]
pub struct BufferPool {
    frames_base: Address,
    num_frames: u32,
    buckets_base: Address,
    staging_base: Address,
    staging_slots: u64,
    staging_cursor: u64,
    /// Percentage of faults whose staging buffer comes from the small
    /// reused sub-ring (recently-read filesystem blocks / readahead
    /// recycling) — the repetitive slice of bulk-copy activity.
    staging_reuse_percent: u32,
    hot_staging_cursor: u64,
    /// page id -> frame index.
    map: FxHashMap<u64, u32>,
    /// frame index -> (page id, dirty).
    frame_state: Vec<Option<(u64, bool)>>,
    clock: u32,
    faults: u64,
    hits: u64,
    f_bufget: FunctionId,
    f_fault: FunctionId,
    f_flush: FunctionId,
}

impl BufferPool {
    /// Lays out `num_frames` 4 KB frames plus the hash directory and the
    /// filesystem staging ring.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames == 0`.
    pub fn new(num_frames: u32, symbols: &mut SymbolTable, space: &mut AddressSpace) -> Self {
        Self::with_staging(num_frames, DEFAULT_STAGING_RING, symbols, space)
    }

    /// Like [`new`](Self::new) with an explicit staging-ring size (in 4 KB
    /// slots). A ring smaller than the fault count of a measurement window
    /// makes copy sources recur.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames == 0` or `staging_slots == 0`.
    pub fn with_staging(
        num_frames: u32,
        staging_slots: u64,
        symbols: &mut SymbolTable,
        space: &mut AddressSpace,
    ) -> Self {
        Self::with_staging_reuse(num_frames, staging_slots, 0, symbols, space)
    }

    /// Like [`with_staging`](Self::with_staging), additionally drawing
    /// `staging_reuse_percent` percent of fault staging buffers from a
    /// small (256-slot) reused sub-ring.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames == 0`, `staging_slots == 0`, or
    /// `staging_reuse_percent > 100`.
    pub fn with_staging_reuse(
        num_frames: u32,
        staging_slots: u64,
        staging_reuse_percent: u32,
        symbols: &mut SymbolTable,
        space: &mut AddressSpace,
    ) -> Self {
        assert!(staging_reuse_percent <= 100, "percentage over 100");
        assert!(num_frames > 0, "buffer pool needs frames");
        assert!(staging_slots > 0, "staging ring needs slots");
        let frames = space.region("bufpool-frames", u64::from(num_frames) * PAGE_BYTES);
        let buckets = space.region("bufpool-hash", u64::from(num_frames) * BLOCK_BYTES);
        let staging = space.region("fs-staging", staging_slots * PAGE_BYTES);
        BufferPool {
            frames_base: frames.base(),
            num_frames,
            buckets_base: buckets.base(),
            staging_base: staging.base(),
            staging_slots,
            staging_cursor: 0,
            staging_reuse_percent,
            hot_staging_cursor: 0,
            map: FxHashMap::default(),
            frame_state: vec![None; num_frames as usize],
            clock: 0,
            faults: 0,
            hits: 0,
            f_bufget: symbols.intern("sqlpgBufGet", MissCategory::Db2IndexPageTuple),
            f_fault: symbols.intern("sqlpgFault", MissCategory::Db2IndexPageTuple),
            f_flush: symbols.intern("sqlpgFlush", MissCategory::Db2IndexPageTuple),
        }
    }

    /// Number of frames.
    pub fn num_frames(&self) -> u32 {
        self.num_frames
    }

    /// Page faults served so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Pool hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    fn frame_addr(&self, frame: u32) -> Address {
        self.frames_base.offset(u64::from(frame) * PAGE_BYTES)
    }

    fn bucket_addr(&self, page: u64) -> Address {
        let b = page.wrapping_mul(0x9E37_79B9) % u64::from(self.num_frames);
        self.buckets_base.offset(b * BLOCK_BYTES)
    }

    /// Pins `page`, faulting it in from disk if absent. Returns the frame's
    /// base address.
    pub fn get_page(
        &mut self,
        em: &mut Emitter<'_>,
        copy: &CopyEngine,
        disk: &mut BlockDev,
        page: u64,
    ) -> Address {
        let bucket = self.bucket_addr(page);
        let (f_bufget, f_fault) = (self.f_bufget, self.f_fault);
        em.call(f_bufget);
        em.read(bucket);
        if let Some(&frame) = self.map.get(&page) {
            self.hits += 1;
            let fa = self.frame_addr(frame);
            em.read(fa); // frame header / pin
            em.ret();
            return fa;
        }
        self.faults += 1;
        let frame = self.evict_one(em, disk);
        let fa = self.frame_addr(frame);
        em.in_function(f_fault, |em| {
            // Disk read into a staging buffer, then copyout into the frame.
            disk.submit(em);
            disk.complete(em);
            // Deterministic reuse split: a slice of reads is satisfied
            // from the small recycled ring, the rest stream through the
            // large one.
            self.staging_cursor += 1;
            let hot_ring = self.staging_slots.min(256);
            let slot = if self.staging_cursor % 100 < u64::from(self.staging_reuse_percent) {
                self.hot_staging_cursor += 1;
                self.hot_staging_cursor % hot_ring
            } else {
                hot_ring + self.staging_cursor % (self.staging_slots - hot_ring).max(1)
            };
            let staging = self.staging_base.offset(slot * PAGE_BYTES);
            copy.dma_fill(em, staging, PAGE_BYTES);
            copy.copyout(em, fa, staging, PAGE_BYTES);
            em.write(bucket);
            em.work(200);
        });
        self.map.insert(page, frame);
        self.frame_state[frame as usize] = Some((page, false));
        em.ret();
        fa
    }

    fn evict_one(&mut self, em: &mut Emitter<'_>, disk: &mut BlockDev) -> u32 {
        // Round-robin victim selection (a clock hand with no reference
        // bits): the frame under the hand is always evictable, flushing
        // first if dirty.
        let f = self.clock;
        self.clock = (self.clock + 1) % self.num_frames;
        if let Some((page, dirty)) = self.frame_state[f as usize] {
            self.map.remove(&page);
            if dirty {
                let fa = self.frame_addr(f);
                em.in_function(self.f_flush, |em| {
                    // Write back: read the frame, hand it to the disk.
                    for b in (0..PAGE_BYTES / BLOCK_BYTES).step_by(8) {
                        em.read(fa.offset(b * BLOCK_BYTES));
                    }
                    disk.submit(em);
                    disk.complete(em);
                });
            }
            self.frame_state[f as usize] = None;
        }
        f
    }

    /// Marks `page` dirty (it must be resident).
    pub fn mark_dirty(&mut self, page: u64) {
        if let Some(&frame) = self.map.get(&page) {
            if let Some((_, dirty)) = &mut self.frame_state[frame as usize] {
                *dirty = true;
            }
        }
    }

    /// Returns `true` if `page` is resident.
    pub fn is_resident(&self, page: u64) -> bool {
        self.map.contains_key(&page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(frames: u32) -> (BufferPool, CopyEngine, BlockDev, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        let pool = BufferPool::new(frames, &mut sym, &mut space);
        let copy = CopyEngine::new(&mut sym);
        let disk = BlockDev::new(&mut sym, &mut space);
        (pool, copy, disk, sym)
    }

    #[test]
    fn fault_then_hit() {
        let (mut p, copy, mut disk, _) = setup(4);
        let mut a: Vec<tempstream_trace::MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let f1 = p.get_page(&mut em, &copy, &mut disk, 7);
        let f2 = p.get_page(&mut em, &copy, &mut disk, 7);
        assert_eq!(f1, f2);
        assert_eq!(p.faults(), 1);
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn eviction_cycles_frames() {
        let (mut p, copy, mut disk, _) = setup(2);
        let mut a: Vec<tempstream_trace::MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        p.get_page(&mut em, &copy, &mut disk, 1);
        p.get_page(&mut em, &copy, &mut disk, 2);
        p.get_page(&mut em, &copy, &mut disk, 3);
        assert!(!p.is_resident(1), "page 1 evicted by clock");
        assert!(p.is_resident(2));
        assert!(p.is_resident(3));
    }

    #[test]
    fn dirty_page_flushes_on_eviction() {
        let (mut p, copy, mut disk, sym) = setup(1);
        let mut a: Vec<tempstream_trace::MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        p.get_page(&mut em, &copy, &mut disk, 1);
        p.mark_dirty(1);
        a.clear();
        let mut em = Emitter::new(&mut a);
        p.get_page(&mut em, &copy, &mut disk, 2);
        assert!(
            a.iter().any(|x| sym.name(x.function) == "sqlpgFlush"),
            "eviction of a dirty page must flush"
        );
    }

    #[test]
    fn fault_emits_dma_and_copyout() {
        let (mut p, copy, mut disk, _) = setup(4);
        let mut a: Vec<tempstream_trace::MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        p.get_page(&mut em, &copy, &mut disk, 42);
        use tempstream_trace::AccessKind;
        let dmas = a.iter().filter(|x| x.kind == AccessKind::DmaWrite).count();
        let copyouts = a
            .iter()
            .filter(|x| x.kind == AccessKind::CopyoutWrite)
            .count();
        assert_eq!(dmas as u64, PAGE_BYTES / BLOCK_BYTES);
        assert_eq!(copyouts as u64, PAGE_BYTES / BLOCK_BYTES);
    }

    #[test]
    fn staging_buffers_rotate() {
        let (mut p, copy, mut disk, _) = setup(8);
        let staging_of_fault =
            |p: &mut BufferPool, copy: &CopyEngine, disk: &mut BlockDev, page: u64| {
                let mut a: Vec<tempstream_trace::MemoryAccess> = Vec::new();
                let mut em = Emitter::new(&mut a);
                p.get_page(&mut em, copy, disk, page);
                a.iter()
                    .find(|x| x.kind == tempstream_trace::AccessKind::DmaWrite)
                    .unwrap()
                    .addr
            };
        let s1 = staging_of_fault(&mut p, &copy, &mut disk, 100);
        let s2 = staging_of_fault(&mut p, &copy, &mut disk, 101);
        assert_ne!(s1, s2, "staging ring must rotate (no immediate reuse)");
    }
}
