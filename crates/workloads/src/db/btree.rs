//! A B+-tree index with sibling-linked leaves.
//!
//! The paper's first motivating example (§2.1): overlapping range scans
//! follow the horizontal sibling links along the leaf level. Leaves are
//! deliberately *not* contiguous in memory (nodes are scatter-allocated),
//! so the leaf access sequence cannot be captured by stride prefetchers —
//! but a second overlapping scan touches the same leaves in the same
//! order, forming a temporal stream. The tree is shared, so the streams
//! recur across processors.

use crate::emitter::Emitter;
use crate::layout::AddressSpace;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES};

/// Keys per leaf node.
const LEAF_KEYS: u64 = 32;
/// Children per internal node.
const FANOUT: usize = 32;
/// Node size in bytes (a quarter of a DB2 4 KB index page; four blocks).
const NODE_BYTES: u64 = 256;

#[derive(Debug)]
enum NodeKind {
    /// `children` are node indices.
    Internal { children: Vec<u32> },
    /// `next` is the right sibling (the horizontal link).
    Leaf { next: Option<u32> },
}

#[derive(Debug)]
struct Node {
    addr: Address,
    /// Key range `[lo, hi)` covered by this subtree.
    lo: u64,
    hi: u64,
    kind: NodeKind,
}

/// A shared B+-tree index over keys `0..num_keys`.
#[derive(Debug)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: u32,
    num_keys: u64,
    f_fetch: FunctionId,
    f_scan: FunctionId,
    f_insert: FunctionId,
}

impl BPlusTree {
    /// Bulk-builds a tree over `num_keys` keys with scatter-allocated
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_keys == 0`.
    pub fn build(
        num_keys: u64,
        symbols: &mut SymbolTable,
        space: &mut AddressSpace,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(num_keys > 0, "tree needs at least one key");
        let num_leaves = num_keys.div_ceil(LEAF_KEYS);
        // Generous region so scatter allocation stays sparse.
        let region = space.region("btree", num_leaves * NODE_BYTES * 4 + (1 << 20));
        let mut nodes: Vec<Node> = Vec::new();

        // Leaf level, left to right, linked by `next`.
        let mut level: Vec<u32> = Vec::new();
        for i in 0..num_leaves {
            let lo = i * LEAF_KEYS;
            let hi = ((i + 1) * LEAF_KEYS).min(num_keys);
            nodes.push(Node {
                addr: region.alloc_scattered(rng, NODE_BYTES),
                lo,
                hi,
                kind: NodeKind::Leaf { next: None },
            });
            level.push((nodes.len() - 1) as u32);
        }
        for w in 0..level.len().saturating_sub(1) {
            let next = level[w + 1];
            if let NodeKind::Leaf { next: n } = &mut nodes[level[w] as usize].kind {
                *n = Some(next);
            }
        }

        // Internal levels bottom-up.
        while level.len() > 1 {
            let mut upper = Vec::new();
            for chunk in level.chunks(FANOUT) {
                let lo = nodes[chunk[0] as usize].lo;
                let hi = nodes[*chunk.last().expect("non-empty chunk") as usize].hi;
                nodes.push(Node {
                    addr: region.alloc_scattered(rng, NODE_BYTES),
                    lo,
                    hi,
                    kind: NodeKind::Internal {
                        children: chunk.to_vec(),
                    },
                });
                upper.push((nodes.len() - 1) as u32);
            }
            level = upper;
        }

        BPlusTree {
            root: level[0],
            nodes,
            num_keys,
            f_fetch: symbols.intern("sqliFetch", MissCategory::Db2IndexPageTuple),
            f_scan: symbols.intern("sqliScanNext", MissCategory::Db2IndexPageTuple),
            f_insert: symbols.intern("sqliInsert", MissCategory::Db2IndexPageTuple),
        }
    }

    /// Number of keys indexed.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// Tree height (levels from root to leaf, inclusive).
    pub fn height(&self) -> u32 {
        let mut h = 1;
        let mut n = self.root;
        while let NodeKind::Internal { children } = &self.nodes[n as usize].kind {
            n = children[0];
            h += 1;
        }
        h
    }

    /// Emits the header + search-portion reads for visiting one node.
    fn visit_node(&self, em: &mut Emitter<'_>, node: u32, key: u64) {
        let a = self.nodes[node as usize].addr;
        em.read(a); // header block
                    // Binary search lands in one of the key blocks.
        let blk = 1 + (key % (NODE_BYTES / BLOCK_BYTES - 1));
        em.read(a.offset(blk * BLOCK_BYTES));
        em.work(25);
    }

    fn descend(&self, em: &mut Emitter<'_>, key: u64) -> u32 {
        let mut n = self.root;
        loop {
            self.visit_node(em, n, key);
            match &self.nodes[n as usize].kind {
                NodeKind::Leaf { .. } => return n,
                NodeKind::Internal { children } => {
                    n = *children
                        .iter()
                        .find(|&&c| {
                            let node = &self.nodes[c as usize];
                            key >= node.lo && key < node.hi
                        })
                        .unwrap_or_else(|| children.last().expect("non-empty internal"));
                }
            }
        }
    }

    /// Root-to-leaf search for `key` (`sqliFetch`).
    pub fn search(&self, em: &mut Emitter<'_>, key: u64) {
        let key = key % self.num_keys;
        em.in_function(self.f_fetch, |em| {
            self.descend(em, key);
        });
    }

    /// Range scan: locate `start_key`, then follow sibling links until
    /// `count` keys are covered (`sqliScanNext`). Returns the number of
    /// leaves visited.
    pub fn range_scan(&self, em: &mut Emitter<'_>, start_key: u64, count: u64) -> u64 {
        let start_key = start_key % self.num_keys;
        em.in_function(self.f_scan, |em| {
            let mut leaf = self.descend(em, start_key);
            let mut visited = 1;
            let mut covered = self.nodes[leaf as usize].hi - start_key;
            while covered < count {
                let NodeKind::Leaf { next } = &self.nodes[leaf as usize].kind else {
                    unreachable!("descend returns a leaf");
                };
                let Some(next) = *next else { break };
                leaf = next;
                visited += 1;
                let n = &self.nodes[leaf as usize];
                // Walk the leaf's entries: header + all key blocks.
                em.read(n.addr);
                em.read(n.addr.offset(BLOCK_BYTES));
                em.read(n.addr.offset(2 * BLOCK_BYTES));
                em.work(40);
                covered += n.hi - n.lo;
            }
            visited
        })
    }

    /// Inserts `key`: a search plus a leaf write; occasionally a modeled
    /// split that also writes the parent (`sqliInsert`).
    pub fn insert(&self, em: &mut Emitter<'_>, key: u64, rng: &mut SmallRng) {
        let key = key % self.num_keys;
        em.in_function(self.f_insert, |em| {
            let leaf = self.descend(em, key);
            let a = self.nodes[leaf as usize].addr;
            let blk = 1 + (key % (NODE_BYTES / BLOCK_BYTES - 1));
            em.write(a.offset(blk * BLOCK_BYTES));
            em.write(a); // header (entry count)
            if rng.gen_ratio(1, 64) {
                // Split: rewrite the whole node (it is redistributed).
                for b in 0..NODE_BYTES / BLOCK_BYTES {
                    em.write(a.offset(b * BLOCK_BYTES));
                }
            }
        });
    }

    /// The leaf-level addresses in key order (used by tests to check
    /// scatter and linkage).
    pub fn leaf_addresses(&self) -> Vec<Address> {
        let mut out = Vec::new();
        // Find the leftmost leaf.
        let mut n = self.root;
        while let NodeKind::Internal { children } = &self.nodes[n as usize].kind {
            n = children[0];
        }
        loop {
            out.push(self.nodes[n as usize].addr);
            match &self.nodes[n as usize].kind {
                NodeKind::Leaf { next: Some(next) } => n = *next,
                _ => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup(keys: u64) -> (BPlusTree, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        let mut rng = SmallRng::seed_from_u64(11);
        (BPlusTree::build(keys, &mut sym, &mut space, &mut rng), sym)
    }

    #[test]
    fn height_grows_logarithmically() {
        let (t1, _) = setup(32);
        assert_eq!(t1.height(), 1);
        let (t2, _) = setup(32 * 32);
        assert_eq!(t2.height(), 2);
        let (t3, _) = setup(32 * 32 * 32);
        assert_eq!(t3.height(), 3);
    }

    #[test]
    fn leaf_chain_covers_all_leaves() {
        let (t, _) = setup(10_000);
        let leaves = t.leaf_addresses();
        assert_eq!(leaves.len() as u64, 10_000u64.div_ceil(LEAF_KEYS));
    }

    #[test]
    fn leaves_are_not_contiguous() {
        let (t, _) = setup(10_000);
        let leaves = t.leaf_addresses();
        let strided = leaves
            .windows(2)
            .filter(|w| w[1].raw().wrapping_sub(w[0].raw()) == NODE_BYTES)
            .count();
        assert!(
            strided < leaves.len() / 10,
            "scatter allocation must break contiguity ({strided} strided pairs)"
        );
    }

    #[test]
    fn search_touches_height_nodes() {
        let (t, _) = setup(32 * 32 * 32);
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        t.search(&mut em, 12345);
        assert_eq!(a.len() as u32, t.height() * 2);
    }

    #[test]
    fn overlapping_scans_repeat_leaf_sequence() {
        let (t, _) = setup(32 * 32 * 8);
        let scan = |t: &BPlusTree| {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            t.range_scan(&mut em, 640, 320);
            a.iter().map(|x| x.addr).collect::<Vec<_>>()
        };
        assert_eq!(scan(&t), scan(&t), "overlapping scans repeat exactly");
    }

    #[test]
    fn scan_visits_enough_leaves() {
        let (t, _) = setup(32 * 32 * 8);
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let visited = t.range_scan(&mut em, 0, 320);
        assert_eq!(visited, 10); // 320 keys / 32 per leaf
    }

    #[test]
    fn search_key_wraps() {
        let (t, _) = setup(100);
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        t.search(&mut em, u64::MAX); // must not panic
        assert!(!a.is_empty());
    }

    #[test]
    fn insert_writes_leaf() {
        let (t, sym) = setup(1000);
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let mut rng = SmallRng::seed_from_u64(3);
        t.insert(&mut em, 17, &mut rng);
        assert!(a
            .iter()
            .any(|x| x.kind == tempstream_trace::AccessKind::Write));
        assert_eq!(sym.name(a[0].function), "sqliInsert");
        for x in &a {
            assert_eq!(sym.category(x.function), MissCategory::Db2IndexPageTuple);
        }
    }
}
