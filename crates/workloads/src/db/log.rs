//! The write-ahead log manager.
//!
//! A classic coherence hotspot: every transaction appends to the same log
//! buffer under the same lock, from whichever processor it runs on. The
//! lock word and buffer-header blocks migrate between processors while
//! the record area is written sequentially through a ring.

use crate::emitter::Emitter;
use crate::layout::AddressSpace;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES};

/// The log-manager substrate.
#[derive(Debug)]
pub struct LogManager {
    lock: Address,
    header: Address,
    buffer_base: Address,
    buffer_blocks: u64,
    cursor: u64,
    f_append: FunctionId,
}

impl LogManager {
    /// Lays out a log buffer of `buffer_bytes` (ring).
    pub fn new(buffer_bytes: u64, symbols: &mut SymbolTable, space: &mut AddressSpace) -> Self {
        let mut meta = space.region("log-meta", 2 * BLOCK_BYTES);
        let buffer = space.region("log-buffer", buffer_bytes.max(BLOCK_BYTES));
        LogManager {
            lock: meta.alloc(64),
            header: meta.alloc(64),
            buffer_base: buffer.base(),
            buffer_blocks: buffer.size() / BLOCK_BYTES,
            cursor: 0,
            // The log lives in DB2's engine; its functions carry opaque
            // names, so the paper's categorization lands them in DB2-other.
            f_append: symbols.intern("sqlpWriteLR", MissCategory::Db2Other),
        }
    }

    /// Appends a record of `bytes`: lock, sequential ring writes, header
    /// update, unlock.
    pub fn append(&mut self, em: &mut Emitter<'_>, bytes: u64) {
        em.in_function(self.f_append, |em| {
            em.read(self.lock);
            em.write(self.lock);
            em.read(self.header);
            let blocks = bytes.div_ceil(BLOCK_BYTES).max(1);
            for _ in 0..blocks {
                let b = self.cursor % self.buffer_blocks;
                self.cursor += 1;
                em.write(self.buffer_base.offset(b * BLOCK_BYTES));
            }
            em.write(self.header);
            em.write(self.lock);
            em.work(50);
        });
    }

    /// Total blocks appended.
    pub fn blocks_written(&self) -> u64 {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{AccessKind, MemoryAccess};

    fn setup() -> (LogManager, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        (LogManager::new(4096, &mut sym, &mut space), sym)
    }

    #[test]
    fn append_holds_lock_and_writes_ring() {
        let (mut log, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        log.append(&mut em, 128);
        assert_eq!(a[0].kind, AccessKind::Read); // lock read
        assert_eq!(a[0].addr, a.last().unwrap().addr); // unlock same word
        assert_eq!(log.blocks_written(), 2);
    }

    #[test]
    fn ring_wraps() {
        let (mut log, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        log.append(&mut em, 4096);
        a.clear();
        let mut em = Emitter::new(&mut a);
        log.append(&mut em, 64);
        let record_writes: Vec<_> = a
            .iter()
            .filter(|x| x.addr.raw() >= log.buffer_base.raw())
            .collect();
        assert_eq!(record_writes[0].addr, log.buffer_base);
    }

    #[test]
    fn lock_address_is_stable() {
        let (mut log, _) = setup();
        let lock_addr = |log: &mut LogManager| {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            log.append(&mut em, 64);
            a[0].addr
        };
        assert_eq!(lock_addr(&mut log), lock_addr(&mut log));
    }
}
