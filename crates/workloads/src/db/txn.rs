//! Transaction metadata: the active-transaction table, per-request control
//! blocks, and client/server IPC.
//!
//! The paper attributes OLTP's coherence activity to exactly this kind of
//! metadata — "data structures that do not reside on disk or within the
//! buffer pool, such as locks, transaction tables, or the query plans" —
//! and reports ~90% stream fractions for the `sqlrr`/`sqlra` request
//! control and IPC categories.

use crate::emitter::Emitter;
use crate::layout::AddressSpace;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES};

/// The shared active-transaction table.
#[derive(Debug)]
pub struct TransactionTable {
    lock: Address,
    entries: Vec<Address>,
    in_use: Vec<bool>,
    scan_hint: u32,
    f_begin: FunctionId,
    f_commit: FunctionId,
}

impl TransactionTable {
    /// Lays out a table of `slots` transaction entries (2 blocks each).
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: u32, symbols: &mut SymbolTable, space: &mut AddressSpace) -> Self {
        assert!(slots > 0, "transaction table needs slots");
        let mut region = space.region("txn-table", u64::from(slots) * 128 + 64);
        let lock = region.alloc(64);
        let entries = (0..slots).map(|_| region.alloc(128)).collect();
        TransactionTable {
            lock,
            entries,
            in_use: vec![false; slots as usize],
            scan_hint: 0,
            f_begin: symbols.intern("sqlrrBeginTxn", MissCategory::Db2RequestControl),
            f_commit: symbols.intern("sqlrrCommit", MissCategory::Db2RequestControl),
        }
    }

    /// Begins a transaction: lock, scan for a free slot from the hint
    /// (reading each inspected entry), claim it. Returns the slot.
    pub fn begin(&mut self, em: &mut Emitter<'_>) -> u32 {
        let n = self.entries.len() as u32;
        em.in_function(self.f_begin, |em| {
            em.read(self.lock);
            em.write(self.lock);
            let mut slot = self.scan_hint;
            for _ in 0..n {
                em.read(self.entries[slot as usize]);
                if !self.in_use[slot as usize] {
                    break;
                }
                slot = (slot + 1) % n;
            }
            self.in_use[slot as usize] = true;
            self.scan_hint = (slot + 1) % n;
            em.write(self.entries[slot as usize]);
            em.write(self.lock);
            slot
        })
    }

    /// Commits the transaction in `slot`.
    pub fn commit(&mut self, em: &mut Emitter<'_>, slot: u32) {
        let slot = slot % self.entries.len() as u32;
        em.in_function(self.f_commit, |em| {
            em.read(self.lock);
            em.write(self.lock);
            em.read(self.entries[slot as usize]);
            em.write(self.entries[slot as usize]);
            em.write(self.lock);
        });
        self.in_use[slot as usize] = false;
    }

    /// Active transactions.
    pub fn active(&self) -> usize {
        self.in_use.iter().filter(|&&b| b).count()
    }
}

/// Per-connection request/cursor context (`sqlrr`/`sqlra`).
#[derive(Debug)]
pub struct RequestControl {
    contexts: Vec<Address>,
    f_ctx: FunctionId,
    f_cursor: FunctionId,
}

impl RequestControl {
    /// Lays out `connections` context areas (4 blocks each).
    pub fn new(connections: u32, symbols: &mut SymbolTable, space: &mut AddressSpace) -> Self {
        let mut region = space.region("request-ctx", u64::from(connections.max(1)) * 256);
        let contexts = (0..connections.max(1)).map(|_| region.alloc(256)).collect();
        RequestControl {
            contexts,
            f_ctx: symbols.intern("sqlrrProcessRequest", MissCategory::Db2RequestControl),
            f_cursor: symbols.intern("sqlraCursorFetch", MissCategory::Db2RequestControl),
        }
    }

    /// Touches connection `conn`'s request context (read-mostly, one
    /// update).
    pub fn touch(&self, em: &mut Emitter<'_>, conn: u32) {
        let ctx = self.contexts[conn as usize % self.contexts.len()];
        em.in_function(self.f_ctx, |em| {
            em.read(ctx);
            em.read(ctx.offset(BLOCK_BYTES));
            em.write(ctx);
            em.work(40);
        });
    }

    /// Advances connection `conn`'s cursor state.
    pub fn cursor_step(&self, em: &mut Emitter<'_>, conn: u32) {
        let ctx = self.contexts[conn as usize % self.contexts.len()];
        em.in_function(self.f_cursor, |em| {
            em.read(ctx.offset(2 * BLOCK_BYTES));
            em.write(ctx.offset(2 * BLOCK_BYTES));
            em.work(20);
        });
    }
}

/// Client/server interprocess communication buffers.
#[derive(Debug)]
pub struct Db2Ipc {
    /// Per-connection request/reply buffer pairs (reused).
    buffers: Vec<Address>,
    f_recv: FunctionId,
    f_send: FunctionId,
}

impl Db2Ipc {
    /// Lays out `connections` IPC buffer pairs (8 blocks each).
    pub fn new(connections: u32, symbols: &mut SymbolTable, space: &mut AddressSpace) -> Self {
        let mut region = space.region("db2-ipc", u64::from(connections.max(1)) * 512);
        let buffers = (0..connections.max(1)).map(|_| region.alloc(512)).collect();
        Db2Ipc {
            buffers,
            f_recv: symbols.intern("sqljrRecv", MissCategory::Db2Ipc),
            f_send: symbols.intern("sqljrSend", MissCategory::Db2Ipc),
        }
    }

    /// Receives a request on `conn`: the client process wrote the shared
    /// request area, so the server's reads pull remotely-written blocks
    /// (coherence misses that recur per connection). A doorbell word is
    /// written back.
    pub fn recv(&self, em: &mut Emitter<'_>, conn: u32, rng: &mut SmallRng) {
        let buf = self.buffers[conn as usize % self.buffers.len()];
        em.in_function(self.f_recv, |em| {
            let blocks = rng.gen_range(2..=4u64);
            for b in 0..blocks {
                em.read(buf.offset(b * BLOCK_BYTES));
            }
            em.write(buf); // doorbell/consumed flag
            em.work(40);
        });
    }

    /// Sends a reply on `conn`: writes the same shared area the next
    /// request will be read from (both directions use one segment).
    pub fn send(&self, em: &mut Emitter<'_>, conn: u32, rng: &mut SmallRng) {
        let buf = self.buffers[conn as usize % self.buffers.len()];
        em.in_function(self.f_send, |em| {
            let blocks = rng.gen_range(2..=4u64);
            for b in 0..blocks {
                em.write(buf.offset(b * BLOCK_BYTES));
            }
            em.work(40);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup() -> (TransactionTable, RequestControl, Db2Ipc, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        (
            TransactionTable::new(16, &mut sym, &mut space),
            RequestControl::new(8, &mut sym, &mut space),
            Db2Ipc::new(8, &mut sym, &mut space),
            sym,
        )
    }

    #[test]
    fn begin_commit_cycle() {
        let (mut tt, _, _, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let s1 = tt.begin(&mut em);
        let s2 = tt.begin(&mut em);
        assert_ne!(s1, s2);
        assert_eq!(tt.active(), 2);
        tt.commit(&mut em, s1);
        tt.commit(&mut em, s2);
        assert_eq!(tt.active(), 0);
    }

    #[test]
    fn slots_are_reused_after_commit() {
        let (mut tt, _, _, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        for _ in 0..100 {
            let s = tt.begin(&mut em);
            tt.commit(&mut em, s);
        }
        assert_eq!(tt.active(), 0);
    }

    #[test]
    fn full_table_still_yields_slot() {
        let (mut tt, _, _, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        for _ in 0..16 {
            tt.begin(&mut em);
        }
        // Table full: begin still returns a slot (oversubscription reuses
        // the scan position) without panicking.
        let s = tt.begin(&mut em);
        assert!(s < 16);
    }

    #[test]
    fn request_context_is_per_connection() {
        let (_, rc, _, _) = setup();
        let addr_of = |conn: u32| {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            rc.touch(&mut em, conn);
            a[0].addr
        };
        assert_eq!(addr_of(1), addr_of(1));
        assert_ne!(addr_of(1), addr_of(2));
    }

    #[test]
    fn ipc_reuses_connection_buffers() {
        let (_, _, ipc, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let mut rng = SmallRng::seed_from_u64(1);
        ipc.recv(&mut em, 3, &mut rng);
        ipc.send(&mut em, 3, &mut rng);
        let first = a[0].addr;
        a.clear();
        let mut em = Emitter::new(&mut a);
        ipc.recv(&mut em, 3, &mut rng);
        assert_eq!(a[0].addr, first);
        for x in &a {
            assert_eq!(sym.category(x.function), MissCategory::Db2Ipc);
        }
    }
}
