//! IP packet assembly.
//!
//! Models the paper's "Kernel IP packet assembly" category: functions that
//! divide data written to sockets into individual IP packets. Per-packet
//! work touches the connection's TCP/IP control block (shared, fixed
//! address) and writes headers into a per-CPU transmit descriptor ring
//! that is aggressively reused.

use crate::emitter::Emitter;
use crate::kernel::KernelConfig;
use crate::layout::AddressSpace;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES};

/// Bytes per packet (Ethernet-ish MTU).
const MTU: u64 = 1460;

/// Transmit-ring descriptors per CPU.
const TX_RING: u64 = 64;

/// A connection handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnId(pub u32);

/// Route-cache blocks (shared, hashed by connection).
const ROUTE_BLOCKS: u64 = 16_384;

/// TCP timer-wheel slots (shared, written per packet).
const TIMER_SLOTS: u64 = 512;

/// The IP stack substrate.
#[derive(Debug)]
pub struct IpStack {
    /// Per-connection TCP/IP control blocks (2 blocks, scattered).
    conn_blocks: Vec<Address>,
    /// Per-CPU transmit rings.
    tx_rings: Vec<Address>,
    tx_cursor: Vec<u64>,
    /// Shared route cache (read per packet).
    route_base: Address,
    /// Shared retransmit timer wheel (written per packet).
    timer_base: Address,
    timer_cursor: u64,
    f_ip_output: FunctionId,
    f_tcp_send: FunctionId,
    f_putnext: FunctionId,
    f_timer: FunctionId,
}

impl IpStack {
    /// Lays out control blocks for 1024 connections and one TX ring per
    /// CPU.
    pub fn new(
        config: &KernelConfig,
        symbols: &mut SymbolTable,
        space: &mut AddressSpace,
        rng: &mut SmallRng,
    ) -> Self {
        let conns = 1024u32;
        let conn_region = space.region("tcp-conns", u64::from(conns) * 256);
        let conn_blocks = (0..conns)
            .map(|_| conn_region.alloc_scattered(rng, 128))
            .collect();
        let mut ring_region = space.region(
            "tx-rings",
            u64::from(config.num_cpus) * TX_RING * BLOCK_BYTES,
        );
        let tx_rings = (0..config.num_cpus)
            .map(|_| ring_region.alloc(TX_RING * BLOCK_BYTES))
            .collect();
        let route_region = space.region("route-cache", ROUTE_BLOCKS * BLOCK_BYTES);
        let timer_region = space.region("tcp-timers", TIMER_SLOTS * BLOCK_BYTES);
        IpStack {
            conn_blocks,
            tx_rings,
            tx_cursor: vec![0; config.num_cpus as usize],
            route_base: route_region.base(),
            timer_base: timer_region.base(),
            timer_cursor: 0,
            f_ip_output: symbols.intern("ip_output", MissCategory::KernelIpPacket),
            f_tcp_send: symbols.intern("tcp_send_data", MissCategory::KernelIpPacket),
            f_putnext: symbols.intern("putnext", MissCategory::KernelIpPacket),
            f_timer: symbols.intern("tcp_timer", MissCategory::KernelIpPacket),
        }
    }

    /// Sends `bytes` on `conn` from `cpu`: one header-assembly round per
    /// MTU-sized packet. Returns the number of packets emitted.
    pub fn send(&mut self, em: &mut Emitter<'_>, cpu: u32, conn: ConnId, bytes: u64) -> u64 {
        let cb = self.conn_blocks[conn.0 as usize % self.conn_blocks.len()];
        let c = cpu as usize % self.tx_rings.len();
        let ring = self.tx_rings[c];
        let packets = bytes.div_ceil(MTU).max(1);
        em.in_function(self.f_tcp_send, |em| {
            em.read(cb);
            em.read(cb.offset(BLOCK_BYTES));
            em.in_function(self.f_ip_output, |em| {
                let route = self
                    .route_base
                    .offset(u64::from(conn.0).wrapping_mul(0x9E37) % ROUTE_BLOCKS * BLOCK_BYTES);
                for _ in 0..packets {
                    // Sequence-number update on the shared control block,
                    // route lookup, header write into the reused TX ring
                    // slot, and a retransmit-timer arm.
                    em.write(cb);
                    em.read(route);
                    let slot = self.tx_cursor[c] % TX_RING;
                    self.tx_cursor[c] += 1;
                    em.write(ring.offset(slot * BLOCK_BYTES));
                    em.in_function(self.f_timer, |em| {
                        let t = self.timer_cursor % TIMER_SLOTS;
                        self.timer_cursor += 1;
                        em.read(self.timer_base.offset(t * BLOCK_BYTES));
                        em.write(self.timer_base.offset(t * BLOCK_BYTES));
                    });
                    em.work(90);
                }
            });
            em.in_function(self.f_putnext, |em| em.read(cb.offset(BLOCK_BYTES)));
        });
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup() -> (IpStack, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        let mut rng = SmallRng::seed_from_u64(2);
        (
            IpStack::new(&KernelConfig::default(), &mut sym, &mut space, &mut rng),
            sym,
        )
    }

    #[test]
    fn packet_count_follows_mtu() {
        let (mut ip, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        assert_eq!(ip.send(&mut em, 0, ConnId(1), 100), 1);
        assert_eq!(ip.send(&mut em, 0, ConnId(1), 3000), 3);
        assert_eq!(ip.send(&mut em, 0, ConnId(1), 0), 1);
    }

    #[test]
    fn tx_ring_wraps_and_reuses_slots() {
        let (mut ip, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        ip.send(&mut em, 0, ConnId(0), TX_RING * MTU); // fills the ring once
        let first_slot = a
            .iter()
            .find(|x| x.addr.raw() >= ip.tx_rings[0].raw())
            .unwrap()
            .addr;
        a.clear();
        let mut em = Emitter::new(&mut a);
        ip.send(&mut em, 0, ConnId(0), MTU);
        assert!(a.iter().any(|x| x.addr == first_slot), "ring must wrap");
    }

    #[test]
    fn control_block_is_shared_across_cpus() {
        let (mut ip, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        ip.send(&mut em, 0, ConnId(5), 100);
        let cb = a[0].addr;
        a.clear();
        let mut em = Emitter::new(&mut a);
        ip.send(&mut em, 1, ConnId(5), 100);
        assert_eq!(a[0].addr, cb);
    }

    #[test]
    fn labels_are_ip_category() {
        let (mut ip, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        ip.send(&mut em, 0, ConnId(0), 2000);
        for x in &a {
            assert_eq!(sym.category(x.function), MissCategory::KernelIpPacket);
        }
    }
}
