//! Software TLB fills and register-window traps.
//!
//! Models the paper's "Kernel MMU & trap handlers" category. SPARC/Solaris
//! fills MMU translations in software: a `data_access_MMU_miss` trap walks
//! a hashed page table (the TSB/HME hash chains) in memory. Because the
//! same virtual pages are translated again and again, the walk misses
//! repeat — the paper highlights these as a large stream source in OLTP.
//! Register-window spill/fill traps touch the per-thread kernel stack.

use crate::emitter::Emitter;
use crate::kernel::KernelConfig;
use crate::layout::AddressSpace;
use tempstream_trace::{Address, CpuId, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES};

/// Per-CPU TLB entries (direct-mapped on page number).
const TLB_ENTRIES: usize = 512;

/// The MMU substrate.
#[derive(Debug)]
pub struct MmuModel {
    /// Hashed page table: an array of bucket blocks.
    table_base: Address,
    buckets: u64,
    /// Per-thread kernel stacks for window spill/fill.
    stack_base: Address,
    stacks: u64,
    /// Direct-mapped TLB per CPU: `tlb[cpu][idx] = page+1` (0 = empty).
    tlb: Vec<Vec<u64>>,
    f_dmmu: FunctionId,
    f_immu: FunctionId,
    f_winspill: FunctionId,
}

impl MmuModel {
    /// Lays out the hashed page table (4 MB) and kernel stacks.
    pub fn new(config: &KernelConfig, symbols: &mut SymbolTable, space: &mut AddressSpace) -> Self {
        // 16 MB of hash buckets: translation walks regularly miss the L2,
        // as they do on the paper's systems (large page working sets).
        let buckets = 262_144u64;
        let table = space.region("page-table", buckets * BLOCK_BYTES);
        let stacks = u64::from(config.num_threads.max(1));
        let stack_region = space.region("kernel-stacks", stacks * 1024);
        MmuModel {
            table_base: table.base(),
            buckets,
            stack_base: stack_region.base(),
            stacks,
            tlb: vec![vec![0; TLB_ENTRIES]; config.num_cpus as usize],
            f_dmmu: symbols.intern("data_access_MMU_miss", MissCategory::KernelMmuTrap),
            f_immu: symbols.intern("instruction_access_MMU_miss", MissCategory::KernelMmuTrap),
            f_winspill: symbols.intern("winfix_trap", MissCategory::KernelMmuTrap),
        }
    }

    /// Translates the page of `addr` on `cpu`; on a TLB miss, emits the
    /// hashed-page-table walk. Returns `true` if a walk happened.
    pub fn translate(&mut self, em: &mut Emitter<'_>, cpu: CpuId, addr: Address) -> bool {
        let page = addr.page();
        let c = cpu.index() % self.tlb.len();
        let idx = (page as usize) % TLB_ENTRIES;
        if self.tlb[c][idx] == page + 1 {
            return false;
        }
        self.tlb[c][idx] = page + 1;
        em.in_function(self.f_dmmu, |em| {
            // Hash-chain walk: primary bucket, then one chained bucket
            // (different hash), then the TSB update store.
            let h1 = page.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.buckets;
            let h2 = (page.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (page >> 7)) % self.buckets;
            em.read(self.table_base.offset(h1 * BLOCK_BYTES));
            em.read(self.table_base.offset(h2 * BLOCK_BYTES));
            em.write(self.table_base.offset(h1 * BLOCK_BYTES));
            em.work(40);
        });
        true
    }

    /// An instruction-side TLB fill for a code page (same walk under the
    /// I-side trap label).
    pub fn translate_code(&mut self, em: &mut Emitter<'_>, cpu: CpuId, addr: Address) -> bool {
        let page = addr.page();
        let c = cpu.index() % self.tlb.len();
        let idx = (page as usize) % TLB_ENTRIES;
        if self.tlb[c][idx] == page + 1 {
            return false;
        }
        self.tlb[c][idx] = page + 1;
        em.in_function(self.f_immu, |em| {
            let h1 = page.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.buckets;
            em.read(self.table_base.offset(h1 * BLOCK_BYTES));
            em.write(self.table_base.offset(h1 * BLOCK_BYTES));
            em.work(40);
        });
        true
    }

    /// A register-window spill/fill trap: eight registers move to/from the
    /// thread's kernel stack (two blocks).
    pub fn window_trap(&self, em: &mut Emitter<'_>, thread: u32) {
        let t = u64::from(thread) % self.stacks;
        let stack = self.stack_base.offset(t * 1024);
        em.in_function(self.f_winspill, |em| {
            em.write(stack);
            em.write(stack.offset(BLOCK_BYTES));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup() -> (MmuModel, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        (
            MmuModel::new(&KernelConfig::default(), &mut sym, &mut space),
            sym,
        )
    }

    #[test]
    fn tlb_hit_after_fill() {
        let (mut m, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let addr = Address::new(123 * 4096 + 17);
        assert!(m.translate(&mut em, CpuId::new(0), addr));
        assert!(!m.translate(&mut em, CpuId::new(0), addr));
        // Different CPU has its own TLB.
        assert!(m.translate(&mut em, CpuId::new(1), addr));
    }

    #[test]
    fn walk_is_repeatable_per_page() {
        let (mut m, _) = setup();
        let addr = Address::new(55 * 4096);
        let walk = |m: &mut MmuModel, cpu: u32| {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            m.translate(&mut em, CpuId::new(cpu), addr);
            a.iter().map(|x| x.addr).collect::<Vec<_>>()
        };
        let w0 = walk(&mut m, 0);
        let w1 = walk(&mut m, 1);
        assert_eq!(w0, w1, "same page walks the same chain on every cpu");
        assert_eq!(w0.len(), 3);
    }

    #[test]
    fn conflicting_pages_evict() {
        let (mut m, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let p1 = Address::new(7 * 4096);
        let p2 = Address::new((7 + TLB_ENTRIES as u64) * 4096); // same TLB index
        assert!(m.translate(&mut em, CpuId::new(0), p1));
        assert!(m.translate(&mut em, CpuId::new(0), p2));
        assert!(m.translate(&mut em, CpuId::new(0), p1), "p1 evicted by p2");
    }

    #[test]
    fn window_trap_touches_thread_stack() {
        let (m, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        m.window_trap(&mut em, 3);
        m.window_trap(&mut em, 3);
        assert_eq!(a[0].addr, a[2].addr);
        assert_eq!(sym.category(a[0].function), MissCategory::KernelMmuTrap);
    }

    #[test]
    fn code_walk_uses_immu_label() {
        let (mut m, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        m.translate_code(&mut em, CpuId::new(0), Address::new(0x800000));
        assert_eq!(sym.name(a[0].function), "instruction_access_MMU_miss");
    }
}
