//! System-call implementation accesses.
//!
//! Models the paper's "System call implementation" category, dominated by
//! I/O calls: `poll` (the web server's connection multiplexing — a scan
//! over pollfd entries and their file/vnode structures), `read`/`write`
//! (file structure, vnode, offset update), `open` and `stat`.

use crate::emitter::Emitter;
use crate::kernel::KernelConfig;
use crate::layout::AddressSpace;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES};

/// A process handle for syscall purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcId(pub u32);

/// The syscall substrate.
#[derive(Debug)]
pub struct SyscallModel {
    /// Per-process fd table: `fds_per_process` contiguous entry blocks.
    fd_tables: Vec<Address>,
    fds_per_process: u32,
    /// file_t structures, one per (process, fd), scattered.
    file_structs: Vec<Address>,
    /// vnodes shared across processes (fewer vnodes than files).
    vnodes: Vec<Address>,
    /// pollcache header per process.
    pollcaches: Vec<Address>,
    f_poll: FunctionId,
    f_read: FunctionId,
    f_write: FunctionId,
    f_open: FunctionId,
    f_stat: FunctionId,
}

impl SyscallModel {
    /// Lays out fd tables, file structures, and vnodes.
    pub fn new(
        config: &KernelConfig,
        symbols: &mut SymbolTable,
        space: &mut AddressSpace,
        rng: &mut SmallRng,
    ) -> Self {
        let procs = config.num_processes.max(1);
        let fds = config.fds_per_process.max(1);
        let mut fd_region = space.region("fd-tables", u64::from(procs) * u64::from(fds) * 64);
        let fd_tables = (0..procs)
            .map(|_| fd_region.alloc(u64::from(fds) * 64))
            .collect();
        let file_region = space.region("file-structs", u64::from(procs) * u64::from(fds) * 128);
        let file_structs = (0..procs * fds)
            .map(|_| file_region.alloc_scattered(rng, 64))
            .collect();
        let num_vnodes = (procs * fds / 4).max(1);
        let vnode_region = space.region("vnodes", u64::from(num_vnodes) * 192);
        let mut vnode_region = vnode_region;
        let vnodes = (0..num_vnodes).map(|_| vnode_region.alloc(128)).collect();
        let mut poll_region = space.region("pollcache", u64::from(procs) * 64);
        let pollcaches = (0..procs).map(|_| poll_region.alloc(64)).collect();
        SyscallModel {
            fd_tables,
            fds_per_process: fds,
            file_structs,
            vnodes,
            pollcaches,
            f_poll: symbols.intern("poll", MissCategory::SystemCall),
            f_read: symbols.intern("read", MissCategory::SystemCall),
            f_write: symbols.intern("write", MissCategory::SystemCall),
            f_open: symbols.intern("open", MissCategory::SystemCall),
            f_stat: symbols.intern("stat", MissCategory::SystemCall),
        }
    }

    fn fd_entry(&self, proc_: ProcId, fd: u32) -> Address {
        let p = proc_.0 as usize % self.fd_tables.len();
        let fd = u64::from(fd % self.fds_per_process);
        self.fd_tables[p].offset(fd * BLOCK_BYTES)
    }

    fn file_struct(&self, proc_: ProcId, fd: u32) -> Address {
        let p = proc_.0 % self.fd_tables.len() as u32;
        let idx = (p * self.fds_per_process + fd % self.fds_per_process) as usize;
        self.file_structs[idx % self.file_structs.len()]
    }

    fn vnode(&self, proc_: ProcId, fd: u32) -> Address {
        let p = proc_.0 % self.fd_tables.len() as u32;
        let idx = ((p * self.fds_per_process + fd % self.fds_per_process) / 4) as usize;
        self.vnodes[idx % self.vnodes.len()]
    }

    /// `poll(2)`: scan `nfds` consecutive pollfd entries starting at
    /// `first_fd`, reading each fd entry and (for a subset) the backing
    /// file structure.
    pub fn poll(&self, em: &mut Emitter<'_>, proc_: ProcId, first_fd: u32, nfds: u32) {
        em.in_function(self.f_poll, |em| {
            let p = proc_.0 as usize % self.pollcaches.len();
            em.read(self.pollcaches[p]);
            em.write(self.pollcaches[p]);
            for i in 0..nfds {
                let fd = first_fd + i;
                em.read(self.fd_entry(proc_, fd));
                if i % 2 == 0 {
                    em.read(self.file_struct(proc_, fd));
                }
            }
            em.work(u64::from(nfds) * 6);
        });
    }

    /// `read(2)` bookkeeping (file struct, vnode, offset update). The data
    /// transfer itself is emitted by the caller (copy engine / STREAMS).
    pub fn sys_read(&self, em: &mut Emitter<'_>, proc_: ProcId, fd: u32) {
        em.in_function(self.f_read, |em| {
            em.read(self.fd_entry(proc_, fd));
            em.read(self.file_struct(proc_, fd));
            em.read(self.vnode(proc_, fd));
            em.write(self.file_struct(proc_, fd));
            em.work(60);
        });
    }

    /// `write(2)` bookkeeping.
    pub fn sys_write(&self, em: &mut Emitter<'_>, proc_: ProcId, fd: u32) {
        em.in_function(self.f_write, |em| {
            em.read(self.fd_entry(proc_, fd));
            em.read(self.file_struct(proc_, fd));
            em.read(self.vnode(proc_, fd));
            em.write(self.file_struct(proc_, fd));
            em.write(self.vnode(proc_, fd));
            em.work(60);
        });
    }

    /// `open(2)`: fd allocation scan plus vnode lookup.
    pub fn sys_open(&self, em: &mut Emitter<'_>, proc_: ProcId, rng: &mut SmallRng) -> u32 {
        let fd = rng.gen_range(0..self.fds_per_process);
        em.in_function(self.f_open, |em| {
            for probe in 0..4u32 {
                em.read(self.fd_entry(proc_, fd.wrapping_add(probe)));
            }
            em.read(self.vnode(proc_, fd));
            em.write(self.fd_entry(proc_, fd));
            em.work(120);
        });
        fd
    }

    /// `stat(2)`: vnode attribute read.
    pub fn sys_stat(&self, em: &mut Emitter<'_>, proc_: ProcId, fd: u32) {
        em.in_function(self.f_stat, |em| {
            em.read(self.vnode(proc_, fd));
            em.read(self.vnode(proc_, fd).offset(BLOCK_BYTES));
            em.work(80);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup() -> (SyscallModel, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        let mut rng = SmallRng::seed_from_u64(1);
        (
            SyscallModel::new(&KernelConfig::default(), &mut sym, &mut space, &mut rng),
            sym,
        )
    }

    #[test]
    fn poll_scans_fd_entries_in_order() {
        let (s, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.poll(&mut em, ProcId(0), 0, 8);
        // pollcache r/w + 8 entries + 4 file structs.
        assert_eq!(a.len(), 2 + 8 + 4);
        // fd entries are contiguous blocks (strided scan); a[3] is the
        // file-struct read injected after entry 0.
        let fd0 = a[2].addr.raw();
        assert_eq!(a[4].addr.raw(), fd0 + 64); // entry 1 right after entry 0
        assert_eq!(a[5].addr.raw(), fd0 + 128);
    }

    #[test]
    fn poll_repeats_identically() {
        let (s, _) = setup();
        let run = || {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            s.poll(&mut em, ProcId(1), 4, 16);
            a.iter().map(|x| x.addr).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn read_write_touch_shared_vnode() {
        let (s, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.sys_read(&mut em, ProcId(0), 0);
        s.sys_read(&mut em, ProcId(0), 1); // fds 0-3 share a vnode
        let vnode_reads: Vec<_> = a.iter().filter(|x| x.addr == a[2].addr).collect();
        assert!(vnode_reads.len() >= 2);
    }

    #[test]
    fn open_returns_valid_fd() {
        let (s, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let mut rng = SmallRng::seed_from_u64(3);
        let fd = s.sys_open(&mut em, ProcId(2), &mut rng);
        assert!(fd < KernelConfig::default().fds_per_process);
        assert!(!a.is_empty());
    }

    #[test]
    fn all_labels_are_system_calls() {
        let (s, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let mut rng = SmallRng::seed_from_u64(4);
        s.poll(&mut em, ProcId(0), 0, 4);
        s.sys_read(&mut em, ProcId(0), 1);
        s.sys_write(&mut em, ProcId(0), 1);
        s.sys_open(&mut em, ProcId(0), &mut rng);
        s.sys_stat(&mut em, ProcId(0), 1);
        for x in &a {
            assert_eq!(sym.category(x.function), MissCategory::SystemCall);
        }
    }

    #[test]
    fn out_of_range_process_wraps() {
        let (s, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.sys_read(&mut em, ProcId(10_000), 9_999);
        assert_eq!(a.len(), 4);
    }
}
