//! Mutexes, condition variables, and sleep queues.
//!
//! Models the paper's "Kernel synchronization primitives" category:
//! Solaris adaptive mutexes at fixed addresses (lock words bounce between
//! processors — classic coherence temporal streams) and condition
//! variables whose waiting threads form linked lists of sleep-queue nodes
//! that are repeatedly walked in the same order.

use crate::emitter::Emitter;
use crate::kernel::KernelConfig;
use crate::layout::{AddressSpace, Region};
use std::collections::VecDeque;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, ThreadId};

/// Handle to one mutex in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutexId(u32);

/// Handle to one condition variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondvarId(u32);

/// The synchronization-primitive substrate.
#[derive(Debug)]
pub struct SyncPrimitives {
    mutex_addrs: Vec<Address>,
    cv_addrs: Vec<Address>,
    /// One sleep-queue node per kernel thread.
    sleepq_nodes: Vec<Address>,
    /// Waiting-thread queues per condvar (thread ids, FIFO).
    waiters: Vec<VecDeque<u32>>,
    f_mutex_enter: FunctionId,
    f_mutex_exit: FunctionId,
    f_cv_wait: FunctionId,
    f_cv_signal: FunctionId,
    f_sleepq: FunctionId,
}

impl SyncPrimitives {
    /// Lays out the mutex/condvar tables and sleep-queue nodes.
    pub fn new(config: &KernelConfig, symbols: &mut SymbolTable, space: &mut AddressSpace) -> Self {
        let mut region: Region = space.region(
            "sync",
            u64::from(config.num_mutexes + config.num_condvars + config.num_threads) * 64 + 4096,
        );
        let mutex_addrs = (0..config.num_mutexes).map(|_| region.alloc(64)).collect();
        let cv_addrs = (0..config.num_condvars).map(|_| region.alloc(64)).collect();
        let sleepq_nodes = (0..config.num_threads).map(|_| region.alloc(64)).collect();
        SyncPrimitives {
            mutex_addrs,
            cv_addrs,
            sleepq_nodes,
            waiters: vec![VecDeque::new(); config.num_condvars as usize],
            f_mutex_enter: symbols.intern("mutex_enter", MissCategory::KernelSynchronization),
            f_mutex_exit: symbols.intern("mutex_exit", MissCategory::KernelSynchronization),
            f_cv_wait: symbols.intern("cv_wait", MissCategory::KernelSynchronization),
            f_cv_signal: symbols.intern("cv_signal", MissCategory::KernelSynchronization),
            f_sleepq: symbols.intern("sleepq_insert", MissCategory::KernelSynchronization),
        }
    }

    /// Number of mutexes in the table.
    pub fn num_mutexes(&self) -> u32 {
        self.mutex_addrs.len() as u32
    }

    /// Number of condition variables.
    pub fn num_condvars(&self) -> u32 {
        self.cv_addrs.len() as u32
    }

    /// Returns the mutex handle for slot `i` (wrapping).
    pub fn mutex(&self, i: u32) -> MutexId {
        MutexId(i % self.mutex_addrs.len() as u32)
    }

    /// Returns the condvar handle for slot `i` (wrapping).
    pub fn condvar(&self, i: u32) -> CondvarId {
        CondvarId(i % self.cv_addrs.len() as u32)
    }

    /// Acquires `m`: test-and-set on the lock word.
    pub fn mutex_enter(&self, em: &mut Emitter<'_>, m: MutexId) {
        let a = self.mutex_addrs[m.0 as usize];
        em.in_function(self.f_mutex_enter, |em| {
            em.read(a);
            em.write(a);
        });
    }

    /// Releases `m`.
    pub fn mutex_exit(&self, em: &mut Emitter<'_>, m: MutexId) {
        let a = self.mutex_addrs[m.0 as usize];
        em.in_function(self.f_mutex_exit, |em| em.write(a));
    }

    /// Runs `body` holding `m`.
    pub fn with_mutex<R>(
        &self,
        em: &mut Emitter<'_>,
        m: MutexId,
        body: impl FnOnce(&mut Emitter<'_>) -> R,
    ) -> R {
        self.mutex_enter(em, m);
        let r = body(em);
        self.mutex_exit(em, m);
        r
    }

    /// Blocks `thread` on `cv`: links its sleep-queue node onto the
    /// condvar's waiter list.
    pub fn cv_wait(&mut self, em: &mut Emitter<'_>, cv: CondvarId, thread: ThreadId) {
        let cv_addr = self.cv_addrs[cv.0 as usize];
        let tid = thread.raw() % self.sleepq_nodes.len() as u32;
        let node = self.sleepq_nodes[tid as usize];
        em.in_function(self.f_cv_wait, |em| {
            em.read(cv_addr);
            em.in_function(self.f_sleepq, |em| {
                // Link at tail: read current tail node, write links.
                if let Some(&last) = self.waiters[cv.0 as usize].back() {
                    em.read(self.sleepq_nodes[last as usize]);
                }
                em.write(node);
                em.write(cv_addr);
            });
        });
        self.waiters[cv.0 as usize].push_back(tid);
    }

    /// Wakes the longest-waiting thread on `cv`, walking the sleep queue
    /// head. Returns the woken thread id, if any.
    pub fn cv_signal(&mut self, em: &mut Emitter<'_>, cv: CondvarId) -> Option<ThreadId> {
        let cv_addr = self.cv_addrs[cv.0 as usize];

        em.in_function(self.f_cv_signal, |em| {
            em.read(cv_addr);
            if let Some(first) = self.waiters[cv.0 as usize].pop_front() {
                em.read(self.sleepq_nodes[first as usize]);
                em.write(self.sleepq_nodes[first as usize]);
                em.write(cv_addr);
                Some(ThreadId::new(first))
            } else {
                None
            }
        })
    }

    /// Number of threads waiting on `cv`.
    pub fn waiter_count(&self, cv: CondvarId) -> usize {
        self.waiters[cv.0 as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup() -> (SyncPrimitives, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        let cfg = KernelConfig::default();
        let _ = tempstream_trace::rng::SmallRng::seed_from_u64(0);
        (SyncPrimitives::new(&cfg, &mut sym, &mut space), sym)
    }

    #[test]
    fn mutex_lock_word_is_stable() {
        let (s, _sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.mutex_enter(&mut em, s.mutex(3));
        s.mutex_exit(&mut em, s.mutex(3));
        s.mutex_enter(&mut em, s.mutex(3));
        // Same lock word address every time.
        assert_eq!(a[0].addr, a[2].addr);
        assert_eq!(a[0].addr, a[3].addr);
    }

    #[test]
    fn with_mutex_brackets_body() {
        let (s, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.with_mutex(&mut em, s.mutex(0), |em| em.read(Address::new(0x99940)));
        assert_eq!(sym.name(a[0].function), "mutex_enter");
        assert_eq!(sym.name(a.last().unwrap().function), "mutex_exit");
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn cv_wait_then_signal_fifo() {
        let (mut s, _sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let cv = s.condvar(1);
        s.cv_wait(&mut em, cv, ThreadId::new(5));
        s.cv_wait(&mut em, cv, ThreadId::new(9));
        assert_eq!(s.waiter_count(cv), 2);
        assert_eq!(s.cv_signal(&mut em, cv), Some(ThreadId::new(5)));
        assert_eq!(s.cv_signal(&mut em, cv), Some(ThreadId::new(9)));
        assert_eq!(s.cv_signal(&mut em, cv), None);
    }

    #[test]
    fn signal_empty_cv_touches_only_header() {
        let (mut s, _sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.cv_signal(&mut em, s.condvar(0));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn categories_are_kernel_sync() {
        let (mut s, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.cv_wait(&mut em, s.condvar(0), ThreadId::new(0));
        for acc in &a {
            assert_eq!(
                sym.category(acc.function),
                MissCategory::KernelSynchronization
            );
        }
    }
}
