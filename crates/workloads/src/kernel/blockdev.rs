//! Block-device (disk) driver.
//!
//! Models the paper's "Kernel block device driver" category (DB2
//! workloads): `buf` structures from a reused pool are queued on the
//! device, and completion processing walks the same structures — a small
//! number of functions with highly repetitive access patterns.

use crate::emitter::Emitter;
use crate::layout::AddressSpace;
use std::collections::VecDeque;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES};

/// `buf` structures in the reuse pool.
const BUF_POOL: u32 = 32;

/// The block-device substrate.
#[derive(Debug)]
pub struct BlockDev {
    device_queue: Address,
    bufs: Vec<Address>,
    next_buf: u32,
    inflight: VecDeque<u32>,
    f_strategy: FunctionId,
    f_intr: FunctionId,
    f_biowait: FunctionId,
}

impl BlockDev {
    /// Lays out the buf pool and device queue head.
    pub fn new(symbols: &mut SymbolTable, space: &mut AddressSpace) -> Self {
        let mut region = space.region("blockdev", u64::from(BUF_POOL + 1) * 2 * BLOCK_BYTES);
        let device_queue = region.alloc(64);
        let bufs = (0..BUF_POOL).map(|_| region.alloc(128)).collect();
        BlockDev {
            device_queue,
            bufs,
            next_buf: 0,
            inflight: VecDeque::new(),
            f_strategy: symbols.intern("sd_strategy", MissCategory::KernelBlockDevice),
            f_intr: symbols.intern("sd_intr", MissCategory::KernelBlockDevice),
            f_biowait: symbols.intern("biowait", MissCategory::KernelBlockDevice),
        }
    }

    /// Issues an I/O: allocates a `buf` from the pool, fills it, and queues
    /// it on the device.
    pub fn submit(&mut self, em: &mut Emitter<'_>) {
        let b = self.next_buf % BUF_POOL;
        self.next_buf = self.next_buf.wrapping_add(1);
        let buf = self.bufs[b as usize];
        em.in_function(self.f_strategy, |em| {
            em.write(buf);
            em.write(buf.offset(BLOCK_BYTES));
            em.read(self.device_queue);
            em.write(self.device_queue);
            em.work(50);
        });
        self.inflight.push_back(b);
    }

    /// Completion interrupt + `biowait` wakeup for the oldest in-flight
    /// I/O. Returns `true` if an I/O completed.
    pub fn complete(&mut self, em: &mut Emitter<'_>) -> bool {
        let Some(b) = self.inflight.pop_front() else {
            return false;
        };
        let buf = self.bufs[b as usize];
        em.in_function(self.f_intr, |em| {
            em.read(self.device_queue);
            em.write(self.device_queue);
            em.read(buf);
            em.read(buf.offset(BLOCK_BYTES));
            em.write(buf);
        });
        em.in_function(self.f_biowait, |em| em.read(buf.offset(BLOCK_BYTES)));
        true
    }

    /// In-flight I/O count.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup() -> (BlockDev, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        (BlockDev::new(&mut sym, &mut space), sym)
    }

    #[test]
    fn submit_complete_cycle() {
        let (mut d, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        d.submit(&mut em);
        d.submit(&mut em);
        assert_eq!(d.inflight(), 2);
        assert!(d.complete(&mut em));
        assert!(d.complete(&mut em));
        assert!(!d.complete(&mut em));
    }

    #[test]
    fn buf_pool_reuses() {
        let (mut d, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        {
            let mut em = Emitter::new(&mut a);
            d.submit(&mut em);
        }
        let first = a[0].addr;
        {
            let mut em = Emitter::new(&mut a);
            d.complete(&mut em);
            for _ in 0..BUF_POOL - 1 {
                d.submit(&mut em);
                d.complete(&mut em);
            }
        }
        a.clear();
        let mut em = Emitter::new(&mut a);
        d.submit(&mut em);
        assert_eq!(a[0].addr, first, "pool wraps to the first buf");
    }

    #[test]
    fn labels_are_blockdev() {
        let (mut d, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        d.submit(&mut em);
        d.complete(&mut em);
        for x in &a {
            assert_eq!(sym.category(x.function), MissCategory::KernelBlockDevice);
        }
    }
}
