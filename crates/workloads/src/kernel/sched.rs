//! The Solaris dispatcher: per-processor dispatch queues with work
//! stealing.
//!
//! The paper's second motivating example (§2.1): when a processor's own
//! dispatch queue is empty it scans the other queues in a fixed order —
//! real-time queue first, then the per-processor queues — via
//! `disp_getwork()`/`disp_getbest()`, removes a thread with `dispdeq()`,
//! and confirms with `disp_ratify()`. Because the queue locks live at
//! fixed addresses and every processor scans in the same order, these
//! misses form highly repetitive temporal streams.

use crate::emitter::Emitter;
use crate::kernel::KernelConfig;
use crate::layout::AddressSpace;
use std::collections::VecDeque;
use tempstream_trace::{Address, CpuId, FunctionId, MissCategory, SymbolTable, ThreadId};

/// The dispatcher substrate.
#[derive(Debug)]
pub struct Scheduler {
    /// disp lock + queue head block, one per CPU.
    disp_locks: Vec<Address>,
    disp_heads: Vec<Address>,
    /// The shared real-time queue header.
    rt_lock: Address,
    rt_head: Address,
    /// kthread structures (2 blocks each), one per kernel thread.
    thread_nodes: Vec<Address>,
    /// Runnable-thread queues per CPU.
    queues: Vec<VecDeque<u32>>,
    f_getwork: FunctionId,
    f_getbest: FunctionId,
    f_dispdeq: FunctionId,
    f_ratify: FunctionId,
    f_setbackdq: FunctionId,
}

impl Scheduler {
    /// Lays out dispatcher structures for `config.num_cpus` processors and
    /// `config.num_threads` kernel threads.
    pub fn new(config: &KernelConfig, symbols: &mut SymbolTable, space: &mut AddressSpace) -> Self {
        let mut region = space.region(
            "dispatcher",
            u64::from(config.num_cpus) * 128 + u64::from(config.num_threads) * 128 + 4096,
        );
        let disp_locks = (0..config.num_cpus).map(|_| region.alloc(64)).collect();
        let disp_heads = (0..config.num_cpus).map(|_| region.alloc(64)).collect();
        let rt_lock = region.alloc(64);
        let rt_head = region.alloc(64);
        let thread_nodes = (0..config.num_threads).map(|_| region.alloc(128)).collect();
        Scheduler {
            disp_locks,
            disp_heads,
            rt_lock,
            rt_head,
            thread_nodes,
            queues: vec![VecDeque::new(); config.num_cpus as usize],
            f_getwork: symbols.intern("disp_getwork", MissCategory::KernelScheduler),
            f_getbest: symbols.intern("disp_getbest", MissCategory::KernelScheduler),
            f_dispdeq: symbols.intern("dispdeq", MissCategory::KernelScheduler),
            f_ratify: symbols.intern("disp_ratify", MissCategory::KernelScheduler),
            f_setbackdq: symbols.intern("setbackdq", MissCategory::KernelScheduler),
        }
    }

    /// Number of runnable threads across all queues.
    pub fn runnable(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Makes `thread` runnable on `cpu`'s dispatch queue (`setbackdq`).
    pub fn enqueue(&mut self, em: &mut Emitter<'_>, cpu: CpuId, thread: ThreadId) {
        let c = cpu.index() % self.queues.len();
        let tid = thread.raw() % self.thread_nodes.len() as u32;
        em.in_function(self.f_setbackdq, |em| {
            em.read(self.disp_locks[c]);
            em.write(self.disp_locks[c]);
            if let Some(&tail) = self.queues[c].back() {
                em.read(self.thread_nodes[tail as usize]);
            }
            em.write(self.thread_nodes[tid as usize]);
            em.write(self.disp_heads[c]);
            em.write(self.disp_locks[c]);
        });
        self.queues[c].push_back(tid);
    }

    /// `disp_getwork`: picks the next thread for `cpu`. First scans its own
    /// queue; if empty, steals from the other queues in the fixed global
    /// order (real-time queue, then CPU 0, 1, 2, ...), exactly the scan the
    /// paper describes. Returns the dispatched thread, if any.
    pub fn dispatch(&mut self, em: &mut Emitter<'_>, cpu: CpuId) -> Option<ThreadId> {
        let c = cpu.index() % self.queues.len();
        em.call(self.f_getwork);
        em.read(self.disp_locks[c]);
        em.read(self.disp_heads[c]);
        let got = if let Some(tid) = self.queues[c].pop_front() {
            em.in_function(self.f_dispdeq, |em| {
                em.write(self.disp_locks[c]);
                em.read(self.thread_nodes[tid as usize]);
                em.write(self.disp_heads[c]);
                em.write(self.disp_locks[c]);
            });
            Some(tid)
        } else {
            self.steal(em, c)
        };
        em.ret();
        got.map(ThreadId::new)
    }

    /// `disp_getbest`: scan every other queue in fixed order.
    fn steal(&mut self, em: &mut Emitter<'_>, thief: usize) -> Option<u32> {
        em.call(self.f_getbest);
        // Real-time queue first.
        em.read(self.rt_lock);
        em.read(self.rt_head);
        let mut found = None;
        for victim in 0..self.queues.len() {
            if victim == thief {
                continue;
            }
            em.read(self.disp_locks[victim]);
            em.read(self.disp_heads[victim]);
            if let Some(&head) = self.queues[victim].front() {
                // Inspect the head thread's priority, then take it.
                em.read(self.thread_nodes[head as usize]);
                let tid = self.queues[victim].pop_front().expect("head exists");
                em.in_function(self.f_dispdeq, |em| {
                    em.write(self.disp_locks[victim]);
                    em.write(self.thread_nodes[tid as usize]);
                    em.write(self.disp_heads[victim]);
                    em.write(self.disp_locks[victim]);
                });
                em.in_function(self.f_ratify, |em| {
                    em.read(self.disp_locks[thief]);
                    em.read(self.disp_heads[thief]);
                });
                found = Some(tid);
                break;
            }
        }
        em.ret();
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup(cpus: u32) -> (Scheduler, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        let cfg = KernelConfig {
            num_cpus: cpus,
            ..KernelConfig::default()
        };
        (Scheduler::new(&cfg, &mut sym, &mut space), sym)
    }

    #[test]
    fn local_dispatch_fifo() {
        let (mut s, _) = setup(2);
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.enqueue(&mut em, CpuId::new(0), ThreadId::new(4));
        s.enqueue(&mut em, CpuId::new(0), ThreadId::new(7));
        assert_eq!(s.dispatch(&mut em, CpuId::new(0)), Some(ThreadId::new(4)));
        assert_eq!(s.dispatch(&mut em, CpuId::new(0)), Some(ThreadId::new(7)));
        assert_eq!(s.dispatch(&mut em, CpuId::new(0)), None);
    }

    #[test]
    fn stealing_takes_from_remote_queue() {
        let (mut s, _) = setup(4);
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.enqueue(&mut em, CpuId::new(3), ThreadId::new(11));
        assert_eq!(s.dispatch(&mut em, CpuId::new(0)), Some(ThreadId::new(11)));
        assert_eq!(s.runnable(), 0);
    }

    #[test]
    fn steal_scan_order_is_fixed() {
        // Two empty-dispatch scans must touch the same lock addresses in
        // the same order — the source of the repetitive streams.
        let (mut s, _) = setup(4);
        let addrs = |s: &mut Scheduler| {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            s.dispatch(&mut em, CpuId::new(1));
            a.iter().map(|x| x.addr).collect::<Vec<_>>()
        };
        let first = addrs(&mut s);
        let second = addrs(&mut s);
        assert_eq!(first, second);
        assert!(first.len() >= 2 + 2 + 3 * 2); // own q + rt q + 3 victims
    }

    #[test]
    fn labels_are_scheduler_functions() {
        let (mut s, sym) = setup(2);
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.enqueue(&mut em, CpuId::new(1), ThreadId::new(0));
        s.dispatch(&mut em, CpuId::new(0));
        let names: Vec<&str> = a.iter().map(|x| sym.name(x.function)).collect();
        assert!(names.contains(&"setbackdq"));
        assert!(names.contains(&"disp_getwork"));
        assert!(names.contains(&"disp_getbest"));
        assert!(names.contains(&"dispdeq"));
        assert!(names.contains(&"disp_ratify"));
        for x in &a {
            assert_eq!(sym.category(x.function), MissCategory::KernelScheduler);
        }
    }

    #[test]
    fn thread_ids_wrap_into_node_table() {
        let (mut s, _) = setup(2);
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        // Thread id beyond the node table must not panic.
        s.enqueue(&mut em, CpuId::new(0), ThreadId::new(1_000_000));
        assert_eq!(s.runnable(), 1);
    }
}
