//! Solaris-kernel behavioural substrates.
//!
//! Each module models one kernel mechanism the paper identifies as a miss
//! source (Table 2): the emitted access patterns come from real data
//! structures (queues, locks, hash tables, rings) laid out in the synthetic
//! address space.

pub mod blockdev;
pub mod copy;
pub mod ip;
pub mod mmu;
pub mod sched;
pub mod streams_ipc;
pub mod sync;
pub mod syscall;

use crate::layout::AddressSpace;
use tempstream_trace::rng::SmallRng;
use tempstream_trace::SymbolTable;

pub use blockdev::BlockDev;
pub use copy::CopyEngine;
pub use ip::IpStack;
pub use mmu::MmuModel;
pub use sched::Scheduler;
pub use streams_ipc::StreamsSubsystem;
pub use sync::SyncPrimitives;
pub use syscall::SyscallModel;

/// Kernel sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Number of processors.
    pub num_cpus: u32,
    /// Kernel threads backing the dispatch queues and sleep queues.
    pub num_threads: u32,
    /// STREAMS channels (one per CGI process pair in the web workloads).
    pub num_streams_channels: u32,
    /// Mutexes in the global mutex table.
    pub num_mutexes: u32,
    /// Condition variables.
    pub num_condvars: u32,
    /// Processes with file-descriptor tables.
    pub num_processes: u32,
    /// Open file descriptors per process.
    pub fds_per_process: u32,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            num_cpus: 4,
            num_threads: 64,
            num_streams_channels: 8,
            num_mutexes: 64,
            num_condvars: 64,
            num_processes: 8,
            fds_per_process: 256,
        }
    }
}

/// A facade bundling every kernel substrate, so workload compositions can
/// pass one `&mut Kernel` around.
#[derive(Debug)]
pub struct Kernel {
    /// The dispatcher (per-CPU run queues + work stealing).
    pub sched: Scheduler,
    /// Mutexes, condition variables, and sleep queues.
    pub sync: SyncPrimitives,
    /// Software TLB and hashed page table.
    pub mmu: MmuModel,
    /// System-call state machines (poll/read/write/open/stat).
    pub syscalls: SyscallModel,
    /// Bulk memory copies, DMA fills, and copyout stores.
    pub copy: CopyEngine,
    /// Block-device (disk) driver.
    pub blockdev: BlockDev,
    /// STREAMS message queues (stdio between server and CGI processes).
    pub streams: StreamsSubsystem,
    /// IP packet assembly.
    pub ip: IpStack,
}

impl Kernel {
    /// Builds every kernel substrate, carving regions from `space` and
    /// interning function names in `symbols`.
    pub fn new(
        config: &KernelConfig,
        symbols: &mut SymbolTable,
        space: &mut AddressSpace,
        rng: &mut SmallRng,
    ) -> Self {
        Kernel {
            sched: Scheduler::new(config, symbols, space),
            sync: SyncPrimitives::new(config, symbols, space),
            mmu: MmuModel::new(config, symbols, space),
            syscalls: SyscallModel::new(config, symbols, space, rng),
            copy: CopyEngine::new(symbols),
            blockdev: BlockDev::new(symbols, space),
            streams: StreamsSubsystem::new(config, symbols, space),
            ip: IpStack::new(config, symbols, space, rng),
        }
    }
}
