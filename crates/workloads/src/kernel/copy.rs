//! Bulk memory copies, DMA fills, and non-allocating copyout stores.
//!
//! Models the paper's "Bulk memory copies" category: `memcpy`/`bcopy`
//! style kernel/user copies, and the Solaris `default_copyout` family that
//! moves DMA'd I/O results from kernel staging buffers to user buffers
//! with non-allocating block stores. Copies are perfectly strided at block
//! granularity — which is why the paper finds them either non-repetitive
//! (fresh buffers) or already covered by stride prefetchers.

use crate::emitter::Emitter;
use tempstream_trace::{Address, MissCategory, SymbolTable, BLOCK_BYTES};

/// Stateless engine emitting copy access patterns.
#[derive(Debug, Clone)]
pub struct CopyEngine {
    f_memcpy: tempstream_trace::FunctionId,
    f_bcopy: tempstream_trace::FunctionId,
    f_copyout: tempstream_trace::FunctionId,
    f_align_cpy: tempstream_trace::FunctionId,
}

impl CopyEngine {
    /// Interns the copy-function names.
    pub fn new(symbols: &mut SymbolTable) -> Self {
        CopyEngine {
            f_memcpy: symbols.intern("memcpy", MissCategory::BulkMemoryCopy),
            f_bcopy: symbols.intern("bcopy", MissCategory::BulkMemoryCopy),
            f_copyout: symbols.intern("default_copyout", MissCategory::BulkMemoryCopy),
            f_align_cpy: symbols.intern("__align_cpy_1", MissCategory::BulkMemoryCopy),
        }
    }

    /// A user/kernel `memcpy`: reads `len` bytes from `src` and writes them
    /// to `dst`, block by block, interleaved.
    pub fn memcpy(&self, em: &mut Emitter<'_>, dst: Address, src: Address, len: u64) {
        self.copy_loop(em, self.f_memcpy, dst, src, len, false);
    }

    /// Kernel `bcopy`, identical traffic to [`memcpy`](Self::memcpy) under a
    /// different label.
    pub fn bcopy(&self, em: &mut Emitter<'_>, dst: Address, src: Address, len: u64) {
        self.copy_loop(em, self.f_bcopy, dst, src, len, false);
    }

    /// Large aligned copy (`__align_cpy_1`), used for page-sized moves.
    pub fn align_cpy(&self, em: &mut Emitter<'_>, dst: Address, src: Address, len: u64) {
        self.copy_loop(em, self.f_align_cpy, dst, src, len, false);
    }

    /// `default_copyout`: kernel-to-user copy whose stores are
    /// non-allocating block stores (they invalidate rather than allocate in
    /// the cache hierarchy).
    pub fn copyout(&self, em: &mut Emitter<'_>, dst: Address, src: Address, len: u64) {
        self.copy_loop(em, self.f_copyout, dst, src, len, true);
    }

    /// A DMA transfer from a device filling `[dst, dst+len)`.
    ///
    /// Emitted under the copy label for attribution, but the accesses are
    /// device writes, not CPU instructions.
    pub fn dma_fill(&self, em: &mut Emitter<'_>, dst: Address, len: u64) {
        em.in_function(self.f_copyout, |em| {
            let blocks = len.div_ceil(BLOCK_BYTES);
            for i in 0..blocks {
                em.dma_write(dst.offset(i * BLOCK_BYTES));
            }
        });
    }

    fn copy_loop(
        &self,
        em: &mut Emitter<'_>,
        label: tempstream_trace::FunctionId,
        dst: Address,
        src: Address,
        len: u64,
        non_allocating: bool,
    ) {
        em.in_function(label, |em| {
            let blocks = len.div_ceil(BLOCK_BYTES);
            for i in 0..blocks {
                em.read(src.offset(i * BLOCK_BYTES));
                let d = dst.offset(i * BLOCK_BYTES);
                if non_allocating {
                    em.copyout(d);
                } else {
                    em.write(d);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{AccessKind, MemoryAccess};

    fn engine() -> (CopyEngine, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let e = CopyEngine::new(&mut sym);
        (e, sym)
    }

    #[test]
    fn memcpy_interleaves_reads_and_writes() {
        let (e, _sym) = engine();
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        e.memcpy(&mut em, Address::new(0x10000), Address::new(0x20000), 256);
        assert_eq!(out.len(), 8); // 4 blocks, read+write each
        assert_eq!(out[0].kind, AccessKind::Read);
        assert_eq!(out[1].kind, AccessKind::Write);
        assert_eq!(out[0].addr, Address::new(0x20000));
        assert_eq!(out[1].addr, Address::new(0x10000));
        assert_eq!(out[2].addr, Address::new(0x20040));
    }

    #[test]
    fn copyout_uses_non_allocating_stores() {
        let (e, sym) = engine();
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        e.copyout(&mut em, Address::new(0x10000), Address::new(0x20000), 128);
        assert!(
            out.iter()
                .filter(|a| a.kind == AccessKind::CopyoutWrite)
                .count()
                == 2
        );
        assert_eq!(sym.name(out[1].function), "default_copyout");
        assert_eq!(sym.category(out[1].function), MissCategory::BulkMemoryCopy);
    }

    #[test]
    fn dma_fill_covers_whole_range() {
        let (e, _sym) = engine();
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        e.dma_fill(&mut em, Address::new(0x4000), 4096);
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|a| a.kind == AccessKind::DmaWrite));
    }

    #[test]
    fn partial_block_rounds_up() {
        let (e, _sym) = engine();
        let mut out: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut out);
        e.bcopy(&mut em, Address::new(0), Address::new(4096), 65);
        assert_eq!(out.len(), 4); // 2 blocks copied
    }
}
