//! Solaris STREAMS message queues.
//!
//! Models the paper's "Kernel STREAMS subsystem" category: the web server
//! and its FastCGI perl processes communicate over stdio implemented in
//! STREAMS. Data written to a stream is broken into messages (`msgb` +
//! `datab` descriptor pairs) that pass through thread-safe queues; both
//! the queue locks and the message-pointer manipulation are highly
//! repetitive (~80% of these misses are in temporal streams), because
//! message descriptors are allocated from pools that are aggressively
//! reused.

use crate::emitter::Emitter;
use crate::kernel::KernelConfig;
use crate::layout::AddressSpace;
use std::collections::VecDeque;
use tempstream_trace::{Address, FunctionId, MissCategory, SymbolTable, BLOCK_BYTES};

/// Message descriptors per channel direction (the reuse pool).
const MSGS_PER_POOL: u32 = 16;

/// Handle to one STREAMS channel (a bidirectional queue pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelId(pub u32);

/// Direction within a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Server-to-CGI (downstream).
    Down,
    /// CGI-to-server (upstream).
    Up,
}

#[derive(Debug)]
struct StreamQueue {
    lock: Address,
    header: Address,
    /// msgb+datab descriptor pairs (2 blocks each), reused round-robin.
    msg_pool: Vec<Address>,
    next_msg: u32,
    /// Messages currently queued (indices into `msg_pool`).
    queued: VecDeque<u32>,
}

/// The STREAMS substrate: a set of channels.
#[derive(Debug)]
pub struct StreamsSubsystem {
    /// `2 * num_channels` queues: `[down0, up0, down1, up1, ...]`.
    queues: Vec<StreamQueue>,
    f_putq: FunctionId,
    f_getq: FunctionId,
    f_canput: FunctionId,
    f_strwrite: FunctionId,
    f_strread: FunctionId,
}

impl StreamsSubsystem {
    /// Lays out `config.num_streams_channels` channels.
    pub fn new(config: &KernelConfig, symbols: &mut SymbolTable, space: &mut AddressSpace) -> Self {
        let channels = config.num_streams_channels.max(1);
        let per_queue = 2 + u64::from(MSGS_PER_POOL) * 2; // blocks
        let mut region = space.region(
            "streams",
            u64::from(channels) * 2 * per_queue * BLOCK_BYTES + 4096,
        );
        let queues = (0..channels * 2)
            .map(|_| StreamQueue {
                lock: region.alloc(64),
                header: region.alloc(64),
                msg_pool: (0..MSGS_PER_POOL).map(|_| region.alloc(128)).collect(),
                next_msg: 0,
                queued: VecDeque::new(),
            })
            .collect();
        StreamsSubsystem {
            queues,
            f_putq: symbols.intern("putq", MissCategory::KernelStreams),
            f_getq: symbols.intern("getq", MissCategory::KernelStreams),
            f_canput: symbols.intern("canput", MissCategory::KernelStreams),
            f_strwrite: symbols.intern("strwrite", MissCategory::KernelStreams),
            f_strread: symbols.intern("strread", MissCategory::KernelStreams),
        }
    }

    /// Number of channels.
    pub fn num_channels(&self) -> u32 {
        (self.queues.len() / 2) as u32
    }

    fn queue_index(&self, ch: ChannelId, dir: Dir) -> usize {
        let c = (ch.0 % self.num_channels()) as usize;
        c * 2 + usize::from(matches!(dir, Dir::Up))
    }

    /// `strwrite` + `putq`: enqueue `msgs` messages onto the channel's
    /// `dir` queue, taking descriptors from the reuse pool. Returns the
    /// descriptor addresses written (for payload emission by the caller).
    pub fn put(
        &mut self,
        em: &mut Emitter<'_>,
        ch: ChannelId,
        dir: Dir,
        msgs: u32,
    ) -> Vec<Address> {
        let qi = self.queue_index(ch, dir);
        let (f_strwrite, f_canput, f_putq) = (self.f_strwrite, self.f_canput, self.f_putq);
        let q = &mut self.queues[qi];
        let mut written = Vec::with_capacity(msgs as usize);
        em.in_function(f_strwrite, |em| {
            em.in_function(f_canput, |em| em.read(q.header));
            em.in_function(f_putq, |em| {
                em.read(q.lock);
                em.write(q.lock);
                for _ in 0..msgs {
                    let m = q.next_msg % MSGS_PER_POOL;
                    q.next_msg = q.next_msg.wrapping_add(1);
                    let desc = q.msg_pool[m as usize];
                    // Link the descriptor: previous tail's b_next, then the
                    // new msgb+datab pair, then the queue header.
                    if let Some(&tail) = q.queued.back() {
                        em.read(q.msg_pool[tail as usize]);
                    }
                    em.write(desc);
                    em.write(desc.offset(BLOCK_BYTES));
                    q.queued.push_back(m);
                    written.push(desc);
                }
                em.write(q.header);
                em.write(q.lock);
            });
        });
        written
    }

    /// `strread` + `getq`: dequeue up to `max` messages. Returns the
    /// descriptor addresses read.
    pub fn get(&mut self, em: &mut Emitter<'_>, ch: ChannelId, dir: Dir, max: u32) -> Vec<Address> {
        let qi = self.queue_index(ch, dir);
        let (f_strread, f_getq) = (self.f_strread, self.f_getq);
        let q = &mut self.queues[qi];
        let mut taken = Vec::new();
        em.in_function(f_strread, |em| {
            em.in_function(f_getq, |em| {
                em.read(q.lock);
                em.write(q.lock);
                em.read(q.header);
                for _ in 0..max {
                    let Some(m) = q.queued.pop_front() else { break };
                    let desc = q.msg_pool[m as usize];
                    em.read(desc);
                    em.read(desc.offset(BLOCK_BYTES));
                    taken.push(desc);
                }
                em.write(q.header);
                em.write(q.lock);
            });
        });
        taken
    }

    /// Messages currently queued on `(ch, dir)`.
    pub fn depth(&self, ch: ChannelId, dir: Dir) -> usize {
        self.queues[self.queue_index(ch, dir)].queued.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::MemoryAccess;

    fn setup() -> (StreamsSubsystem, SymbolTable) {
        let mut sym = SymbolTable::new();
        sym.intern("root", MissCategory::Uncategorized);
        let mut space = AddressSpace::new();
        (
            StreamsSubsystem::new(&KernelConfig::default(), &mut sym, &mut space),
            sym,
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let (mut s, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let ch = ChannelId(0);
        let sent = s.put(&mut em, ch, Dir::Down, 3);
        assert_eq!(s.depth(ch, Dir::Down), 3);
        let got = s.get(&mut em, ch, Dir::Down, 10);
        assert_eq!(sent, got);
        assert_eq!(s.depth(ch, Dir::Down), 0);
    }

    #[test]
    fn descriptor_pool_is_reused() {
        let (mut s, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        let ch = ChannelId(1);
        let first = s.put(&mut em, ch, Dir::Up, 1)[0];
        s.get(&mut em, ch, Dir::Up, 1);
        // After MSGS_PER_POOL more messages, the pool wraps to `first`.
        for _ in 0..MSGS_PER_POOL - 1 {
            s.put(&mut em, ch, Dir::Up, 1);
            s.get(&mut em, ch, Dir::Up, 1);
        }
        let wrapped = s.put(&mut em, ch, Dir::Up, 1)[0];
        assert_eq!(first, wrapped);
    }

    #[test]
    fn directions_are_independent() {
        let (mut s, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.put(&mut em, ChannelId(0), Dir::Down, 2);
        assert_eq!(s.depth(ChannelId(0), Dir::Up), 0);
        assert!(s.get(&mut em, ChannelId(0), Dir::Up, 1).is_empty());
    }

    #[test]
    fn lock_and_header_addresses_are_fixed() {
        let (mut s, _) = setup();
        let trace = |s: &mut StreamsSubsystem| {
            let mut a: Vec<MemoryAccess> = Vec::new();
            let mut em = Emitter::new(&mut a);
            s.put(&mut em, ChannelId(2), Dir::Down, 1);
            s.get(&mut em, ChannelId(2), Dir::Down, 1);
            a.iter().map(|x| x.addr).collect::<Vec<_>>()
        };
        // Queue empty before and after each round: identical access
        // sequences (the repetitive streams the paper observes).
        let t1 = trace(&mut s);
        // Skip one pool slot so descriptors differ, then compare lock and
        // header positions only.
        let t2 = trace(&mut s);
        assert_eq!(t1.len(), t2.len());
        assert_eq!(t1[0], t2[0]); // canput header read
        assert_eq!(t1[1], t2[1]); // putq lock
    }

    #[test]
    fn labels_are_streams_functions() {
        let (mut s, sym) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.put(&mut em, ChannelId(0), Dir::Down, 1);
        s.get(&mut em, ChannelId(0), Dir::Down, 1);
        for x in &a {
            assert_eq!(sym.category(x.function), MissCategory::KernelStreams);
        }
        let names: Vec<_> = a.iter().map(|x| sym.name(x.function)).collect();
        assert!(names.contains(&"putq"));
        assert!(names.contains(&"getq"));
        assert!(names.contains(&"canput"));
    }

    #[test]
    fn channel_id_wraps() {
        let (mut s, _) = setup();
        let mut a: Vec<MemoryAccess> = Vec::new();
        let mut em = Emitter::new(&mut a);
        s.put(&mut em, ChannelId(1_000), Dir::Down, 1);
        assert_eq!(s.depth(ChannelId(1_000 % s.num_channels()), Dir::Down), 1);
    }
}
