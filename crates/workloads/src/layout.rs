//! Synthetic physical address-space layout.
//!
//! Every workload lays its data structures out in one [`AddressSpace`]:
//! named [`Region`]s are carved out sequentially (kernel structures, buffer
//! pool, heaps, I/O buffers, ...), and fine-grained objects are
//! bump-allocated inside a region. A pseudo-random *scatter* allocation is
//! provided for heap-like structures whose nodes are deliberately
//! non-contiguous (B+-tree nodes, perl op nodes), which is what defeats
//! stride prefetchers in the paper's motivating examples.

use tempstream_trace::rng::SmallRng;
use tempstream_trace::{Address, BLOCK_BYTES, PAGE_BYTES};

/// A named, contiguous range of the synthetic address space.
#[derive(Debug, Clone)]
pub struct Region {
    name: &'static str,
    base: u64,
    size: u64,
    bump: u64,
}

impl Region {
    /// The region's name (diagnostic only).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// First byte address of the region.
    pub fn base(&self) -> Address {
        Address::new(self.base)
    }

    /// Region size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The address at `offset` bytes into the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= size`.
    pub fn addr(&self, offset: u64) -> Address {
        assert!(
            offset < self.size,
            "offset {offset} outside region {}",
            self.name
        );
        Address::new(self.base + offset)
    }

    /// Bump-allocates `bytes` (block-aligned) inside the region.
    ///
    /// # Panics
    ///
    /// Panics if the region is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> Address {
        let aligned = bytes.div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        assert!(
            self.bump + aligned <= self.size,
            "region {} exhausted ({} of {} bytes used)",
            self.name,
            self.bump,
            self.size
        );
        let a = Address::new(self.base + self.bump);
        self.bump += aligned;
        a
    }

    /// Allocates `bytes` at a pseudo-random block-aligned offset, modeling
    /// heap fragmentation (objects are *not* laid out in allocation order).
    ///
    /// Collisions are allowed: two scatter allocations may overlap. That is
    /// harmless for access-pattern modeling (it only merges two objects'
    /// blocks) and keeps allocation O(1).
    pub fn alloc_scattered(&self, rng: &mut SmallRng, bytes: u64) -> Address {
        let aligned = bytes.div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        assert!(
            aligned <= self.size,
            "object larger than region {}",
            self.name
        );
        let max_block = (self.size - aligned) / BLOCK_BYTES;
        let off = rng.gen_range(0..=max_block) * BLOCK_BYTES;
        Address::new(self.base + off)
    }

    /// Bytes currently bump-allocated.
    pub fn used(&self) -> u64 {
        self.bump
    }
}

/// The whole synthetic address space: a sequence of page-aligned regions.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    next_base: u64,
    total: u64,
}

impl AddressSpace {
    /// Creates an empty address space starting at a non-zero base (so that
    /// address 0 never aliases a real object).
    pub fn new() -> Self {
        AddressSpace {
            next_base: PAGE_BYTES,
            total: 0,
        }
    }

    /// Carves out a page-aligned region of `size` bytes.
    pub fn region(&mut self, name: &'static str, size: u64) -> Region {
        let size = size.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        let base = self.next_base;
        self.next_base += size + PAGE_BYTES; // guard page between regions
        self.total += size;
        Region {
            name,
            base,
            size,
            bump: 0,
        }
    }

    /// Total bytes across all regions (the workload's nominal footprint).
    pub fn footprint(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut s = AddressSpace::new();
        let a = s.region("a", 10_000);
        let b = s.region("b", 4096);
        assert!(a.base().raw() + a.size() <= b.base().raw());
        assert_eq!(a.size() % PAGE_BYTES, 0);
    }

    #[test]
    fn bump_alloc_is_block_aligned_and_disjoint() {
        let mut s = AddressSpace::new();
        let mut r = s.region("r", 4096);
        let x = r.alloc(10);
        let y = r.alloc(100);
        assert_eq!(x.raw() % BLOCK_BYTES, 0);
        assert_eq!(y.raw() % BLOCK_BYTES, 0);
        assert!(y.raw() >= x.raw() + BLOCK_BYTES);
        assert_eq!(r.used(), 64 + 128);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn bump_alloc_respects_capacity() {
        let mut s = AddressSpace::new();
        let mut r = s.region("r", 4096);
        r.alloc(4096);
        r.alloc(1);
    }

    #[test]
    fn scatter_alloc_stays_inside() {
        let mut s = AddressSpace::new();
        let r = s.region("r", 64 * 1024);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = r.alloc_scattered(&mut rng, 256);
            assert!(a.raw() >= r.base().raw());
            assert!(a.raw() + 256 <= r.base().raw() + r.size());
            assert_eq!(a.raw() % BLOCK_BYTES, 0);
        }
    }

    #[test]
    fn footprint_sums_regions() {
        let mut s = AddressSpace::new();
        s.region("a", PAGE_BYTES);
        s.region("b", 3 * PAGE_BYTES);
        assert_eq!(s.footprint(), 4 * PAGE_BYTES);
    }

    #[test]
    fn addr_offset_checked() {
        let mut s = AddressSpace::new();
        let r = s.region("r", PAGE_BYTES);
        assert_eq!(r.addr(0), r.base());
        assert_eq!(r.addr(100).raw(), r.base().raw() + 100);
    }
}
