//! Application parameters (the paper's Table 1) and their scaled-down
//! model equivalents.

use std::fmt;
use tempstream_trace::AppClass;

/// One row of Table 1, plus the model's scaled substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Short workload name ("Apache", "Qry1", ...).
    pub name: &'static str,
    /// Application class row grouping.
    pub app_class: AppClass,
    /// The paper's configuration text.
    pub paper_config: &'static str,
    /// What this reproduction models instead (scaled to the same
    /// footprint-to-cache ratios).
    pub model_config: &'static str,
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:<5} {}",
            self.name, self.app_class, self.paper_config
        )
    }
}

/// All Table-1 rows in paper order.
pub fn table1() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "OLTP",
            app_class: AppClass::Oltp,
            paper_config: "TPC-C on DB2: 100 warehouses (10 GB), 64 clients, 450 MB buffer pool",
            model_config: "1M-key shared B+-tree + 96 MB heap table, 64 clients, \
                           16 MB buffer pool (same pool:data ratio class)",
        },
        WorkloadSpec {
            name: "Qry1",
            app_class: AppClass::Dss,
            paper_config: "TPC-H query 1 on DB2: scan-dominated, 450 MB buffer pool",
            model_config: "partitioned one-pass scan of a 64 MB fact table through an \
                           8 MB buffer pool (page-sized kernel-to-user copies)",
        },
        WorkloadSpec {
            name: "Qry2",
            app_class: AppClass::Dss,
            paper_config: "TPC-H query 2 on DB2: join-dominated, 450 MB buffer pool",
            model_config: "nested-loop join: outer scan over the fact table, inner \
                           loops over a 2 MB dimension table (fits L2, exceeds L1)",
        },
        WorkloadSpec {
            name: "Qry17",
            app_class: AppClass::Dss,
            paper_config: "TPC-H query 17 on DB2: balanced scan-join, 450 MB buffer pool",
            model_config: "alternating scan batches and join batches over the same tables",
        },
        WorkloadSpec {
            name: "Apache",
            app_class: AppClass::Web,
            paper_config: "SPECweb99 on Apache 2.0: 16K connections, FastCGI, worker threading",
            model_config: "16K-entry connection table, FastCGI perl pool over STREAMS, \
                           worker-thread dispatch per request, 16 MB static file set",
        },
        WorkloadSpec {
            name: "Zeus",
            app_class: AppClass::Web,
            paper_config: "SPECweb99 on Zeus 4.3: 16K connections, FastCGI",
            model_config: "event-driven poll loop over the same connection/CGI substrate",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows_in_three_classes() {
        let t = table1();
        assert_eq!(t.len(), 6);
        assert_eq!(t.iter().filter(|s| s.app_class == AppClass::Web).count(), 2);
        assert_eq!(
            t.iter().filter(|s| s.app_class == AppClass::Oltp).count(),
            1
        );
        assert_eq!(t.iter().filter(|s| s.app_class == AppClass::Dss).count(), 3);
    }

    #[test]
    fn rows_have_both_configs() {
        for s in table1() {
            assert!(!s.paper_config.is_empty());
            assert!(!s.model_config.is_empty());
            assert!(!s.to_string().is_empty());
        }
    }
}
