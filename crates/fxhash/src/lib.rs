//! A fast, deterministic hasher for the reproduction's hot-path maps.
//!
//! Std's default [`std::collections::HashMap`] hashes with SipHash-1-3
//! behind a per-process random seed. That is the right default for maps
//! exposed to untrusted keys, but every map on this workspace's miss
//! path (the Sequitur digram index, the coherence simulators' per-block
//! state and history maps, per-function counters) hashes *trusted,
//! simulator-generated* integers millions of times per run — there, the
//! SipHash rounds are pure overhead and the random seed only costs
//! reproducibility.
//!
//! [`FxHasher`] is the multiply-and-rotate hash popularized by the
//! Firefox/rustc `FxHashMap`: each 8-byte word of input is folded in
//! with one XOR, one rotate, and one multiply by a 64-bit constant
//! derived from the golden ratio. It is not DoS-resistant and must not
//! be used for attacker-controlled keys; for fixed-width integer keys
//! produced by the simulators it is several times cheaper than SipHash
//! and — having no seed — yields the same hash for the same key in
//! every process, which keeps spill files, metrics, and differential
//! tests stable across runs.
//!
//! The crate deliberately mirrors the `rustc-hash` surface
//! ([`FxHasher`], [`FxBuildHasher`], [`FxHashMap`], [`FxHashSet`]) so
//! call sites read idiomatically, but the implementation is in-tree:
//! the workspace builds fully offline with no registry dependencies.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier for the word-folding step: `floor(2^64 / golden_ratio)`,
/// forced odd. The same constant rustc's `FxHasher` uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Bits to rotate the accumulator by before each multiply; spreads low
/// input bits into the high half so sequential keys don't collide in
/// the table-index bits.
const ROTATE: u32 = 5;

/// The Fx word-at-a-time hasher. See the crate docs for when (not) to
/// use it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the byte count in so "ab" and "ab\0" differ.
            word[7] = rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes a single 64-bit word without constructing a hasher.
///
/// Bit-identical to running [`FxHasher`] over exactly one `u64`
/// (`write_u64` then `finish`): the accumulator starts at zero, so the
/// rotate-and-XOR fold degenerates to one `wrapping_mul` by [`SEED`].
/// Hot paths that hash one integer per record (e.g. shard routing)
/// can call this directly instead of building a hasher per key; the
/// pinned-hash tests below hold the two paths equal forever.
#[inline]
#[must_use]
pub fn hash_word(word: u64) -> u64 {
    word.wrapping_mul(SEED)
}

/// Seedless [`std::hash::BuildHasher`] for [`FxHasher`]; the unit of
/// determinism — two maps built from it hash identically in any
/// process.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Drop-in for hot-path maps with
/// trusted keys.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`]. Drop-in for hot-path sets with
/// trusted keys.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn fx_hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn identical_input_hashes_identically() {
        for i in 0..1000u64 {
            assert_eq!(fx_hash_of(&i), fx_hash_of(&i));
        }
        assert_eq!(fx_hash_of(&"digram"), fx_hash_of(&"digram"));
        assert_eq!(fx_hash_of(&(3u64, 4u32)), fx_hash_of(&(3u64, 4u32)));
    }

    /// Pinned hash values: these must never change across builds or
    /// hosts, otherwise "deterministic" would only mean "per-process
    /// stable" (which even SipHash offers). A failure here means the
    /// hash function itself changed — bump deliberately or revert.
    #[test]
    fn hash_values_are_pinned_across_runs() {
        let h0 = fx_hash_of(&0u64);
        let h1 = fx_hash_of(&1u64);
        let hs = fx_hash_of(&"stream");
        // Recompute from first principles rather than constants-in-test
        // so the pin is self-describing.
        assert_eq!(h0, 0u64.wrapping_mul(SEED));
        assert_eq!(h1, 1u64.wrapping_mul(SEED));
        assert_ne!(h0, h1);
        assert_ne!(hs, h0);
        // And a literal pin for one value, guarding SEED/ROTATE edits.
        assert_eq!(fx_hash_of(&42u64), 42u64.wrapping_mul(SEED));
    }

    /// `hash_word` IS the hasher path for a single u64 — not close,
    /// equal. Shard routing relies on this to swap the per-record
    /// hasher construction for one multiply without moving any key.
    #[test]
    fn hash_word_equals_single_u64_hasher_path() {
        for i in (0..2000u64).chain([u64::MAX, u64::MAX - 1, 1 << 63]) {
            assert_eq!(hash_word(i), fx_hash_of(&i), "word {i}");
        }
        let mut rng_state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..2000 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            assert_eq!(hash_word(rng_state), fx_hash_of(&rng_state));
        }
    }

    #[test]
    fn write_paths_agree_on_word_width() {
        // u32 and u64 of the same value hash identically (both fold a
        // single 64-bit word); that is fine — key types are fixed per
        // map — but must stay *stable*.
        assert_eq!(fx_hash_of(&7u32), fx_hash_of(&7u64));
    }

    #[test]
    fn byte_slices_distinguish_lengths() {
        let a = {
            let mut h = FxHasher::default();
            h.write(b"ab");
            h.finish()
        };
        let b = {
            let mut h = FxHasher::default();
            h.write(b"ab\0");
            h.finish()
        };
        assert_ne!(a, b, "trailing-zero padding must not collide");
    }

    #[test]
    fn low_bit_spread_for_sequential_keys() {
        // Hash table indices come from the low bits; sequential u64
        // keys must not all land in a handful of buckets.
        let mut low_bits = FxHashSet::default();
        for i in 0..256u64 {
            low_bits.insert(fx_hash_of(&i) & 0xff);
        }
        assert!(
            low_bits.len() > 128,
            "sequential keys collapse to {} low-byte values",
            low_bits.len()
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(10, 1);
        m.insert(20, 2);
        assert_eq!(m.get(&10), Some(&1));
        let s: FxHashSet<u64> = m.keys().copied().collect();
        assert!(s.contains(&20));
    }

    #[test]
    fn tuple_keys_hash_deterministically() {
        // The Sequitur digram key shape: a pair of enum payloads. Two
        // independently-built hashers must agree.
        let k = (0xdead_beefu64, 0x1234u32, 7u8);
        let b1 = FxBuildHasher::default();
        let b2 = FxBuildHasher::default();
        assert_eq!(b1.hash_one(k), b2.hash_one(k));
    }
}
