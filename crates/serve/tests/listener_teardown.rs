//! Regression test for the listener-error drain deadlock (satellite of
//! the pipelining PR): when `accept` fails with a non-transient error,
//! the acceptor used to `break` without entering the drain handshake,
//! leaving the shard workers parked in `pop()` forever and
//! `Server::run` never returning.
//!
//! The listener is broken out from under a *running* server without
//! `unsafe` (the workspace forbids it): `try_clone` shares the open
//! file description, so flipping `O_NONBLOCK` on the clone makes the
//! server's next `accept` fail with `WouldBlock` — which is not
//! `Interrupted`, the only error kind the acceptor retries.

#![cfg(unix)]

use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use tempstream_serve::wire::{read_frame, write_frame, Frame};
use tempstream_serve::{Server, ServerConfig};

#[test]
fn listener_error_still_drains_and_returns() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let breaker = listener.try_clone().expect("clone listener");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = Server::from_listener(listener, ServerConfig::default());
    let handle = thread::spawn(move || server.run());

    // Prove the server is live before pulling the rug.
    let mut conn = TcpStream::connect(&addr).expect("connect");
    write_frame(&mut conn, &Frame::QueryCoverage).expect("send");
    assert!(matches!(
        read_frame(&mut conn).expect("recv"),
        Frame::CoverageReply { .. }
    ));
    drop(conn);

    // Break the listener, then pop the accept the acceptor is already
    // parked in with one throwaway connect; its next accept call sees
    // the shared O_NONBLOCK flag and fails.
    breaker.set_nonblocking(true).expect("set nonblocking");
    drop(TcpStream::connect(&addr));

    // Fixed behavior: the acceptor enters the drain handshake and
    // run() returns cleanly. Buggy behavior: run() hangs forever on
    // workers blocked in pop(), which this bounded poll turns into a
    // test failure instead of a test timeout.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !handle.is_finished() {
        assert!(
            Instant::now() < deadline,
            "Server::run deadlocked after a listener error"
        );
        thread::sleep(Duration::from_millis(10));
    }
    handle.join().expect("server thread").expect("run exits Ok");
}
