//! Property tests for the wire protocol: round-trips, corruption,
//! truncation, and hostile length prefixes. The decoder's contract is
//! that no byte stream — however malformed — panics it; bad input
//! surfaces as a `WireError`.

use tempstream_serve::wire::{
    crc32, encode_frame, read_frame, Frame, FrameAssembler, WireError, MAX_BATCH_RECORDS,
    MAX_FRAME_BYTES,
};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::rng::SplitMix64;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

fn seeded_records(seed: u64, n: usize) -> Vec<MissRecord<MissClass>> {
    let mut rng = SplitMix64::new(seed);
    let classes = MissClass::ALL;
    (0..n)
        .map(|_| MissRecord {
            block: Block::new(rng.next_u64()),
            cpu: CpuId::new((rng.next_u64() % 64) as u32),
            thread: ThreadId::new((rng.next_u64() % 1024) as u32),
            function: FunctionId::new((rng.next_u64() % 4096) as u32),
            class: classes[(rng.next_u64() % 4) as usize],
        })
        .collect()
}

fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Ingest(Vec::new()),
        Frame::Ingest(seeded_records(1, 1)),
        Frame::Ingest(seeded_records(2, 257)),
        Frame::QueryStreamFraction,
        Frame::QueryCoverage,
        Frame::QueryTopOrigins(0),
        Frame::QueryTopOrigins(u16::MAX),
        Frame::QueryMetricsSnapshot,
        Frame::Shutdown,
        Frame::IngestAck(0),
        Frame::IngestAck(u32::MAX),
        Frame::Busy,
        Frame::StreamFractionReply {
            non_repetitive: u64::MAX,
            new_stream: 0,
            recurring_stream: 1,
            distinct_streams: 42,
        },
        Frame::CoverageReply {
            total: 3,
            covered: 2,
            issued: u64::MAX,
        },
        Frame::TopOriginsReply(Vec::new()),
        Frame::TopOriginsReply(vec![(7, 9), (u32::MAX, u64::MAX)]),
        Frame::MetricsReply(String::new()),
        Frame::MetricsReply("{\"counters\":{}}".to_string()),
        Frame::ShutdownAck,
        Frame::Error {
            code: 2,
            message: "drainiñg ünïcode".to_string(),
        },
    ]
}

fn decode_one(bytes: &[u8]) -> Result<Option<Frame>, WireError> {
    let mut asm = FrameAssembler::new();
    asm.push_bytes(bytes);
    asm.next_frame()
}

#[test]
fn every_frame_round_trips() {
    for frame in sample_frames() {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let got = decode_one(&bytes)
            .unwrap_or_else(|e| panic!("decode {frame:?}: {e}"))
            .expect("complete frame");
        assert_eq!(got, frame);
        // And through the blocking reader.
        let via_reader = read_frame(&bytes[..]).expect("read_frame");
        assert_eq!(via_reader, frame);
    }
}

#[test]
fn back_to_back_frames_share_a_stream() {
    let frames = sample_frames();
    let mut bytes = Vec::new();
    for f in &frames {
        encode_frame(f, &mut bytes);
    }
    let mut asm = FrameAssembler::new();
    asm.push_bytes(&bytes);
    let mut got = Vec::new();
    while let Some(f) = asm.next_frame().expect("valid stream") {
        got.push(f);
    }
    assert_eq!(got, frames);
    assert!(asm.is_idle());
}

#[test]
fn single_byte_corruption_never_panics_and_never_forges_a_frame() {
    for frame in sample_frames() {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                match decode_one(&corrupt) {
                    // A corrupted length prefix may ask for more bytes
                    // (Ok(None)); anything else decodable must fail.
                    Ok(None) | Err(_) => {}
                    Ok(Some(got)) => {
                        assert_ne!(
                            got, frame,
                            "corruption at byte {pos} (^{flip:#x}) forged the original frame"
                        );
                        // Only a length-prefix corruption can re-frame
                        // the stream; the CRC pins the body bytes.
                        assert!(pos < 4, "body corruption at {pos} decoded to {got:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn every_truncation_is_incomplete_or_an_error() {
    for frame in sample_frames() {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        for cut in 0..bytes.len() {
            match decode_one(&bytes[..cut]) {
                Ok(None) | Err(_) => {}
                Ok(Some(got)) => panic!("prefix {cut}/{} decoded to {got:?}", bytes.len()),
            }
            // The blocking reader reports a clean mid-frame close.
            match read_frame(&bytes[..cut]) {
                Err(WireError::Truncated) => {}
                Err(other) => panic!("prefix {cut}: unexpected {other}"),
                Ok(got) => panic!("prefix {cut} read {got:?}"),
            }
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_buffering() {
    for len in [
        MAX_FRAME_BYTES as u32 + 1,
        u32::MAX,
        0, // shorter than the envelope
        1,
        5,
    ] {
        let mut asm = FrameAssembler::new();
        asm.push_bytes(&len.to_le_bytes());
        match asm.next_frame() {
            Err(WireError::BadLength(got)) => assert_eq!(got, len),
            other => panic!("len {len}: expected BadLength, got {other:?}"),
        }
    }
}

/// Rewrites the CRC trailer so the corruption under test is the only
/// defect in the frame.
fn fix_crc(bytes: &mut [u8]) {
    let n = bytes.len();
    let crc = crc32(&bytes[4..n - 4]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn ingest_count_mismatch_is_malformed() {
    let mut bytes = Vec::new();
    encode_frame(&Frame::Ingest(seeded_records(3, 2)), &mut bytes);
    // Claim 3 records while carrying 2.
    bytes[6..10].copy_from_slice(&3u32.to_le_bytes());
    fix_crc(&mut bytes);
    match decode_one(&bytes) {
        Err(WireError::Malformed(what)) => assert!(what.contains("length/count"), "{what}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn ingest_over_record_cap_is_malformed() {
    let mut bytes = Vec::new();
    encode_frame(&Frame::Ingest(seeded_records(4, 1)), &mut bytes);
    bytes[6..10].copy_from_slice(&((MAX_BATCH_RECORDS as u32) + 1).to_le_bytes());
    fix_crc(&mut bytes);
    match decode_one(&bytes) {
        Err(WireError::Malformed(what)) => assert!(what.contains("record cap"), "{what}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn unknown_type_and_version_are_rejected() {
    let mut bytes = Vec::new();
    encode_frame(&Frame::Busy, &mut bytes);
    let mut wrong_type = bytes.clone();
    wrong_type[5] = 99;
    fix_crc(&mut wrong_type);
    assert!(matches!(
        decode_one(&wrong_type),
        Err(WireError::UnknownType(99))
    ));
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 9;
    fix_crc(&mut wrong_version);
    assert!(matches!(
        decode_one(&wrong_version),
        Err(WireError::BadVersion(9))
    ));
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SplitMix64::new(0xbad_b17e5);
    for _ in 0..2000 {
        let n = (rng.next_u64() % 64) as usize;
        let garbage: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let _ = decode_one(&garbage); // must not panic
        let _ = read_frame(&garbage[..]);
    }
}
