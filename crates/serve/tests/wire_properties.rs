//! Property tests for the wire protocol: round-trips, corruption,
//! truncation, and hostile length prefixes. The decoder's contract is
//! that no byte stream — however malformed — panics it; bad input
//! surfaces as a `WireError`.

use tempstream_serve::wire::{
    crc32, encode_frame, encode_message, read_frame, read_message, try_encode_frame, DeltaCounts,
    Frame, FrameAssembler, Message, MessageAssembler, WireError, MAX_BATCH_RECORDS,
    MAX_FRAME_BYTES, MAX_REASSEMBLED_BYTES,
};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::rng::SplitMix64;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

fn seeded_records(seed: u64, n: usize) -> Vec<MissRecord<MissClass>> {
    let mut rng = SplitMix64::new(seed);
    let classes = MissClass::ALL;
    (0..n)
        .map(|_| MissRecord {
            block: Block::new(rng.next_u64()),
            cpu: CpuId::new((rng.next_u64() % 64) as u32),
            thread: ThreadId::new((rng.next_u64() % 1024) as u32),
            function: FunctionId::new((rng.next_u64() % 4096) as u32),
            class: classes[(rng.next_u64() % 4) as usize],
        })
        .collect()
}

fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Ingest(Vec::new()),
        Frame::Ingest(seeded_records(1, 1)),
        Frame::Ingest(seeded_records(2, 257)),
        Frame::QueryStreamFraction,
        Frame::QueryCoverage,
        Frame::QueryTopOrigins(0),
        Frame::QueryTopOrigins(u16::MAX),
        Frame::QueryMetricsSnapshot,
        Frame::Shutdown,
        Frame::IngestAck(0),
        Frame::IngestAck(u32::MAX),
        Frame::Busy,
        Frame::StreamFractionReply {
            non_repetitive: u64::MAX,
            new_stream: 0,
            recurring_stream: 1,
            distinct_streams: 42,
        },
        Frame::CoverageReply {
            total: 3,
            covered: 2,
            issued: u64::MAX,
        },
        Frame::TopOriginsReply(Vec::new()),
        Frame::TopOriginsReply(vec![(7, 9), (u32::MAX, u64::MAX)]),
        Frame::MetricsReply(String::new()),
        Frame::MetricsReply("{\"counters\":{}}".to_string()),
        Frame::ShutdownAck,
        Frame::Error {
            code: 2,
            message: "drainiñg ünïcode".to_string(),
        },
    ]
}

fn decode_one(bytes: &[u8]) -> Result<Option<Frame>, WireError> {
    let mut asm = FrameAssembler::new();
    asm.push_bytes(bytes);
    asm.next_frame()
}

#[test]
fn every_frame_round_trips() {
    for frame in sample_frames() {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let got = decode_one(&bytes)
            .unwrap_or_else(|e| panic!("decode {frame:?}: {e}"))
            .expect("complete frame");
        assert_eq!(got, frame);
        // And through the blocking reader.
        let via_reader = read_frame(&bytes[..]).expect("read_frame");
        assert_eq!(via_reader, frame);
    }
}

#[test]
fn back_to_back_frames_share_a_stream() {
    let frames = sample_frames();
    let mut bytes = Vec::new();
    for f in &frames {
        encode_frame(f, &mut bytes);
    }
    let mut asm = FrameAssembler::new();
    asm.push_bytes(&bytes);
    let mut got = Vec::new();
    while let Some(f) = asm.next_frame().expect("valid stream") {
        got.push(f);
    }
    assert_eq!(got, frames);
    assert!(asm.is_idle());
}

#[test]
fn single_byte_corruption_never_panics_and_never_forges_a_frame() {
    for frame in sample_frames() {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                match decode_one(&corrupt) {
                    // A corrupted length prefix may ask for more bytes
                    // (Ok(None)); anything else decodable must fail.
                    Ok(None) | Err(_) => {}
                    Ok(Some(got)) => {
                        assert_ne!(
                            got, frame,
                            "corruption at byte {pos} (^{flip:#x}) forged the original frame"
                        );
                        // Only a length-prefix corruption can re-frame
                        // the stream; the CRC pins the body bytes.
                        assert!(pos < 4, "body corruption at {pos} decoded to {got:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn every_truncation_is_incomplete_or_an_error() {
    for frame in sample_frames() {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        for cut in 0..bytes.len() {
            match decode_one(&bytes[..cut]) {
                Ok(None) | Err(_) => {}
                Ok(Some(got)) => panic!("prefix {cut}/{} decoded to {got:?}", bytes.len()),
            }
            // The blocking reader reports a clean mid-frame close.
            match read_frame(&bytes[..cut]) {
                Err(WireError::Truncated) => {}
                Err(other) => panic!("prefix {cut}: unexpected {other}"),
                Ok(got) => panic!("prefix {cut} read {got:?}"),
            }
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_buffering() {
    for len in [
        MAX_FRAME_BYTES as u32 + 1,
        u32::MAX,
        0, // shorter than the envelope
        1,
        5,
    ] {
        let mut asm = FrameAssembler::new();
        asm.push_bytes(&len.to_le_bytes());
        match asm.next_frame() {
            Err(WireError::BadLength(got)) => assert_eq!(got, len),
            other => panic!("len {len}: expected BadLength, got {other:?}"),
        }
    }
}

/// Rewrites the CRC trailer so the corruption under test is the only
/// defect in the frame.
fn fix_crc(bytes: &mut [u8]) {
    let n = bytes.len();
    let crc = crc32(&bytes[4..n - 4]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn ingest_count_mismatch_is_malformed() {
    let mut bytes = Vec::new();
    encode_frame(&Frame::Ingest(seeded_records(3, 2)), &mut bytes);
    // Claim 3 records while carrying 2.
    bytes[6..10].copy_from_slice(&3u32.to_le_bytes());
    fix_crc(&mut bytes);
    match decode_one(&bytes) {
        Err(WireError::Malformed(what)) => assert!(what.contains("length/count"), "{what}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn ingest_over_record_cap_is_malformed() {
    let mut bytes = Vec::new();
    encode_frame(&Frame::Ingest(seeded_records(4, 1)), &mut bytes);
    bytes[6..10].copy_from_slice(&((MAX_BATCH_RECORDS as u32) + 1).to_le_bytes());
    fix_crc(&mut bytes);
    match decode_one(&bytes) {
        Err(WireError::Malformed(what)) => assert!(what.contains("record cap"), "{what}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn unknown_type_and_version_are_rejected() {
    let mut bytes = Vec::new();
    encode_frame(&Frame::Busy, &mut bytes);
    let mut wrong_type = bytes.clone();
    wrong_type[5] = 99;
    fix_crc(&mut wrong_type);
    assert!(matches!(
        decode_one(&wrong_type),
        Err(WireError::UnknownType(99))
    ));
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 9;
    fix_crc(&mut wrong_version);
    assert!(matches!(
        decode_one(&wrong_version),
        Err(WireError::BadVersion(9))
    ));
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SplitMix64::new(0xbad_b17e5);
    for _ in 0..2000 {
        let n = (rng.next_u64() % 64) as usize;
        let garbage: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let _ = decode_one(&garbage); // must not panic
        let _ = read_frame(&garbage[..]);
        let mut masm = MessageAssembler::new();
        masm.push_bytes(&garbage);
        let _ = masm.next_message();
    }
}

// --- protocol v2 ----------------------------------------------------------

fn sample_v2_messages() -> Vec<(u32, Frame)> {
    let mut samples: Vec<(u32, Frame)> = sample_frames()
        .into_iter()
        .enumerate()
        .map(|(i, f)| (i as u32 * 0x0101_0101, f))
        .collect();
    samples.push((0, Frame::QueryDelta));
    samples.push((u32::MAX, Frame::DeltaReply(DeltaCounts::default())));
    samples.push((
        7,
        Frame::DeltaReply(DeltaCounts {
            applied: u64::MAX,
            non_repetitive: i64::MIN,
            new_stream: i64::MAX,
            recurring_stream: -1,
            distinct_streams: 0,
            total: 5,
            covered: -5,
            issued: 1,
            origins: vec![(0, -9), (u32::MAX, i64::MAX)],
        }),
    ));
    samples
}

fn decode_one_message(bytes: &[u8]) -> Result<Option<Message>, WireError> {
    let mut asm = FrameAssembler::new();
    asm.push_bytes(bytes);
    asm.next_message()
}

#[test]
fn v2_messages_round_trip_and_echo_their_sequence_id() {
    for (seq, frame) in sample_v2_messages() {
        let mut bytes = Vec::new();
        encode_message(Some(seq), &frame, &mut bytes).expect("single-frame v2 payload");
        let got = decode_one_message(&bytes)
            .unwrap_or_else(|e| panic!("decode {frame:?}: {e}"))
            .expect("complete frame");
        assert_eq!(got.seq, Some(seq), "sequence id echo for {frame:?}");
        assert_eq!(got.frame, frame);
        // And through the blocking reassembling reader.
        let via_reader = read_message(&bytes[..]).expect("read_message");
        assert_eq!(via_reader.seq, Some(seq));
        assert_eq!(via_reader.frame, frame);
    }
}

#[test]
fn v2_single_byte_corruption_never_panics_and_never_forges_a_message() {
    for (seq, frame) in sample_v2_messages() {
        let mut bytes = Vec::new();
        encode_message(Some(seq), &frame, &mut bytes).expect("encodable");
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                match decode_one_message(&corrupt) {
                    Ok(None) | Err(_) => {}
                    Ok(Some(got)) => {
                        assert!(
                            got.seq != Some(seq) || got.frame != frame,
                            "corruption at byte {pos} (^{flip:#x}) forged the original message"
                        );
                        assert!(pos < 4, "body corruption at {pos} decoded to {got:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn v2_truncations_are_incomplete_or_errors() {
    for (seq, frame) in sample_v2_messages() {
        let mut bytes = Vec::new();
        encode_message(Some(seq), &frame, &mut bytes).expect("encodable");
        for cut in 0..bytes.len() {
            match decode_one_message(&bytes[..cut]) {
                Ok(None) | Err(_) => {}
                Ok(Some(got)) => panic!("prefix {cut}/{} decoded to {got:?}", bytes.len()),
            }
            match read_message(&bytes[..cut]) {
                Err(WireError::Truncated) => {}
                Err(other) => panic!("prefix {cut}: unexpected {other}"),
                Ok(got) => panic!("prefix {cut} read {got:?}"),
            }
        }
    }
}

/// A reply whose payload exceeds one frame (u32-counted `DeltaReply`
/// rows can do this legitimately) splits into continuation frames and
/// reassembles bit-exactly, seq preserved — and the same payload is an
/// `Oversized` error, not a panic, on the v1 path.
#[test]
fn oversized_replies_split_reassemble_and_never_panic_v1() {
    let origins: Vec<(u32, i64)> = (0..120_000u32).map(|f| (f, i64::from(f) - 7)).collect();
    let big_frames = [
        Frame::DeltaReply(DeltaCounts {
            applied: 1,
            origins,
            ..DeltaCounts::default()
        }),
        Frame::MetricsReply("m".repeat(2 * MAX_FRAME_BYTES + 13)),
    ];
    for frame in big_frames {
        let mut v1 = Vec::new();
        match try_encode_frame(&frame, &mut v1) {
            Err(WireError::Oversized(_)) => {}
            other => panic!("v1 oversized: expected Oversized, got {other:?}"),
        }
        let mut bytes = Vec::new();
        encode_message(Some(0xABCD), &frame, &mut bytes).expect("v2 splits");
        // Deliver in awkward chunk sizes to exercise reassembly.
        let mut asm = MessageAssembler::new();
        let mut got = None;
        for chunk in bytes.chunks(65_537) {
            asm.push_bytes(chunk);
            if let Some(m) = asm.next_message().expect("valid continuation run") {
                assert!(got.is_none(), "one oversized reply, one message");
                got = Some(m);
            }
        }
        let got = got.expect("reassembled");
        assert_eq!(got.seq, Some(0xABCD));
        assert_eq!(got.frame, frame);
        assert!(asm.is_idle());
    }
}

#[test]
fn continuation_run_interrupted_or_inconsistent_is_malformed() {
    let open_run = |seq: u32| {
        let mut bytes = Vec::new();
        encode_message(
            Some(seq),
            &Frame::Partial {
                inner_type: 21, // metrics reply
                last: false,
                chunk: vec![b'x'; 32],
            },
            &mut bytes,
        )
        .expect("explicit partial fits");
        bytes
    };
    // A different sequence id mid-run.
    let mut asm = MessageAssembler::new();
    asm.push_bytes(&open_run(1));
    assert!(asm.next_message().expect("run open").is_none());
    asm.push_bytes(&open_run(2));
    assert!(matches!(
        asm.next_message(),
        Err(WireError::Malformed(what)) if what.contains("inconsistent")
    ));
    // A non-continuation frame mid-run.
    let mut asm = MessageAssembler::new();
    asm.push_bytes(&open_run(1));
    assert!(asm.next_message().expect("run open").is_none());
    let mut busy = Vec::new();
    encode_message(Some(1), &Frame::Busy, &mut busy).unwrap();
    asm.push_bytes(&busy);
    assert!(matches!(
        asm.next_message(),
        Err(WireError::Malformed(what)) if what.contains("interrupted")
    ));
    // A nested continuation (Partial wrapping Partial).
    let mut nested = Vec::new();
    encode_message(
        Some(3),
        &Frame::Partial {
            inner_type: 25, // T_PARTIAL itself
            last: true,
            chunk: Vec::new(),
        },
        &mut nested,
    )
    .expect("encoder does not validate inner type");
    assert!(matches!(
        decode_one_message(&nested),
        Err(WireError::Malformed(what)) if what.contains("nested")
    ));
}

#[test]
fn unbounded_continuation_run_is_rejected_as_oversized() {
    let chunk = vec![0u8; MAX_FRAME_BYTES / 2];
    let mut asm = MessageAssembler::new();
    let mut total = 0usize;
    let mut rejected = false;
    // A hostile peer streams never-ending not-last continuations.
    for _ in 0..(2 * MAX_REASSEMBLED_BYTES / chunk.len() + 4) {
        let mut bytes = Vec::new();
        encode_message(
            Some(5),
            &Frame::Partial {
                inner_type: 21,
                last: false,
                chunk: chunk.clone(),
            },
            &mut bytes,
        )
        .unwrap();
        asm.push_bytes(&bytes);
        total += chunk.len();
        match asm.next_message() {
            Ok(None) => assert!(total <= MAX_REASSEMBLED_BYTES, "run grew past the cap"),
            Err(WireError::Oversized(n)) => {
                assert!(n > MAX_REASSEMBLED_BYTES);
                rejected = true;
                break;
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(rejected, "reassembly cap never enforced");
}

#[test]
fn corrupt_delta_reply_count_is_malformed() {
    let mut bytes = Vec::new();
    encode_frame(
        &Frame::DeltaReply(DeltaCounts {
            applied: 3,
            origins: vec![(1, 2), (3, -4)],
            ..DeltaCounts::default()
        }),
        &mut bytes,
    );
    // Claim 3 origin rows while carrying 2 (count sits after the eight
    // u64/i64 counters: 4B len + 1B version + 1B type + 64B).
    bytes[70..74].copy_from_slice(&3u32.to_le_bytes());
    fix_crc(&mut bytes);
    match decode_one(&bytes) {
        Err(WireError::Malformed(what)) => assert!(what.contains("length/count"), "{what}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
    // A short header is malformed, not a slice panic.
    let mut short = Vec::new();
    encode_frame(&Frame::Busy, &mut short);
    short[5] = 24; // T_DELTA_REPLY with an empty payload
    fix_crc(&mut short);
    match decode_one(&short) {
        Err(WireError::Malformed(what)) => assert!(what.contains("short"), "{what}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn v1_frames_still_decode_through_the_message_assembler() {
    // A v2-capable endpoint must interoperate with v1 peers: frames
    // without a sequence id surface as `seq: None`.
    let frames = sample_frames();
    let mut bytes = Vec::new();
    for f in &frames {
        encode_frame(f, &mut bytes);
    }
    let mut asm = MessageAssembler::new();
    asm.push_bytes(&bytes);
    let mut got = Vec::new();
    while let Some(m) = asm.next_message().expect("valid v1 stream") {
        assert_eq!(m.seq, None);
        got.push(m.frame);
    }
    assert_eq!(got, frames);
}
