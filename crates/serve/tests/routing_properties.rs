//! Routing-stability property tests: `shard_of` is load-bearing
//! on-disk-and-on-wire state. Client readers split frames by it, the
//! offline comparator partitions by it, and any divergence between two
//! builds (or two processes on either side of an upgrade) would route
//! the same block to different shards and silently break bit-identity.
//!
//! These tests pin the routing function to its closed form —
//! `block.wrapping_mul(0x517c_c1b7_2722_0a95) % shards` — with the
//! constant spelled out as a literal, plus hand-computed pinned
//! routes. If a future hash rewrite changes any of these, the failure
//! is a deliberate routing break, not a refactor detail: it needs a
//! migration story, not a test update.

use std::hash::{BuildHasher, BuildHasherDefault, Hasher};

use tempstream_serve::shard::shard_of;
use tempstream_trace::rng::SplitMix64;

/// The Fx multiplier, written out as a literal so this test fails if
/// the constant in `tempstream-fxhash` ever drifts.
const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

/// The pre-rewrite routing path, reimplemented verbatim: a fresh
/// `FxHasher` per record fed one `write_u64`. The rewrite's whole
/// claim is that `shard_of` equals this bit for bit.
fn shard_of_via_hasher(block: u64, shards: usize) -> usize {
    let hasher_builder: BuildHasherDefault<tempstream_fxhash::FxHasher> =
        BuildHasherDefault::default();
    let mut hasher = hasher_builder.build_hasher();
    hasher.write_u64(block);
    (hasher.finish() % shards as u64) as usize
}

#[test]
fn shard_of_matches_its_closed_form_multiply() {
    let mut rng = SplitMix64::new(0x5eed_4057);
    for i in 0..20_000u64 {
        // Dense small blocks (the realistic universe) plus random
        // 64-bit ones (overflow behaviour of the multiply).
        let block = if i < 4096 { i } else { rng.next_u64() };
        for shards in [1usize, 2, 3, 4, 7, 8, 16] {
            let want = (block.wrapping_mul(FX_SEED) % shards as u64) as usize;
            assert_eq!(
                shard_of(block, shards),
                want,
                "block={block:#x} shards={shards}"
            );
        }
    }
}

#[test]
fn shard_of_matches_the_old_per_record_hasher_path() {
    let mut rng = SplitMix64::new(0xf0cc_9e37);
    for i in 0..20_000u64 {
        let block = if i < 4096 { i } else { rng.next_u64() };
        for shards in [1usize, 2, 4, 16] {
            assert_eq!(
                shard_of(block, shards),
                shard_of_via_hasher(block, shards),
                "block={block:#x} shards={shards}"
            );
        }
    }
}

/// Hand-pinned routes: stable in-process, across processes, and across
/// releases. (The Fx seed is ≡ 1 mod 4, so at 4 shards small blocks
/// route to `block % 4` — worth pinning explicitly because it makes
/// test-fixture partitioning look deceptively simple.)
#[test]
fn shard_of_routes_are_pinned_across_processes() {
    assert_eq!(shard_of(0, 4), 0);
    assert_eq!(shard_of(1, 4), 1);
    assert_eq!(shard_of(2, 4), 2);
    assert_eq!(shard_of(3, 4), 3);
    assert_eq!(shard_of(42, 4), 2);
    assert_eq!(shard_of(100, 4), 0);
    assert_eq!(shard_of(u64::MAX, 4), 3);
    assert_eq!(shard_of(0x1234_5678_9abc_def0, 7), 0);
    // One shard is the degenerate total function.
    for block in [0u64, 1, 42, u64::MAX] {
        assert_eq!(shard_of(block, 1), 0);
    }
}
