//! End-to-end loopback tests: a real server on 127.0.0.1, a real TCP
//! client, and the headline bit-identity property — online answers
//! equal the offline batch stages over the same records.

use std::net::TcpStream;
use std::thread;

use tempstream_serve::offline;
use tempstream_serve::shard::ShardConfig;
use tempstream_serve::wire::{read_frame, write_frame, Frame, ERR_BAD_FRAME};
use tempstream_serve::{Server, ServerConfig};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::rng::SplitMix64;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

fn seeded_records(seed: u64, n: usize) -> Vec<MissRecord<MissClass>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| MissRecord {
            // A small block universe so streams actually recur.
            block: Block::new(rng.next_u64() % 101),
            cpu: CpuId::new((rng.next_u64() % 4) as u32),
            thread: ThreadId::new((rng.next_u64() % 8) as u32),
            function: FunctionId::new((rng.next_u64() % 17) as u32),
            class: MissClass::Replacement,
        })
        .collect()
}

/// Starts a server on an ephemeral loopback port; returns its address
/// and the thread running it.
fn start_server(config: ServerConfig) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn call(stream: &mut TcpStream, request: &Frame) -> Frame {
    write_frame(&mut *stream, request).expect("send");
    read_frame(&mut *stream).expect("recv")
}

fn ingest_all(stream: &mut TcpStream, records: &[MissRecord<MissClass>], batch: usize) {
    for chunk in records.chunks(batch) {
        loop {
            match call(stream, &Frame::Ingest(chunk.to_vec())) {
                Frame::IngestAck(n) => {
                    assert_eq!(n as usize, chunk.len());
                    break;
                }
                Frame::Busy => thread::yield_now(),
                other => panic!("unexpected ingest reply: {other:?}"),
            }
        }
    }
}

fn shutdown(stream: &mut TcpStream) {
    assert_eq!(call(stream, &Frame::Shutdown), Frame::ShutdownAck);
}

#[test]
fn online_answers_match_offline_batch_across_shard_counts() {
    let records = seeded_records(0x10ad, 2500);
    for shards in [1usize, 2, 4] {
        let config = ServerConfig {
            shards,
            ..ServerConfig::default()
        };
        let (addr, handle) = start_server(config);
        let mut conn = TcpStream::connect(&addr).expect("connect");
        ingest_all(&mut conn, &records, 128);

        let want = offline::expected(&records, shards, ShardConfig::default(), 8);
        match call(&mut conn, &Frame::QueryStreamFraction) {
            Frame::StreamFractionReply {
                non_repetitive,
                new_stream,
                recurring_stream,
                distinct_streams,
            } => {
                assert_eq!(
                    non_repetitive, want.streams.non_repetitive,
                    "shards={shards}"
                );
                assert_eq!(new_stream, want.streams.new_stream, "shards={shards}");
                assert_eq!(
                    recurring_stream, want.streams.recurring_stream,
                    "shards={shards}"
                );
                assert_eq!(
                    distinct_streams, want.streams.distinct_streams,
                    "shards={shards}"
                );
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        match call(&mut conn, &Frame::QueryCoverage) {
            Frame::CoverageReply {
                total,
                covered,
                issued,
            } => {
                assert_eq!(total, want.coverage.total, "shards={shards}");
                assert_eq!(covered, want.coverage.covered, "shards={shards}");
                assert_eq!(issued, want.coverage.issued, "shards={shards}");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        match call(&mut conn, &Frame::QueryTopOrigins(8)) {
            Frame::TopOriginsReply(rows) => assert_eq!(rows, want.top_origins, "shards={shards}"),
            other => panic!("unexpected reply: {other:?}"),
        }

        shutdown(&mut conn);
        handle.join().expect("server thread").expect("server run");
    }
}

#[test]
fn one_shard_server_equals_whole_trace_batch_analysis() {
    let records = seeded_records(0x5eed, 1200);
    let (addr, handle) = start_server(ServerConfig::default());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    ingest_all(&mut conn, &records, 200);

    let num_cpus = records.iter().map(|r| r.cpu.raw()).max().unwrap_or(0) + 1;
    let batch = tempstream_core::stages::analyze_streams(&records, num_cpus);
    match call(&mut conn, &Frame::QueryStreamFraction) {
        Frame::StreamFractionReply {
            non_repetitive,
            new_stream,
            recurring_stream,
            distinct_streams,
        } => {
            assert_eq!(non_repetitive, batch.stream_fraction.non_repetitive);
            assert_eq!(new_stream, batch.stream_fraction.new_stream);
            assert_eq!(recurring_stream, batch.stream_fraction.recurring_stream);
            assert_eq!(distinct_streams, batch.distinct_streams as u64);
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn queries_reflect_every_acked_record_mid_stream() {
    let records = seeded_records(0xface, 900);
    let (addr, handle) = start_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let mut conn = TcpStream::connect(&addr).expect("connect");
    // Interleave ingest and queries: after each prefix, the answer
    // must equal the offline result for exactly that prefix
    // (read-your-writes + SEQUITUR's online property).
    for end in [300usize, 600, 900] {
        ingest_all(&mut conn, &records[end - 300..end], 97);
        let want = offline::expected(&records[..end], 2, ShardConfig::default(), 4);
        match call(&mut conn, &Frame::QueryCoverage) {
            Frame::CoverageReply {
                total,
                covered,
                issued,
            } => {
                assert_eq!(
                    (total, covered, issued),
                    (
                        want.coverage.total,
                        want.coverage.covered,
                        want.coverage.issued
                    ),
                    "prefix {end}"
                );
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        match call(&mut conn, &Frame::QueryStreamFraction) {
            Frame::StreamFractionReply {
                non_repetitive,
                new_stream,
                recurring_stream,
                distinct_streams,
            } => {
                assert_eq!(
                    (
                        non_repetitive,
                        new_stream,
                        recurring_stream,
                        distinct_streams
                    ),
                    (
                        want.streams.non_repetitive,
                        want.streams.new_stream,
                        want.streams.recurring_stream,
                        want.streams.distinct_streams
                    ),
                    "prefix {end}"
                );
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn malformed_bytes_get_an_error_frame_then_close() {
    use std::io::{Read, Write};
    let (addr, handle) = start_server(ServerConfig::default());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    // A hostile length prefix followed by garbage.
    conn.write_all(&u32::MAX.to_le_bytes()).expect("send");
    conn.write_all(&[0xAA; 32]).expect("send");
    match read_frame(&mut conn) {
        Ok(Frame::Error { code, message }) => {
            assert_eq!(code, ERR_BAD_FRAME);
            assert!(!message.is_empty());
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    // The server closes the connection after the error frame.
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "no bytes after the error frame");

    // The server survives; a fresh connection works.
    let mut conn2 = TcpStream::connect(&addr).expect("reconnect");
    assert!(matches!(
        call(&mut conn2, &Frame::QueryCoverage),
        Frame::CoverageReply { total: 0, .. }
    ));
    shutdown(&mut conn2);
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn reply_direction_frame_is_rejected() {
    let (addr, handle) = start_server(ServerConfig::default());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    match call(&mut conn, &Frame::IngestAck(1)) {
        Frame::Error { code, .. } => assert_eq!(code, ERR_BAD_FRAME),
        other => panic!("expected error frame, got {other:?}"),
    }
    let mut conn2 = TcpStream::connect(&addr).expect("reconnect");
    shutdown(&mut conn2);
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn connection_admission_rejects_excess_with_busy() {
    let (addr, handle) = start_server(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    // First connection occupies the only lane...
    let mut held = TcpStream::connect(&addr).expect("connect");
    assert!(matches!(
        call(&mut held, &Frame::QueryCoverage),
        Frame::CoverageReply { .. }
    ));
    // ...so the second is turned away with Busy and closed.
    let mut rejected = TcpStream::connect(&addr).expect("connect");
    assert_eq!(read_frame(&mut rejected).expect("busy frame"), Frame::Busy);
    drop(rejected);

    // Releasing the lane admits a new connection (poll until the
    // handler notices the close and frees the slot).
    drop(held);
    let mut last = None;
    for _ in 0..200 {
        let mut conn = TcpStream::connect(&addr).expect("connect");
        match read_frame_or_query(&mut conn) {
            Ok(frame) => {
                last = Some((conn, frame));
                break;
            }
            Err(()) => thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    let (mut conn, frame) = last.expect("a connection was admitted after the slot freed");
    assert!(matches!(frame, Frame::CoverageReply { .. }));
    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
}

/// Sends a coverage query; `Err(())` if the server answered `Busy`
/// (admission still exhausted) or closed the connection.
fn read_frame_or_query(conn: &mut TcpStream) -> Result<Frame, ()> {
    write_frame(&mut *conn, &Frame::QueryCoverage).map_err(|_| ())?;
    match read_frame(&mut *conn) {
        Ok(Frame::Busy) | Err(_) => Err(()),
        Ok(frame) => Ok(frame),
    }
}

#[test]
fn draining_server_refuses_new_ingest_but_acked_records_survive() {
    // Covered end-to-end by the shutdown paths above; here the focus
    // is that a post-shutdown server really exited (listener gone).
    let (addr, handle) = start_server(ServerConfig::default());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    ingest_all(&mut conn, &seeded_records(9, 64), 64);
    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
    // The listener is closed once run() returns.
    assert!(
        TcpStream::connect(&addr).is_err(),
        "listener closed after drain"
    );
}
