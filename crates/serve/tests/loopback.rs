//! End-to-end loopback tests: a real server on 127.0.0.1, a real TCP
//! client, and the headline bit-identity property — online answers
//! equal the offline batch stages over the same records.

use std::collections::{HashMap, VecDeque};
use std::net::TcpStream;
use std::thread;

use tempstream_serve::offline;
use tempstream_serve::shard::{shard_of, ShardConfig};
use tempstream_serve::wire::{
    read_frame, read_message, write_frame, write_message, DeltaCounts, Frame, MessageReader,
    ERR_BAD_FRAME, ERR_DRAINING, ERR_OVERSIZED, MAX_FRAME_BYTES,
};
use tempstream_serve::{Server, ServerConfig};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::rng::SplitMix64;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

fn seeded_records(seed: u64, n: usize) -> Vec<MissRecord<MissClass>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| MissRecord {
            // A small block universe so streams actually recur.
            block: Block::new(rng.next_u64() % 101),
            cpu: CpuId::new((rng.next_u64() % 4) as u32),
            thread: ThreadId::new((rng.next_u64() % 8) as u32),
            function: FunctionId::new((rng.next_u64() % 17) as u32),
            class: MissClass::Replacement,
        })
        .collect()
}

/// Starts a server on an ephemeral loopback port; returns its address
/// and the thread running it.
fn start_server(config: ServerConfig) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn call(stream: &mut TcpStream, request: &Frame) -> Frame {
    write_frame(&mut *stream, request).expect("send");
    read_frame(&mut *stream).expect("recv")
}

fn ingest_all(stream: &mut TcpStream, records: &[MissRecord<MissClass>], batch: usize) {
    for chunk in records.chunks(batch) {
        loop {
            match call(stream, &Frame::Ingest(chunk.to_vec())) {
                Frame::IngestAck(n) => {
                    assert_eq!(n as usize, chunk.len());
                    break;
                }
                Frame::Busy => thread::yield_now(),
                other => panic!("unexpected ingest reply: {other:?}"),
            }
        }
    }
}

fn shutdown(stream: &mut TcpStream) {
    assert_eq!(call(stream, &Frame::Shutdown), Frame::ShutdownAck);
}

#[test]
fn online_answers_match_offline_batch_across_shard_counts() {
    let records = seeded_records(0x10ad, 2500);
    for shards in [1usize, 2, 4] {
        let config = ServerConfig {
            shards,
            ..ServerConfig::default()
        };
        let (addr, handle) = start_server(config);
        let mut conn = TcpStream::connect(&addr).expect("connect");
        ingest_all(&mut conn, &records, 128);

        let want = offline::expected(&records, shards, ShardConfig::default(), 8);
        match call(&mut conn, &Frame::QueryStreamFraction) {
            Frame::StreamFractionReply {
                non_repetitive,
                new_stream,
                recurring_stream,
                distinct_streams,
            } => {
                assert_eq!(
                    non_repetitive, want.streams.non_repetitive,
                    "shards={shards}"
                );
                assert_eq!(new_stream, want.streams.new_stream, "shards={shards}");
                assert_eq!(
                    recurring_stream, want.streams.recurring_stream,
                    "shards={shards}"
                );
                assert_eq!(
                    distinct_streams, want.streams.distinct_streams,
                    "shards={shards}"
                );
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        match call(&mut conn, &Frame::QueryCoverage) {
            Frame::CoverageReply {
                total,
                covered,
                issued,
            } => {
                assert_eq!(total, want.coverage.total, "shards={shards}");
                assert_eq!(covered, want.coverage.covered, "shards={shards}");
                assert_eq!(issued, want.coverage.issued, "shards={shards}");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        match call(&mut conn, &Frame::QueryTopOrigins(8)) {
            Frame::TopOriginsReply(rows) => assert_eq!(rows, want.top_origins, "shards={shards}"),
            other => panic!("unexpected reply: {other:?}"),
        }

        shutdown(&mut conn);
        handle.join().expect("server thread").expect("server run");
    }
}

#[test]
fn one_shard_server_equals_whole_trace_batch_analysis() {
    let records = seeded_records(0x5eed, 1200);
    let (addr, handle) = start_server(ServerConfig::default());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    ingest_all(&mut conn, &records, 200);

    let num_cpus = records.iter().map(|r| r.cpu.raw()).max().unwrap_or(0) + 1;
    let batch = tempstream_core::stages::analyze_streams(&records, num_cpus);
    match call(&mut conn, &Frame::QueryStreamFraction) {
        Frame::StreamFractionReply {
            non_repetitive,
            new_stream,
            recurring_stream,
            distinct_streams,
        } => {
            assert_eq!(non_repetitive, batch.stream_fraction.non_repetitive);
            assert_eq!(new_stream, batch.stream_fraction.new_stream);
            assert_eq!(recurring_stream, batch.stream_fraction.recurring_stream);
            assert_eq!(distinct_streams, batch.distinct_streams as u64);
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn queries_reflect_every_acked_record_mid_stream() {
    let records = seeded_records(0xface, 900);
    let (addr, handle) = start_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let mut conn = TcpStream::connect(&addr).expect("connect");
    // Interleave ingest and queries: after each prefix, the answer
    // must equal the offline result for exactly that prefix
    // (read-your-writes + SEQUITUR's online property). The comparator
    // is fed the same increments the server is — each record analyzed
    // once, not once per verification phase.
    let mut comparator = offline::Comparator::new(2, ShardConfig::default());
    for end in [300usize, 600, 900] {
        ingest_all(&mut conn, &records[end - 300..end], 97);
        comparator.push(&records[end - 300..end]);
        assert_eq!(comparator.pushed(), end as u64, "no record re-pushed");
        let want = comparator.expected(4);
        match call(&mut conn, &Frame::QueryCoverage) {
            Frame::CoverageReply {
                total,
                covered,
                issued,
            } => {
                assert_eq!(
                    (total, covered, issued),
                    (
                        want.coverage.total,
                        want.coverage.covered,
                        want.coverage.issued
                    ),
                    "prefix {end}"
                );
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        match call(&mut conn, &Frame::QueryStreamFraction) {
            Frame::StreamFractionReply {
                non_repetitive,
                new_stream,
                recurring_stream,
                distinct_streams,
            } => {
                assert_eq!(
                    (
                        non_repetitive,
                        new_stream,
                        recurring_stream,
                        distinct_streams
                    ),
                    (
                        want.streams.non_repetitive,
                        want.streams.new_stream,
                        want.streams.recurring_stream,
                        want.streams.distinct_streams
                    ),
                    "prefix {end}"
                );
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn malformed_bytes_get_an_error_frame_then_close() {
    use std::io::{Read, Write};
    let (addr, handle) = start_server(ServerConfig::default());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    // A hostile length prefix followed by garbage.
    conn.write_all(&u32::MAX.to_le_bytes()).expect("send");
    conn.write_all(&[0xAA; 32]).expect("send");
    match read_frame(&mut conn) {
        Ok(Frame::Error { code, message }) => {
            assert_eq!(code, ERR_BAD_FRAME);
            assert!(!message.is_empty());
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    // The server closes the connection after the error frame.
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("drain");
    assert!(rest.is_empty(), "no bytes after the error frame");

    // The server survives; a fresh connection works.
    let mut conn2 = TcpStream::connect(&addr).expect("reconnect");
    assert!(matches!(
        call(&mut conn2, &Frame::QueryCoverage),
        Frame::CoverageReply { total: 0, .. }
    ));
    shutdown(&mut conn2);
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn reply_direction_frame_is_rejected() {
    let (addr, handle) = start_server(ServerConfig::default());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    match call(&mut conn, &Frame::IngestAck(1)) {
        Frame::Error { code, .. } => assert_eq!(code, ERR_BAD_FRAME),
        other => panic!("expected error frame, got {other:?}"),
    }
    let mut conn2 = TcpStream::connect(&addr).expect("reconnect");
    shutdown(&mut conn2);
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn connection_admission_rejects_excess_with_busy() {
    let (addr, handle) = start_server(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    // First connection occupies the only lane...
    let mut held = TcpStream::connect(&addr).expect("connect");
    assert!(matches!(
        call(&mut held, &Frame::QueryCoverage),
        Frame::CoverageReply { .. }
    ));
    // ...so the second is turned away with Busy and closed.
    let mut rejected = TcpStream::connect(&addr).expect("connect");
    assert_eq!(read_frame(&mut rejected).expect("busy frame"), Frame::Busy);
    drop(rejected);

    // Releasing the lane admits a new connection (poll until the
    // handler notices the close and frees the slot).
    drop(held);
    let mut last = None;
    for _ in 0..200 {
        let mut conn = TcpStream::connect(&addr).expect("connect");
        match read_frame_or_query(&mut conn) {
            Ok(frame) => {
                last = Some((conn, frame));
                break;
            }
            Err(()) => thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    let (mut conn, frame) = last.expect("a connection was admitted after the slot freed");
    assert!(matches!(frame, Frame::CoverageReply { .. }));
    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
}

/// Sends a coverage query; `Err(())` if the server answered `Busy`
/// (admission still exhausted) or closed the connection.
fn read_frame_or_query(conn: &mut TcpStream) -> Result<Frame, ()> {
    write_frame(&mut *conn, &Frame::QueryCoverage).map_err(|_| ())?;
    match read_frame(&mut *conn) {
        Ok(Frame::Busy) | Err(_) => Err(()),
        Ok(frame) => Ok(frame),
    }
}

// --- protocol v2: pipelining + incremental deltas -------------------------

fn signed(n: u64) -> i64 {
    i64::try_from(n).expect("count fits i64")
}

/// One v2 request/reply round trip; asserts the reply echoes `seq`.
fn call_v2(stream: &mut TcpStream, seq: u32, request: &Frame) -> Frame {
    write_message(&mut *stream, Some(seq), request).expect("send v2");
    let msg = read_message(&mut *stream).expect("recv v2");
    assert_eq!(msg.seq, Some(seq), "reply must echo the request seq");
    msg.frame
}

fn query_delta(stream: &mut TcpStream, seq: u32) -> DeltaCounts {
    match call_v2(stream, seq, &Frame::QueryDelta) {
        Frame::DeltaReply(delta) => delta,
        other => panic!("unexpected delta reply: {other:?}"),
    }
}

/// Telescoping accumulator over a connection's `DeltaReply` stream.
#[derive(Default)]
struct DeltaAcc {
    applied: u64,
    non_repetitive: i64,
    new_stream: i64,
    recurring_stream: i64,
    distinct_streams: i64,
    total: i64,
    covered: i64,
    issued: i64,
    origins: HashMap<u32, i64>,
}

impl DeltaAcc {
    fn absorb(&mut self, d: &DeltaCounts) {
        assert!(d.applied >= self.applied, "applied watermark is monotone");
        self.applied = d.applied;
        self.non_repetitive += d.non_repetitive;
        self.new_stream += d.new_stream;
        self.recurring_stream += d.recurring_stream;
        self.distinct_streams += d.distinct_streams;
        self.total += d.total;
        self.covered += d.covered;
        self.issued += d.issued;
        for &(id, delta) in &d.origins {
            *self.origins.entry(id).or_insert(0) += delta;
        }
    }
}

/// Pipelines `records` over protocol v2 with up to `window` requests in
/// flight, interleaving a `QueryDelta` every `delta_every` acks.
/// Returns the records in ack (= admission) order plus the accumulated
/// deltas, with the final delta already absorbed so the telescoped sums
/// cover the whole ingest.
fn ingest_pipelined(
    conn: &mut TcpStream,
    records: &[MissRecord<MissClass>],
    batch: usize,
    window: usize,
    delta_every: usize,
) -> (Vec<MissRecord<MissClass>>, DeltaAcc) {
    enum Slot {
        Ingest(u32, usize),
        Delta(u32),
    }
    impl Slot {
        fn seq(&self) -> u32 {
            match *self {
                Slot::Ingest(seq, _) | Slot::Delta(seq) => seq,
            }
        }
    }
    let batches: Vec<&[MissRecord<MissClass>]> = records.chunks(batch).collect();
    // Pipelined replies coalesce into shared TCP segments; a one-shot
    // read_message would drop the extras, so hold a persistent reader.
    let mut reader = MessageReader::new();
    let mut pending: VecDeque<usize> = (0..batches.len()).collect();
    let mut inflight: VecDeque<Slot> = VecDeque::new();
    let mut acc = DeltaAcc::default();
    let mut acked: Vec<usize> = Vec::new();
    let mut seq: u32 = 0;
    let mut acks_since_delta = 0usize;
    let next_seq = |slot: &mut u32| {
        let s = *slot;
        *slot = slot.wrapping_add(1);
        s
    };
    loop {
        // Fill the window, preferring a due delta probe over new ingest
        // so the cursor advances mid-stream, not just at the end.
        while inflight.len() < window {
            if acks_since_delta >= delta_every {
                acks_since_delta = 0;
                let s = next_seq(&mut seq);
                write_message(&mut *conn, Some(s), &Frame::QueryDelta).expect("send delta");
                inflight.push_back(Slot::Delta(s));
            } else if let Some(idx) = pending.pop_front() {
                let s = next_seq(&mut seq);
                write_message(&mut *conn, Some(s), &Frame::Ingest(batches[idx].to_vec()))
                    .expect("send ingest");
                inflight.push_back(Slot::Ingest(s, idx));
            } else {
                break;
            }
        }
        let Some(slot) = inflight.pop_front() else {
            break;
        };
        let msg = reader.next_from(&mut *conn).expect("pipelined reply");
        assert_eq!(
            msg.seq,
            Some(slot.seq()),
            "replies come back in FIFO request order: {:?}",
            msg.frame
        );
        match (slot, msg.frame) {
            (Slot::Ingest(_, idx), Frame::IngestAck(n)) => {
                assert_eq!(n as usize, batches[idx].len());
                acked.push(idx);
                acks_since_delta += 1;
            }
            (Slot::Ingest(_, idx), Frame::Busy) => {
                // Router admission is full: re-queue and back off.
                pending.push_front(idx);
                thread::sleep(std::time::Duration::from_millis(1));
            }
            (Slot::Delta(_), Frame::DeltaReply(delta)) => acc.absorb(&delta),
            (slot, other) => {
                let what = match slot {
                    Slot::Ingest(..) => "ingest",
                    Slot::Delta(_) => "delta",
                };
                panic!("unexpected {what} reply: {other:?}");
            }
        }
    }
    // Close the telescope: one final delta covers everything acked
    // after the last interleaved probe (read through the same
    // persistent reader in case it still buffers bytes).
    let final_seq = next_seq(&mut seq);
    write_message(&mut *conn, Some(final_seq), &Frame::QueryDelta).expect("send final delta");
    let msg = reader.next_from(&mut *conn).expect("final delta");
    assert_eq!(msg.seq, Some(final_seq));
    match msg.frame {
        Frame::DeltaReply(delta) => acc.absorb(&delta),
        other => panic!("unexpected final delta reply: {other:?}"),
    }
    let effective = acked
        .iter()
        .flat_map(|&idx| batches[idx].iter().copied())
        .collect();
    (effective, acc)
}

#[test]
fn pipelined_and_delta_answers_match_offline_across_shard_counts() {
    let records = seeded_records(0x9a9a, 2400);
    for shards in [1usize, 2, 4] {
        let (addr, handle) = start_server(ServerConfig {
            shards,
            ..ServerConfig::default()
        });
        let mut conn = TcpStream::connect(&addr).expect("connect");
        let (effective, acc) = ingest_pipelined(&mut conn, &records, 128, 8, 5);
        assert_eq!(effective.len(), records.len(), "shards={shards}");
        assert_eq!(acc.applied, records.len() as u64, "shards={shards}");

        // The offline comparator runs over the ack-order record
        // sequence (identical to send order on one connection, but
        // reconstructing it keeps the check honest).
        let want = offline::expected(&effective, shards, ShardConfig::default(), 8);

        // Absolute v1 queries still work on the same connection, and
        // the telescoped delta sums equal those absolutes exactly.
        match call(&mut conn, &Frame::QueryStreamFraction) {
            Frame::StreamFractionReply {
                non_repetitive,
                new_stream,
                recurring_stream,
                distinct_streams,
            } => {
                assert_eq!(
                    (
                        non_repetitive,
                        new_stream,
                        recurring_stream,
                        distinct_streams
                    ),
                    (
                        want.streams.non_repetitive,
                        want.streams.new_stream,
                        want.streams.recurring_stream,
                        want.streams.distinct_streams
                    ),
                    "shards={shards}"
                );
                assert_eq!(
                    (
                        acc.non_repetitive,
                        acc.new_stream,
                        acc.recurring_stream,
                        acc.distinct_streams
                    ),
                    (
                        signed(non_repetitive),
                        signed(new_stream),
                        signed(recurring_stream),
                        signed(distinct_streams)
                    ),
                    "shards={shards}: deltas telescope to the absolutes"
                );
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        match call(&mut conn, &Frame::QueryCoverage) {
            Frame::CoverageReply {
                total,
                covered,
                issued,
            } => {
                assert_eq!(
                    (acc.total, acc.covered, acc.issued),
                    (signed(total), signed(covered), signed(issued)),
                    "shards={shards}"
                );
                assert_eq!(total, want.coverage.total, "shards={shards}");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        // Origin deltas sum to a straight per-function recount.
        let mut want_origins: HashMap<u32, i64> = HashMap::new();
        for r in &effective {
            *want_origins.entry(r.function.raw()).or_insert(0) += 1;
        }
        let got_origins: HashMap<u32, i64> = acc
            .origins
            .iter()
            .filter(|&(_, &n)| n != 0)
            .map(|(&id, &n)| (id, n))
            .collect();
        assert_eq!(got_origins, want_origins, "shards={shards}");

        // A quiescent connection's next delta is empty, at the same
        // watermark — the version fast path, observable as a no-op.
        let quiet = query_delta(&mut conn, 0xFFFF);
        assert!(quiet.is_empty(), "shards={shards}: {quiet:?}");
        assert_eq!(quiet.applied, records.len() as u64, "shards={shards}");

        shutdown(&mut conn);
        handle.join().expect("server thread").expect("server run");
    }
}

#[test]
fn delta_cursors_are_per_connection_and_carry_only_changes() {
    let records = seeded_records(0xd1f, 1000);
    let (addr, handle) = start_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let mut conn1 = TcpStream::connect(&addr).expect("connect 1");
    let mut conn2 = TcpStream::connect(&addr).expect("connect 2");

    ingest_all(&mut conn1, &records[..500], 100);
    // One comparator, snapshot at each cut — the 500-record prefix is
    // analyzed once, not re-analyzed for the 1000-record answer.
    let mut comparator = offline::Comparator::new(2, ShardConfig::default());
    comparator.push(&records[..500]);
    let want500 = comparator.expected(8);
    comparator.push(&records[500..]);
    let want1000 = comparator.expected(8);

    // First delta on each connection is absolute (fresh cursor), and
    // both connections see the same consistent cut.
    let d1a = query_delta(&mut conn1, 1);
    assert_eq!(d1a.applied, 500);
    assert_eq!(d1a.non_repetitive, signed(want500.streams.non_repetitive));
    assert_eq!(
        d1a.distinct_streams,
        signed(want500.streams.distinct_streams)
    );
    assert_eq!(d1a.total, signed(want500.coverage.total));
    let d2a = query_delta(&mut conn2, 1);
    assert_eq!(d2a, d1a, "independent cursors over the same cut agree");

    ingest_all(&mut conn1, &records[500..], 100);

    // Second delta carries only the change since each cursor's cut —
    // exactly the difference of the offline prefix answers.
    let d1b = query_delta(&mut conn1, 2);
    assert_eq!(d1b.applied, 1000);
    assert_eq!(
        d1b.non_repetitive,
        signed(want1000.streams.non_repetitive) - signed(want500.streams.non_repetitive)
    );
    assert_eq!(
        d1b.new_stream,
        signed(want1000.streams.new_stream) - signed(want500.streams.new_stream)
    );
    assert_eq!(
        d1b.covered,
        signed(want1000.coverage.covered) - signed(want500.coverage.covered)
    );
    let d2b = query_delta(&mut conn2, 2);
    assert_eq!(d2b, d1b, "same cursor position, same diff");

    // A connection opened late still gets the full absolute picture.
    let mut conn3 = TcpStream::connect(&addr).expect("connect 3");
    let d3 = query_delta(&mut conn3, 1);
    assert_eq!(d3.applied, 1000);
    assert_eq!(d3.non_repetitive, signed(want1000.streams.non_repetitive));
    assert_eq!(d3.issued, signed(want1000.coverage.issued));

    shutdown(&mut conn1);
    handle.join().expect("server thread").expect("server run");
}

// --- satellite regressions ------------------------------------------------

/// Satellite 1: a metrics registry whose JSON exceeds the 1 MiB frame
/// cap used to trip `encode_frame`'s assert and kill the connection
/// thread. Now: v1 clients get `Error{ERR_OVERSIZED}` on a surviving
/// connection; v2 clients get the full snapshot across continuation
/// frames.
#[test]
fn oversized_metrics_snapshot_errors_on_v1_and_chunks_on_v2() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = Server::from_listener(listener, ServerConfig::default());
    let registry = server.registry();
    // Inflate the registry well past MAX_FRAME_BYTES of rendered JSON.
    for i in 0..24_000 {
        registry
            .counter(&format!(
                "inflate/{i:06}/abcdefghijklmnopqrstuvwxyz0123456789"
            ))
            .inc();
    }
    let handle = thread::spawn(move || server.run());

    // v1: the reply is substituted with an error frame, and the same
    // connection keeps working afterwards.
    let mut conn = TcpStream::connect(&addr).expect("connect");
    match call(&mut conn, &Frame::QueryMetricsSnapshot) {
        Frame::Error { code, message } => {
            assert_eq!(code, ERR_OVERSIZED);
            assert!(
                message.contains("v2"),
                "error should point at v2: {message}"
            );
        }
        other => panic!("expected oversized error, got {other:?}"),
    }
    assert!(
        matches!(
            call(&mut conn, &Frame::QueryCoverage),
            Frame::CoverageReply { .. }
        ),
        "connection survives an oversized reply"
    );

    // v2: the snapshot arrives whole, reassembled from continuations.
    match call_v2(&mut conn, 7, &Frame::QueryMetricsSnapshot) {
        Frame::MetricsReply(json) => {
            assert!(
                json.len() > MAX_FRAME_BYTES,
                "snapshot big enough to need continuations: {} bytes",
                json.len()
            );
            let parsed = tempstream_obsv::Json::parse(&json).expect("valid JSON");
            assert!(parsed
                .get_path("counters/inflate/000000/abcdefghijklmnopqrstuvwxyz0123456789")
                .is_some());
        }
        other => panic!("expected metrics reply, got {other:?}"),
    }

    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
}

/// Satellite 3: a panicking connection handler used to leak its
/// admission slot (`conns.active` never decremented), wedging a
/// `max_connections = 1` server forever. The drop guard frees the slot
/// even on unwind; the parked panic resurfaces when `run` exits.
#[test]
fn panicking_connection_handler_frees_its_slot() {
    let (addr, handle) = start_server(ServerConfig {
        max_connections: 1,
        fault_conn_panics: 1,
        ..ServerConfig::default()
    });
    // The first connection trips the injected panic on its first frame;
    // the server drops the connection without a reply.
    let mut victim = TcpStream::connect(&addr).expect("connect");
    write_frame(&mut victim, &Frame::QueryCoverage).expect("send");
    assert!(
        read_frame(&mut victim).is_err(),
        "panicked handler closes the connection unanswered"
    );
    drop(victim);

    // The only slot must come back: poll until a new connection is
    // admitted and answered (pre-fix this loops to exhaustion).
    let mut last = None;
    for _ in 0..200 {
        let mut conn = TcpStream::connect(&addr).expect("connect");
        match read_frame_or_query(&mut conn) {
            Ok(frame) => {
                last = Some((conn, frame));
                break;
            }
            Err(()) => thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    let (mut conn, frame) = last.expect("slot freed after handler panic");
    assert!(matches!(frame, Frame::CoverageReply { .. }));
    shutdown(&mut conn);
    // The pool re-raises the handler's panic once the drain completes,
    // so the server thread reports the fault instead of hiding it.
    assert!(
        handle.join().is_err(),
        "injected handler panic resurfaces at run() exit"
    );
}

/// Satellite 4 (drain half): a client whose connect races the drain
/// used to be silently dropped; now it gets `Error{ERR_DRAINING}`.
#[test]
fn late_client_racing_the_drain_is_answered_not_ghosted() {
    // Hold the acceptor for 100ms after each accept so the test can
    // deterministically land a connect in the drain window.
    let (addr, handle) = start_server(ServerConfig {
        fault_accept_hold_ms: 100,
        ..ServerConfig::default()
    });
    let mut controller = TcpStream::connect(&addr).expect("connect");
    assert!(matches!(
        call(&mut controller, &Frame::QueryCoverage),
        Frame::CoverageReply { .. }
    ));
    // Park the acceptor in its hold: this connect is accepted (popping
    // the blocked accept), then the acceptor sleeps before looping.
    let _opener = TcpStream::connect(&addr).expect("connect opener");
    // Inside the hold window: start the drain, then race a connect in.
    write_frame(&mut controller, &Frame::Shutdown).expect("send shutdown");
    let mut late = TcpStream::connect(&addr).expect("late connect");
    late.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("timeout");
    match read_frame(&mut late).expect("late client gets an answer") {
        Frame::Error { code, .. } => assert_eq!(code, ERR_DRAINING),
        other => panic!("expected draining error, got {other:?}"),
    }
    assert_eq!(
        read_frame(&mut controller).expect("ack"),
        Frame::ShutdownAck
    );
    handle.join().expect("server thread").expect("server run");
}

/// Satellite 4 (metrics half): the snapshot's gauges are exported on
/// the same consistent cut as its counters — in-state records equal
/// applied records exactly, never a torn mid-ingest view.
#[test]
fn metrics_snapshot_gauges_sit_on_the_query_cut() {
    let records = seeded_records(0x4a4a, 2000);
    let (addr, handle) = start_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let mut conn = TcpStream::connect(&addr).expect("connect");
    ingest_all(&mut conn, &records, 100);
    match call(&mut conn, &Frame::QueryMetricsSnapshot) {
        Frame::MetricsReply(json) => {
            let parsed = tempstream_obsv::Json::parse(&json).expect("valid JSON");
            let at = |path: &str| {
                parsed
                    .get_path(path)
                    .and_then(tempstream_obsv::Json::as_u64)
                    .unwrap_or_else(|| panic!("missing metric {path}"))
            };
            let applied = at("counters/serve/records/applied");
            let ingested = at("counters/serve/records/ingested");
            let in_state = at("gauges/serve/records/in_state");
            assert_eq!(applied, records.len() as u64);
            assert_eq!(ingested, applied, "cut taken after wait_applied");
            assert_eq!(in_state, applied, "gauges share the counters' cut");
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
}

// --- version-keyed query caches (PR 9) ------------------------------------

/// Reads the grammar-walk gauge off a metrics snapshot: how many times
/// any shard actually re-walked its grammar for `StreamCounts`.
fn grammar_walks(conn: &mut TcpStream) -> u64 {
    match call(conn, &Frame::QueryMetricsSnapshot) {
        Frame::MetricsReply(json) => {
            let parsed = tempstream_obsv::Json::parse(&json).expect("valid JSON");
            parsed
                .get_path("gauges/serve/analysis/grammar_walks")
                .and_then(tempstream_obsv::Json::as_u64)
                .expect("grammar_walks gauge present")
        }
        other => panic!("unexpected metrics reply: {other:?}"),
    }
}

/// The version-keyed `StreamCounts` cache and the cursor's patched
/// origin merge must never serve a stale answer: interleave ingest
/// phases that move both shards, only shard 0, only shard 1, and both
/// again, checking every query type against the offline comparator at
/// each step — including repeated (pure cache-hit) queries.
#[test]
fn version_keyed_caches_never_serve_stale_answers_across_phases() {
    let all = seeded_records(0xcac4e, 1600);
    let shard0: Vec<_> = all
        .iter()
        .copied()
        .filter(|r| shard_of(r.block.raw(), 2) == 0)
        .collect();
    let shard1: Vec<_> = all
        .iter()
        .copied()
        .filter(|r| shard_of(r.block.raw(), 2) == 1)
        .collect();
    assert!(shard0.len() >= 100 && shard1.len() >= 100, "both lanes fed");

    let (addr, handle) = start_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let mut conn = TcpStream::connect(&addr).expect("connect");

    // Phase 1: both shards move. Phase 2: only shard 0 (shard 1's
    // cached counts must still be served, and still be right).
    // Phase 3: only shard 1. Phase 4: both again (every cache entry
    // invalidated at once).
    let phases: [&[MissRecord<MissClass>]; 4] =
        [&all[..400], &shard0[..150], &shard1[..150], &all[400..800]];
    let mut ingested: Vec<MissRecord<MissClass>> = Vec::new();
    let mut comparator = offline::Comparator::new(2, ShardConfig::default());
    for (phase, batch) in phases.iter().enumerate() {
        ingest_all(&mut conn, batch, 97);
        ingested.extend_from_slice(batch);
        comparator.push(batch);
        let want = comparator.expected(8);
        // Ask twice: the first answer may rebuild caches, the second
        // must be a pure cache hit — both must equal offline.
        for round in 0..2 {
            let ctx = format!("phase {phase} round {round}");
            match call(&mut conn, &Frame::QueryStreamFraction) {
                Frame::StreamFractionReply {
                    non_repetitive,
                    new_stream,
                    recurring_stream,
                    distinct_streams,
                } => assert_eq!(
                    (
                        non_repetitive,
                        new_stream,
                        recurring_stream,
                        distinct_streams
                    ),
                    (
                        want.streams.non_repetitive,
                        want.streams.new_stream,
                        want.streams.recurring_stream,
                        want.streams.distinct_streams
                    ),
                    "{ctx}"
                ),
                other => panic!("{ctx}: unexpected reply: {other:?}"),
            }
            match call(&mut conn, &Frame::QueryTopOrigins(8)) {
                Frame::TopOriginsReply(rows) => assert_eq!(rows, want.top_origins, "{ctx}"),
                other => panic!("{ctx}: unexpected reply: {other:?}"),
            }
            match call(&mut conn, &Frame::QueryCoverage) {
                Frame::CoverageReply {
                    total,
                    covered,
                    issued,
                } => assert_eq!(
                    (total, covered, issued),
                    (
                        want.coverage.total,
                        want.coverage.covered,
                        want.coverage.issued
                    ),
                    "{ctx}"
                ),
                other => panic!("{ctx}: unexpected reply: {other:?}"),
            }
        }
        // The cursor delta lands on the same cut, and a second probe
        // without ingest is empty (nothing stale left to flush).
        let d = query_delta(&mut conn, phase as u32);
        assert_eq!(d.applied, ingested.len() as u64, "phase {phase}");
        let quiet = query_delta(&mut conn, 100 + phase as u32);
        assert!(quiet.is_empty(), "phase {phase}: {quiet:?}");
    }

    // The comparator's grammar work is bounded by (partitions ×
    // phases), not (records × phases): each phase walks at most the
    // two partition grammars, and phases 2/3 walk only the one that
    // moved. The old from-scratch comparator rebuilt every grammar
    // from record zero on every one of the 8 query rounds above.
    assert_eq!(comparator.pushed(), ingested.len() as u64);
    assert!(
        comparator.grammar_walks() <= 2 * phases.len() as u64,
        "walks={}",
        comparator.grammar_walks()
    );

    // A fresh connection (fresh cursor, warm shard caches) sees the
    // same absolutes the offline comparator does.
    let want = comparator.expected(8);
    let mut conn2 = TcpStream::connect(&addr).expect("connect 2");
    match call(&mut conn2, &Frame::QueryTopOrigins(8)) {
        Frame::TopOriginsReply(rows) => assert_eq!(rows, want.top_origins),
        other => panic!("unexpected reply: {other:?}"),
    }

    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
}

/// The tentpole's O(changed shards) claim, asserted via the
/// `grammar_walks` gauge: delta probes after single-shard ingest walk
/// exactly one grammar, full queries only walk shards whose version
/// moved, and repeat queries walk nothing.
#[test]
fn delta_probe_walks_only_changed_shards() {
    let all = seeded_records(0x3a1d, 1200);
    let shard0: Vec<_> = all
        .iter()
        .copied()
        .filter(|r| shard_of(r.block.raw(), 2) == 0)
        .collect();
    let shard1: Vec<_> = all
        .iter()
        .copied()
        .filter(|r| shard_of(r.block.raw(), 2) == 1)
        .collect();
    assert!(shard0.len() >= 200 && shard1.len() >= 100, "both lanes fed");

    let (addr, handle) = start_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let mut conn = TcpStream::connect(&addr).expect("connect");

    // Hot shard 0, idle shard 1: the delta probe re-snapshots only the
    // shard whose version moved — one walk, not two.
    ingest_all(&mut conn, &shard0[..100], 50);
    assert!(!query_delta(&mut conn, 1).is_empty());
    assert_eq!(
        grammar_walks(&mut conn),
        1,
        "first probe walks shard 0 only"
    );

    ingest_all(&mut conn, &shard0[100..200], 50);
    assert!(!query_delta(&mut conn, 2).is_empty());
    assert_eq!(grammar_walks(&mut conn), 2, "hot-shard probes stay O(1)");

    // A full absolute query touches every shard, but shard 0's counts
    // are memoized at its current version — only idle shard 1's first
    // walk happens now.
    assert!(matches!(
        call(&mut conn, &Frame::QueryStreamFraction),
        Frame::StreamFractionReply { .. }
    ));
    assert_eq!(grammar_walks(&mut conn), 3, "full query walks only shard 1");

    // Nothing changed: repeats of either query shape walk nothing.
    assert!(matches!(
        call(&mut conn, &Frame::QueryStreamFraction),
        Frame::StreamFractionReply { .. }
    ));
    assert!(query_delta(&mut conn, 3).is_empty());
    assert_eq!(
        grammar_walks(&mut conn),
        3,
        "quiescent queries are walk-free"
    );

    // Waking the other shard costs exactly one more walk.
    ingest_all(&mut conn, &shard1[..100], 50);
    assert!(!query_delta(&mut conn, 4).is_empty());
    assert_eq!(
        grammar_walks(&mut conn),
        4,
        "shard 1's delta walks shard 1 only"
    );

    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn draining_server_refuses_new_ingest_but_acked_records_survive() {
    // Covered end-to-end by the shutdown paths above; here the focus
    // is that a post-shutdown server really exited (listener gone).
    let (addr, handle) = start_server(ServerConfig::default());
    let mut conn = TcpStream::connect(&addr).expect("connect");
    ingest_all(&mut conn, &seeded_records(9, 64), 64);
    shutdown(&mut conn);
    handle.join().expect("server thread").expect("server run");
    // The listener is closed once run() returns.
    assert!(
        TcpStream::connect(&addr).is_err(),
        "listener closed after drain"
    );
}
