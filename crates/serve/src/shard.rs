//! Per-shard analysis state and the merge of per-shard answers.
//!
//! Each shard owns an **incremental** copy of the characterization
//! pipeline: a live SEQUITUR builder (stream detection), an
//! [`OnlineEvaluator`] driving the temporal prefetch engine
//! (coverage/accuracy), and a per-function origin counter. Records are
//! routed to shards by [`shard_of`] — a seedless Fx hash of the block
//! address, so the same trace always shards the same way in any
//! process, which is what makes the offline comparator
//! ([`crate::offline`]) bit-exact.
//!
//! Queries snapshot a shard under its lock and merge across shards with
//! the `merge_*` functions below; the offline batch path reuses the
//! same merge functions, so online and offline answers can only differ
//! if a *per-shard* answer differs — and those are pinned to the batch
//! stages by construction ([`Sequitur::grammar`] snapshots equal
//! `into_grammar`, [`StreamAnalysis::of_grammar`] is the batch root
//! walk, [`OnlineEvaluator`] is the batch buffer model).

use std::hash::{BuildHasher, Hasher};
use tempstream_core::streams::StreamAnalysis;
use tempstream_fxhash::{FxBuildHasher, FxHashMap};
use tempstream_prefetch::{OnlineEvaluator, TemporalPrefetcher};
use tempstream_sequitur::Sequitur;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;

/// Analysis parameters every shard runs with. The load generator's
/// `--verify` mode and the loopback tests construct the offline
/// comparator from the same values, so defaults changing can never
/// silently diverge the two paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// FIFO prefetch-buffer capacity (blocks) for the evaluation model.
    pub buffer_capacity: usize,
    /// Temporal prefetcher burst size (blocks fetched per trigger).
    pub burst: u32,
    /// Temporal prefetcher adaptive look-ahead cap.
    pub max_ahead: u32,
    /// Miss-log capacity of the temporal engine.
    pub log_capacity: usize,
    /// Records retained for SEQUITUR analysis per shard; ingest beyond
    /// this still counts toward coverage and origins but no longer
    /// grows the grammar (the batch pipeline's `max_analysis_misses`
    /// cap, applied per shard).
    pub max_retained: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            buffer_capacity: 512,
            burst: 2,
            max_ahead: 8,
            log_capacity: 1 << 20,
            max_retained: 1 << 20,
        }
    }
}

/// Routes a block address to a shard: seedless Fx hash, modulo `shards`.
pub fn shard_of(block: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut hasher = FxBuildHasher::default().build_hasher();
    hasher.write_u64(block);
    (hasher.finish() % shards as u64) as usize
}

/// Merged stream-fraction counts (the online form of the batch
/// `StreamFractionReport` plus the distinct-stream total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounts {
    /// Misses outside any repeated sequence.
    pub non_repetitive: u64,
    /// Misses in first occurrences.
    pub new_stream: u64,
    /// Misses in later occurrences.
    pub recurring_stream: u64,
    /// Distinct streams (summed over shards).
    pub distinct_streams: u64,
}

impl StreamCounts {
    /// All analyzed misses.
    pub fn total(&self) -> u64 {
        self.non_repetitive + self.new_stream + self.recurring_stream
    }
}

/// Merged prefetch-evaluation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageCounts {
    /// Demand misses observed.
    pub total: u64,
    /// Misses covered by the prefetch buffer.
    pub covered: u64,
    /// Prefetches issued.
    pub issued: u64,
}

/// One shard's live analysis state.
#[derive(Debug)]
pub struct ShardState {
    config: ShardConfig,
    seq: Sequitur,
    /// Records retained for grammar queries, in shard-arrival order.
    records: Vec<MissRecord<MissClass>>,
    /// Highest cpu id seen (drives the root walk's per-cpu counters).
    max_cpu: u32,
    prefetcher: TemporalPrefetcher,
    eval: OnlineEvaluator,
    origin_counts: FxHashMap<u32, u64>,
    /// Every record ever routed here, retained or not.
    ingested: u64,
    /// Records past `max_retained` (analyzed for coverage/origins only).
    overflow: u64,
}

impl ShardState {
    /// Creates an empty shard.
    pub fn new(config: ShardConfig) -> Self {
        ShardState {
            config,
            seq: Sequitur::new(),
            records: Vec::new(),
            max_cpu: 0,
            prefetcher: TemporalPrefetcher::adaptive(config.burst, config.max_ahead)
                .with_log_capacity(config.log_capacity),
            eval: OnlineEvaluator::new(config.buffer_capacity),
            origin_counts: FxHashMap::default(),
            ingested: 0,
            overflow: 0,
        }
    }

    /// Ingests one record: feeds the prefetch evaluation and origin
    /// counts always, and the SEQUITUR builder until the retention cap.
    pub fn apply(&mut self, record: &MissRecord<MissClass>) {
        self.ingested += 1;
        self.max_cpu = self.max_cpu.max(record.cpu.raw());
        *self.origin_counts.entry(record.function.raw()).or_insert(0) += 1;
        self.eval
            .observe(&mut self.prefetcher, record.cpu, record.block);
        if self.records.len() < self.config.max_retained {
            self.seq.push(record.block.raw());
            self.records.push(*record);
        } else {
            self.overflow += 1;
        }
    }

    /// Records ever routed to this shard.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Monotone state version: advances exactly when observable state
    /// changes (once per applied record), so per-connection delta
    /// cursors can skip the expensive grammar walk for shards that have
    /// not moved since their last consistent cut.
    pub fn version(&self) -> u64 {
        self.ingested
    }

    /// Records past the retention cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Stream counts from a grammar snapshot of the live builder —
    /// bit-identical to batch-analyzing this shard's retained records.
    pub fn stream_counts(&self) -> StreamCounts {
        let grammar = self.seq.grammar();
        let analysis = StreamAnalysis::of_grammar(&grammar, &self.records, self.max_cpu + 1);
        let (non, new, rec) = analysis.label_counts();
        StreamCounts {
            non_repetitive: non,
            new_stream: new,
            recurring_stream: rec,
            distinct_streams: analysis.distinct_streams() as u64,
        }
    }

    /// Prefetch coverage counters accumulated so far.
    pub fn coverage_counts(&self) -> CoverageCounts {
        let e = self.eval.snapshot();
        CoverageCounts {
            total: e.total,
            covered: e.covered,
            issued: e.issued,
        }
    }

    /// Per-function miss counts (shared reference; merge with
    /// [`merge_top_origins`]).
    pub fn origin_counts(&self) -> &FxHashMap<u32, u64> {
        &self.origin_counts
    }
}

/// Sums per-shard stream counts.
pub fn merge_stream_counts<I: IntoIterator<Item = StreamCounts>>(parts: I) -> StreamCounts {
    parts
        .into_iter()
        .fold(StreamCounts::default(), |a, b| StreamCounts {
            non_repetitive: a.non_repetitive + b.non_repetitive,
            new_stream: a.new_stream + b.new_stream,
            recurring_stream: a.recurring_stream + b.recurring_stream,
            distinct_streams: a.distinct_streams + b.distinct_streams,
        })
}

/// Sums per-shard coverage counters.
pub fn merge_coverage_counts<I: IntoIterator<Item = CoverageCounts>>(parts: I) -> CoverageCounts {
    parts
        .into_iter()
        .fold(CoverageCounts::default(), |a, b| CoverageCounts {
            total: a.total + b.total,
            covered: a.covered + b.covered,
            issued: a.issued + b.issued,
        })
}

/// Merges per-shard origin maps into the global top-`n` list, ordered
/// by count descending with function id ascending as the tiebreak (a
/// total order, so the answer never depends on shard iteration order).
pub fn merge_top_origins<'a, I>(maps: I, n: usize) -> Vec<(u32, u64)>
where
    I: IntoIterator<Item = &'a FxHashMap<u32, u64>>,
{
    let mut merged: FxHashMap<u32, u64> = FxHashMap::default();
    for map in maps {
        for (&function, &count) in map {
            *merged.entry(function).or_insert(0) += count;
        }
    }
    let mut rows: Vec<(u32, u64)> = merged.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Block, CpuId, FunctionId, ThreadId};

    fn record(block: u64, cpu: u32, function: u32) -> MissRecord<MissClass> {
        MissRecord {
            block: Block::new(block),
            cpu: CpuId::new(cpu),
            thread: ThreadId::new(cpu),
            function: FunctionId::new(function),
            class: MissClass::Replacement,
        }
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for block in 0..500u64 {
                let s = shard_of(block, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(block, shards), "stable per (block, shards)");
            }
        }
        // All shards actually receive traffic.
        let mut hit = vec![false; 4];
        for block in 0..500u64 {
            hit[shard_of(block, 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected: {hit:?}");
    }

    #[test]
    fn incremental_shard_matches_batch_stages() {
        let blocks = [1u64, 2, 3, 1, 2, 3, 9, 4, 1, 2, 5, 4, 1, 2, 5, 9];
        let records: Vec<_> = blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| record(b, (i % 2) as u32, (b % 3) as u32))
            .collect();
        let cfg = ShardConfig::default();
        let mut shard = ShardState::new(cfg);
        for r in &records {
            shard.apply(r);
        }
        let partial = tempstream_core::stages::analyze_streams(&records, 2);
        let online = shard.stream_counts();
        assert_eq!(
            online.non_repetitive,
            partial.stream_fraction.non_repetitive
        );
        assert_eq!(online.new_stream, partial.stream_fraction.new_stream);
        assert_eq!(
            online.recurring_stream,
            partial.stream_fraction.recurring_stream
        );
        assert_eq!(online.distinct_streams, partial.distinct_streams as u64);

        let mut batch_prefetcher = TemporalPrefetcher::adaptive(cfg.burst, cfg.max_ahead)
            .with_log_capacity(cfg.log_capacity);
        let batch =
            tempstream_prefetch::evaluate(&mut batch_prefetcher, &records, cfg.buffer_capacity);
        let cov = shard.coverage_counts();
        assert_eq!(
            (cov.total, cov.covered, cov.issued),
            (batch.total, batch.covered, batch.issued)
        );
    }

    #[test]
    fn retention_cap_freezes_grammar_not_coverage() {
        let cfg = ShardConfig {
            max_retained: 4,
            ..ShardConfig::default()
        };
        let mut shard = ShardState::new(cfg);
        for i in 0..10u64 {
            shard.apply(&record(i % 3, 0, 0));
        }
        assert_eq!(shard.ingested(), 10);
        assert_eq!(shard.overflow(), 6);
        assert_eq!(shard.stream_counts().total(), 4, "grammar capped");
        assert_eq!(shard.coverage_counts().total, 10, "coverage uncapped");
    }

    #[test]
    fn top_origins_merge_is_ordered_and_total() {
        let mut a = FxHashMap::default();
        a.insert(1u32, 5u64);
        a.insert(2, 3);
        let mut b = FxHashMap::default();
        b.insert(2u32, 2u64);
        b.insert(3, 5);
        let rows = merge_top_origins([&a, &b], 3);
        // count desc, then function asc: 1→5, 2→5, 3→5 all tie on count.
        assert_eq!(rows, vec![(1, 5), (2, 5), (3, 5)]);
        assert_eq!(merge_top_origins([&a, &b], 2), vec![(1, 5), (2, 5)]);
    }
}
