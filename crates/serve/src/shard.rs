//! Per-shard analysis state and the merge of per-shard answers.
//!
//! Each shard owns an **incremental** copy of the characterization
//! pipeline: a live SEQUITUR builder (stream detection), an
//! [`OnlineEvaluator`] driving the temporal prefetch engine
//! (coverage/accuracy), and a per-function origin counter. Records are
//! routed to shards by [`shard_of`] — a seedless Fx hash of the block
//! address, so the same trace always shards the same way in any
//! process, which is what makes the offline comparator
//! ([`crate::offline`]) bit-exact.
//!
//! Queries snapshot a shard under its lock and merge across shards with
//! the `merge_*` functions below; the offline batch path reuses the
//! same merge functions, so online and offline answers can only differ
//! if a *per-shard* answer differs — and those are pinned to the batch
//! stages by construction ([`Sequitur::grammar`] snapshots equal
//! `into_grammar`, [`StreamAnalysis::of_grammar`] is the batch root
//! walk, [`OnlineEvaluator`] is the batch buffer model).
//!
//! Two hot-path structures keep queries off the per-record ingest cost:
//! origin counts live in an [`OriginTable`] (direct-indexed dense array
//! for the common small function-id range, hashmap spill above it), and
//! each shard's [`StreamCounts`] — the one answer that requires a full
//! grammar root walk — is cached keyed by the shard's [`version()`]
//! so a shard that has not ingested since the last query answers O(1).
//!
//! [`version()`]: ShardState::version

use tempstream_core::streams::StreamAnalysis;
use tempstream_fxhash::FxHashMap;
use tempstream_prefetch::{OnlineEvaluator, TemporalPrefetcher};
use tempstream_sequitur::Sequitur;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;

/// Analysis parameters every shard runs with. The load generator's
/// `--verify` mode and the loopback tests construct the offline
/// comparator from the same values, so defaults changing can never
/// silently diverge the two paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// FIFO prefetch-buffer capacity (blocks) for the evaluation model.
    pub buffer_capacity: usize,
    /// Temporal prefetcher burst size (blocks fetched per trigger).
    pub burst: u32,
    /// Temporal prefetcher adaptive look-ahead cap.
    pub max_ahead: u32,
    /// Miss-log capacity of the temporal engine.
    pub log_capacity: usize,
    /// Records retained for SEQUITUR analysis per shard; ingest beyond
    /// this still counts toward coverage and origins but no longer
    /// grows the grammar (the batch pipeline's `max_analysis_misses`
    /// cap, applied per shard).
    pub max_retained: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            buffer_capacity: 512,
            burst: 2,
            max_ahead: 8,
            log_capacity: 1 << 20,
            max_retained: 1 << 20,
        }
    }
}

/// Routes a block address to a shard: seedless Fx hash, modulo `shards`.
///
/// [`tempstream_fxhash::hash_word`] is bit-identical to feeding the
/// block through a fresh `FxHasher` (the original implementation here)
/// but costs one multiply instead of a hasher construction per record —
/// this runs once per ingested record in every connection reader. The
/// routing-stability property tests pin the exact mapping, since the
/// offline comparator's bit-exactness depends on it never moving.
#[inline]
pub fn shard_of(block: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (tempstream_fxhash::hash_word(block) % shards as u64) as usize
}

/// Function ids below this are counted in a direct-indexed array; ids
/// at or above it spill to a hashmap. Real traces use small dense id
/// spaces, so the spill path exists only to keep hostile ids from
/// ballooning memory.
const DENSE_LIMIT: u32 = 1 << 16;

/// Per-function miss counts: a direct-indexed dense table for small
/// function ids with a hashmap spill for large ones.
///
/// `apply` used to pay a hashmap probe per record
/// (`origin_counts.entry(..)`); for the dense range this is now a
/// bounds-checked array increment (the PR 4 direct-index pattern). The
/// table is also the reusable merge target for
/// [`merge_top_origins`] and the per-cursor origin caches — counts are
/// monotone non-decreasing per shard, which is what lets delta cursors
/// patch a cached merge instead of rebuilding it.
#[derive(Debug, Clone, Default)]
pub struct OriginTable {
    /// Counts for function ids `< DENSE_LIMIT`, indexed directly; grown
    /// on demand to the highest id seen.
    dense: Vec<u64>,
    /// Counts for function ids `>= DENSE_LIMIT`.
    sparse: FxHashMap<u32, u64>,
}

impl OriginTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to `function`'s count.
    #[inline]
    pub fn add(&mut self, function: u32, n: u64) {
        if function < DENSE_LIMIT {
            let idx = function as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0);
            }
            self.dense[idx] += n;
        } else {
            *self.sparse.entry(function).or_insert(0) += n;
        }
    }

    /// `function`'s count (zero if never seen).
    #[inline]
    pub fn get(&self, function: u32) -> u64 {
        if function < DENSE_LIMIT {
            self.dense.get(function as usize).copied().unwrap_or(0)
        } else {
            self.sparse.get(&function).copied().unwrap_or(0)
        }
    }

    /// True when no function has a nonzero count.
    pub fn is_empty(&self) -> bool {
        self.dense.iter().all(|&c| c == 0) && self.sparse.is_empty()
    }

    /// Iterates nonzero `(function, count)` entries: the dense range in
    /// ascending id order, then the spill entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(f, &c)| (f as u32, c))
            .chain(self.sparse.iter().map(|(&f, &c)| (f, c)))
    }

    /// The top-`n` functions by count descending, function id ascending
    /// as the tiebreak (a total order, so the answer never depends on
    /// iteration order).
    pub fn top_n(&self, n: usize) -> Vec<(u32, u64)> {
        let mut rows: Vec<(u32, u64)> = self.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Overwrites `self` with `src`'s contents, reusing `self`'s
    /// allocations — the cursor caches call this once per changed shard
    /// per delta, so it must not allocate in steady state.
    pub fn copy_from(&mut self, src: &OriginTable) {
        self.dense.clear();
        self.dense.extend_from_slice(&src.dense);
        self.sparse.clone_from(&src.sparse);
    }
}

/// Merged stream-fraction counts (the online form of the batch
/// `StreamFractionReport` plus the distinct-stream total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounts {
    /// Misses outside any repeated sequence.
    pub non_repetitive: u64,
    /// Misses in first occurrences.
    pub new_stream: u64,
    /// Misses in later occurrences.
    pub recurring_stream: u64,
    /// Distinct streams (summed over shards).
    pub distinct_streams: u64,
}

impl StreamCounts {
    /// All analyzed misses.
    pub fn total(&self) -> u64 {
        self.non_repetitive + self.new_stream + self.recurring_stream
    }
}

/// Merged prefetch-evaluation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageCounts {
    /// Demand misses observed.
    pub total: u64,
    /// Misses covered by the prefetch buffer.
    pub covered: u64,
    /// Prefetches issued.
    pub issued: u64,
}

/// One shard's live analysis state.
#[derive(Debug)]
pub struct ShardState {
    config: ShardConfig,
    seq: Sequitur,
    /// Records retained for grammar queries, in shard-arrival order.
    records: Vec<MissRecord<MissClass>>,
    /// Highest cpu id seen (drives the root walk's per-cpu counters).
    max_cpu: u32,
    prefetcher: TemporalPrefetcher,
    eval: OnlineEvaluator,
    origin_counts: OriginTable,
    /// Every record ever routed here, retained or not.
    ingested: u64,
    /// Records past `max_retained` (analyzed for coverage/origins only).
    overflow: u64,
    /// Stream counts memoized at a version; valid while the shard has
    /// not ingested past it.
    streams_cache: Option<(u64, StreamCounts)>,
    /// Grammar root walks performed (cache misses); exported as a gauge
    /// so tests can assert unchanged shards answer without walking.
    walks: u64,
}

impl ShardState {
    /// Creates an empty shard.
    pub fn new(config: ShardConfig) -> Self {
        ShardState {
            config,
            seq: Sequitur::new(),
            records: Vec::new(),
            max_cpu: 0,
            prefetcher: TemporalPrefetcher::adaptive(config.burst, config.max_ahead)
                .with_log_capacity(config.log_capacity),
            eval: OnlineEvaluator::new(config.buffer_capacity),
            origin_counts: OriginTable::new(),
            ingested: 0,
            overflow: 0,
            streams_cache: None,
            walks: 0,
        }
    }

    /// Ingests one record: feeds the prefetch evaluation and origin
    /// counts always, and the SEQUITUR builder until the retention cap.
    pub fn apply(&mut self, record: &MissRecord<MissClass>) {
        self.ingested += 1;
        self.max_cpu = self.max_cpu.max(record.cpu.raw());
        self.origin_counts.add(record.function.raw(), 1);
        self.eval
            .observe(&mut self.prefetcher, record.cpu, record.block);
        if self.records.len() < self.config.max_retained {
            self.seq.push(record.block.raw());
            self.records.push(*record);
        } else {
            self.overflow += 1;
        }
    }

    /// Records ever routed to this shard.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Monotone state version: advances exactly when observable state
    /// changes (once per applied record), so per-connection delta
    /// cursors and the per-shard [`StreamCounts`] cache can skip the
    /// expensive grammar walk for shards that have not moved since
    /// their last consistent cut.
    pub fn version(&self) -> u64 {
        self.ingested
    }

    /// Records past the retention cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Stream counts from a grammar snapshot of the live builder —
    /// bit-identical to batch-analyzing this shard's retained records.
    ///
    /// Memoized on [`version()`](ShardState::version): the root walk
    /// only runs when the shard has ingested since the previous call,
    /// so repeated queries against a quiet shard are O(1). The cache
    /// can never serve a stale answer because `version()` advances on
    /// every applied record and queries read under the shard lock.
    pub fn stream_counts(&mut self) -> StreamCounts {
        if let Some((version, counts)) = self.streams_cache {
            if version == self.ingested {
                return counts;
            }
        }
        let grammar = self.seq.grammar();
        let analysis = StreamAnalysis::of_grammar(&grammar, &self.records, self.max_cpu + 1);
        let (non, new, rec) = analysis.label_counts();
        let counts = StreamCounts {
            non_repetitive: non,
            new_stream: new,
            recurring_stream: rec,
            distinct_streams: analysis.distinct_streams() as u64,
        };
        self.streams_cache = Some((self.ingested, counts));
        self.walks += 1;
        counts
    }

    /// Grammar root walks performed so far — i.e. `stream_counts` cache
    /// misses. Tests use this to prove version-keyed caching: querying
    /// a quiet shard must not move it.
    pub fn grammar_walks(&self) -> u64 {
        self.walks
    }

    /// Prefetch coverage counters accumulated so far.
    pub fn coverage_counts(&self) -> CoverageCounts {
        let e = self.eval.snapshot();
        CoverageCounts {
            total: e.total,
            covered: e.covered,
            issued: e.issued,
        }
    }

    /// Per-function miss counts (shared reference; merge with
    /// [`merge_top_origins`]).
    pub fn origin_counts(&self) -> &OriginTable {
        &self.origin_counts
    }
}

/// Sums per-shard stream counts.
pub fn merge_stream_counts<I: IntoIterator<Item = StreamCounts>>(parts: I) -> StreamCounts {
    parts
        .into_iter()
        .fold(StreamCounts::default(), |a, b| StreamCounts {
            non_repetitive: a.non_repetitive + b.non_repetitive,
            new_stream: a.new_stream + b.new_stream,
            recurring_stream: a.recurring_stream + b.recurring_stream,
            distinct_streams: a.distinct_streams + b.distinct_streams,
        })
}

/// Sums per-shard coverage counters.
pub fn merge_coverage_counts<I: IntoIterator<Item = CoverageCounts>>(parts: I) -> CoverageCounts {
    parts
        .into_iter()
        .fold(CoverageCounts::default(), |a, b| CoverageCounts {
            total: a.total + b.total,
            covered: a.covered + b.covered,
            issued: a.issued + b.issued,
        })
}

/// Merges per-shard origin tables into the global top-`n` list, ordered
/// by count descending with function id ascending as the tiebreak (a
/// total order, so the answer never depends on shard iteration order).
pub fn merge_top_origins<'a, I>(tables: I, n: usize) -> Vec<(u32, u64)>
where
    I: IntoIterator<Item = &'a OriginTable>,
{
    let mut merged = OriginTable::new();
    for table in tables {
        for (function, count) in table.iter() {
            merged.add(function, count);
        }
    }
    merged.top_n(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Block, CpuId, FunctionId, ThreadId};

    fn record(block: u64, cpu: u32, function: u32) -> MissRecord<MissClass> {
        MissRecord {
            block: Block::new(block),
            cpu: CpuId::new(cpu),
            thread: ThreadId::new(cpu),
            function: FunctionId::new(function),
            class: MissClass::Replacement,
        }
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for block in 0..500u64 {
                let s = shard_of(block, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(block, shards), "stable per (block, shards)");
            }
        }
        // All shards actually receive traffic.
        let mut hit = vec![false; 4];
        for block in 0..500u64 {
            hit[shard_of(block, 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected: {hit:?}");
    }

    #[test]
    fn incremental_shard_matches_batch_stages() {
        let blocks = [1u64, 2, 3, 1, 2, 3, 9, 4, 1, 2, 5, 4, 1, 2, 5, 9];
        let records: Vec<_> = blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| record(b, (i % 2) as u32, (b % 3) as u32))
            .collect();
        let cfg = ShardConfig::default();
        let mut shard = ShardState::new(cfg);
        for r in &records {
            shard.apply(r);
        }
        let partial = tempstream_core::stages::analyze_streams(&records, 2);
        let online = shard.stream_counts();
        assert_eq!(
            online.non_repetitive,
            partial.stream_fraction.non_repetitive
        );
        assert_eq!(online.new_stream, partial.stream_fraction.new_stream);
        assert_eq!(
            online.recurring_stream,
            partial.stream_fraction.recurring_stream
        );
        assert_eq!(online.distinct_streams, partial.distinct_streams as u64);

        let mut batch_prefetcher = TemporalPrefetcher::adaptive(cfg.burst, cfg.max_ahead)
            .with_log_capacity(cfg.log_capacity);
        let batch =
            tempstream_prefetch::evaluate(&mut batch_prefetcher, &records, cfg.buffer_capacity);
        let cov = shard.coverage_counts();
        assert_eq!(
            (cov.total, cov.covered, cov.issued),
            (batch.total, batch.covered, batch.issued)
        );
    }

    #[test]
    fn retention_cap_freezes_grammar_not_coverage() {
        let cfg = ShardConfig {
            max_retained: 4,
            ..ShardConfig::default()
        };
        let mut shard = ShardState::new(cfg);
        for i in 0..10u64 {
            shard.apply(&record(i % 3, 0, 0));
        }
        assert_eq!(shard.ingested(), 10);
        assert_eq!(shard.overflow(), 6);
        assert_eq!(shard.stream_counts().total(), 4, "grammar capped");
        assert_eq!(shard.coverage_counts().total, 10, "coverage uncapped");
    }

    #[test]
    fn stream_counts_cache_is_version_keyed() {
        let mut shard = ShardState::new(ShardConfig::default());
        for i in 0..8u64 {
            shard.apply(&record(i % 3, 0, 0));
        }
        assert_eq!(shard.grammar_walks(), 0, "no walk before first query");
        let first = shard.stream_counts();
        assert_eq!(shard.grammar_walks(), 1);
        assert_eq!(shard.stream_counts(), first, "cache hit answers equally");
        assert_eq!(shard.grammar_walks(), 1, "quiet shard must not re-walk");
        shard.apply(&record(1, 0, 0));
        let second = shard.stream_counts();
        assert_eq!(shard.grammar_walks(), 2, "new version forces a walk");
        assert_eq!(second.total(), first.total() + 1);
        // The cached answer equals a from-scratch walk of the same state.
        shard.streams_cache = None;
        assert_eq!(shard.stream_counts(), second);
    }

    #[test]
    fn origin_table_counts_and_spills() {
        let mut t = OriginTable::new();
        assert!(t.is_empty());
        t.add(3, 2);
        t.add(3, 1);
        t.add(0, 5);
        let huge = DENSE_LIMIT + 17;
        t.add(huge, 4);
        assert_eq!(t.get(3), 3);
        assert_eq!(t.get(0), 5);
        assert_eq!(t.get(huge), 4);
        assert_eq!(t.get(1), 0, "unseen dense id");
        assert_eq!(t.get(DENSE_LIMIT + 1), 0, "unseen sparse id");
        let mut rows: Vec<_> = t.iter().collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![(0, 5), (3, 3), (huge, 4)]);

        let mut copy = OriginTable::new();
        copy.add(9, 99);
        copy.copy_from(&t);
        assert_eq!(copy.get(9), 0, "copy_from overwrites");
        assert_eq!(copy.get(huge), 4);
        assert_eq!(copy.top_n(2), vec![(0, 5), (huge, 4)]);
    }

    #[test]
    fn top_origins_merge_is_ordered_and_total() {
        let mut a = OriginTable::new();
        a.add(1, 5);
        a.add(2, 3);
        let mut b = OriginTable::new();
        b.add(2, 2);
        b.add(3, 5);
        let rows = merge_top_origins([&a, &b], 3);
        // count desc, then function asc: 1→5, 2→5, 3→5 all tie on count.
        assert_eq!(rows, vec![(1, 5), (2, 5), (3, 5)]);
        assert_eq!(merge_top_origins([&a, &b], 2), vec![(1, 5), (2, 5)]);
    }
}
