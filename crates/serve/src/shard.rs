//! Per-shard analysis state and the merge of per-shard answers.
//!
//! Each shard is a thin wrapper around the unified incremental
//! [`AnalysisEngine`] (`tempstream_core::engine`): the engine owns the
//! live SEQUITUR builder, the [`OnlineEvaluator`] driving the temporal
//! prefetch engine, the per-function [`OriginTable`], and the
//! version-memoized stream-counts snapshot; the shard layer adds only
//! what is server-specific — lane routing. Records are routed to
//! shards by [`shard_of`] — a seedless Fx hash of the block address, so
//! the same trace always shards the same way in any process, which is
//! what makes the offline comparator ([`crate::offline`]) bit-exact.
//!
//! Queries snapshot a shard under its lock and merge across shards with
//! the engine's `merge_*` functions (re-exported below); the offline
//! comparator reuses the same engine *and* the same merge functions, so
//! online and offline answers can only differ if the transport layer
//! reorders or drops records — which is exactly what the loopback tests
//! exist to rule out. The engine's incremental-vs-batch bit-identity is
//! pinned upstream by `crates/core/tests/engine_differential.rs` and
//! the `engine-diff` CI gate.
//!
//! Two hot-path properties carry over from the engine: origin counts
//! live in a dense+spill [`OriginTable`] (no hashmap probe per record
//! for real id ranges), and each shard's [`StreamCounts`] — the one
//! answer that requires a full grammar root walk — is cached keyed by
//! the shard's [`version()`] so a shard that has not ingested since the
//! last query answers O(1).
//!
//! [`version()`]: ShardState::version
//! [`OnlineEvaluator`]: tempstream_prefetch::OnlineEvaluator

use tempstream_core::engine::AnalysisEngine;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;

pub use tempstream_core::engine::{
    merge_coverage_counts, merge_stream_counts, merge_top_origins, CoverageCounts,
    EngineConfig as ShardConfig, OriginTable, StreamCounts,
};

/// Routes a block address to a shard: seedless Fx hash, modulo `shards`.
///
/// [`tempstream_fxhash::hash_word`] is bit-identical to feeding the
/// block through a fresh `FxHasher` (the original implementation here)
/// but costs one multiply instead of a hasher construction per record —
/// this runs once per ingested record in every connection reader. The
/// routing-stability property tests pin the exact mapping, since the
/// offline comparator's bit-exactness depends on it never moving.
#[inline]
pub fn shard_of(block: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (tempstream_fxhash::hash_word(block) % shards as u64) as usize
}

/// One shard's live analysis state: an [`AnalysisEngine`] in its full
/// (prefetch-evaluating) configuration.
#[derive(Debug)]
pub struct ShardState {
    engine: AnalysisEngine<MissClass>,
}

impl ShardState {
    /// Creates an empty shard.
    pub fn new(config: ShardConfig) -> Self {
        ShardState {
            engine: AnalysisEngine::new(config),
        }
    }

    /// Ingests one record: feeds the prefetch evaluation and origin
    /// counts always, and the SEQUITUR builder until the retention cap.
    #[inline]
    pub fn apply(&mut self, record: &MissRecord<MissClass>) {
        self.engine.push_record(record);
    }

    /// Records ever routed to this shard.
    pub fn ingested(&self) -> u64 {
        self.engine.ingested()
    }

    /// Monotone state version: advances exactly when observable state
    /// changes (once per applied record), so per-connection delta
    /// cursors and the per-shard [`StreamCounts`] cache can skip the
    /// expensive grammar walk for shards that have not moved since
    /// their last consistent cut.
    pub fn version(&self) -> u64 {
        self.engine.version()
    }

    /// Records past the retention cap.
    pub fn overflow(&self) -> u64 {
        self.engine.overflow()
    }

    /// Stream counts from a grammar snapshot of the live builder —
    /// bit-identical to batch-analyzing this shard's retained records.
    ///
    /// Memoized on [`version()`](ShardState::version) by the engine:
    /// the root walk only runs when the shard has ingested since the
    /// previous call, so repeated queries against a quiet shard are
    /// O(1). The cache can never serve a stale answer because
    /// `version()` advances on every applied record and queries read
    /// under the shard lock.
    pub fn stream_counts(&mut self) -> StreamCounts {
        self.engine.stream_counts()
    }

    /// Grammar root walks performed so far — i.e. `stream_counts` cache
    /// misses. Tests use this to prove version-keyed caching: querying
    /// a quiet shard must not move it.
    pub fn grammar_walks(&self) -> u64 {
        self.engine.grammar_walks()
    }

    /// Prefetch coverage counters accumulated so far.
    pub fn coverage_counts(&self) -> CoverageCounts {
        self.engine.coverage()
    }

    /// Per-function miss counts (shared reference; merge with
    /// [`merge_top_origins`]).
    pub fn origin_counts(&self) -> &OriginTable {
        self.engine.origin_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Block, CpuId, FunctionId, ThreadId};

    fn record(block: u64, cpu: u32, function: u32) -> MissRecord<MissClass> {
        MissRecord {
            block: Block::new(block),
            cpu: CpuId::new(cpu),
            thread: ThreadId::new(cpu),
            function: FunctionId::new(function),
            class: MissClass::Replacement,
        }
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for block in 0..500u64 {
                let s = shard_of(block, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(block, shards), "stable per (block, shards)");
            }
        }
        // All shards actually receive traffic.
        let mut hit = vec![false; 4];
        for block in 0..500u64 {
            hit[shard_of(block, 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected: {hit:?}");
    }

    #[test]
    fn incremental_shard_matches_batch_stages() {
        let blocks = [1u64, 2, 3, 1, 2, 3, 9, 4, 1, 2, 5, 4, 1, 2, 5, 9];
        let records: Vec<_> = blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| record(b, (i % 2) as u32, (b % 3) as u32))
            .collect();
        let cfg = ShardConfig::default();
        let mut shard = ShardState::new(cfg);
        for r in &records {
            shard.apply(r);
        }
        let partial = tempstream_core::stages::analyze_streams(&records, 2);
        let online = shard.stream_counts();
        assert_eq!(
            online.non_repetitive,
            partial.stream_fraction.non_repetitive
        );
        assert_eq!(online.new_stream, partial.stream_fraction.new_stream);
        assert_eq!(
            online.recurring_stream,
            partial.stream_fraction.recurring_stream
        );
        assert_eq!(online.distinct_streams, partial.distinct_streams as u64);

        let mut batch_prefetcher =
            tempstream_prefetch::TemporalPrefetcher::adaptive(cfg.burst, cfg.max_ahead)
                .with_log_capacity(cfg.log_capacity);
        let batch =
            tempstream_prefetch::evaluate(&mut batch_prefetcher, &records, cfg.buffer_capacity);
        let cov = shard.coverage_counts();
        assert_eq!(
            (cov.total, cov.covered, cov.issued),
            (batch.total, batch.covered, batch.issued)
        );
    }

    #[test]
    fn retention_cap_freezes_grammar_not_coverage() {
        let cfg = ShardConfig {
            max_retained: 4,
            ..ShardConfig::default()
        };
        let mut shard = ShardState::new(cfg);
        for i in 0..10u64 {
            shard.apply(&record(i % 3, 0, 0));
        }
        assert_eq!(shard.ingested(), 10);
        assert_eq!(shard.overflow(), 6);
        assert_eq!(shard.stream_counts().total(), 4, "grammar capped");
        assert_eq!(shard.coverage_counts().total, 10, "coverage uncapped");
    }

    #[test]
    fn stream_counts_cache_is_version_keyed() {
        let mut shard = ShardState::new(ShardConfig::default());
        for i in 0..8u64 {
            shard.apply(&record(i % 3, 0, 0));
        }
        assert_eq!(shard.grammar_walks(), 0, "no walk before first query");
        let first = shard.stream_counts();
        assert_eq!(shard.grammar_walks(), 1);
        assert_eq!(shard.stream_counts(), first, "cache hit answers equally");
        assert_eq!(shard.grammar_walks(), 1, "quiet shard must not re-walk");
        shard.apply(&record(1, 0, 0));
        let second = shard.stream_counts();
        assert_eq!(shard.grammar_walks(), 2, "new version forces a walk");
        assert_eq!(second.total(), first.total() + 1);
        // The cached answer equals a from-scratch walk of the same
        // state: a fresh shard fed the same records must agree.
        let mut fresh = ShardState::new(ShardConfig::default());
        for i in 0..8u64 {
            fresh.apply(&record(i % 3, 0, 0));
        }
        fresh.apply(&record(1, 0, 0));
        assert_eq!(fresh.stream_counts(), second);
    }
}
