//! Offline replica of the server's answers, for bit-exact verification.
//!
//! The [`Comparator`] partitions records with the *same* hash routing
//! the server's connection readers use ([`shard_of`]), feeds one
//! [`AnalysisEngine`] per partition (the same engine the server's
//! shards wrap), and merges with the *same* `merge_*` functions the
//! server's query path calls. Any ingest-order preserving server must
//! therefore answer queries bit-identically — the loopback tests and
//! `serve-load --verify` assert exactly that. The engine itself is
//! independently pinned incremental-vs-batch by
//! `crates/core/tests/engine_differential.rs` and the `engine-diff` CI
//! gate, so this comparator checks what only a comparator can: that
//! the wire protocol, routing, sharded cut, and merge deliver every
//! acknowledged record to the right engine exactly once, in order.
//!
//! Unlike the pre-engine comparator, which re-analyzed every partition
//! from scratch per query (O(phases × records) grammar work across a
//! verification run), the comparator is *stateful*: verification
//! harnesses construct it once, [`push`](Comparator::push) each record
//! exactly once as it is acknowledged, and snapshot
//! [`expected`](Comparator::expected) as often as they like — the
//! engines' version-keyed memoization makes repeat snapshots of a quiet
//! partition O(1).

use crate::shard::{
    merge_coverage_counts, merge_stream_counts, merge_top_origins, shard_of, CoverageCounts,
    ShardConfig, ShardState, StreamCounts,
};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;

/// The full answer set the server exposes, computed offline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expected {
    /// Merged stream-fraction counts.
    pub streams: StreamCounts,
    /// Merged prefetch coverage counters.
    pub coverage: CoverageCounts,
    /// Global top origins, `(function id, miss count)`.
    pub top_origins: Vec<(u32, u64)>,
}

/// A stateful offline replica of a `shards`-way server: one engine per
/// partition, fed incrementally, snapshot on demand.
#[derive(Debug)]
pub struct Comparator {
    shards: usize,
    states: Vec<ShardState>,
    pushed: u64,
}

impl Comparator {
    /// Creates a comparator mirroring a `shards`-way server running
    /// `config` (zero shards is treated as one, like the server).
    pub fn new(shards: usize, config: ShardConfig) -> Self {
        let shards = shards.max(1);
        Comparator {
            shards,
            states: (0..shards).map(|_| ShardState::new(config)).collect(),
            pushed: 0,
        }
    }

    /// Feeds `records` in order, routing each to its partition with the
    /// server's [`shard_of`]. Call once per acknowledged record —
    /// never re-push history.
    pub fn push(&mut self, records: &[MissRecord<MissClass>]) {
        for r in records {
            self.states[shard_of(r.block.raw(), self.shards)].apply(r);
            self.pushed += 1;
        }
    }

    /// Records pushed so far. Verification harnesses assert this equals
    /// the records acknowledged — i.e. each record was analyzed exactly
    /// once, not once per verification phase.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// What the mirrored server must answer right now.
    pub fn expected(&mut self, top_n: usize) -> Expected {
        Expected {
            streams: merge_stream_counts(self.states.iter_mut().map(ShardState::stream_counts)),
            coverage: merge_coverage_counts(self.states.iter().map(ShardState::coverage_counts)),
            top_origins: merge_top_origins(
                self.states.iter().map(ShardState::origin_counts),
                top_n,
            ),
        }
    }

    /// Grammar root walks performed across all partitions — the
    /// comparator-side analogue of the server's
    /// `serve/analysis/grammar_walks` gauge; tests use it to prove the
    /// suite no longer rebuilds grammars from scratch per phase.
    pub fn grammar_walks(&self) -> u64 {
        self.states.iter().map(ShardState::grammar_walks).sum()
    }
}

/// Computes what a `shards`-way server must answer after ingesting
/// `records` in order — a one-shot [`Comparator`].
pub fn expected(
    records: &[MissRecord<MissClass>],
    shards: usize,
    config: ShardConfig,
    top_n: usize,
) -> Expected {
    let mut comparator = Comparator::new(shards, config);
    comparator.push(records);
    comparator.expected(top_n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Block, CpuId, FunctionId, ThreadId};

    fn seeded_records(n: usize) -> Vec<MissRecord<MissClass>> {
        let mut rng = tempstream_trace::rng::SplitMix64::new(0x5eed_cafe);
        (0..n)
            .map(|_| {
                let block = rng.next_u64() % 97;
                MissRecord {
                    block: Block::new(block),
                    cpu: CpuId::new((rng.next_u64() % 4) as u32),
                    thread: ThreadId::new((rng.next_u64() % 8) as u32),
                    function: FunctionId::new((rng.next_u64() % 13) as u32),
                    class: MissClass::Replacement,
                }
            })
            .collect()
    }

    #[test]
    fn sharded_online_matches_offline_expected() {
        let records = seeded_records(600);
        let config = ShardConfig::default();
        for shards in [1usize, 2, 4] {
            let mut states: Vec<ShardState> =
                (0..shards).map(|_| ShardState::new(config)).collect();
            for r in &records {
                states[shard_of(r.block.raw(), shards)].apply(r);
            }
            let online_streams =
                merge_stream_counts(states.iter_mut().map(ShardState::stream_counts));
            let online_cov = merge_coverage_counts(states.iter().map(ShardState::coverage_counts));
            let online_top = merge_top_origins(states.iter().map(ShardState::origin_counts), 8);

            let want = expected(&records, shards, config, 8);
            assert_eq!(online_streams, want.streams, "shards={shards}");
            assert_eq!(online_cov, want.coverage, "shards={shards}");
            assert_eq!(online_top, want.top_origins, "shards={shards}");
        }
    }

    #[test]
    fn one_shard_equals_whole_trace_batch() {
        let records = seeded_records(400);
        let config = ShardConfig::default();
        let want = expected(&records, 1, config, 4);
        let num_cpus = records.iter().map(|r| r.cpu.raw()).max().unwrap_or(0) + 1;
        let partial = tempstream_core::stages::analyze_streams(&records, num_cpus);
        assert_eq!(
            want.streams.non_repetitive,
            partial.stream_fraction.non_repetitive
        );
        assert_eq!(want.streams.new_stream, partial.stream_fraction.new_stream);
        assert_eq!(
            want.streams.recurring_stream,
            partial.stream_fraction.recurring_stream
        );
        assert_eq!(
            want.streams.distinct_streams,
            partial.distinct_streams as u64
        );
    }

    #[test]
    fn incremental_snapshots_match_one_shot_expected() {
        // The stateful comparator fed in phases must answer exactly
        // like the one-shot function over each prefix, without ever
        // re-pushing history.
        let records = seeded_records(500);
        let config = ShardConfig::default();
        for shards in [1usize, 2, 4] {
            let mut comparator = Comparator::new(shards, config);
            let mut fed = 0usize;
            for cut in [120usize, 121, 350, 500] {
                comparator.push(&records[fed..cut]);
                fed = cut;
                assert_eq!(comparator.pushed(), cut as u64);
                assert_eq!(
                    comparator.expected(8),
                    expected(&records[..cut], shards, config, 8),
                    "shards={shards} cut={cut}"
                );
            }
            // Phase count must not multiply grammar work: at most one
            // walk per (partition, phase) — and none for the repeat
            // snapshot of an unchanged partition below.
            let walks = comparator.grammar_walks();
            assert!(walks <= 4 * shards as u64, "walks={walks}");
            let again = comparator.expected(8);
            assert_eq!(comparator.grammar_walks(), walks, "quiet snapshot is O(1)");
            assert_eq!(again, expected(&records, shards, config, 8));
        }
    }
}
