//! Offline replica of the server's answers, for bit-exact verification.
//!
//! [`expected`] partitions a record slice with the *same* hash routing
//! the server's connection readers use ([`shard_of`]), batch-analyzes each
//! partition with the repo's offline stages
//! ([`tempstream_core::stages::analyze_streams`] and
//! [`tempstream_prefetch::evaluate`]), and merges with the *same*
//! `merge_*` functions the server's query path calls. Any ingest-order
//! preserving server must therefore answer queries bit-identically to
//! this function — the loopback tests and `serve-load --verify` assert
//! exactly that.

use crate::shard::{
    merge_coverage_counts, merge_stream_counts, merge_top_origins, shard_of, CoverageCounts,
    OriginTable, ShardConfig, StreamCounts,
};
use tempstream_prefetch::TemporalPrefetcher;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;

/// The full answer set the server exposes, computed offline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expected {
    /// Merged stream-fraction counts.
    pub streams: StreamCounts,
    /// Merged prefetch coverage counters.
    pub coverage: CoverageCounts,
    /// Global top origins, `(function id, miss count)`.
    pub top_origins: Vec<(u32, u64)>,
}

/// Computes what a `shards`-way server must answer after ingesting
/// `records` in order, using batch (non-incremental) analysis per
/// partition.
pub fn expected(
    records: &[MissRecord<MissClass>],
    shards: usize,
    config: ShardConfig,
    top_n: usize,
) -> Expected {
    let mut partitions: Vec<Vec<MissRecord<MissClass>>> = vec![Vec::new(); shards.max(1)];
    for r in records {
        partitions[shard_of(r.block.raw(), shards.max(1))].push(*r);
    }

    let mut streams = Vec::new();
    let mut coverage = Vec::new();
    let mut origin_tables: Vec<OriginTable> = Vec::new();
    for part in &partitions {
        // Stream analysis sees only the retained prefix (the per-shard
        // cap); coverage and origins see every record.
        let retained = tempstream_core::stages::cap(part, config.max_retained);
        let num_cpus = part.iter().map(|r| r.cpu.raw()).max().unwrap_or(0) + 1;
        let partial = tempstream_core::stages::analyze_streams(retained, num_cpus);
        streams.push(StreamCounts {
            non_repetitive: partial.stream_fraction.non_repetitive,
            new_stream: partial.stream_fraction.new_stream,
            recurring_stream: partial.stream_fraction.recurring_stream,
            distinct_streams: partial.distinct_streams as u64,
        });

        let mut prefetcher = TemporalPrefetcher::adaptive(config.burst, config.max_ahead)
            .with_log_capacity(config.log_capacity);
        let eval = tempstream_prefetch::evaluate(&mut prefetcher, part, config.buffer_capacity);
        coverage.push(CoverageCounts {
            total: eval.total,
            covered: eval.covered,
            issued: eval.issued,
        });

        let mut origins = OriginTable::new();
        for r in part {
            origins.add(r.function.raw(), 1);
        }
        origin_tables.push(origins);
    }

    Expected {
        streams: merge_stream_counts(streams),
        coverage: merge_coverage_counts(coverage),
        top_origins: merge_top_origins(origin_tables.iter(), top_n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardState;
    use tempstream_trace::{Block, CpuId, FunctionId, ThreadId};

    fn seeded_records(n: usize) -> Vec<MissRecord<MissClass>> {
        let mut rng = tempstream_trace::rng::SplitMix64::new(0x5eed_cafe);
        (0..n)
            .map(|_| {
                let block = rng.next_u64() % 97;
                MissRecord {
                    block: Block::new(block),
                    cpu: CpuId::new((rng.next_u64() % 4) as u32),
                    thread: ThreadId::new((rng.next_u64() % 8) as u32),
                    function: FunctionId::new((rng.next_u64() % 13) as u32),
                    class: MissClass::Replacement,
                }
            })
            .collect()
    }

    #[test]
    fn sharded_online_matches_offline_expected() {
        let records = seeded_records(600);
        let config = ShardConfig::default();
        for shards in [1usize, 2, 4] {
            let mut states: Vec<ShardState> =
                (0..shards).map(|_| ShardState::new(config)).collect();
            for r in &records {
                states[shard_of(r.block.raw(), shards)].apply(r);
            }
            let online_streams =
                merge_stream_counts(states.iter_mut().map(ShardState::stream_counts));
            let online_cov = merge_coverage_counts(states.iter().map(ShardState::coverage_counts));
            let online_top = merge_top_origins(states.iter().map(ShardState::origin_counts), 8);

            let want = expected(&records, shards, config, 8);
            assert_eq!(online_streams, want.streams, "shards={shards}");
            assert_eq!(online_cov, want.coverage, "shards={shards}");
            assert_eq!(online_top, want.top_origins, "shards={shards}");
        }
    }

    #[test]
    fn one_shard_equals_whole_trace_batch() {
        let records = seeded_records(400);
        let config = ShardConfig::default();
        let want = expected(&records, 1, config, 4);
        let num_cpus = records.iter().map(|r| r.cpu.raw()).max().unwrap_or(0) + 1;
        let partial = tempstream_core::stages::analyze_streams(&records, num_cpus);
        assert_eq!(
            want.streams.non_repetitive,
            partial.stream_fraction.non_repetitive
        );
        assert_eq!(want.streams.new_stream, partial.stream_fraction.new_stream);
        assert_eq!(
            want.streams.recurring_stream,
            partial.stream_fraction.recurring_stream
        );
        assert_eq!(
            want.streams.distinct_streams,
            partial.distinct_streams as u64
        );
    }
}
