//! The TCP server: acceptor, router, shard workers, and queries.
//!
//! Thread layout (all on one [`tempstream_runtime::pool::scope`]):
//!
//! ```text
//! acceptor (scope body) ──spawns──▶ connection handlers (≤ max_connections)
//!                                        │ try_push whole ingest frames
//!                                        ▼
//!                                   router queue (bounded — the admission point)
//!                                        │ router worker splits by fxhash(block)
//!                                        ▼
//!                                   per-shard queues (bounded, blocking push)
//!                                        │ shard workers apply incrementally
//!                                        ▼
//!                                   per-shard ShardState (behind shim Mutex)
//! ```
//!
//! Backpressure: connection handlers never block on ingest — a full
//! router queue surfaces as a `Busy` reply and the records are *not*
//! counted. The router's blocking pushes propagate shard-side pressure
//! back to the single admission point. Nothing buffers without bound.
//!
//! Read-your-writes: every acked record bumps `Progress::enqueued`
//! under the progress lock *in the same critical section as the queue
//! push*; shard workers bump `applied` after mutating their state.
//! A query first waits until `applied >= enqueued-at-entry`, then locks
//! all shards (index order) for a consistent cut — so any answer
//! reflects at least every record acked before the query was sent.
//!
//! Shutdown: a `Shutdown` frame marks the lifecycle `Draining`, drains
//! the router queue, and wakes the acceptor with a loopback connect.
//! The router forwards its backlog, drains the shard queues, collects
//! one done-token per shard worker over a
//! [`tempstream_runtime::channel::bounded`] channel, and flips the
//! lifecycle to `Drained`; the shutdown connection then answers
//! `ShutdownAck`. No acked record is ever dropped on shutdown.
//!
//! All synchronization lives in the [`tempstream_runtime::sync`] shim
//! (enforced by `tempstream-checker`'s `lint-sources` gate).

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::queue::{IngestQueue, PushError};
use crate::shard::{
    merge_coverage_counts, merge_stream_counts, merge_top_origins, shard_of, ShardConfig,
    ShardState,
};
use crate::wire::{write_frame, Frame, FrameAssembler, ERR_BAD_FRAME, ERR_DRAINING};
use tempstream_obsv::{Counter, Registry};
use tempstream_runtime::sync::{Arc, Condvar, Mutex};
use tempstream_runtime::{channel, pool};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;

/// How long a connection handler sleeps in `read` before re-checking
/// the drain flag.
const READ_POLL: Duration = Duration::from_millis(20);

/// Server-wide tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of analysis shards (and shard worker threads).
    pub shards: usize,
    /// Per-shard analysis parameters.
    pub shard: ShardConfig,
    /// Ingest-frame capacity of the router (admission) queue.
    pub router_queue_capacity: usize,
    /// Sub-batch capacity of each per-shard queue.
    pub shard_queue_capacity: usize,
    /// Concurrent connections; excess accepts get `Busy` and close.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 1,
            shard: ShardConfig::default(),
            router_queue_capacity: 64,
            shard_queue_capacity: 64,
            max_connections: 32,
        }
    }
}

/// Lifecycle of the server, driven by the `Shutdown` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Draining,
    Drained,
}

#[derive(Debug, Default)]
struct Progress {
    /// Records admitted past the router queue (and acked).
    enqueued: u64,
    /// Records applied to shard state.
    applied: u64,
}

#[derive(Debug, Default)]
struct Conns {
    active: usize,
    peak: usize,
}

/// Counter handles bumped on the hot paths (cheap `Arc` clones; the
/// registry map lock is taken once here, not per event).
struct Metrics {
    frames_received: Counter,
    frames_busy: Counter,
    frames_errors: Counter,
    frames_dropped: Counter,
    records_ingested: Counter,
    records_applied: Counter,
    records_rejected: Counter,
    conn_accepted: Counter,
    conn_rejected: Counter,
    queries: Counter,
}

impl Metrics {
    fn new(registry: &Registry) -> Self {
        Metrics {
            frames_received: registry.counter("serve/frames/received"),
            frames_busy: registry.counter("serve/frames/busy"),
            frames_errors: registry.counter("serve/frames/errors"),
            frames_dropped: registry.counter("serve/frames/dropped"),
            records_ingested: registry.counter("serve/records/ingested"),
            records_applied: registry.counter("serve/records/applied"),
            records_rejected: registry.counter("serve/records/rejected"),
            conn_accepted: registry.counter("serve/conn/accepted"),
            conn_rejected: registry.counter("serve/conn/rejected"),
            queries: registry.counter("serve/queries"),
        }
    }
}

/// Everything the worker threads share by reference.
struct Shared {
    local_addr: SocketAddr,
    registry: Arc<Registry>,
    metrics: Metrics,
    router_queue: IngestQueue<Vec<MissRecord<MissClass>>>,
    shard_queues: Vec<IngestQueue<Vec<MissRecord<MissClass>>>>,
    shard_states: Vec<Mutex<ShardState>>,
    progress: Mutex<Progress>,
    applied_cv: Condvar,
    lifecycle: Mutex<Phase>,
    drained_cv: Condvar,
    conns: Mutex<Conns>,
}

impl Shared {
    fn is_draining(&self) -> bool {
        *self.lifecycle.lock() != Phase::Running
    }

    /// Idempotent entry into the drain phase.
    fn begin_drain(&self) {
        {
            let mut phase = self.lifecycle.lock();
            if *phase == Phase::Running {
                *phase = Phase::Draining;
            }
        }
        self.router_queue.drain();
        // Wake the acceptor blocked in `accept` so it can observe the
        // phase change; the throwaway connection is dropped unserved.
        drop(TcpStream::connect(self.local_addr));
    }

    fn wait_drained(&self) {
        let mut phase = self.lifecycle.lock();
        while *phase != Phase::Drained {
            phase = self.drained_cv.wait(phase);
        }
    }

    /// Blocks until every record acked so far is applied to shard
    /// state (read-your-writes for queries).
    fn wait_applied(&self) {
        let mut p = self.progress.lock();
        let target = p.enqueued;
        while p.applied < target {
            p = self.applied_cv.wait(p);
        }
    }

    /// Waits out in-flight ingest, then locks every shard (index
    /// order) and merges with `f` — a consistent cut across shards.
    fn with_consistent_cut<T>(&self, f: impl FnOnce(&[ShardGuard<'_>]) -> T) -> T {
        self.wait_applied();
        let guards: Vec<ShardGuard<'_>> = self.shard_states.iter().map(Mutex::lock).collect();
        f(&guards)
    }

    fn handle_frame(&self, frame: Frame, stream: &mut TcpStream) -> std::io::Result<bool> {
        self.metrics.frames_received.inc();
        match frame {
            Frame::Ingest(records) => {
                let n = records.len() as u64;
                let reply = {
                    // Push and ack-count in one critical section so
                    // `applied` can never outrun `enqueued`.
                    let mut p = self.progress.lock();
                    match self.router_queue.try_push(records) {
                        Ok(()) => {
                            p.enqueued += n;
                            self.metrics.records_ingested.add(n);
                            Frame::IngestAck(n as u32)
                        }
                        Err(PushError::Full(_)) => {
                            self.metrics.frames_busy.inc();
                            self.metrics.records_rejected.add(n);
                            Frame::Busy
                        }
                        Err(PushError::Draining(_)) => {
                            self.metrics.frames_errors.inc();
                            Frame::Error {
                                code: ERR_DRAINING,
                                message: "server is draining".to_string(),
                            }
                        }
                    }
                };
                write_frame(&mut *stream, &reply)?;
                Ok(true)
            }
            Frame::QueryStreamFraction => {
                self.metrics.queries.inc();
                let counts = self.with_consistent_cut(|shards| {
                    merge_stream_counts(shards.iter().map(|s| s.stream_counts()))
                });
                write_frame(
                    &mut *stream,
                    &Frame::StreamFractionReply {
                        non_repetitive: counts.non_repetitive,
                        new_stream: counts.new_stream,
                        recurring_stream: counts.recurring_stream,
                        distinct_streams: counts.distinct_streams,
                    },
                )?;
                Ok(true)
            }
            Frame::QueryCoverage => {
                self.metrics.queries.inc();
                let cov = self.with_consistent_cut(|shards| {
                    merge_coverage_counts(shards.iter().map(|s| s.coverage_counts()))
                });
                write_frame(
                    &mut *stream,
                    &Frame::CoverageReply {
                        total: cov.total,
                        covered: cov.covered,
                        issued: cov.issued,
                    },
                )?;
                Ok(true)
            }
            Frame::QueryTopOrigins(n) => {
                self.metrics.queries.inc();
                let rows = self.with_consistent_cut(|shards| {
                    merge_top_origins(shards.iter().map(|s| s.origin_counts()), n as usize)
                });
                write_frame(&mut *stream, &Frame::TopOriginsReply(rows))?;
                Ok(true)
            }
            Frame::QueryMetricsSnapshot => {
                self.metrics.queries.inc();
                self.export_gauges();
                let json = self.registry.snapshot().render();
                write_frame(&mut *stream, &Frame::MetricsReply(json))?;
                Ok(true)
            }
            Frame::Shutdown => {
                self.begin_drain();
                self.wait_drained();
                write_frame(&mut *stream, &Frame::ShutdownAck)?;
                Ok(false)
            }
            // Reply-direction frames are never valid requests.
            Frame::IngestAck(_)
            | Frame::Busy
            | Frame::StreamFractionReply { .. }
            | Frame::CoverageReply { .. }
            | Frame::TopOriginsReply(_)
            | Frame::MetricsReply(_)
            | Frame::ShutdownAck
            | Frame::Error { .. } => {
                self.metrics.frames_errors.inc();
                write_frame(
                    &mut *stream,
                    &Frame::Error {
                        code: ERR_BAD_FRAME,
                        message: "reply-direction frame sent as request".to_string(),
                    },
                )?;
                Ok(false)
            }
        }
    }

    /// Publishes point-in-time gauges right before a snapshot.
    fn export_gauges(&self) {
        self.registry
            .gauge("serve/queue/router/max_depth")
            .set(self.router_queue.max_depth() as u64);
        for (i, q) in self.shard_queues.iter().enumerate() {
            self.registry
                .gauge(&format!("serve/queue/shard{i}/max_depth"))
                .set(q.max_depth() as u64);
        }
        let conns = self.conns.lock();
        self.registry
            .gauge("serve/conn/active")
            .set(conns.active as u64);
        self.registry
            .gauge("serve/conn/peak")
            .set(conns.peak as u64);
        let mut applied = 0u64;
        let mut overflow = 0u64;
        for state in &self.shard_states {
            let s = state.lock();
            applied += s.ingested();
            overflow += s.overflow();
        }
        self.registry.gauge("serve/records/in_state").set(applied);
        self.registry.gauge("serve/records/overflow").set(overflow);
    }
}

type ShardGuard<'a> = tempstream_runtime::sync::MutexGuard<'a, ShardState>;

/// One connection: assemble frames, dispatch, poll the drain flag.
fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut asm = FrameAssembler::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        loop {
            match asm.next_frame() {
                Ok(Some(frame)) => match shared.handle_frame(frame, &mut stream) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => return,
                },
                Ok(None) => break,
                Err(e) => {
                    // Decode failure: the stream offset can no longer
                    // be trusted. Report and tear down.
                    shared.metrics.frames_errors.inc();
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Error {
                            code: ERR_BAD_FRAME,
                            message: e.to_string(),
                        },
                    );
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => asm.push_bytes(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle poll: leave once the server drains and no
                // partial frame is pending.
                if shared.is_draining() && asm.is_idle() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Router worker: splits admitted ingest frames across shard queues,
/// then runs the drain handshake (see the module docs).
fn run_router(shared: &Shared, done_rx: &channel::Receiver<()>) {
    let shards = shared.shard_queues.len();
    while let Some(batch) = shared.router_queue.pop() {
        if shards == 1 {
            if shared.shard_queues[0].push(batch).is_err() {
                shared.metrics.frames_dropped.inc();
            }
            continue;
        }
        let mut per: Vec<Vec<MissRecord<MissClass>>> = vec![Vec::new(); shards];
        for r in batch {
            per[shard_of(r.block.raw(), shards)].push(r);
        }
        for (i, sub) in per.into_iter().enumerate() {
            if !sub.is_empty() && shared.shard_queues[i].push(sub).is_err() {
                // Unreachable by construction (only the router drains
                // shard queues, after its own queue closes); counted
                // so the soak gate would catch a regression.
                shared.metrics.frames_dropped.inc();
            }
        }
    }
    // Router queue closed and fully forwarded: close the shard queues
    // and wait for each worker's done token.
    for q in &shared.shard_queues {
        q.drain();
    }
    for _ in 0..shards {
        let _ = done_rx.recv();
    }
    let mut phase = shared.lifecycle.lock();
    *phase = Phase::Drained;
    drop(phase);
    shared.drained_cv.notify_all();
}

/// Shard worker: applies routed sub-batches to this shard's state.
fn run_shard(shared: &Shared, index: usize, done_tx: &channel::Sender<()>) {
    while let Some(batch) = shared.shard_queues[index].pop() {
        let n = batch.len() as u64;
        {
            let mut state = shared.shard_states[index].lock();
            for r in &batch {
                state.apply(r);
            }
        }
        shared.metrics.records_applied.add(n);
        let mut p = shared.progress.lock();
        p.applied += n;
        drop(p);
        shared.applied_cv.notify_all();
    }
    let _ = done_tx.send(());
}

/// A bound-but-not-yet-running ingest/query server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    registry: Arc<Registry>,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Any `TcpListener::bind` failure.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
            registry: Arc::new(Registry::new()),
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Any `TcpListener::local_addr` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's metric registry (exported in full by the
    /// `QueryMetricsSnapshot` frame).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Serves until a client sends `Shutdown` and the drain completes.
    ///
    /// Blocks the calling thread; run it from a dedicated thread (or
    /// process, as the `serve` binary does) and drive it over TCP.
    ///
    /// # Errors
    ///
    /// Fails only on listener-level I/O errors (bind address lost,
    /// local_addr unavailable); per-connection errors are contained.
    pub fn run(self) -> std::io::Result<()> {
        let config = self.config;
        let shards = config.shards.max(1);
        let local_addr = self.listener.local_addr()?;
        let shared = Shared {
            local_addr,
            registry: Arc::clone(&self.registry),
            metrics: Metrics::new(&self.registry),
            router_queue: IngestQueue::new(config.router_queue_capacity),
            shard_queues: (0..shards)
                .map(|_| IngestQueue::new(config.shard_queue_capacity))
                .collect(),
            shard_states: (0..shards)
                .map(|_| Mutex::new(ShardState::new(config.shard)))
                .collect(),
            progress: Mutex::new(Progress::default()),
            applied_cv: Condvar::new(),
            lifecycle: Mutex::new(Phase::Running),
            drained_cv: Condvar::new(),
            conns: Mutex::new(Conns::default()),
        };
        let shared = &shared;
        let listener = &self.listener;
        // One lane per long-lived job: shard workers + router +
        // connection handlers. Jobs never exceed lanes, so no
        // long-running job can starve another.
        let workers = shards + 1 + config.max_connections;
        pool::scope(workers, move |p| {
            let (done_tx, done_rx) = channel::bounded::<()>(shards);
            for index in 0..shards {
                let done_tx = done_tx.clone();
                p.spawn(move |_| run_shard(shared, index, &done_tx));
            }
            drop(done_tx);
            p.spawn(move |_| run_router(shared, &done_rx));

            loop {
                let stream = match listener.accept() {
                    Ok((stream, _peer)) => stream,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                };
                if shared.is_draining() {
                    // Woken by begin_drain's loopback connect (or a
                    // late client); stop accepting.
                    break;
                }
                let admitted = {
                    let mut conns = shared.conns.lock();
                    if conns.active >= config.max_connections {
                        false
                    } else {
                        conns.active += 1;
                        conns.peak = conns.peak.max(conns.active);
                        true
                    }
                };
                if admitted {
                    shared.metrics.conn_accepted.inc();
                    p.spawn(move |_| {
                        handle_conn(shared, stream);
                        let mut conns = shared.conns.lock();
                        conns.active -= 1;
                    });
                } else {
                    shared.metrics.conn_rejected.inc();
                    let mut stream = stream;
                    let _ = write_frame(&mut stream, &Frame::Busy);
                }
            }
        });
        Ok(())
    }
}
