//! The TCP server: acceptor, per-connection reader/writer pairs,
//! shard workers, and queries.
//!
//! Thread layout (all on one [`tempstream_runtime::pool::scope`]):
//!
//! ```text
//! acceptor (scope body) ──spawns──▶ per connection: reader + writer
//!                                        │ reader decodes back-to-back frames
//!                                        │ and dispatches without waiting for
//!                                        │ the previous reply (pipelining);
//!                                        │ replies go to a bounded ReplyQueue
//!                                        │ drained FIFO by the writer
//!                                        │
//!                                        │ reader splits each ingest frame by
//!                                        │ fxhash(block) into per-shard scratch
//!                                        │ and admits all sub-batches at once
//!                                        ▼
//!                                   ShardQueues (bounded lanes — the
//!                                   admission point, one lane per shard)
//!                                        │ shard workers apply incrementally
//!                                        ▼
//!                                   per-shard ShardState (behind shim Mutex)
//! ```
//!
//! Pipelining: protocol-v2 clients tag requests with a sequence id and
//! send many frames back-to-back; the reader dispatches each as soon
//! as it decodes, pushing the reply (with the echoed sequence id) onto
//! the connection's bounded [`ReplyQueue`]. The writer drains it in
//! FIFO order, so replies leave in dispatch order — the invariant that
//! lets the client match replies to requests. A full reply queue
//! blocks only that connection's reader (per-connection backpressure).
//!
//! Ingest routing happens **in the readers**: each connection splits a
//! decoded batch by [`shard_of`] into a per-connection scratch buffer
//! and admits the whole frame with one all-or-nothing
//! [`ShardQueues::try_push_batches`]. Readers never block on ingest — a
//! full lane surfaces as a `Busy` reply and the records are *not*
//! counted; all lanes are taken under one lock, so admitted frames get
//! a single total order (which is why per-connection FIFO per shard
//! survives N readers pushing concurrently, with no router thread
//! serializing the split). Applied sub-batch buffers are recycled
//! through the queues' free list back into reader scratch, so the
//! steady-state ingest path allocates nothing. Nothing buffers without
//! bound.
//!
//! Read-your-writes: every acked record bumps `Progress::enqueued`
//! under the progress lock *in the same critical section as the queue
//! push*; shard workers bump `applied` after mutating their state.
//! A query first waits until `applied >= enqueued-at-entry`, then locks
//! all shards (index order) for a consistent cut — so any answer
//! reflects at least every record acked before the query was sent.
//! Metrics gauges are exported on the same cut, so a snapshot can never
//! show `in_state` disagreeing with `applied`.
//!
//! Incremental queries: each connection keeps a [`DeltaCursor`] — the
//! per-shard state versions plus the merged answers of its last cut.
//! `QueryDelta` takes a consistent cut, re-snapshots **only** the
//! shards whose version moved, and replies with the change since the
//! cursor; a cut where nothing moved never walks a grammar at all. The
//! cursor also caches a merged origin table patched per changed shard,
//! so delta probes and `QueryTopOrigins` are O(changed shards), not
//! O(all shards) — and per-shard `StreamCounts` are version-memoized
//! inside [`ShardState`], so even a full query only walks the grammars
//! that actually moved.
//!
//! Shutdown: a `Shutdown` frame marks the lifecycle `Draining`, drains
//! the shard queues, and wakes the acceptor with a loopback connect.
//! Each shard worker finishes its lane's backlog; the last one out
//! flips the lifecycle to `Drained`, and the shutdown connection then
//! answers `ShutdownAck`. No acked record is ever dropped on shutdown.
//! The acceptor answers clients that race the drain with
//! `Error{ERR_DRAINING}` instead of silently dropping them, and an
//! acceptor torn down by a listener-level error still enters the drain
//! handshake so `run` returns instead of deadlocking the workers.
//!
//! All synchronization lives in the [`tempstream_runtime::sync`] shim
//! (enforced by `tempstream-checker`'s `lint-sources` gate).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::queue::{PushError, ReplyQueue, ShardQueues};
use crate::shard::{
    merge_coverage_counts, merge_stream_counts, shard_of, CoverageCounts, OriginTable, ShardConfig,
    ShardState, StreamCounts,
};
use crate::wire::{
    encode_message, write_frame, DeltaCounts, Frame, Message, MessageAssembler, ERR_BAD_FRAME,
    ERR_DRAINING, ERR_OVERSIZED,
};
use tempstream_fxhash::FxHashMap;
use tempstream_obsv::{Counter, Registry};
use tempstream_runtime::pool;
use tempstream_runtime::sync::{Arc, Condvar, Mutex};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;

/// How long a connection reader sleeps in `read` before re-checking
/// the drain flag.
const READ_POLL: Duration = Duration::from_millis(20);

/// Server-wide tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of analysis shards (and shard worker threads).
    pub shards: usize,
    /// Per-shard analysis parameters.
    pub shard: ShardConfig,
    /// Sub-batch capacity of each shard's ingest lane.
    pub shard_queue_capacity: usize,
    /// Concurrent connections; excess accepts get `Busy` and close.
    pub max_connections: usize,
    /// Reply-frame capacity of each connection's writer queue; a full
    /// queue blocks only that connection's reader.
    pub reply_queue_capacity: usize,
    /// Test hook: the first N accepted connections panic their reader
    /// on the first decoded frame (exercises the slot-release guard).
    #[doc(hidden)]
    pub fault_conn_panics: usize,
    /// Test hook: the acceptor sleeps this long before each `accept`,
    /// widening the drain window so tests can race it deterministically.
    #[doc(hidden)]
    pub fault_accept_hold_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 1,
            shard: ShardConfig::default(),
            shard_queue_capacity: 64,
            max_connections: 32,
            reply_queue_capacity: 32,
            fault_conn_panics: 0,
            fault_accept_hold_ms: 0,
        }
    }
}

/// Lifecycle of the server, driven by the `Shutdown` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Draining,
    Drained,
}

#[derive(Debug, Default)]
struct Progress {
    /// Records admitted onto the shard lanes (and acked).
    enqueued: u64,
    /// Records applied to shard state.
    applied: u64,
}

#[derive(Debug, Default)]
struct Conns {
    active: usize,
    peak: usize,
}

/// Counter handles bumped on the hot paths (cheap `Arc` clones; the
/// registry map lock is taken once here, not per event).
struct Metrics {
    frames_received: Counter,
    frames_busy: Counter,
    frames_errors: Counter,
    /// With reader-side routing there is no drop path left between
    /// admission and a shard lane (admission *is* the lane push), so
    /// this stays pinned at zero; it remains registered because the
    /// soak gates assert `frames/dropped == 0` on every snapshot.
    _frames_dropped: Counter,
    records_ingested: Counter,
    records_applied: Counter,
    records_rejected: Counter,
    conn_accepted: Counter,
    conn_rejected: Counter,
    queries: Counter,
}

impl Metrics {
    fn new(registry: &Registry) -> Self {
        Metrics {
            frames_received: registry.counter("serve/frames/received"),
            frames_busy: registry.counter("serve/frames/busy"),
            frames_errors: registry.counter("serve/frames/errors"),
            _frames_dropped: registry.counter("serve/frames/dropped"),
            records_ingested: registry.counter("serve/records/ingested"),
            records_applied: registry.counter("serve/records/applied"),
            records_rejected: registry.counter("serve/records/rejected"),
            conn_accepted: registry.counter("serve/conn/accepted"),
            conn_rejected: registry.counter("serve/conn/rejected"),
            queries: registry.counter("serve/queries"),
        }
    }
}

/// The difference `now - before` as a signed delta (saturating at the
/// i64 range, unreachable for realistic counter values).
fn signed_delta(now: u64, before: u64) -> i64 {
    if now >= before {
        i64::try_from(now - before).unwrap_or(i64::MAX)
    } else {
        i64::try_from(before - now).map_or(i64::MIN, |d| -d)
    }
}

/// Per-connection cursor for incremental (`QueryDelta`) answers: the
/// per-shard snapshot versions of the connection's last consistent cut
/// plus the merged answers replied at that cut. Owned by the reader —
/// no locks, no cross-connection state.
struct DeltaCursor {
    shard_versions: Vec<u64>,
    shard_streams: Vec<StreamCounts>,
    shard_coverage: Vec<CoverageCounts>,
    last_streams: StreamCounts,
    last_coverage: CoverageCounts,
    /// Origin-side versions, tracked separately from `shard_versions`
    /// because `QueryTopOrigins` refreshes origins without consuming
    /// the streams/coverage delta.
    origin_versions: Vec<u64>,
    /// Per-shard origin snapshots at `origin_versions`.
    shard_origins: Vec<OriginTable>,
    /// The merged origin table across all shards, patched in place for
    /// shards whose version moved — the ROADMAP follow-up that makes
    /// hot-shard probes O(changed shards). Serves `QueryTopOrigins`
    /// directly.
    merged_origins: OriginTable,
    /// Signed per-function origin movement accumulated since the last
    /// `DeltaReply` (survives interleaved `QueryTopOrigins` refreshes).
    pending_origins: FxHashMap<u32, i64>,
}

impl DeltaCursor {
    /// A cursor at the empty cut: version 0 with all-zero answers is
    /// exactly a fresh shard's state, so the first delta is absolute.
    fn new(shards: usize) -> Self {
        DeltaCursor {
            shard_versions: vec![0; shards],
            shard_streams: vec![StreamCounts::default(); shards],
            shard_coverage: vec![CoverageCounts::default(); shards],
            last_streams: StreamCounts::default(),
            last_coverage: CoverageCounts::default(),
            origin_versions: vec![0; shards],
            shard_origins: (0..shards).map(|_| OriginTable::new()).collect(),
            merged_origins: OriginTable::new(),
            pending_origins: FxHashMap::default(),
        }
    }

    /// Brings the merged origin table up to the cut held by `shards`:
    /// for each shard whose version moved since the last refresh, diff
    /// its table against the cached snapshot and patch the merge (and
    /// the pending delta) by the difference. Unchanged shards cost one
    /// version compare. Counts are monotone per shard, so patching by
    /// the diff is exact — `merged_origins` always equals a fresh
    /// all-shards merge at this cut.
    fn refresh_origins(&mut self, shards: &[ShardGuard<'_>]) {
        for (i, shard) in shards.iter().enumerate() {
            let version = shard.version();
            if self.origin_versions[i] == version {
                continue;
            }
            let now = shard.origin_counts();
            let before = &self.shard_origins[i];
            for (function, count) in now.iter() {
                let prev = before.get(function);
                if count != prev {
                    self.merged_origins.add(function, count - prev);
                    *self.pending_origins.entry(function).or_insert(0) += signed_delta(count, prev);
                }
            }
            self.shard_origins[i].copy_from(now);
            self.origin_versions[i] = version;
        }
    }
}

/// Everything the worker threads share by reference.
struct Shared {
    local_addr: SocketAddr,
    registry: Arc<Registry>,
    metrics: Metrics,
    shard_queues: ShardQueues<MissRecord<MissClass>>,
    shard_states: Vec<Mutex<ShardState>>,
    progress: Mutex<Progress>,
    applied_cv: Condvar,
    lifecycle: Mutex<Phase>,
    drained_cv: Condvar,
    /// Shard workers that have finished their lane; the last one out
    /// flips the lifecycle to `Drained`.
    shards_done: Mutex<usize>,
    conns: Mutex<Conns>,
    /// Remaining reader panics to inject (test hook, see
    /// [`ServerConfig::fault_conn_panics`]).
    fault_conn_panics: Mutex<usize>,
}

impl Shared {
    fn is_draining(&self) -> bool {
        *self.lifecycle.lock() != Phase::Running
    }

    /// Idempotent entry into the drain phase.
    fn begin_drain(&self) {
        {
            let mut phase = self.lifecycle.lock();
            if *phase == Phase::Running {
                *phase = Phase::Draining;
            }
        }
        self.shard_queues.drain();
        // Wake the acceptor blocked in `accept` so it can observe the
        // phase change; the throwaway connection is answered with
        // ERR_DRAINING (or dropped, if this end closes first).
        drop(TcpStream::connect(self.local_addr));
    }

    fn wait_drained(&self) {
        let mut phase = self.lifecycle.lock();
        while *phase != Phase::Drained {
            phase = self.drained_cv.wait(phase);
        }
    }

    /// Blocks until every record acked so far is applied to shard
    /// state (read-your-writes for queries); returns that watermark.
    fn wait_applied(&self) -> u64 {
        let mut p = self.progress.lock();
        let target = p.enqueued;
        while p.applied < target {
            p = self.applied_cv.wait(p);
        }
        target
    }

    /// Waits out in-flight ingest, then locks every shard (index
    /// order) and merges with `f` — a consistent cut across shards.
    /// `f` also receives the applied watermark of the cut. Guards are
    /// handed out mutably so queries can hit the per-shard caches.
    fn with_consistent_cut<T>(&self, f: impl FnOnce(u64, &mut [ShardGuard<'_>]) -> T) -> T {
        let applied = self.wait_applied();
        let mut guards: Vec<ShardGuard<'_>> = self.shard_states.iter().map(Mutex::lock).collect();
        f(applied, &mut guards)
    }

    /// Computes the reply for one decoded request. Returns the reply
    /// frame and whether the connection should keep reading. Never
    /// touches the socket — delivery belongs to the writer.
    ///
    /// `scratch` is the connection's routing buffer, one slot per
    /// shard; it must arrive with every slot empty and is left that
    /// way (accepted slots are swapped for recycled empties, refused
    /// ones cleared).
    fn handle_request(
        &self,
        frame: Frame,
        cursor: &mut DeltaCursor,
        scratch: &mut [Vec<MissRecord<MissClass>>],
    ) -> (Frame, bool) {
        self.metrics.frames_received.inc();
        match frame {
            Frame::Ingest(mut records) => {
                let n = records.len() as u64;
                let lanes = scratch.len();
                if lanes == 1 {
                    // Single shard: no hashing, no copying — the frame's
                    // own Vec becomes the sub-batch.
                    std::mem::swap(&mut scratch[0], &mut records);
                } else {
                    for r in records.drain(..) {
                        scratch[shard_of(r.block.raw(), lanes)].push(r);
                    }
                }
                let reply = {
                    // Push and ack-count in one critical section so
                    // `applied` can never outrun `enqueued`.
                    let mut p = self.progress.lock();
                    match self.shard_queues.try_push_batches(scratch) {
                        Ok(()) => {
                            p.enqueued += n;
                            self.metrics.records_ingested.add(n);
                            Frame::IngestAck(n as u32)
                        }
                        Err(PushError::Full(())) => {
                            self.metrics.frames_busy.inc();
                            self.metrics.records_rejected.add(n);
                            Frame::Busy
                        }
                        Err(PushError::Draining(())) => {
                            self.metrics.frames_errors.inc();
                            Frame::Error {
                                code: ERR_DRAINING,
                                message: "server is draining".to_string(),
                            }
                        }
                    }
                };
                if !matches!(reply, Frame::IngestAck(_)) {
                    // Refused whole: drop the routed records (the client
                    // retries the frame) but keep the buffers.
                    for sub in scratch.iter_mut() {
                        sub.clear();
                    }
                }
                // The decode-side Vec is empty either way; feed it to
                // the free list so admissions can hand it back to a
                // scratch slot instead of allocating.
                self.shard_queues.recycle(records);
                (reply, true)
            }
            Frame::QueryStreamFraction => {
                self.metrics.queries.inc();
                let counts = self.with_consistent_cut(|_applied, shards| {
                    merge_stream_counts(shards.iter_mut().map(|s| s.stream_counts()))
                });
                (
                    Frame::StreamFractionReply {
                        non_repetitive: counts.non_repetitive,
                        new_stream: counts.new_stream,
                        recurring_stream: counts.recurring_stream,
                        distinct_streams: counts.distinct_streams,
                    },
                    true,
                )
            }
            Frame::QueryCoverage => {
                self.metrics.queries.inc();
                let cov = self.with_consistent_cut(|_applied, shards| {
                    merge_coverage_counts(shards.iter().map(|s| s.coverage_counts()))
                });
                (
                    Frame::CoverageReply {
                        total: cov.total,
                        covered: cov.covered,
                        issued: cov.issued,
                    },
                    true,
                )
            }
            Frame::QueryTopOrigins(n) => {
                self.metrics.queries.inc();
                // Served from the cursor's patched merge: only shards
                // whose version moved since this connection last looked
                // are diffed; the top-n sort runs on the cached table.
                let rows = self.with_consistent_cut(|_applied, shards| {
                    cursor.refresh_origins(shards);
                    cursor.merged_origins.top_n(n as usize)
                });
                (Frame::TopOriginsReply(rows), true)
            }
            Frame::QueryDelta => {
                self.metrics.queries.inc();
                (Frame::DeltaReply(self.delta_since(cursor)), true)
            }
            Frame::QueryMetricsSnapshot => {
                self.metrics.queries.inc();
                // Gauges and the snapshot render on the same cut the
                // other queries use, so `in_state` can never disagree
                // with `applied` inside one snapshot.
                let json = self.with_consistent_cut(|_applied, shards| {
                    self.export_gauges(shards);
                    self.registry.snapshot().render()
                });
                (Frame::MetricsReply(json), true)
            }
            Frame::Shutdown => {
                self.begin_drain();
                self.wait_drained();
                (Frame::ShutdownAck, false)
            }
            // Reply-direction frames are never valid requests. (A
            // `Partial` never reaches here: the assembler reassembles
            // or rejects continuation runs before dispatch.)
            Frame::IngestAck(_)
            | Frame::Busy
            | Frame::StreamFractionReply { .. }
            | Frame::CoverageReply { .. }
            | Frame::TopOriginsReply(_)
            | Frame::MetricsReply(_)
            | Frame::DeltaReply(_)
            | Frame::Partial { .. }
            | Frame::ShutdownAck
            | Frame::Error { .. } => {
                self.metrics.frames_errors.inc();
                (
                    Frame::Error {
                        code: ERR_BAD_FRAME,
                        message: "reply-direction frame sent as request".to_string(),
                    },
                    false,
                )
            }
        }
    }

    /// Incremental answer: takes a consistent cut, re-snapshots only
    /// the shards whose version moved since `cursor`, and returns the
    /// change relative to the cursor's last answers. A cut where no
    /// shard moved is answered without walking any grammar, and the
    /// origin delta comes from the cursor's patched merge — never a
    /// full all-shards rebuild.
    fn delta_since(&self, cursor: &mut DeltaCursor) -> DeltaCounts {
        self.with_consistent_cut(|applied, shards| {
            let mut changed = false;
            for (i, shard) in shards.iter_mut().enumerate() {
                if cursor.shard_versions[i] != shard.version() {
                    cursor.shard_streams[i] = shard.stream_counts();
                    cursor.shard_coverage[i] = shard.coverage_counts();
                    cursor.shard_versions[i] = shard.version();
                    changed = true;
                }
            }
            let mut delta = DeltaCounts {
                applied,
                ..DeltaCounts::default()
            };
            if !changed {
                return delta;
            }
            let streams = merge_stream_counts(cursor.shard_streams.iter().copied());
            let coverage = merge_coverage_counts(cursor.shard_coverage.iter().copied());
            delta.non_repetitive =
                signed_delta(streams.non_repetitive, cursor.last_streams.non_repetitive);
            delta.new_stream = signed_delta(streams.new_stream, cursor.last_streams.new_stream);
            delta.recurring_stream = signed_delta(
                streams.recurring_stream,
                cursor.last_streams.recurring_stream,
            );
            delta.distinct_streams = signed_delta(
                streams.distinct_streams,
                cursor.last_streams.distinct_streams,
            );
            delta.total = signed_delta(coverage.total, cursor.last_coverage.total);
            delta.covered = signed_delta(coverage.covered, cursor.last_coverage.covered);
            delta.issued = signed_delta(coverage.issued, cursor.last_coverage.issued);
            cursor.refresh_origins(shards);
            // Origin counts are monotone, so a function can never
            // vanish from the merged map — no removal pass needed.
            delta.origins = cursor
                .pending_origins
                .iter()
                .filter(|&(_, &moved)| moved != 0)
                .map(|(&function, &moved)| (function, moved))
                .collect();
            delta
                .origins
                .sort_unstable_by_key(|&(function, _)| function);
            cursor.pending_origins.clear();
            cursor.last_streams = streams;
            cursor.last_coverage = coverage;
            delta
        })
    }

    /// Publishes point-in-time gauges right before a snapshot; called
    /// with the shard guards of the consistent cut the snapshot renders
    /// on (never locks shards itself — that would tear the cut).
    fn export_gauges(&self, shards: &[ShardGuard<'_>]) {
        for i in 0..self.shard_queues.lanes() {
            self.registry
                .gauge(&format!("serve/queue/shard{i}/max_depth"))
                .set(self.shard_queues.max_depth(i) as u64);
        }
        let conns = self.conns.lock();
        self.registry
            .gauge("serve/conn/active")
            .set(conns.active as u64);
        self.registry
            .gauge("serve/conn/peak")
            .set(conns.peak as u64);
        drop(conns);
        let mut applied = 0u64;
        let mut overflow = 0u64;
        let mut walks = 0u64;
        for s in shards {
            applied += s.ingested();
            overflow += s.overflow();
            walks += s.grammar_walks();
        }
        self.registry.gauge("serve/records/in_state").set(applied);
        self.registry.gauge("serve/records/overflow").set(overflow);
        // Grammar root walks = StreamCounts cache misses across shards;
        // tests assert unchanged shards never move this.
        self.registry
            .gauge("serve/analysis/grammar_walks")
            .set(walks);
    }
}

type ShardGuard<'a> = tempstream_runtime::sync::MutexGuard<'a, ShardState>;

/// The reply stream between one connection's reader and writer: the
/// echoed sequence id (None for v1 requests) plus the reply frame.
type ConnReplies = ReplyQueue<(Option<u32>, Frame)>;

/// Frees one connection slot on drop — a drop guard, so a panicking
/// reader can never leak its slot and shrink capacity permanently.
struct ConnSlot<'a> {
    shared: &'a Shared,
}

impl Drop for ConnSlot<'_> {
    fn drop(&mut self) {
        self.shared.conns.lock().active -= 1;
    }
}

/// Closes the reply queue on drop — even when the reader panics, so
/// the writer never blocks on a queue nobody will push to again.
struct CloseOnDrop<'a> {
    queue: &'a ConnReplies,
}

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        self.queue.close();
    }
}

/// One connection's reader: assemble messages (reassembling v2
/// continuation frames), dispatch each request as soon as it decodes —
/// routing ingest frames onto the shard lanes itself — queue the
/// reply, poll the drain flag. Never writes the socket.
fn handle_conn(shared: &Shared, mut stream: TcpStream, replies: &ConnReplies, fault_panic: bool) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut asm = MessageAssembler::new();
    let mut cursor = DeltaCursor::new(shared.shard_states.len());
    // Per-connection routing scratch, one slot per shard; admission
    // swaps accepted slots for recycled buffers, so after warm-up the
    // split allocates nothing.
    let mut scratch: Vec<Vec<MissRecord<MissClass>>> = (0..shared.shard_queues.lanes())
        .map(|_| Vec::new())
        .collect();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        loop {
            match asm.next_message() {
                Ok(Some(Message { seq, frame })) => {
                    if fault_panic {
                        panic!("injected connection-handler fault (test hook)");
                    }
                    let (reply, keep_going) =
                        shared.handle_request(frame, &mut cursor, &mut scratch);
                    if replies.push((seq, reply)).is_err() {
                        return; // writer is gone; replies undeliverable
                    }
                    if !keep_going {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Decode failure: the stream offset can no longer
                    // be trusted. Report and tear down.
                    shared.metrics.frames_errors.inc();
                    let _ = replies.push((
                        None,
                        Frame::Error {
                            code: ERR_BAD_FRAME,
                            message: e.to_string(),
                        },
                    ));
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => asm.push_bytes(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle poll: leave once the writer died (socket error)
                // or the server drains with no partial frame pending.
                if replies.is_closed() {
                    return;
                }
                if shared.is_draining() && asm.is_idle() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// One connection's writer: drains the reply queue in FIFO order onto
/// the socket. A v1 reply too large for a single frame (registry JSON
/// past the cap) is substituted with `Error{ERR_OVERSIZED}` — the
/// connection survives; v2 replies split into continuation frames in
/// `encode_message` instead.
fn run_conn_writer(shared: &Shared, mut stream: TcpStream, replies: &ConnReplies) {
    let mut buf = Vec::with_capacity(256);
    while let Some((seq, frame)) = replies.pop() {
        buf.clear();
        if encode_message(seq, &frame, &mut buf).is_err() {
            shared.metrics.frames_errors.inc();
            let oversized = Frame::Error {
                code: ERR_OVERSIZED,
                message: "reply exceeds the v1 frame cap; retry over protocol v2".to_string(),
            };
            buf.clear();
            if encode_message(seq, &oversized, &mut buf).is_err() {
                break;
            }
        }
        if stream.write_all(&buf).is_err() {
            break;
        }
    }
    // Socket failure (or reader exit): unblock the reader's pushes.
    replies.close();
}

/// Answers a client accepted during drain — plus every connect already
/// queued in the accept backlog — with `Error{ERR_DRAINING}` instead
/// of silently dropping them. Best-effort: the listener goes
/// non-blocking to sweep the backlog without re-parking the acceptor.
fn reject_drain_backlog(listener: &TcpListener, first: TcpStream, shared: &Shared) {
    let reject = |mut s: TcpStream| {
        shared.metrics.conn_rejected.inc();
        let _ = write_frame(
            &mut s,
            &Frame::Error {
                code: ERR_DRAINING,
                message: "server is draining".to_string(),
            },
        );
    };
    reject(first);
    if listener.set_nonblocking(true).is_ok() {
        while let Ok((s, _peer)) = listener.accept() {
            reject(s);
        }
    }
}

/// Shard worker: applies routed sub-batches from this shard's lane to
/// its state, recycling emptied buffers. The last worker to finish its
/// lane after a drain flips the lifecycle to `Drained`.
fn run_shard(shared: &Shared, index: usize) {
    while let Some(batch) = shared.shard_queues.pop(index) {
        let n = batch.len() as u64;
        {
            let mut state = shared.shard_states[index].lock();
            for r in &batch {
                state.apply(r);
            }
        }
        shared.shard_queues.recycle(batch);
        shared.metrics.records_applied.add(n);
        let mut p = shared.progress.lock();
        p.applied += n;
        drop(p);
        shared.applied_cv.notify_all();
    }
    // Lane closed and fully applied. The last worker out observes the
    // full count and completes the drain handshake.
    let mut done = shared.shards_done.lock();
    *done += 1;
    let all_done = *done == shared.shard_queues.lanes();
    drop(done);
    if all_done {
        let mut phase = shared.lifecycle.lock();
        *phase = Phase::Drained;
        drop(phase);
        shared.drained_cv.notify_all();
    }
}

/// A bound-but-not-yet-running ingest/query server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    registry: Arc<Registry>,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Any `TcpListener::bind` failure.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        Ok(Server::from_listener(TcpListener::bind(addr)?, config))
    }

    /// Wraps an already-bound listener. Callers that need a handle to
    /// the underlying socket (custom options, fault-injection tests)
    /// can `try_clone` the listener before handing it over.
    pub fn from_listener(listener: TcpListener, config: ServerConfig) -> Server {
        Server {
            listener,
            config,
            registry: Arc::new(Registry::new()),
        }
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Any `TcpListener::local_addr` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's metric registry (exported in full by the
    /// `QueryMetricsSnapshot` frame).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Serves until a client sends `Shutdown` and the drain completes.
    ///
    /// Blocks the calling thread; run it from a dedicated thread (or
    /// process, as the `serve` binary does) and drive it over TCP.
    ///
    /// # Errors
    ///
    /// Fails only on listener-level I/O errors (bind address lost,
    /// local_addr unavailable); per-connection errors are contained.
    /// A listener-level `accept` error still drains the workers before
    /// returning, so acked records are applied and `run` terminates.
    pub fn run(self) -> std::io::Result<()> {
        let config = self.config;
        let shards = config.shards.max(1);
        let local_addr = self.listener.local_addr()?;
        let shared = Shared {
            local_addr,
            registry: Arc::clone(&self.registry),
            metrics: Metrics::new(&self.registry),
            shard_queues: ShardQueues::new(shards, config.shard_queue_capacity),
            shard_states: (0..shards)
                .map(|_| Mutex::new(ShardState::new(config.shard)))
                .collect(),
            progress: Mutex::new(Progress::default()),
            applied_cv: Condvar::new(),
            lifecycle: Mutex::new(Phase::Running),
            drained_cv: Condvar::new(),
            shards_done: Mutex::new(0),
            conns: Mutex::new(Conns::default()),
            fault_conn_panics: Mutex::new(config.fault_conn_panics),
        };
        let shared = &shared;
        let listener = &self.listener;
        // One lane per long-lived job: shard workers + a reader and a
        // writer per connection. Jobs never exceed lanes, so no
        // long-running job can starve another.
        let workers = shards + 2 * config.max_connections;
        pool::scope(workers, move |p| {
            for index in 0..shards {
                p.spawn(move |_| run_shard(shared, index));
            }

            loop {
                if config.fault_accept_hold_ms > 0 {
                    std::thread::sleep(Duration::from_millis(config.fault_accept_hold_ms));
                }
                let stream = match listener.accept() {
                    Ok((stream, _peer)) => stream,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Listener torn down: enter the drain handshake
                        // so the shard workers unblock and run()
                        // returns instead of deadlocking in pop().
                        shared.begin_drain();
                        break;
                    }
                };
                if shared.is_draining() {
                    // Woken by begin_drain's loopback connect, or a
                    // client racing the drain: answer, don't ghost.
                    reject_drain_backlog(listener, stream, shared);
                    break;
                }
                let admitted = {
                    let mut conns = shared.conns.lock();
                    if conns.active >= config.max_connections {
                        false
                    } else {
                        conns.active += 1;
                        conns.peak = conns.peak.max(conns.active);
                        true
                    }
                };
                if admitted {
                    shared.metrics.conn_accepted.inc();
                    let Ok(write_half) = stream.try_clone() else {
                        // No writer, no connection; free the slot.
                        shared.conns.lock().active -= 1;
                        continue;
                    };
                    let fault_panic = {
                        let mut remaining = shared.fault_conn_panics.lock();
                        if *remaining > 0 {
                            *remaining -= 1;
                            true
                        } else {
                            false
                        }
                    };
                    let replies = Arc::new(ConnReplies::new(config.reply_queue_capacity));
                    let writer_q = Arc::clone(&replies);
                    p.spawn(move |_| run_conn_writer(shared, write_half, &writer_q));
                    p.spawn(move |_| {
                        let _slot = ConnSlot { shared };
                        let _close = CloseOnDrop { queue: &replies };
                        handle_conn(shared, stream, &replies, fault_panic);
                    });
                } else {
                    shared.metrics.conn_rejected.inc();
                    let mut stream = stream;
                    let _ = write_frame(&mut stream, &Frame::Busy);
                }
            }
        });
        Ok(())
    }
}
