//! An online ingest/query server that runs the paper's
//! characterization as a live service.
//!
//! The batch pipeline in `tempstream-core` answers "what fraction of
//! misses are temporal streams?" after a whole trace is on disk. This
//! crate answers the same questions *while the trace happens*: clients
//! stream miss records over a length-prefixed binary protocol
//! ([`wire`]), each connection's reader shards them by block-address
//! hash straight onto per-shard queues feeding workers that run
//! **incremental** stream detection and the temporal prefetch engine
//! ([`shard`]), and query frames are answered from per-shard state
//! merged on demand ([`server`]).
//!
//! The headline property is **bit-identity with the offline batch
//! stages**: because SEQUITUR is an online algorithm, a grammar
//! snapshot over an ingest prefix equals the batch grammar of that
//! prefix, so the server's answers match
//! [`offline::expected`] — the same records pushed through
//! `tempstream_core::stages` per partition — exactly, not
//! approximately. The loopback tests and the `serve-load --verify`
//! client enforce this.
//!
//! Connections are **pipelined**: protocol v2 tags each request with a
//! sequence id echoed in its reply, a per-connection reader dispatches
//! frames back-to-back while a writer drains a bounded reply queue in
//! FIFO order, and `QueryDelta` answers carry only the counters that
//! changed since the connection's last consistent cut (a per-shard
//! version check makes an idle delta query free, per-shard stream
//! counts are memoized on that version, and each cursor patches a
//! cached merged origin table only for the shards that moved).
//! Oversized replies split across continuation frames instead of
//! failing.
//!
//! Flow control is explicit everywhere: ingest admission happens at
//! the bounded per-shard lanes ([`queue::ShardQueues`]) with
//! all-or-nothing frame admission whose overflow surfaces to the
//! client as a `Busy` frame, per-connection replies
//! back-pressure through a bounded [`queue::ReplyQueue`], and shutdown
//! is a drain-then-ack handshake that never drops an acked record. All
//! synchronization goes through the [`tempstream_runtime::sync`] shim,
//! so the queues and handshakes are exercised by the schedule checker
//! (`tempstream-schedcheck`) as closed models, including mutations
//! that drop the drain/close signals.

pub mod offline;
pub mod queue;
pub mod server;
pub mod shard;
pub mod wire;

pub use server::{Server, ServerConfig};
pub use shard::ShardConfig;
