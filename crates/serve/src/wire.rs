//! The length-prefixed binary wire protocol.
//!
//! Every frame on the wire is:
//!
//! ```text
//! len      u32 LE      length of everything after this field
//! version  u8          currently 1
//! type     u8          frame discriminant (see Frame)
//! payload  len-6 bytes type-specific
//! crc      u32 LE      CRC-32/IEEE over version + type + payload
//! ```
//!
//! Ingest payloads carry runs of records in the *same* 21-byte encoding
//! the `trace::io` spill format uses ([`tempstream_trace::io::encode_record`]),
//! so a trace collected offline replays over the wire byte-for-byte.
//!
//! Robustness contract (exercised by `tests/wire_properties.rs`): a
//! malformed, truncated, oversized, or checksum-corrupted frame never
//! panics the decoder — it surfaces as a [`WireError`], which the
//! server answers with an [`Frame::Error`] reply before closing the
//! connection.

use std::io::{Read, Write};
use tempstream_trace::io::{decode_record, encode_record, ReadTraceError, RECORD_BYTES};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;

/// Protocol version byte carried by every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on `len`: bounds the allocation a hostile or corrupt
/// length prefix can drive (1 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Maximum records per ingest frame.
pub const MAX_BATCH_RECORDS: usize = 32_768;

/// Frame overhead after the length prefix: version + type + crc.
const ENVELOPE_BYTES: usize = 1 + 1 + 4;

/// Error code carried by [`Frame::Error`]: the peer sent a frame that
/// failed to decode.
pub const ERR_BAD_FRAME: u16 = 1;
/// Error code: the server is draining and rejects new ingest.
pub const ERR_DRAINING: u16 = 2;

/// One protocol frame, client→server requests and server→client
/// replies together (the discriminant ranges keep them disjoint).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A batch of miss records to ingest (client→server).
    Ingest(Vec<MissRecord<MissClass>>),
    /// Ask for the merged stream-fraction counts (client→server).
    QueryStreamFraction,
    /// Ask for the merged prefetch coverage/accuracy (client→server).
    QueryCoverage,
    /// Ask for the top-N miss-origin functions (client→server).
    QueryTopOrigins(u16),
    /// Ask for the full obsv registry snapshot (client→server).
    QueryMetricsSnapshot,
    /// Begin drain-then-shutdown (client→server).
    Shutdown,
    /// Ingest accepted; payload echoes the record count (server→client).
    IngestAck(u32),
    /// Ingest rejected for backpressure; retry later (server→client).
    Busy,
    /// Merged stream-fraction counts (server→client).
    StreamFractionReply {
        /// Misses outside any repeated sequence.
        non_repetitive: u64,
        /// Misses in a stream's first occurrence.
        new_stream: u64,
        /// Misses in later occurrences.
        recurring_stream: u64,
        /// Distinct streams summed over shards.
        distinct_streams: u64,
    },
    /// Merged prefetch evaluation counters (server→client).
    CoverageReply {
        /// Demand misses observed.
        total: u64,
        /// Misses covered by the prefetch buffer.
        covered: u64,
        /// Prefetches issued.
        issued: u64,
    },
    /// Top origins as (function id, miss count), count-descending
    /// (server→client).
    TopOriginsReply(Vec<(u32, u64)>),
    /// Full obsv registry snapshot as JSON text (server→client).
    MetricsReply(String),
    /// Drain complete, server is exiting (server→client).
    ShutdownAck,
    /// Protocol-level failure; the server closes after sending this
    /// (server→client).
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum WireError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// The peer closed the stream mid-frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`] (or is shorter
    /// than the envelope).
    BadLength(u32),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// The CRC trailer does not match the frame body.
    BadChecksum,
    /// Unknown frame type byte.
    UnknownType(u8),
    /// The payload does not parse for its frame type.
    Malformed(&'static str),
    /// An ingest record failed to decode.
    BadRecord(ReadTraceError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated => write!(f, "stream closed mid-frame"),
            WireError::BadLength(n) => write!(f, "frame length {n} outside protocol bounds"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::BadRecord(e) => write!(f, "bad record in ingest frame: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// --- CRC-32/IEEE ----------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32/IEEE (the zlib polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

// --- encoding -------------------------------------------------------------

const T_INGEST: u8 = 0;
const T_QUERY_STREAMS: u8 = 1;
const T_QUERY_COVERAGE: u8 = 2;
const T_QUERY_TOP_ORIGINS: u8 = 3;
const T_QUERY_METRICS: u8 = 4;
const T_SHUTDOWN: u8 = 5;
const T_INGEST_ACK: u8 = 16;
const T_BUSY: u8 = 17;
const T_STREAMS_REPLY: u8 = 18;
const T_COVERAGE_REPLY: u8 = 19;
const T_TOP_ORIGINS_REPLY: u8 = 20;
const T_METRICS_REPLY: u8 = 21;
const T_SHUTDOWN_ACK: u8 = 22;
const T_ERROR: u8 = 23;

fn frame_type(frame: &Frame) -> u8 {
    match frame {
        Frame::Ingest(_) => T_INGEST,
        Frame::QueryStreamFraction => T_QUERY_STREAMS,
        Frame::QueryCoverage => T_QUERY_COVERAGE,
        Frame::QueryTopOrigins(_) => T_QUERY_TOP_ORIGINS,
        Frame::QueryMetricsSnapshot => T_QUERY_METRICS,
        Frame::Shutdown => T_SHUTDOWN,
        Frame::IngestAck(_) => T_INGEST_ACK,
        Frame::Busy => T_BUSY,
        Frame::StreamFractionReply { .. } => T_STREAMS_REPLY,
        Frame::CoverageReply { .. } => T_COVERAGE_REPLY,
        Frame::TopOriginsReply(_) => T_TOP_ORIGINS_REPLY,
        Frame::MetricsReply(_) => T_METRICS_REPLY,
        Frame::ShutdownAck => T_SHUTDOWN_ACK,
        Frame::Error { .. } => T_ERROR,
    }
}

fn encode_payload(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Ingest(records) => {
            assert!(
                records.len() <= MAX_BATCH_RECORDS,
                "ingest batch over MAX_BATCH_RECORDS; split before encoding"
            );
            out.extend_from_slice(&(records.len() as u32).to_le_bytes());
            for r in records {
                encode_record(r, out);
            }
        }
        Frame::QueryTopOrigins(n) => out.extend_from_slice(&n.to_le_bytes()),
        Frame::IngestAck(n) => out.extend_from_slice(&n.to_le_bytes()),
        Frame::StreamFractionReply {
            non_repetitive,
            new_stream,
            recurring_stream,
            distinct_streams,
        } => {
            out.extend_from_slice(&non_repetitive.to_le_bytes());
            out.extend_from_slice(&new_stream.to_le_bytes());
            out.extend_from_slice(&recurring_stream.to_le_bytes());
            out.extend_from_slice(&distinct_streams.to_le_bytes());
        }
        Frame::CoverageReply {
            total,
            covered,
            issued,
        } => {
            out.extend_from_slice(&total.to_le_bytes());
            out.extend_from_slice(&covered.to_le_bytes());
            out.extend_from_slice(&issued.to_le_bytes());
        }
        Frame::TopOriginsReply(rows) => {
            out.extend_from_slice(&(rows.len() as u16).to_le_bytes());
            for (function, count) in rows {
                out.extend_from_slice(&function.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        Frame::MetricsReply(json) => out.extend_from_slice(json.as_bytes()),
        Frame::Error { code, message } => {
            out.extend_from_slice(&code.to_le_bytes());
            out.extend_from_slice(message.as_bytes());
        }
        Frame::QueryStreamFraction
        | Frame::QueryCoverage
        | Frame::QueryMetricsSnapshot
        | Frame::Shutdown
        | Frame::Busy
        | Frame::ShutdownAck => {}
    }
}

/// Encodes `frame` (length prefix, envelope, payload, CRC) into `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]); // length back-patched below
    out.push(PROTOCOL_VERSION);
    out.push(frame_type(frame));
    encode_payload(frame, out);
    let body_len = out.len() - start - 4;
    let crc = crc32(&out[start + 4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    let len = u32::try_from(body_len + 4).expect("frame fits u32");
    assert!(
        (len as usize) <= MAX_FRAME_BYTES,
        "encoded frame exceeds MAX_FRAME_BYTES"
    );
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes and writes one frame to `writer`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_frame<W: Write>(mut writer: W, frame: &Frame) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(64);
    encode_frame(frame, &mut buf);
    writer.write_all(&buf)
}

// --- decoding -------------------------------------------------------------

fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    // body = version + type + payload + crc; length already validated.
    let crc_off = body.len() - 4;
    let expect = u32::from_le_bytes(body[crc_off..].try_into().expect("4B crc"));
    if crc32(&body[..crc_off]) != expect {
        return Err(WireError::BadChecksum);
    }
    if body[0] != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(body[0]));
    }
    let payload = &body[2..crc_off];
    let need = |n: usize, what: &'static str| {
        if payload.len() == n {
            Ok(())
        } else {
            Err(WireError::Malformed(what))
        }
    };
    let u16_at = |off: usize| u16::from_le_bytes(payload[off..off + 2].try_into().expect("2B"));
    let u32_at = |off: usize| u32::from_le_bytes(payload[off..off + 4].try_into().expect("4B"));
    let u64_at = |off: usize| u64::from_le_bytes(payload[off..off + 8].try_into().expect("8B"));
    match body[1] {
        T_INGEST => {
            if payload.len() < 4 {
                return Err(WireError::Malformed("ingest header short"));
            }
            let count = u32_at(0) as usize;
            if count > MAX_BATCH_RECORDS {
                return Err(WireError::Malformed("ingest batch over record cap"));
            }
            if payload.len() != 4 + count * RECORD_BYTES {
                return Err(WireError::Malformed("ingest length/count mismatch"));
            }
            let mut records = Vec::with_capacity(count);
            for rec in payload[4..].chunks_exact(RECORD_BYTES) {
                records.push(decode_record::<MissClass>(rec).map_err(WireError::BadRecord)?);
            }
            Ok(Frame::Ingest(records))
        }
        T_QUERY_STREAMS => need(0, "query takes no payload").map(|()| Frame::QueryStreamFraction),
        T_QUERY_COVERAGE => need(0, "query takes no payload").map(|()| Frame::QueryCoverage),
        T_QUERY_TOP_ORIGINS => {
            need(2, "top-origins takes u16 n").map(|()| Frame::QueryTopOrigins(u16_at(0)))
        }
        T_QUERY_METRICS => need(0, "query takes no payload").map(|()| Frame::QueryMetricsSnapshot),
        T_SHUTDOWN => need(0, "shutdown takes no payload").map(|()| Frame::Shutdown),
        T_INGEST_ACK => need(4, "ack takes u32 count").map(|()| Frame::IngestAck(u32_at(0))),
        T_BUSY => need(0, "busy takes no payload").map(|()| Frame::Busy),
        T_STREAMS_REPLY => {
            need(32, "streams reply takes 4×u64").map(|()| Frame::StreamFractionReply {
                non_repetitive: u64_at(0),
                new_stream: u64_at(8),
                recurring_stream: u64_at(16),
                distinct_streams: u64_at(24),
            })
        }
        T_COVERAGE_REPLY => need(24, "coverage reply takes 3×u64").map(|()| Frame::CoverageReply {
            total: u64_at(0),
            covered: u64_at(8),
            issued: u64_at(16),
        }),
        T_TOP_ORIGINS_REPLY => {
            if payload.len() < 2 {
                return Err(WireError::Malformed("top-origins header short"));
            }
            let n = u16_at(0) as usize;
            if payload.len() != 2 + n * 12 {
                return Err(WireError::Malformed("top-origins length/count mismatch"));
            }
            let rows = (0..n)
                .map(|i| (u32_at(2 + i * 12), u64_at(2 + i * 12 + 4)))
                .collect();
            Ok(Frame::TopOriginsReply(rows))
        }
        T_METRICS_REPLY => String::from_utf8(payload.to_vec())
            .map(Frame::MetricsReply)
            .map_err(|_| WireError::Malformed("metrics reply not utf-8")),
        T_SHUTDOWN_ACK => need(0, "shutdown ack takes no payload").map(|()| Frame::ShutdownAck),
        T_ERROR => {
            if payload.len() < 2 {
                return Err(WireError::Malformed("error frame short"));
            }
            let message = String::from_utf8(payload[2..].to_vec())
                .map_err(|_| WireError::Malformed("error message not utf-8"))?;
            Ok(Frame::Error {
                code: u16_at(0),
                message,
            })
        }
        other => Err(WireError::UnknownType(other)),
    }
}

/// Incremental frame parser: feed it raw bytes as they arrive, pull
/// complete frames out.
///
/// This is the only decode path — the blocking [`read_frame`] is built
/// on it — so the property tests that throw corrupt, truncated, and
/// oversized byte streams at the assembler cover the server's decoder
/// exactly.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        // Compact lazily: drop consumed bytes before growing.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// True when no partial frame is buffered (safe point to close an
    /// idle connection).
    pub fn is_idle(&self) -> bool {
        self.buf.len() == self.consumed
    }

    /// Extracts the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the buffered bytes cannot be a
    /// valid frame; the connection should be torn down (the stream
    /// offset can no longer be trusted).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().expect("4B len"));
        if (len as usize) < ENVELOPE_BYTES || len as usize > MAX_FRAME_BYTES {
            return Err(WireError::BadLength(len));
        }
        if pending.len() < 4 + len as usize {
            return Ok(None);
        }
        let body = &pending[4..4 + len as usize];
        let frame = decode_body(body)?;
        self.consumed += 4 + len as usize;
        Ok(Some(frame))
    }
}

/// Reads one complete frame from a blocking reader.
///
/// # Errors
///
/// [`WireError::Truncated`] if the stream ends cleanly mid-frame (or
/// before one starts); any other [`WireError`] as produced by the
/// decoder.
pub fn read_frame<R: Read>(mut reader: R) -> Result<Frame, WireError> {
    let mut asm = FrameAssembler::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = asm.next_frame()? {
            return Ok(frame);
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => asm.push_bytes(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn assembler_handles_split_delivery() {
        let mut bytes = Vec::new();
        encode_frame(&Frame::QueryCoverage, &mut bytes);
        encode_frame(&Frame::IngestAck(7), &mut bytes);
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &bytes {
            asm.push_bytes(std::slice::from_ref(b));
            while let Some(f) = asm.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec![Frame::QueryCoverage, Frame::IngestAck(7)]);
        assert!(asm.is_idle());
    }
}
