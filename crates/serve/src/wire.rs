//! The length-prefixed binary wire protocol.
//!
//! Every frame on the wire is:
//!
//! ```text
//! len      u32 LE      length of everything after this field
//! version  u8          1 or 2
//! type     u8          frame discriminant (see Frame)
//! seq      u32 LE      v2 only: request sequence id, echoed in replies
//! payload  …           type-specific
//! crc      u32 LE      CRC-32/IEEE over version + type [+ seq] + payload
//! ```
//!
//! Protocol **v1** is strictly half-duplex request/reply. Protocol
//! **v2** adds a `u32` sequence id after the type byte: clients may
//! pipeline many requests back-to-back and match replies by their
//! echoed sequence id, and replies whose payload exceeds
//! [`MAX_FRAME_BYTES`] are split across [`Frame::Partial`] continuation
//! frames (same sequence id, reassembled by [`MessageAssembler`])
//! instead of failing to encode. v2 also carries the incremental query
//! frames [`Frame::QueryDelta`] / [`Frame::DeltaReply`].
//!
//! Ingest payloads carry runs of records in the *same* 21-byte encoding
//! the `trace::io` spill format uses ([`tempstream_trace::io::encode_record`]),
//! so a trace collected offline replays over the wire byte-for-byte.
//!
//! Robustness contract (exercised by `tests/wire_properties.rs`): a
//! malformed, truncated, oversized, or checksum-corrupted frame never
//! panics the decoder — it surfaces as a [`WireError`], which the
//! server answers with an [`Frame::Error`] reply before closing the
//! connection. On the encode side, a v1 frame whose payload cannot fit
//! [`MAX_FRAME_BYTES`] surfaces as [`WireError::Oversized`] rather
//! than panicking.

use std::io::{Read, Write};
use tempstream_trace::io::{decode_record, encode_record, ReadTraceError, RECORD_BYTES};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;

/// Protocol version byte of the original half-duplex protocol.
pub const PROTOCOL_VERSION: u8 = 1;

/// Protocol version byte of the pipelined, sequence-tagged protocol.
pub const PROTOCOL_V2: u8 = 2;

/// Hard cap on `len`: bounds the allocation a hostile or corrupt
/// length prefix can drive (1 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Hard cap on the total payload a run of [`Frame::Partial`]
/// continuation frames may reassemble into (16 MiB): bounds the memory
/// a hostile never-ending continuation stream can pin.
pub const MAX_REASSEMBLED_BYTES: usize = 16 << 20;

/// Maximum records per ingest frame.
pub const MAX_BATCH_RECORDS: usize = 32_768;

/// Frame overhead after the length prefix: version + type + crc.
const ENVELOPE_BYTES: usize = 1 + 1 + 4;

/// v2 frame overhead after the length prefix: version + type + seq + crc.
const ENVELOPE_V2_BYTES: usize = 1 + 1 + 4 + 4;

/// Error code carried by [`Frame::Error`]: the peer sent a frame that
/// failed to decode.
pub const ERR_BAD_FRAME: u16 = 1;
/// Error code: the server is draining and rejects new ingest.
pub const ERR_DRAINING: u16 = 2;
/// Error code: the reply is too large for a single v1 frame (retry
/// over protocol v2, which splits oversized replies into continuation
/// frames).
pub const ERR_OVERSIZED: u16 = 3;

/// Counter changes since a connection's last delta cut (protocol v2).
///
/// A [`Frame::DeltaReply`] carries, for every query the server answers,
/// only the *change* since the same connection's previous
/// [`Frame::QueryDelta`] (or since the connection opened). Deltas are
/// signed: stream labels may re-label earlier misses as the grammar
/// grows, so per-label counts are not monotone.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeltaCounts {
    /// Records applied at this consistent cut (the new cursor
    /// watermark; absolute, not a delta).
    pub applied: u64,
    /// Change in misses outside any repeated sequence.
    pub non_repetitive: i64,
    /// Change in misses labeled as a stream's first occurrence.
    pub new_stream: i64,
    /// Change in misses labeled as later stream occurrences.
    pub recurring_stream: i64,
    /// Change in distinct streams summed over shards.
    pub distinct_streams: i64,
    /// Change in demand misses observed by the prefetch evaluator.
    pub total: i64,
    /// Change in misses covered by the prefetch buffer.
    pub covered: i64,
    /// Change in prefetches issued.
    pub issued: i64,
    /// Per-function miss-count changes — only functions whose count
    /// changed, ordered by function id ascending.
    pub origins: Vec<(u32, i64)>,
}

impl DeltaCounts {
    /// True when nothing changed since the last cut.
    pub fn is_empty(&self) -> bool {
        self.non_repetitive == 0
            && self.new_stream == 0
            && self.recurring_stream == 0
            && self.distinct_streams == 0
            && self.total == 0
            && self.covered == 0
            && self.issued == 0
            && self.origins.is_empty()
    }
}

/// One protocol frame, client→server requests and server→client
/// replies together (the discriminant ranges keep them disjoint).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A batch of miss records to ingest (client→server).
    Ingest(Vec<MissRecord<MissClass>>),
    /// Ask for the merged stream-fraction counts (client→server).
    QueryStreamFraction,
    /// Ask for the merged prefetch coverage/accuracy (client→server).
    QueryCoverage,
    /// Ask for the top-N miss-origin functions (client→server).
    QueryTopOrigins(u16),
    /// Ask for the full obsv registry snapshot (client→server).
    QueryMetricsSnapshot,
    /// Ask for the counters changed since this connection's last delta
    /// cut (client→server, protocol v2).
    QueryDelta,
    /// Begin drain-then-shutdown (client→server).
    Shutdown,
    /// Ingest accepted; payload echoes the record count (server→client).
    IngestAck(u32),
    /// Ingest rejected for backpressure; retry later (server→client).
    Busy,
    /// Merged stream-fraction counts (server→client).
    StreamFractionReply {
        /// Misses outside any repeated sequence.
        non_repetitive: u64,
        /// Misses in a stream's first occurrence.
        new_stream: u64,
        /// Misses in later occurrences.
        recurring_stream: u64,
        /// Distinct streams summed over shards.
        distinct_streams: u64,
    },
    /// Merged prefetch evaluation counters (server→client).
    CoverageReply {
        /// Demand misses observed.
        total: u64,
        /// Misses covered by the prefetch buffer.
        covered: u64,
        /// Prefetches issued.
        issued: u64,
    },
    /// Top origins as (function id, miss count), count-descending
    /// (server→client).
    TopOriginsReply(Vec<(u32, u64)>),
    /// Full obsv registry snapshot as JSON text (server→client).
    MetricsReply(String),
    /// Counters changed since the connection's last delta cut
    /// (server→client, protocol v2).
    DeltaReply(DeltaCounts),
    /// One continuation segment of a reply too large for a single
    /// frame (protocol v2). Segments share the originating request's
    /// sequence id and are reassembled by [`MessageAssembler`]; the
    /// concatenated chunks decode as the payload of `inner_type`.
    Partial {
        /// Frame type the reassembled payload decodes as.
        inner_type: u8,
        /// True on the final segment of the reply.
        last: bool,
        /// This segment's slice of the payload.
        chunk: Vec<u8>,
    },
    /// Drain complete, server is exiting (server→client).
    ShutdownAck,
    /// Protocol-level failure; the server closes after sending this
    /// (server→client).
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

/// One decoded protocol message: the frame plus its v2 sequence id
/// (`None` for v1 frames).
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// v2 sequence id, echoed verbatim in the reply; `None` for v1.
    pub seq: Option<u32>,
    /// The frame itself.
    pub frame: Frame,
}

/// Why a frame could not be decoded (or encoded).
#[derive(Debug)]
pub enum WireError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// The peer closed the stream mid-frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`] (or is shorter
    /// than the envelope).
    BadLength(u32),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// The CRC trailer does not match the frame body.
    BadChecksum,
    /// Unknown frame type byte.
    UnknownType(u8),
    /// The payload does not parse for its frame type.
    Malformed(&'static str),
    /// An ingest record failed to decode.
    BadRecord(ReadTraceError),
    /// The frame's payload (the contained byte count) cannot fit the
    /// protocol bounds: over [`MAX_FRAME_BYTES`] for a single v1
    /// frame, or over [`MAX_REASSEMBLED_BYTES`] for a v2 continuation
    /// run.
    Oversized(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated => write!(f, "stream closed mid-frame"),
            WireError::BadLength(n) => write!(f, "frame length {n} outside protocol bounds"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::BadRecord(e) => write!(f, "bad record in ingest frame: {e}"),
            WireError::Oversized(n) => write!(f, "payload of {n} bytes exceeds protocol bounds"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// --- CRC-32/IEEE ----------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32/IEEE (the zlib polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

// --- encoding -------------------------------------------------------------

const T_INGEST: u8 = 0;
const T_QUERY_STREAMS: u8 = 1;
const T_QUERY_COVERAGE: u8 = 2;
const T_QUERY_TOP_ORIGINS: u8 = 3;
const T_QUERY_METRICS: u8 = 4;
const T_SHUTDOWN: u8 = 5;
const T_QUERY_DELTA: u8 = 6;
const T_INGEST_ACK: u8 = 16;
const T_BUSY: u8 = 17;
const T_STREAMS_REPLY: u8 = 18;
const T_COVERAGE_REPLY: u8 = 19;
const T_TOP_ORIGINS_REPLY: u8 = 20;
const T_METRICS_REPLY: u8 = 21;
const T_SHUTDOWN_ACK: u8 = 22;
const T_ERROR: u8 = 23;
const T_DELTA_REPLY: u8 = 24;
const T_PARTIAL: u8 = 25;

fn frame_type(frame: &Frame) -> u8 {
    match frame {
        Frame::Ingest(_) => T_INGEST,
        Frame::QueryStreamFraction => T_QUERY_STREAMS,
        Frame::QueryCoverage => T_QUERY_COVERAGE,
        Frame::QueryTopOrigins(_) => T_QUERY_TOP_ORIGINS,
        Frame::QueryMetricsSnapshot => T_QUERY_METRICS,
        Frame::QueryDelta => T_QUERY_DELTA,
        Frame::Shutdown => T_SHUTDOWN,
        Frame::IngestAck(_) => T_INGEST_ACK,
        Frame::Busy => T_BUSY,
        Frame::StreamFractionReply { .. } => T_STREAMS_REPLY,
        Frame::CoverageReply { .. } => T_COVERAGE_REPLY,
        Frame::TopOriginsReply(_) => T_TOP_ORIGINS_REPLY,
        Frame::MetricsReply(_) => T_METRICS_REPLY,
        Frame::DeltaReply(_) => T_DELTA_REPLY,
        Frame::Partial { .. } => T_PARTIAL,
        Frame::ShutdownAck => T_SHUTDOWN_ACK,
        Frame::Error { .. } => T_ERROR,
    }
}

fn encode_payload(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Ingest(records) => {
            assert!(
                records.len() <= MAX_BATCH_RECORDS,
                "ingest batch over MAX_BATCH_RECORDS; split before encoding"
            );
            out.extend_from_slice(&(records.len() as u32).to_le_bytes());
            for r in records {
                encode_record(r, out);
            }
        }
        Frame::QueryTopOrigins(n) => out.extend_from_slice(&n.to_le_bytes()),
        Frame::IngestAck(n) => out.extend_from_slice(&n.to_le_bytes()),
        Frame::StreamFractionReply {
            non_repetitive,
            new_stream,
            recurring_stream,
            distinct_streams,
        } => {
            out.extend_from_slice(&non_repetitive.to_le_bytes());
            out.extend_from_slice(&new_stream.to_le_bytes());
            out.extend_from_slice(&recurring_stream.to_le_bytes());
            out.extend_from_slice(&distinct_streams.to_le_bytes());
        }
        Frame::CoverageReply {
            total,
            covered,
            issued,
        } => {
            out.extend_from_slice(&total.to_le_bytes());
            out.extend_from_slice(&covered.to_le_bytes());
            out.extend_from_slice(&issued.to_le_bytes());
        }
        Frame::TopOriginsReply(rows) => {
            out.extend_from_slice(&(rows.len() as u16).to_le_bytes());
            for (function, count) in rows {
                out.extend_from_slice(&function.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        Frame::MetricsReply(json) => out.extend_from_slice(json.as_bytes()),
        Frame::DeltaReply(d) => {
            out.extend_from_slice(&d.applied.to_le_bytes());
            out.extend_from_slice(&d.non_repetitive.to_le_bytes());
            out.extend_from_slice(&d.new_stream.to_le_bytes());
            out.extend_from_slice(&d.recurring_stream.to_le_bytes());
            out.extend_from_slice(&d.distinct_streams.to_le_bytes());
            out.extend_from_slice(&d.total.to_le_bytes());
            out.extend_from_slice(&d.covered.to_le_bytes());
            out.extend_from_slice(&d.issued.to_le_bytes());
            out.extend_from_slice(&(d.origins.len() as u32).to_le_bytes());
            for (function, delta) in &d.origins {
                out.extend_from_slice(&function.to_le_bytes());
                out.extend_from_slice(&delta.to_le_bytes());
            }
        }
        Frame::Partial {
            inner_type,
            last,
            chunk,
        } => {
            out.push(*inner_type);
            out.push(u8::from(*last));
            out.extend_from_slice(chunk);
        }
        Frame::Error { code, message } => {
            out.extend_from_slice(&code.to_le_bytes());
            out.extend_from_slice(message.as_bytes());
        }
        Frame::QueryStreamFraction
        | Frame::QueryCoverage
        | Frame::QueryMetricsSnapshot
        | Frame::QueryDelta
        | Frame::Shutdown
        | Frame::Busy
        | Frame::ShutdownAck => {}
    }
}

/// Writes one complete frame (length prefix, envelope, optional v2
/// seq, payload bytes, CRC) to `out`. The payload must already fit one
/// frame.
fn encode_raw(version: u8, ftype: u8, seq: Option<u32>, payload: &[u8], out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]); // length back-patched below
    out.push(version);
    out.push(ftype);
    if let Some(seq) = seq {
        out.extend_from_slice(&seq.to_le_bytes());
    }
    out.extend_from_slice(payload);
    let crc = crc32(&out[start + 4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    let len = u32::try_from(out.len() - start - 4).expect("frame fits u32");
    debug_assert!(
        (len as usize) <= MAX_FRAME_BYTES,
        "encode_raw payload precut"
    );
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes `frame` as a single v1 frame into `out`.
///
/// # Errors
///
/// [`WireError::Oversized`] when the payload cannot fit one frame
/// (`out` is left untouched); a v2 [`encode_message`] splits such
/// payloads across continuation frames instead.
pub fn try_encode_frame(frame: &Frame, out: &mut Vec<u8>) -> Result<(), WireError> {
    let mut payload = Vec::with_capacity(64);
    encode_payload(frame, &mut payload);
    if payload.len() + ENVELOPE_BYTES > MAX_FRAME_BYTES {
        return Err(WireError::Oversized(payload.len()));
    }
    encode_raw(PROTOCOL_VERSION, frame_type(frame), None, &payload, out);
    Ok(())
}

/// Encodes `frame` (length prefix, envelope, payload, CRC) into `out`.
///
/// # Panics
///
/// Panics when the encoded frame would exceed [`MAX_FRAME_BYTES`];
/// use [`try_encode_frame`] (v1) or [`encode_message`] (v2, which
/// splits) where oversized payloads are reachable.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    try_encode_frame(frame, out).expect("encoded frame exceeds MAX_FRAME_BYTES");
}

/// Encodes one message: v1 when `seq` is `None`, v2 (sequence-tagged)
/// otherwise. A v2 payload too large for a single frame is split
/// across [`Frame::Partial`] continuation frames sharing `seq`.
///
/// # Errors
///
/// [`WireError::Oversized`] for a v1 payload over [`MAX_FRAME_BYTES`],
/// for a v2 payload over [`MAX_REASSEMBLED_BYTES`], or when `frame` is
/// itself a [`Frame::Partial`] too large for one frame (continuations
/// do not nest). `out` is left unchanged on error.
pub fn encode_message(seq: Option<u32>, frame: &Frame, out: &mut Vec<u8>) -> Result<(), WireError> {
    let Some(seq) = seq else {
        return try_encode_frame(frame, out);
    };
    let mut payload = Vec::with_capacity(64);
    encode_payload(frame, &mut payload);
    let ftype = frame_type(frame);
    let max_payload = MAX_FRAME_BYTES - ENVELOPE_V2_BYTES;
    if payload.len() <= max_payload {
        encode_raw(PROTOCOL_V2, ftype, Some(seq), &payload, out);
        return Ok(());
    }
    if payload.len() > MAX_REASSEMBLED_BYTES || ftype == T_PARTIAL {
        return Err(WireError::Oversized(payload.len()));
    }
    // Split into continuation frames: each carries inner type + last
    // flag + a chunk of the payload, all under the same sequence id.
    let chunk_budget = max_payload - 2;
    let last_index = payload.len().div_ceil(chunk_budget) - 1;
    let mut partial = Vec::with_capacity(chunk_budget + 2);
    for (i, chunk) in payload.chunks(chunk_budget).enumerate() {
        partial.clear();
        partial.push(ftype);
        partial.push(u8::from(i == last_index));
        partial.extend_from_slice(chunk);
        encode_raw(PROTOCOL_V2, T_PARTIAL, Some(seq), &partial, out);
    }
    Ok(())
}

/// Encodes and writes one frame to `writer`.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Panics
///
/// Panics when the frame exceeds [`MAX_FRAME_BYTES`] (see
/// [`encode_frame`]).
pub fn write_frame<W: Write>(mut writer: W, frame: &Frame) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(64);
    encode_frame(frame, &mut buf);
    writer.write_all(&buf)
}

/// Encodes and writes one message (v1 or v2, see [`encode_message`])
/// to `writer`.
///
/// # Errors
///
/// [`WireError::Oversized`] as produced by [`encode_message`], or any
/// underlying I/O error.
pub fn write_message<W: Write>(
    mut writer: W,
    seq: Option<u32>,
    frame: &Frame,
) -> Result<(), WireError> {
    let mut buf = Vec::with_capacity(64);
    encode_message(seq, frame, &mut buf)?;
    writer.write_all(&buf)?;
    Ok(())
}

// --- decoding -------------------------------------------------------------

fn u16_at(payload: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(payload[off..off + 2].try_into().expect("2B"))
}

fn u32_at(payload: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(payload[off..off + 4].try_into().expect("4B"))
}

fn u64_at(payload: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(payload[off..off + 8].try_into().expect("8B"))
}

fn i64_at(payload: &[u8], off: usize) -> i64 {
    i64::from_le_bytes(payload[off..off + 8].try_into().expect("8B"))
}

/// Decodes a frame payload for frame type `ftype`. Used both for
/// in-frame payloads and for payloads reassembled from continuation
/// frames (which is why it is independent of the envelope).
fn decode_payload(ftype: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let need = |n: usize, what: &'static str| {
        if payload.len() == n {
            Ok(())
        } else {
            Err(WireError::Malformed(what))
        }
    };
    match ftype {
        T_INGEST => {
            if payload.len() < 4 {
                return Err(WireError::Malformed("ingest header short"));
            }
            let count = u32_at(payload, 0) as usize;
            if count > MAX_BATCH_RECORDS {
                return Err(WireError::Malformed("ingest batch over record cap"));
            }
            if payload.len() != 4 + count * RECORD_BYTES {
                return Err(WireError::Malformed("ingest length/count mismatch"));
            }
            let mut records = Vec::with_capacity(count);
            for rec in payload[4..].chunks_exact(RECORD_BYTES) {
                records.push(decode_record::<MissClass>(rec).map_err(WireError::BadRecord)?);
            }
            Ok(Frame::Ingest(records))
        }
        T_QUERY_STREAMS => need(0, "query takes no payload").map(|()| Frame::QueryStreamFraction),
        T_QUERY_COVERAGE => need(0, "query takes no payload").map(|()| Frame::QueryCoverage),
        T_QUERY_TOP_ORIGINS => {
            need(2, "top-origins takes u16 n").map(|()| Frame::QueryTopOrigins(u16_at(payload, 0)))
        }
        T_QUERY_METRICS => need(0, "query takes no payload").map(|()| Frame::QueryMetricsSnapshot),
        T_QUERY_DELTA => need(0, "query takes no payload").map(|()| Frame::QueryDelta),
        T_SHUTDOWN => need(0, "shutdown takes no payload").map(|()| Frame::Shutdown),
        T_INGEST_ACK => {
            need(4, "ack takes u32 count").map(|()| Frame::IngestAck(u32_at(payload, 0)))
        }
        T_BUSY => need(0, "busy takes no payload").map(|()| Frame::Busy),
        T_STREAMS_REPLY => {
            need(32, "streams reply takes 4×u64").map(|()| Frame::StreamFractionReply {
                non_repetitive: u64_at(payload, 0),
                new_stream: u64_at(payload, 8),
                recurring_stream: u64_at(payload, 16),
                distinct_streams: u64_at(payload, 24),
            })
        }
        T_COVERAGE_REPLY => need(24, "coverage reply takes 3×u64").map(|()| Frame::CoverageReply {
            total: u64_at(payload, 0),
            covered: u64_at(payload, 8),
            issued: u64_at(payload, 16),
        }),
        T_TOP_ORIGINS_REPLY => {
            if payload.len() < 2 {
                return Err(WireError::Malformed("top-origins header short"));
            }
            let n = u16_at(payload, 0) as usize;
            if payload.len() != 2 + n * 12 {
                return Err(WireError::Malformed("top-origins length/count mismatch"));
            }
            let rows = (0..n)
                .map(|i| (u32_at(payload, 2 + i * 12), u64_at(payload, 2 + i * 12 + 4)))
                .collect();
            Ok(Frame::TopOriginsReply(rows))
        }
        T_METRICS_REPLY => String::from_utf8(payload.to_vec())
            .map(Frame::MetricsReply)
            .map_err(|_| WireError::Malformed("metrics reply not utf-8")),
        T_DELTA_REPLY => {
            // applied + 7 signed deltas + origin count.
            if payload.len() < 68 {
                return Err(WireError::Malformed("delta reply header short"));
            }
            let n = u32_at(payload, 64) as usize;
            if payload.len() != 68 + n * 12 {
                return Err(WireError::Malformed("delta reply length/count mismatch"));
            }
            let origins = (0..n)
                .map(|i| {
                    (
                        u32_at(payload, 68 + i * 12),
                        i64_at(payload, 68 + i * 12 + 4),
                    )
                })
                .collect();
            Ok(Frame::DeltaReply(DeltaCounts {
                applied: u64_at(payload, 0),
                non_repetitive: i64_at(payload, 8),
                new_stream: i64_at(payload, 16),
                recurring_stream: i64_at(payload, 24),
                distinct_streams: i64_at(payload, 32),
                total: i64_at(payload, 40),
                covered: i64_at(payload, 48),
                issued: i64_at(payload, 56),
                origins,
            }))
        }
        T_PARTIAL => {
            if payload.len() < 2 {
                return Err(WireError::Malformed("partial header short"));
            }
            if payload[0] == T_PARTIAL {
                return Err(WireError::Malformed("nested continuation"));
            }
            if payload[1] > 1 {
                return Err(WireError::Malformed("partial flags"));
            }
            Ok(Frame::Partial {
                inner_type: payload[0],
                last: payload[1] == 1,
                chunk: payload[2..].to_vec(),
            })
        }
        T_SHUTDOWN_ACK => need(0, "shutdown ack takes no payload").map(|()| Frame::ShutdownAck),
        T_ERROR => {
            if payload.len() < 2 {
                return Err(WireError::Malformed("error frame short"));
            }
            let message = String::from_utf8(payload[2..].to_vec())
                .map_err(|_| WireError::Malformed("error message not utf-8"))?;
            Ok(Frame::Error {
                code: u16_at(payload, 0),
                message,
            })
        }
        other => Err(WireError::UnknownType(other)),
    }
}

fn decode_body(body: &[u8]) -> Result<Message, WireError> {
    // body = version + type [+ seq] + payload + crc; length validated
    // to at least the v1 envelope.
    let crc_off = body.len() - 4;
    let expect = u32::from_le_bytes(body[crc_off..].try_into().expect("4B crc"));
    if crc32(&body[..crc_off]) != expect {
        return Err(WireError::BadChecksum);
    }
    let (seq, payload) = match body[0] {
        PROTOCOL_VERSION => (None, &body[2..crc_off]),
        PROTOCOL_V2 => {
            if body.len() < ENVELOPE_V2_BYTES {
                return Err(WireError::Malformed("v2 envelope short"));
            }
            (Some(u32_at(body, 2)), &body[6..crc_off])
        }
        other => return Err(WireError::BadVersion(other)),
    };
    let frame = decode_payload(body[1], payload)?;
    Ok(Message { seq, frame })
}

/// Incremental frame parser: feed it raw bytes as they arrive, pull
/// complete frames out.
///
/// This is the only decode path — the blocking [`read_frame`] and the
/// continuation-reassembling [`MessageAssembler`] are built on it — so
/// the property tests that throw corrupt, truncated, and oversized
/// byte streams at the assembler cover the server's decoder exactly.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        // Compact lazily: drop consumed bytes before growing.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// True when no partial frame is buffered (safe point to close an
    /// idle connection).
    pub fn is_idle(&self) -> bool {
        self.buf.len() == self.consumed
    }

    /// Extracts the next complete message (frame plus v2 sequence id),
    /// `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the buffered bytes cannot be a
    /// valid frame; the connection should be torn down (the stream
    /// offset can no longer be trusted).
    pub fn next_message(&mut self) -> Result<Option<Message>, WireError> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().expect("4B len"));
        if (len as usize) < ENVELOPE_BYTES || len as usize > MAX_FRAME_BYTES {
            return Err(WireError::BadLength(len));
        }
        if pending.len() < 4 + len as usize {
            return Ok(None);
        }
        let body = &pending[4..4 + len as usize];
        let message = decode_body(body)?;
        self.consumed += 4 + len as usize;
        Ok(Some(message))
    }

    /// Extracts the next complete frame, `Ok(None)` if more bytes are
    /// needed. The v2 sequence id, if any, is discarded — use
    /// [`next_message`](Self::next_message) where it matters.
    ///
    /// # Errors
    ///
    /// Same contract as [`next_message`](Self::next_message).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        Ok(self.next_message()?.map(|m| m.frame))
    }
}

/// Message parser with continuation reassembly: a [`FrameAssembler`]
/// that additionally collects runs of [`Frame::Partial`] continuation
/// frames (same sequence id) back into the single oversized frame they
/// carry.
///
/// Hostile-input bounds: a continuation run may reassemble at most
/// [`MAX_REASSEMBLED_BYTES`]; a run interrupted by a different frame,
/// sequence id, or inner type is a [`WireError::Malformed`].
#[derive(Debug, Default)]
pub struct MessageAssembler {
    frames: FrameAssembler,
    partial: Option<PartialAssembly>,
}

#[derive(Debug)]
struct PartialAssembly {
    seq: Option<u32>,
    inner_type: u8,
    buf: Vec<u8>,
}

impl MessageAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        MessageAssembler::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.frames.push_bytes(bytes);
    }

    /// True when no partial frame or continuation run is buffered
    /// (safe point to close an idle connection).
    pub fn is_idle(&self) -> bool {
        self.frames.is_idle() && self.partial.is_none()
    }

    /// Extracts the next complete message, reassembling continuation
    /// frames transparently; `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Any [`FrameAssembler`] error, plus [`WireError::Oversized`] for
    /// a continuation run past [`MAX_REASSEMBLED_BYTES`] and
    /// [`WireError::Malformed`] for an interrupted or inconsistent run.
    /// All errors mean the stream can no longer be trusted.
    pub fn next_message(&mut self) -> Result<Option<Message>, WireError> {
        loop {
            let Some(message) = self.frames.next_message()? else {
                return Ok(None);
            };
            match message.frame {
                Frame::Partial {
                    inner_type,
                    last,
                    chunk,
                } => {
                    let assembly = match &mut self.partial {
                        Some(assembly) => {
                            if assembly.seq != message.seq || assembly.inner_type != inner_type {
                                self.partial = None;
                                return Err(WireError::Malformed("continuation run inconsistent"));
                            }
                            assembly
                        }
                        None => self.partial.insert(PartialAssembly {
                            seq: message.seq,
                            inner_type,
                            buf: Vec::new(),
                        }),
                    };
                    if assembly.buf.len() + chunk.len() > MAX_REASSEMBLED_BYTES {
                        let total = assembly.buf.len() + chunk.len();
                        self.partial = None;
                        return Err(WireError::Oversized(total));
                    }
                    assembly.buf.extend_from_slice(&chunk);
                    if last {
                        let assembly = self.partial.take().expect("assembly in progress");
                        let frame = decode_payload(assembly.inner_type, &assembly.buf)?;
                        return Ok(Some(Message {
                            seq: assembly.seq,
                            frame,
                        }));
                    }
                }
                frame => {
                    if self.partial.is_some() {
                        self.partial = None;
                        return Err(WireError::Malformed("continuation run interrupted"));
                    }
                    return Ok(Some(Message {
                        seq: message.seq,
                        frame,
                    }));
                }
            }
        }
    }
}

/// Reads one complete frame from a blocking reader.
///
/// # Errors
///
/// [`WireError::Truncated`] if the stream ends cleanly mid-frame (or
/// before one starts); any other [`WireError`] as produced by the
/// decoder.
pub fn read_frame<R: Read>(mut reader: R) -> Result<Frame, WireError> {
    let mut asm = FrameAssembler::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = asm.next_frame()? {
            return Ok(frame);
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => asm.push_bytes(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
}

/// Reads one complete message from a blocking reader, reassembling
/// continuation frames.
///
/// Only safe on strictly half-duplex exchanges (one reply in flight):
/// the assembler is local to the call, so any bytes read past the
/// first message — e.g. several pipelined replies sharing one TCP
/// segment — are **discarded** when it returns. Pipelined readers must
/// hold a [`MessageReader`] instead.
///
/// # Errors
///
/// Same contract as [`read_frame`], plus the reassembly errors of
/// [`MessageAssembler::next_message`].
pub fn read_message<R: Read>(mut reader: R) -> Result<Message, WireError> {
    MessageReader::new().next_from(reader.by_ref())
}

/// Blocking message reader that keeps its [`MessageAssembler`] across
/// calls, so replies buffered past the one being returned survive for
/// the next call. This is the read side a **pipelined** client needs:
/// with several requests in flight, the kernel routinely delivers many
/// small replies in one `read`, and the one-shot [`read_message`]
/// would silently drop all but the first.
#[derive(Debug, Default)]
pub struct MessageReader {
    asm: MessageAssembler,
}

impl MessageReader {
    /// Creates a reader with an empty buffer.
    pub fn new() -> Self {
        MessageReader::default()
    }

    /// Reads the next message, first draining anything already
    /// buffered, then pulling more bytes from `reader` as needed.
    ///
    /// # Errors
    ///
    /// Same contract as [`read_message`].
    pub fn next_from<R: Read>(&mut self, mut reader: R) -> Result<Message, WireError> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(message) = self.asm.next_message()? {
                return Ok(message);
            }
            match reader.read(&mut chunk) {
                Ok(0) => return Err(WireError::Truncated),
                Ok(n) => self.asm.push_bytes(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn assembler_handles_split_delivery() {
        let mut bytes = Vec::new();
        encode_frame(&Frame::QueryCoverage, &mut bytes);
        encode_frame(&Frame::IngestAck(7), &mut bytes);
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &bytes {
            asm.push_bytes(std::slice::from_ref(b));
            while let Some(f) = asm.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec![Frame::QueryCoverage, Frame::IngestAck(7)]);
        assert!(asm.is_idle());
    }

    #[test]
    fn v2_round_trip_echoes_sequence_id() {
        let mut bytes = Vec::new();
        encode_message(Some(0xDEAD_BEEF), &Frame::QueryDelta, &mut bytes).unwrap();
        let mut asm = MessageAssembler::new();
        asm.push_bytes(&bytes);
        let msg = asm.next_message().unwrap().expect("complete");
        assert_eq!(msg.seq, Some(0xDEAD_BEEF));
        assert_eq!(msg.frame, Frame::QueryDelta);
        assert!(asm.is_idle());
    }

    #[test]
    fn message_reader_keeps_replies_coalesced_into_one_read() {
        // Pipelined regression: many small replies arrive in one TCP
        // segment. The persistent reader must yield every one; the
        // one-shot read_message by design only yields the first.
        let mut bytes = Vec::new();
        for seq in 0..5u32 {
            encode_message(Some(seq), &Frame::IngestAck(seq), &mut bytes).unwrap();
        }
        let mut cursor = std::io::Cursor::new(bytes);
        let mut reader = MessageReader::new();
        for seq in 0..5u32 {
            let msg = reader.next_from(&mut cursor).expect("buffered reply");
            assert_eq!(msg.seq, Some(seq));
            assert_eq!(msg.frame, Frame::IngestAck(seq));
        }
        match reader.next_from(&mut cursor) {
            Err(WireError::Truncated) => {}
            other => panic!("expected exhausted stream, got {other:?}"),
        }
    }

    #[test]
    fn oversized_v1_frame_is_an_error_not_a_panic() {
        let big = Frame::MetricsReply("x".repeat(MAX_FRAME_BYTES + 1));
        let mut out = Vec::new();
        match try_encode_frame(&big, &mut out) {
            Err(WireError::Oversized(_)) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert!(out.is_empty(), "failed encode must not emit bytes");
    }

    #[test]
    fn oversized_v2_reply_splits_and_reassembles() {
        let big = Frame::MetricsReply("y".repeat(3 * MAX_FRAME_BYTES));
        let mut bytes = Vec::new();
        encode_message(Some(9), &big, &mut bytes).unwrap();
        assert!(bytes.len() > 3 * MAX_FRAME_BYTES, "really split");
        let mut asm = MessageAssembler::new();
        asm.push_bytes(&bytes);
        let msg = asm.next_message().unwrap().expect("reassembled");
        assert_eq!(msg.seq, Some(9));
        assert_eq!(msg.frame, big);
        assert!(asm.is_idle());
    }
}
