//! The bounded ingest queue and its drain handshake.
//!
//! Connection handlers admit work with a non-blocking
//! [`try_push`](IngestQueue::try_push) — a full queue surfaces as
//! [`PushError::Full`], which the server answers with a `Busy` frame
//! instead of buffering without bound. The router and shard workers
//! block in [`pop`](IngestQueue::pop) until work arrives or the queue
//! is drained: [`drain`](IngestQueue::drain) marks the queue closed and
//! wakes every sleeper, after which `pop` hands out the remaining items
//! and then returns `None` — the worker's signal to finish and report.
//!
//! [`ReplyQueue`] is the per-connection counterpart on the outbound
//! side: the connection reader pushes reply frames (blocking when the
//! socket writer falls behind — per-connection backpressure), the
//! writer pops and sends them, and either side may
//! [`close`](ReplyQueue::close) the queue when its half of the
//! connection dies. FIFO delivery here *is* the protocol property that
//! pipelined replies leave in dispatch order.
//!
//! All synchronization goes through the [`tempstream_runtime::sync`]
//! shim, so the whole handshake is explorable by the schedule checker;
//! `tempstream-schedcheck` registers closed models over these exact
//! types (`serve_ingest_drain`, `serve_try_push_admission`,
//! `serve_drain_control`, `serve_reply_fifo`,
//! `serve_reply_writer_exit`) plus mutations
//! ([`IngestQueue::new_lossy_for_modelcheck`],
//! [`ReplyQueue::new_lossy_for_modelcheck`]) proving a dropped drain or
//! close signal is caught as a deadlock.

use std::collections::VecDeque;
use tempstream_runtime::sync::{Condvar, Mutex};

/// Why a [`IngestQueue::try_push`] was refused; the item comes back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity (backpressure — reply `Busy`).
    Full(T),
    /// The queue is draining and accepts no new work.
    Draining(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    draining: bool,
    max_depth: usize,
}

/// A bounded MPMC queue with an explicit drain signal.
#[derive(Debug)]
pub struct IngestQueue<T> {
    state: Mutex<State<T>>,
    /// Poppers wait here for items (or the drain signal).
    ready: Condvar,
    /// Blocked pushers wait here for space (or the drain signal).
    space: Condvar,
    capacity: usize,
    /// Injected bug for the schedule checker's mutation gate: when set,
    /// `drain` flips the flag but "loses" its wakeup.
    lossy_drain: bool,
}

impl<T> IngestQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        IngestQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                draining: false,
                max_depth: 0,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            lossy_drain: false,
        }
    }

    /// Creates a queue whose `drain` drops its `notify_all` — the
    /// schedule checker's mutation gate proves this lost signal is
    /// caught as a deadlock. Never use outside model checking.
    #[doc(hidden)]
    pub fn new_lossy_for_modelcheck(capacity: usize) -> Self {
        let mut q = Self::new(capacity);
        q.lossy_drain = true;
        q
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the queue depth.
    pub fn max_depth(&self) -> usize {
        self.state.lock().max_depth
    }

    /// Non-blocking admission: enqueues `item` unless the queue is full
    /// or draining.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity (the backpressure signal),
    /// [`PushError::Draining`] after [`drain`](IngestQueue::drain); both
    /// return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock();
        if state.draining {
            return Err(PushError::Draining(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        state.max_depth = state.max_depth.max(state.items.len());
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space instead of refusing.
    ///
    /// The router uses this on the per-shard queues — its own inbound
    /// queue is the admission point, so propagating backpressure by
    /// blocking here is what slows intake down.
    ///
    /// # Errors
    ///
    /// [`PushError::Draining`] if the queue drains while waiting.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock();
        loop {
            if state.draining {
                return Err(PushError::Draining(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                state.max_depth = state.max_depth.max(state.items.len());
                drop(state);
                self.ready.notify_one();
                return Ok(());
            }
            state = self.space.wait(state);
        }
    }

    /// Blocking pop: the next item, or `None` once the queue is drained
    /// *and* empty (every queued item is always delivered first).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(item);
            }
            if state.draining {
                return None;
            }
            state = self.ready.wait(state);
        }
    }

    /// Marks the queue draining and wakes every waiter: pushers see
    /// `Draining`, poppers finish the backlog and then get `None`.
    pub fn drain(&self) {
        let mut state = self.state.lock();
        state.draining = true;
        drop(state);
        if !self.lossy_drain {
            self.ready.notify_all();
            self.space.notify_all();
        }
    }

    /// True once [`drain`](IngestQueue::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.state.lock().draining
    }
}

#[derive(Debug)]
struct ReplyState<T> {
    items: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

/// A bounded FIFO reply queue between one connection's reader and its
/// socket writer.
///
/// The reader [`push`](ReplyQueue::push)es each reply as it dispatches
/// the request, blocking when the writer falls behind (per-connection
/// backpressure: a slow client throttles only its own pipeline). The
/// writer [`pop`](ReplyQueue::pop)s in strict FIFO order — replies
/// leave the connection in exactly the order requests were dispatched,
/// which is what lets a pipelined client match replies to requests.
/// Either side [`close`](ReplyQueue::close)s the queue when its half of
/// the connection ends: pushes then fail (the reader learns the writer
/// is gone), pops drain the backlog and return `None`.
#[derive(Debug)]
pub struct ReplyQueue<T> {
    state: Mutex<ReplyState<T>>,
    /// The writer waits here for replies (or the close signal).
    ready: Condvar,
    /// A blocked reader waits here for space (or the close signal).
    space: Condvar,
    capacity: usize,
    /// Injected bug for the schedule checker's mutation gate: when set,
    /// `close` flips the flag but "loses" its wakeup.
    lossy_close: bool,
}

impl<T> ReplyQueue<T> {
    /// Creates a queue holding at most `capacity` replies.
    pub fn new(capacity: usize) -> Self {
        ReplyQueue {
            state: Mutex::new(ReplyState {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                max_depth: 0,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            lossy_close: false,
        }
    }

    /// Creates a queue whose `close` drops its `notify_all` — the
    /// schedule checker's mutation gate proves this lost signal is
    /// caught as a deadlock. Never use outside model checking.
    #[doc(hidden)]
    pub fn new_lossy_for_modelcheck(capacity: usize) -> Self {
        let mut q = Self::new(capacity);
        q.lossy_close = true;
        q
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Replies currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the queue depth.
    pub fn max_depth(&self) -> usize {
        self.state.lock().max_depth
    }

    /// True once [`close`](ReplyQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Blocking push: waits for space while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item if the queue is closed — now or while waiting —
    /// meaning the writer is gone and the reply can never be delivered.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                state.max_depth = state.max_depth.max(state.items.len());
                drop(state);
                self.ready.notify_one();
                return Ok(());
            }
            state = self.space.wait(state);
        }
    }

    /// Blocking pop: the next reply in FIFO order, or `None` once the
    /// queue is closed *and* empty (every queued reply is always
    /// delivered first).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state);
        }
    }

    /// Closes the queue (idempotent) and wakes every waiter: pushes
    /// fail from now on, pops finish the backlog and then get `None`.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        if !self.lossy_close {
            self.ready.notify_all();
            self.space.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_depth_tracking() {
        let q = IngestQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_push(9), Err(PushError::Full(9)));
        assert_eq!(q.len(), 4);
        assert_eq!(q.max_depth(), 4);
        q.drain();
        assert_eq!(q.try_push(9), Err(PushError::Draining(9)));
        let got: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, [0, 1, 2, 3]);
        assert!(q.pop().is_none(), "drained queue stays closed");
    }

    #[test]
    fn drain_wakes_blocked_consumers() {
        let q = Arc::new(IngestQueue::<u32>::new(2));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..10 {
            // Blocking push so the tiny capacity exercises waiting.
            q.push(i).unwrap();
        }
        q.drain();
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_push_observes_drain() {
        let q = Arc::new(IngestQueue::new(1));
        q.try_push(0u32).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1))
        };
        // Give the pusher a chance to park, then drain without popping.
        thread::sleep(std::time::Duration::from_millis(10));
        q.drain();
        assert_eq!(pusher.join().unwrap(), Err(PushError::Draining(1)));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reply_queue_is_fifo_and_drains_backlog_after_close() {
        let q = ReplyQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.max_depth(), 4);
        q.close();
        assert_eq!(q.push(9), Err(9), "closed queue refuses new replies");
        let got: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, [0, 1, 2, 3], "backlog delivered in FIFO order");
        assert!(q.pop().is_none(), "closed queue stays closed");
    }

    #[test]
    fn reply_close_wakes_blocked_pusher() {
        let q = Arc::new(ReplyQueue::new(1));
        q.push(0u32).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1))
        };
        thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(1));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reply_close_wakes_blocked_popper() {
        let q = Arc::new(ReplyQueue::<u32>::new(2));
        let popper = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
