//! The sharded ingest queues and their drain handshake, plus the
//! per-connection reply queue.
//!
//! [`ShardQueues`] is the ingest admission point: one bounded FIFO
//! lane per shard behind a single mutex. Connection readers split each
//! decoded batch by shard *themselves* (no router thread) and admit
//! the whole frame with one non-blocking
//! [`try_push_batches`](ShardQueues::try_push_batches) — **all lanes
//! or none**, so a frame is either fully queued (acked) or fully
//! refused ([`PushError::Full`] surfaces to the client as `Busy`,
//! [`PushError::Draining`] as an error). Taking every lane under one
//! lock gives admitted frames a single total order, which is what
//! preserves per-connection FIFO per shard — the property the offline
//! bit-identity comparator depends on. Shard workers block in
//! [`pop`](ShardQueues::pop) on their own lane until work arrives or
//! the queue is drained: [`drain`](ShardQueues::drain) marks every
//! lane closed and wakes every sleeper, after which `pop` hands out
//! the remaining backlog and then returns `None` — the worker's signal
//! to finish and report. Emptied sub-batch buffers are
//! [`recycle`](ShardQueues::recycle)d through an internal free list so
//! the steady-state hot path allocates nothing.
//!
//! [`ReplyQueue`] is the per-connection counterpart on the outbound
//! side: the connection reader pushes reply frames (blocking when the
//! socket writer falls behind — per-connection backpressure), the
//! writer pops and sends them, and either side may
//! [`close`](ReplyQueue::close) the queue when its half of the
//! connection dies. FIFO delivery here *is* the protocol property that
//! pipelined replies leave in dispatch order.
//!
//! All synchronization goes through the [`tempstream_runtime::sync`]
//! shim, so the whole handshake is explorable by the schedule checker;
//! `tempstream-schedcheck` registers closed models over these exact
//! types (`serve_routing_fifo`, `serve_routing_admission`,
//! `serve_routing_drain`, `serve_reply_fifo`,
//! `serve_reply_writer_exit`) plus mutations
//! ([`ShardQueues::new_lossy_for_modelcheck`],
//! [`ReplyQueue::new_lossy_for_modelcheck`]) proving a dropped drain or
//! close signal is caught as a deadlock.

use std::collections::VecDeque;
use tempstream_runtime::sync::{Condvar, Mutex};

/// Sub-batch buffers kept on the free list; beyond this, emptied
/// buffers are simply dropped.
const FREE_LIST_CAP: usize = 64;

/// Why an admission was refused; the payload (if any) comes back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// A target lane is at capacity (backpressure — reply `Busy`).
    Full(T),
    /// The queues are draining and accept no new work.
    Draining(T),
}

#[derive(Debug)]
struct Lane<T> {
    items: VecDeque<Vec<T>>,
    max_depth: usize,
}

#[derive(Debug)]
struct SqState<T> {
    lanes: Vec<Lane<T>>,
    draining: bool,
    /// Emptied sub-batch buffers, cleared but with capacity retained.
    free: Vec<Vec<T>>,
}

/// Bounded per-shard FIFO lanes with all-or-nothing batch admission
/// and an explicit drain signal. See the module docs for the protocol.
#[derive(Debug)]
pub struct ShardQueues<T> {
    state: Mutex<SqState<T>>,
    /// One condvar per lane; that lane's worker waits here for
    /// sub-batches (or the drain signal). Pushers never wait.
    ready: Vec<Condvar>,
    /// Per-lane capacity in sub-batches.
    capacity: usize,
    /// Injected bug for the schedule checker's mutation gate: when set,
    /// `drain` flips the flag but "loses" its wakeups.
    lossy_drain: bool,
}

impl<T> ShardQueues<T> {
    /// Creates `lanes` lanes, each holding at most `capacity`
    /// sub-batches.
    pub fn new(lanes: usize, capacity: usize) -> Self {
        let lanes = lanes.max(1);
        ShardQueues {
            state: Mutex::new(SqState {
                lanes: (0..lanes)
                    .map(|_| Lane {
                        items: VecDeque::with_capacity(capacity.min(1024)),
                        max_depth: 0,
                    })
                    .collect(),
                draining: false,
                free: Vec::new(),
            }),
            ready: (0..lanes).map(|_| Condvar::new()).collect(),
            capacity: capacity.max(1),
            lossy_drain: false,
        }
    }

    /// Creates queues whose `drain` drops its wakeups — the schedule
    /// checker's mutation gate proves this lost signal is caught as a
    /// deadlock. Never use outside model checking.
    #[doc(hidden)]
    pub fn new_lossy_for_modelcheck(lanes: usize, capacity: usize) -> Self {
        let mut q = Self::new(lanes, capacity);
        q.lossy_drain = true;
        q
    }

    /// Number of lanes (= shards).
    pub fn lanes(&self) -> usize {
        self.ready.len()
    }

    /// Per-lane capacity the queues were built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sub-batches currently queued on `lane`.
    pub fn len(&self, lane: usize) -> usize {
        self.state.lock().lanes[lane].items.len()
    }

    /// True when nothing is queued on `lane`.
    pub fn is_empty(&self, lane: usize) -> bool {
        self.len(lane) == 0
    }

    /// High-water mark of `lane`'s depth.
    pub fn max_depth(&self, lane: usize) -> usize {
        self.state.lock().lanes[lane].max_depth
    }

    /// Non-blocking all-or-nothing admission of one split batch.
    ///
    /// `subs` must have exactly [`lanes`](ShardQueues::lanes) entries:
    /// `subs[i]` is the sub-batch destined for lane `i` (empty entries
    /// are skipped). If every non-empty sub-batch fits its lane, all of
    /// them are enqueued under one critical section — a single total
    /// admission order across every pusher — and each moved slot is
    /// refilled with an empty recycled buffer so the caller's scratch
    /// keeps its allocations. If *any* target lane is full (or the
    /// queues are draining) **nothing** is enqueued and `subs` is left
    /// untouched, so a refused frame can be retried or discarded whole.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] if any target lane is at capacity (the
    /// backpressure signal), [`PushError::Draining`] after
    /// [`drain`](ShardQueues::drain).
    ///
    /// # Panics
    ///
    /// If `subs.len()` differs from the lane count.
    pub fn try_push_batches(&self, subs: &mut [Vec<T>]) -> Result<(), PushError<()>> {
        assert_eq!(subs.len(), self.ready.len(), "one sub-batch per lane");
        let mut state = self.state.lock();
        if state.draining {
            return Err(PushError::Draining(()));
        }
        for (i, sub) in subs.iter().enumerate() {
            if !sub.is_empty() && state.lanes[i].items.len() >= self.capacity {
                return Err(PushError::Full(()));
            }
        }
        let mut touched = [false; 64];
        let mut touched_big = Vec::new();
        for (i, sub) in subs.iter_mut().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let replacement = state.free.pop().unwrap_or_default();
            let batch = std::mem::replace(sub, replacement);
            let lane = &mut state.lanes[i];
            lane.items.push_back(batch);
            lane.max_depth = lane.max_depth.max(lane.items.len());
            if i < touched.len() {
                touched[i] = true;
            } else {
                touched_big.push(i);
            }
        }
        drop(state);
        for (i, hit) in touched.iter().enumerate().take(self.ready.len()) {
            if *hit {
                self.ready[i].notify_one();
            }
        }
        for i in touched_big {
            self.ready[i].notify_one();
        }
        Ok(())
    }

    /// Blocking pop for `lane`'s worker: the next sub-batch, or `None`
    /// once the queues are drained *and* the lane is empty (every
    /// queued sub-batch is always delivered first).
    pub fn pop(&self, lane: usize) -> Option<Vec<T>> {
        let mut state = self.state.lock();
        loop {
            if let Some(batch) = state.lanes[lane].items.pop_front() {
                return Some(batch);
            }
            if state.draining {
                return None;
            }
            state = self.ready[lane].wait(state);
        }
    }

    /// Returns an emptied sub-batch buffer to the free list (capacity
    /// retained) so future admissions can reuse it instead of
    /// allocating. Buffers past the free-list cap are dropped.
    pub fn recycle(&self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        let mut state = self.state.lock();
        if state.free.len() < FREE_LIST_CAP {
            state.free.push(buf);
        }
    }

    /// Marks every lane draining and wakes every waiter: pushers see
    /// `Draining`, workers finish their lane's backlog and then get
    /// `None`.
    pub fn drain(&self) {
        let mut state = self.state.lock();
        state.draining = true;
        drop(state);
        if !self.lossy_drain {
            for cv in &self.ready {
                cv.notify_all();
            }
        }
    }

    /// True once [`drain`](ShardQueues::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.state.lock().draining
    }
}

#[derive(Debug)]
struct ReplyState<T> {
    items: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

/// A bounded FIFO reply queue between one connection's reader and its
/// socket writer.
///
/// The reader [`push`](ReplyQueue::push)es each reply as it dispatches
/// the request, blocking when the writer falls behind (per-connection
/// backpressure: a slow client throttles only its own pipeline). The
/// writer [`pop`](ReplyQueue::pop)s in strict FIFO order — replies
/// leave the connection in exactly the order requests were dispatched,
/// which is what lets a pipelined client match replies to requests.
/// Either side [`close`](ReplyQueue::close)s the queue when its half of
/// the connection ends: pushes then fail (the reader learns the writer
/// is gone), pops drain the backlog and return `None`.
#[derive(Debug)]
pub struct ReplyQueue<T> {
    state: Mutex<ReplyState<T>>,
    /// The writer waits here for replies (or the close signal).
    ready: Condvar,
    /// A blocked reader waits here for space (or the close signal).
    space: Condvar,
    capacity: usize,
    /// Injected bug for the schedule checker's mutation gate: when set,
    /// `close` flips the flag but "loses" its wakeup.
    lossy_close: bool,
}

impl<T> ReplyQueue<T> {
    /// Creates a queue holding at most `capacity` replies.
    pub fn new(capacity: usize) -> Self {
        ReplyQueue {
            state: Mutex::new(ReplyState {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                max_depth: 0,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            lossy_close: false,
        }
    }

    /// Creates a queue whose `close` drops its `notify_all` — the
    /// schedule checker's mutation gate proves this lost signal is
    /// caught as a deadlock. Never use outside model checking.
    #[doc(hidden)]
    pub fn new_lossy_for_modelcheck(capacity: usize) -> Self {
        let mut q = Self::new(capacity);
        q.lossy_close = true;
        q
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Replies currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the queue depth.
    pub fn max_depth(&self) -> usize {
        self.state.lock().max_depth
    }

    /// True once [`close`](ReplyQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Blocking push: waits for space while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item if the queue is closed — now or while waiting —
    /// meaning the writer is gone and the reply can never be delivered.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                state.max_depth = state.max_depth.max(state.items.len());
                drop(state);
                self.ready.notify_one();
                return Ok(());
            }
            state = self.space.wait(state);
        }
    }

    /// Blocking pop: the next reply in FIFO order, or `None` once the
    /// queue is closed *and* empty (every queued reply is always
    /// delivered first).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state);
        }
    }

    /// Closes the queue (idempotent) and wakes every waiter: pushes
    /// fail from now on, pops finish the backlog and then get `None`.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        if !self.lossy_close {
            self.ready.notify_all();
            self.space.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    /// Splits `items` into `lanes` sub-batch vectors round-robin.
    fn split(items: &[u32], lanes: usize) -> Vec<Vec<u32>> {
        let mut per = vec![Vec::new(); lanes];
        for (i, &v) in items.iter().enumerate() {
            per[i % lanes].push(v);
        }
        per
    }

    #[test]
    fn per_lane_fifo_and_depth_tracking() {
        let q = ShardQueues::new(2, 4);
        for round in 0..3u32 {
            let mut subs = split(&[round * 2, round * 2 + 1], 2);
            q.try_push_batches(&mut subs).unwrap();
            assert!(
                subs.iter().all(Vec::is_empty),
                "accepted slots refilled empty"
            );
        }
        assert_eq!(q.len(0), 3);
        assert_eq!(q.max_depth(1), 3);
        q.drain();
        let mut refused = split(&[8, 9], 2);
        assert_eq!(
            q.try_push_batches(&mut refused),
            Err(PushError::Draining(()))
        );
        assert_eq!(refused[0], [8], "refused sub-batches left untouched");
        let lane0: Vec<u32> = std::iter::from_fn(|| q.pop(0)).flatten().collect();
        let lane1: Vec<u32> = std::iter::from_fn(|| q.pop(1)).flatten().collect();
        assert_eq!(lane0, [0, 2, 4], "lane 0 FIFO");
        assert_eq!(lane1, [1, 3, 5], "lane 1 FIFO");
        assert!(q.pop(0).is_none(), "drained queue stays closed");
    }

    #[test]
    fn admission_is_all_lanes_or_none() {
        let q = ShardQueues::new(2, 1);
        let mut first = split(&[0, 1], 2);
        q.try_push_batches(&mut first).unwrap();
        // Lane 1 is now full: the whole frame must be refused, with
        // lane 0 receiving nothing even though it has space.
        let mut second = split(&[2, 3], 2);
        assert_eq!(q.try_push_batches(&mut second), Err(PushError::Full(())));
        assert_eq!(second[0], [2], "refused frame keeps its records");
        assert_eq!(q.len(0), 1, "partial admission must not happen");
        // Free lane 0; a frame targeting only that lane then goes in
        // even while lane 1 is still full (empty slots don't count).
        assert_eq!(q.pop(0), Some(vec![0]));
        let mut third = vec![vec![4u32], Vec::new()];
        q.try_push_batches(&mut third).unwrap();
        q.drain();
        let lane0: Vec<u32> = std::iter::from_fn(|| q.pop(0)).flatten().collect();
        assert_eq!(lane0, [4]);
        let lane1: Vec<u32> = std::iter::from_fn(|| q.pop(1)).flatten().collect();
        assert_eq!(lane1, [1]);
    }

    #[test]
    fn recycled_buffers_are_reused_for_accepted_slots() {
        let q: ShardQueues<u32> = ShardQueues::new(1, 4);
        let mut buf = Vec::with_capacity(128);
        buf.push(1u32);
        buf.clear();
        let cap = buf.capacity();
        q.recycle(buf);
        let mut subs = vec![vec![7u32]];
        q.try_push_batches(&mut subs).unwrap();
        assert!(subs[0].is_empty());
        assert_eq!(
            subs[0].capacity(),
            cap,
            "accepted slot refilled from the free list"
        );
    }

    #[test]
    fn drain_wakes_blocked_lane_workers() {
        let q = Arc::new(ShardQueues::<u32>::new(2, 8));
        let handles: Vec<_> = (0..2)
            .map(|lane| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batch) = q.pop(lane) {
                        got.extend(batch);
                    }
                    got
                })
            })
            .collect();
        for round in 0..5u32 {
            let mut subs = split(&[round * 2, round * 2 + 1], 2);
            q.try_push_batches(&mut subs).unwrap();
        }
        q.drain();
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reply_queue_is_fifo_and_drains_backlog_after_close() {
        let q = ReplyQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.max_depth(), 4);
        q.close();
        assert_eq!(q.push(9), Err(9), "closed queue refuses new replies");
        let got: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, [0, 1, 2, 3], "backlog delivered in FIFO order");
        assert!(q.pop().is_none(), "closed queue stays closed");
    }

    #[test]
    fn reply_close_wakes_blocked_pusher() {
        let q = Arc::new(ReplyQueue::new(1));
        q.push(0u32).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1))
        };
        thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(1));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reply_close_wakes_blocked_popper() {
        let q = Arc::new(ReplyQueue::<u32>::new(2));
        let popper = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
