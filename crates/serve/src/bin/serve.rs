//! `serve`: the ingest/query server binary.
//!
//! Binds a TCP listener, prints `LISTENING <addr>` on stdout (the soak
//! gate in `ci.sh` polls for that line), and serves until a client
//! sends a `Shutdown` frame and the drain completes.

use std::io::Write;
use std::process::ExitCode;
use tempstream_serve::{Server, ServerConfig};

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--shards N] \
     [--shard-queue N] [--max-conns N] [--reply-queue N] \
     [--max-retained N]";

fn parse_args() -> Result<(String, ServerConfig), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => addr = take("--addr")?,
            "--shards" => config.shards = parse_num(&take("--shards")?, "--shards")?,
            "--shard-queue" => {
                config.shard_queue_capacity = parse_num(&take("--shard-queue")?, "--shard-queue")?;
            }
            "--max-conns" => {
                config.max_connections = parse_num(&take("--max-conns")?, "--max-conns")?;
            }
            "--reply-queue" => {
                config.reply_queue_capacity = parse_num(&take("--reply-queue")?, "--reply-queue")?;
            }
            "--max-retained" => {
                config.shard.max_retained = parse_num(&take("--max-retained")?, "--max-retained")?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if config.shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    Ok((addr, config))
}

fn parse_num(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{what}: not a number: {s}"))
}

fn main() -> ExitCode {
    let (addr, config) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(local) => {
            // The soak gate greps for this exact line; keep it stable.
            println!("LISTENING {local}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("serve: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            println!("DRAINED");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
