//! `serve-load`: the in-tree load generator and verification client.
//!
//! Replays a seeded workload trace over N connections against a
//! running `serve` instance, retrying `Busy` backpressure replies with
//! exponential backoff and recording per-frame ingest latency in an
//! obsv histogram. With `--verify` it then queries the server and
//! checks the answers against the offline batch comparator
//! ([`tempstream_serve::offline::expected`]); with a single connection
//! the check is **bit-exact**, with several it checks the
//! order-independent answers (totals and top origins). Emits a JSON
//! summary (client latency + the server's full metrics snapshot) on
//! stdout and optionally to `--metrics-out`.

use std::io::Write;
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use tempstream_core::ExperimentConfig;
use tempstream_obsv::{Json, Registry};
use tempstream_serve::offline;
use tempstream_serve::wire::{read_frame, write_frame, Frame};
use tempstream_serve::ShardConfig;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;
use tempstream_workloads::Workload;

const USAGE: &str = "usage: serve-load --addr HOST:PORT [--workload NAME] [--seed N] \
     [--connections N] [--batch N] [--bytes N] [--shards N] [--top N] \
     [--verify] [--shutdown] [--metrics-out PATH]";

/// Encoded bytes per record on the wire (header excluded).
const RECORD_BYTES: usize = tempstream_trace::io::RECORD_BYTES;

struct Args {
    addr: String,
    workload: Workload,
    seed: u64,
    connections: usize,
    batch: usize,
    bytes: usize,
    shards: usize,
    top: u16,
    verify: bool,
    shutdown: bool,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: String::new(),
        workload: Workload::Apache,
        seed: 7,
        connections: 1,
        batch: 256,
        bytes: 256 * 1024,
        shards: 1,
        top: 8,
        verify: false,
        shutdown: false,
        metrics_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => out.addr = take("--addr")?,
            "--workload" => {
                let name = take("--workload")?;
                out.workload = Workload::ALL
                    .into_iter()
                    .find(|w| w.name().eq_ignore_ascii_case(&name))
                    .ok_or_else(|| format!("unknown workload {name}"))?;
            }
            "--seed" => out.seed = parse_num(&take("--seed")?, "--seed")? as u64,
            "--connections" => {
                out.connections = parse_num(&take("--connections")?, "--connections")?;
            }
            "--batch" => out.batch = parse_num(&take("--batch")?, "--batch")?,
            "--bytes" => out.bytes = parse_num(&take("--bytes")?, "--bytes")?,
            "--shards" => out.shards = parse_num(&take("--shards")?, "--shards")?,
            "--top" => out.top = parse_num(&take("--top")?, "--top")? as u16,
            "--verify" => out.verify = true,
            "--shutdown" => out.shutdown = true,
            "--metrics-out" => out.metrics_out = Some(take("--metrics-out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if out.addr.is_empty() {
        return Err(format!("--addr is required\n{USAGE}"));
    }
    if out.connections == 0 || out.batch == 0 {
        return Err("--connections and --batch must be at least 1".to_string());
    }
    Ok(out)
}

fn parse_num(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{what}: not a number: {s}"))
}

/// One request/reply exchange (the protocol is strictly half-duplex
/// per connection, so a blocking read per request is exact).
fn call(stream: &mut TcpStream, request: &Frame) -> Result<Frame, String> {
    write_frame(&mut *stream, request).map_err(|e| format!("send: {e}"))?;
    read_frame(&mut *stream).map_err(|e| format!("recv: {e}"))
}

/// Replays `batches` on one connection, retrying Busy with backoff.
/// Returns the number of busy retries, or an error string.
fn run_connection(
    addr: &str,
    batches: &[Vec<MissRecord<MissClass>>],
    latency: &tempstream_obsv::Histogram,
) -> Result<u64, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut retries = 0u64;
    for batch in batches {
        let frame = Frame::Ingest(batch.clone());
        let mut backoff = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            match call(&mut stream, &frame)? {
                Frame::IngestAck(n) if n as usize == batch.len() => {
                    latency.record(start.elapsed().as_micros() as u64);
                    break;
                }
                Frame::IngestAck(n) => {
                    return Err(format!("short ack: {n} of {}", batch.len()));
                }
                Frame::Busy => {
                    retries += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(100));
                }
                Frame::Error { code, message } => {
                    return Err(format!("server error {code}: {message}"));
                }
                other => return Err(format!("unexpected ingest reply: {other:?}")),
            }
        }
    }
    Ok(retries)
}

fn mismatch(what: &str, got: impl std::fmt::Debug, want: impl std::fmt::Debug) -> String {
    format!("verify mismatch: {what}: got {got:?}, want {want:?}")
}

/// Queries the server and checks against the offline comparator.
fn verify(
    stream: &mut TcpStream,
    sent: &[MissRecord<MissClass>],
    args: &Args,
    exact: bool,
) -> Result<(), String> {
    let want = offline::expected(sent, args.shards, ShardConfig::default(), args.top as usize);
    let streams = match call(stream, &Frame::QueryStreamFraction)? {
        Frame::StreamFractionReply {
            non_repetitive,
            new_stream,
            recurring_stream,
            distinct_streams,
        } => (
            non_repetitive,
            new_stream,
            recurring_stream,
            distinct_streams,
        ),
        other => return Err(format!("unexpected streams reply: {other:?}")),
    };
    let coverage = match call(stream, &Frame::QueryCoverage)? {
        Frame::CoverageReply {
            total,
            covered,
            issued,
        } => (total, covered, issued),
        other => return Err(format!("unexpected coverage reply: {other:?}")),
    };
    let top = match call(stream, &Frame::QueryTopOrigins(args.top))? {
        Frame::TopOriginsReply(rows) => rows,
        other => return Err(format!("unexpected top-origins reply: {other:?}")),
    };
    if exact {
        let got = (streams.0, streams.1, streams.2, streams.3);
        let want_streams = (
            want.streams.non_repetitive,
            want.streams.new_stream,
            want.streams.recurring_stream,
            want.streams.distinct_streams,
        );
        if got != want_streams {
            return Err(mismatch("stream fraction", got, want_streams));
        }
        let want_cov = (
            want.coverage.total,
            want.coverage.covered,
            want.coverage.issued,
        );
        if coverage != want_cov {
            return Err(mismatch("coverage", coverage, want_cov));
        }
    } else {
        // Interleaved connections: per-shard arrival order is not the
        // trace order, so only order-independent answers are pinned.
        let got_total = streams.0 + streams.1 + streams.2;
        let want_total =
            want.streams.non_repetitive + want.streams.new_stream + want.streams.recurring_stream;
        if got_total != want_total {
            return Err(mismatch("labeled miss total", got_total, want_total));
        }
        if coverage.0 != want.coverage.total {
            return Err(mismatch("coverage total", coverage.0, want.coverage.total));
        }
    }
    if top != want.top_origins {
        return Err(mismatch("top origins", &top, &want.top_origins));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // Seeded workload replay: simulate once, then cycle the trace to
    // fill the byte budget.
    let cfg = ExperimentConfig::quick().with_seed(args.seed);
    let (trace, _symbols) = tempstream_core::stages::collect_multi_chip(&cfg, args.workload);
    if trace.is_empty() {
        return Err("workload produced an empty trace".to_string());
    }
    let total_records = (args.bytes / RECORD_BYTES).max(1);
    let source = trace.records();
    let sent: Vec<MissRecord<MissClass>> = (0..total_records)
        .map(|i| source[i % source.len()])
        .collect();
    let batches: Vec<Vec<MissRecord<MissClass>>> = sent
        .chunks(args.batch)
        .map(<[MissRecord<MissClass>]>::to_vec)
        .collect();

    // Round-robin batch assignment across connections.
    let mut per_conn: Vec<Vec<Vec<MissRecord<MissClass>>>> = vec![Vec::new(); args.connections];
    for (i, batch) in batches.iter().enumerate() {
        per_conn[i % args.connections].push(batch.clone());
    }

    let registry = Registry::new();
    let latency = registry.histogram("load/ingest_latency_us");
    let started = Instant::now();
    let busy_retries: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn
            .iter()
            .map(|batches| {
                let latency = latency.clone();
                let addr = args.addr.as_str();
                scope.spawn(move || run_connection(addr, batches, &latency))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread panicked"))
            .sum::<Result<u64, String>>()
    })?;
    let elapsed = started.elapsed();

    let mut control = TcpStream::connect(&args.addr).map_err(|e| format!("connect: {e}"))?;
    let verify_mode = if !args.verify {
        "skipped"
    } else if args.connections == 1 {
        verify(&mut control, &sent, &args, true)?;
        "exact"
    } else {
        verify(&mut control, &sent, &args, false)?;
        "totals"
    };

    let metrics = match call(&mut control, &Frame::QueryMetricsSnapshot)? {
        Frame::MetricsReply(json) => {
            Json::parse(&json).map_err(|e| format!("bad metrics snapshot json: {e:?}"))?
        }
        other => return Err(format!("unexpected metrics reply: {other:?}")),
    };

    if args.shutdown {
        match call(&mut control, &Frame::Shutdown)? {
            Frame::ShutdownAck => {}
            other => return Err(format!("unexpected shutdown reply: {other:?}")),
        }
    }

    let mut summary = Json::obj();
    summary.set("verify", Json::Str(verify_mode.to_string()));
    summary.set("workload", Json::Str(args.workload.name().to_string()));
    summary.set("connections", Json::UInt(args.connections as u64));
    summary.set("sent_records", Json::UInt(sent.len() as u64));
    summary.set("sent_bytes", Json::UInt((sent.len() * RECORD_BYTES) as u64));
    summary.set("busy_retries", Json::UInt(busy_retries));
    summary.set("elapsed_us", Json::UInt(elapsed.as_micros() as u64));
    summary.set(
        "records_per_sec",
        Json::Float(sent.len() as f64 / elapsed.as_secs_f64().max(1e-9)),
    );
    summary.set("load", registry.snapshot());
    summary.set("metrics", metrics);
    let rendered = summary.render();
    println!("{rendered}");
    if let Some(path) = &args.metrics_out {
        let mut file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        file.write_all(rendered.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("serve-load: {msg}");
            ExitCode::FAILURE
        }
    }
}
