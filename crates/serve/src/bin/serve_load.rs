//! `serve-load`: the in-tree load generator and verification client.
//!
//! Replays a seeded workload trace over N connections against a
//! running `serve` instance, retrying `Busy` backpressure replies with
//! exponential backoff and recording per-frame ingest latency in an
//! obsv histogram. With `--window W` (W > 1) each connection speaks
//! protocol v2 and keeps up to W frames in flight, matching replies to
//! requests by their echoed sequence id; with `--verify` it also
//! interleaves incremental `QueryDelta` frames into the pipeline and
//! checks that the accumulated deltas telescope to the absolute
//! answers.
//!
//! With `--verify` it then queries the server and checks the answers
//! against the offline batch comparator
//! ([`tempstream_serve::offline::expected`]); with a single connection
//! the check is **bit-exact** — under pipelining the effective ingest
//! order is reconstructed from the ack order (replies are FIFO per
//! connection, so ack order *is* admission order) — with several
//! connections it checks the order-independent answers (totals and top
//! origins). Emits a JSON summary (client latency + the server's full
//! metrics snapshot) on stdout and optionally to `--metrics-out`.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use tempstream_core::ExperimentConfig;
use tempstream_obsv::{Histogram, Json, Registry};
use tempstream_serve::offline;
use tempstream_serve::wire::{
    read_frame, read_message, write_frame, write_message, DeltaCounts, Frame, MessageReader,
};
use tempstream_serve::ShardConfig;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;
use tempstream_workloads::Workload;

const USAGE: &str = "usage: serve-load --addr HOST:PORT [--workload NAME] [--seed N] \
     [--connections N] [--batch N] [--bytes N] [--window N] [--shards N] [--top N] \
     [--verify] [--shutdown] [--metrics-out PATH]";

/// Encoded bytes per record on the wire (header excluded).
const RECORD_BYTES: usize = tempstream_trace::io::RECORD_BYTES;

/// Pipelined connections interleave one `QueryDelta` after this many
/// ingest acks (verify mode), so delta cursors move mid-ingest. Each
/// probe stalls the window on `wait_applied` plus a consistent-cut
/// merge, so they are spaced widely — enough to exercise the cursor
/// across several cuts without dominating the soak's throughput.
const DELTA_EVERY: usize = 48;

struct Args {
    addr: String,
    workload: Workload,
    seed: u64,
    connections: usize,
    batch: usize,
    bytes: usize,
    window: usize,
    shards: usize,
    top: u16,
    verify: bool,
    shutdown: bool,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: String::new(),
        workload: Workload::Apache,
        seed: 7,
        connections: 1,
        batch: 256,
        bytes: 256 * 1024,
        window: 1,
        shards: 1,
        top: 8,
        verify: false,
        shutdown: false,
        metrics_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => out.addr = take("--addr")?,
            "--workload" => {
                let name = take("--workload")?;
                out.workload = Workload::ALL
                    .into_iter()
                    .find(|w| w.name().eq_ignore_ascii_case(&name))
                    .ok_or_else(|| format!("unknown workload {name}"))?;
            }
            "--seed" => out.seed = parse_num(&take("--seed")?, "--seed")? as u64,
            "--connections" => {
                out.connections = parse_num(&take("--connections")?, "--connections")?;
            }
            "--batch" => out.batch = parse_num(&take("--batch")?, "--batch")?,
            "--bytes" => out.bytes = parse_num(&take("--bytes")?, "--bytes")?,
            "--window" => out.window = parse_num(&take("--window")?, "--window")?,
            "--shards" => out.shards = parse_num(&take("--shards")?, "--shards")?,
            "--top" => out.top = parse_num(&take("--top")?, "--top")? as u16,
            "--verify" => out.verify = true,
            "--shutdown" => out.shutdown = true,
            "--metrics-out" => out.metrics_out = Some(take("--metrics-out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if out.addr.is_empty() {
        return Err(format!("--addr is required\n{USAGE}"));
    }
    if out.connections == 0 || out.batch == 0 || out.window == 0 {
        return Err("--connections, --batch, and --window must be at least 1".to_string());
    }
    Ok(out)
}

fn parse_num(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{what}: not a number: {s}"))
}

fn signed(x: u64) -> i64 {
    i64::try_from(x).expect("counter fits i64")
}

/// One request/reply exchange over protocol v1 (strictly half-duplex,
/// so a blocking read per request is exact).
fn call(stream: &mut TcpStream, request: &Frame) -> Result<Frame, String> {
    write_frame(&mut *stream, request).map_err(|e| format!("send: {e}"))?;
    read_frame(&mut *stream).map_err(|e| format!("recv: {e}"))
}

/// One request/reply exchange over protocol v2; checks the seq echo.
fn call_v2(stream: &mut TcpStream, seq: u32, request: &Frame) -> Result<Frame, String> {
    write_message(&mut *stream, Some(seq), request).map_err(|e| format!("send: {e}"))?;
    let reply = read_message(&mut *stream).map_err(|e| format!("recv: {e}"))?;
    if reply.seq != Some(seq) {
        return Err(format!(
            "seq echo mismatch: sent {seq}, reply carries {:?}",
            reply.seq
        ));
    }
    Ok(reply.frame)
}

/// Accumulated `QueryDelta` replies: i64 sums telescope to the
/// absolute counters of the last cut.
#[derive(Default)]
struct DeltaAcc {
    non_repetitive: i64,
    new_stream: i64,
    recurring_stream: i64,
    distinct_streams: i64,
    total: i64,
    covered: i64,
    issued: i64,
    origins: HashMap<u32, i64>,
    /// Applied watermark of the last delta reply (absolute).
    applied: u64,
    queries: u64,
}

impl DeltaAcc {
    fn absorb(&mut self, d: &DeltaCounts) {
        self.non_repetitive += d.non_repetitive;
        self.new_stream += d.new_stream;
        self.recurring_stream += d.recurring_stream;
        self.distinct_streams += d.distinct_streams;
        self.total += d.total;
        self.covered += d.covered;
        self.issued += d.issued;
        for &(function, delta) in &d.origins {
            *self.origins.entry(function).or_insert(0) += delta;
        }
        self.applied = d.applied;
        self.queries += 1;
    }

    /// The accumulated origin counts as a top-`n` list, same total
    /// order the server and comparator use (count desc, id asc).
    fn top_origins(&self, n: usize) -> Result<Vec<(u32, u64)>, String> {
        let mut rows = Vec::with_capacity(self.origins.len());
        for (&function, &count) in &self.origins {
            let count = u64::try_from(count)
                .map_err(|_| format!("accumulated origin count negative: fn {function}"))?;
            if count > 0 {
                rows.push((function, count));
            }
        }
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        Ok(rows)
    }
}

/// What one connection did: busy retries, the batch indices in ack
/// order (the effective admission order), and any accumulated deltas.
struct ConnOutcome {
    retries: u64,
    acked: Vec<usize>,
    deltas: Option<DeltaAcc>,
}

/// Replays `batches` on one half-duplex (v1) connection, retrying Busy
/// with backoff.
fn run_connection(
    addr: &str,
    batches: &[Vec<MissRecord<MissClass>>],
    latency: &Histogram,
) -> Result<ConnOutcome, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut retries = 0u64;
    for batch in batches {
        let frame = Frame::Ingest(batch.clone());
        let mut backoff = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            match call(&mut stream, &frame)? {
                Frame::IngestAck(n) if n as usize == batch.len() => {
                    latency.record(start.elapsed().as_micros() as u64);
                    break;
                }
                Frame::IngestAck(n) => {
                    return Err(format!("short ack: {n} of {}", batch.len()));
                }
                Frame::Busy => {
                    retries += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(100));
                }
                Frame::Error { code, message } => {
                    return Err(format!("server error {code}: {message}"));
                }
                other => return Err(format!("unexpected ingest reply: {other:?}")),
            }
        }
    }
    Ok(ConnOutcome {
        retries,
        acked: (0..batches.len()).collect(),
        deltas: None,
    })
}

/// What a pipelined request slot is waiting for.
enum InFlight {
    Ingest(usize),
    Delta,
}

/// Replays `batches` on one pipelined (v2) connection with up to
/// `window` frames in flight. Replies are FIFO per connection, so each
/// reply is matched against the oldest in-flight request and its seq
/// echo is asserted. A `Busy` batch is re-queued at the front (new
/// sequence id). When `with_deltas` is set, a `QueryDelta` is
/// interleaved every [`DELTA_EVERY`] acks plus once at the end, and
/// the accumulated deltas are returned for verification.
fn run_connection_pipelined(
    addr: &str,
    batches: &[Vec<MissRecord<MissClass>>],
    window: usize,
    with_deltas: bool,
    latency: &Histogram,
) -> Result<ConnOutcome, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    // Pipelined replies coalesce into shared TCP segments; a persistent
    // reader keeps the ones buffered past the message being returned.
    let mut reader = MessageReader::new();
    let mut pending: VecDeque<usize> = (0..batches.len()).collect();
    let mut in_flight: VecDeque<(u32, InFlight, Instant)> = VecDeque::new();
    let mut next_seq = 1u32;
    let mut retries = 0u64;
    let mut acked = Vec::with_capacity(batches.len());
    let mut deltas = DeltaAcc::default();
    let mut backoff = Duration::from_millis(1);
    let mut acks_since_delta = 0usize;
    let mut delta_due = false;

    loop {
        // Fill the window: a due delta query slots in before the next
        // ingest frame (cuts are taken mid-stream, not just at the end).
        while in_flight.len() < window {
            let request = if delta_due {
                delta_due = false;
                InFlight::Delta
            } else if let Some(idx) = pending.pop_front() {
                InFlight::Ingest(idx)
            } else {
                break;
            };
            let frame = match &request {
                InFlight::Ingest(idx) => Frame::Ingest(batches[*idx].clone()),
                InFlight::Delta => Frame::QueryDelta,
            };
            write_message(&mut stream, Some(next_seq), &frame).map_err(|e| format!("send: {e}"))?;
            in_flight.push_back((next_seq, request, Instant::now()));
            next_seq = next_seq.wrapping_add(1);
        }
        let Some((seq, request, start)) = in_flight.pop_front() else {
            break;
        };
        let reply = reader
            .next_from(&mut stream)
            .map_err(|e| format!("recv: {e}"))?;
        if reply.seq != Some(seq) {
            return Err(format!(
                "seq echo mismatch: oldest in-flight is {seq}, reply carries {:?}",
                reply.seq
            ));
        }
        match (request, reply.frame) {
            (InFlight::Ingest(idx), Frame::IngestAck(n)) => {
                if n as usize != batches[idx].len() {
                    return Err(format!("short ack: {n} of {}", batches[idx].len()));
                }
                latency.record(start.elapsed().as_micros() as u64);
                acked.push(idx);
                backoff = Duration::from_millis(1);
                if with_deltas {
                    acks_since_delta += 1;
                    if acks_since_delta >= DELTA_EVERY {
                        acks_since_delta = 0;
                        delta_due = true;
                    }
                }
            }
            (InFlight::Ingest(idx), Frame::Busy) => {
                retries += 1;
                pending.push_front(idx);
                // Let the shard lanes drain before refilling the window.
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(100));
            }
            (InFlight::Delta, Frame::DeltaReply(d)) => deltas.absorb(&d),
            (_, Frame::Error { code, message }) => {
                return Err(format!("server error {code}: {message}"));
            }
            (_, other) => return Err(format!("unexpected pipelined reply: {other:?}")),
        }
    }
    if with_deltas {
        // Final cut after every ack: the accumulated deltas now
        // telescope to the absolute answers. Read through the same
        // persistent reader in case it still buffers bytes.
        write_message(&mut stream, Some(next_seq), &Frame::QueryDelta)
            .map_err(|e| format!("send: {e}"))?;
        let reply = reader
            .next_from(&mut stream)
            .map_err(|e| format!("recv: {e}"))?;
        if reply.seq != Some(next_seq) {
            return Err(format!(
                "seq echo mismatch: sent {next_seq}, reply carries {:?}",
                reply.seq
            ));
        }
        match reply.frame {
            Frame::DeltaReply(d) => deltas.absorb(&d),
            other => return Err(format!("unexpected delta reply: {other:?}")),
        }
    }
    Ok(ConnOutcome {
        retries,
        acked,
        deltas: with_deltas.then_some(deltas),
    })
}

fn mismatch(what: &str, got: impl std::fmt::Debug, want: impl std::fmt::Debug) -> String {
    format!("verify mismatch: {what}: got {got:?}, want {want:?}")
}

/// Queries the server (v1 absolute queries) and checks against the
/// offline comparator.
fn verify_absolute(
    stream: &mut TcpStream,
    want: &offline::Expected,
    top_n: u16,
    exact: bool,
) -> Result<(), String> {
    let streams = match call(stream, &Frame::QueryStreamFraction)? {
        Frame::StreamFractionReply {
            non_repetitive,
            new_stream,
            recurring_stream,
            distinct_streams,
        } => (
            non_repetitive,
            new_stream,
            recurring_stream,
            distinct_streams,
        ),
        other => return Err(format!("unexpected streams reply: {other:?}")),
    };
    let coverage = match call(stream, &Frame::QueryCoverage)? {
        Frame::CoverageReply {
            total,
            covered,
            issued,
        } => (total, covered, issued),
        other => return Err(format!("unexpected coverage reply: {other:?}")),
    };
    let top = match call(stream, &Frame::QueryTopOrigins(top_n))? {
        Frame::TopOriginsReply(rows) => rows,
        other => return Err(format!("unexpected top-origins reply: {other:?}")),
    };
    if exact {
        let got = (streams.0, streams.1, streams.2, streams.3);
        let want_streams = (
            want.streams.non_repetitive,
            want.streams.new_stream,
            want.streams.recurring_stream,
            want.streams.distinct_streams,
        );
        if got != want_streams {
            return Err(mismatch("stream fraction", got, want_streams));
        }
        let want_cov = (
            want.coverage.total,
            want.coverage.covered,
            want.coverage.issued,
        );
        if coverage != want_cov {
            return Err(mismatch("coverage", coverage, want_cov));
        }
    } else {
        // Interleaved connections: per-shard arrival order is not the
        // trace order, so only order-independent answers are pinned.
        let got_total = streams.0 + streams.1 + streams.2;
        let want_total =
            want.streams.non_repetitive + want.streams.new_stream + want.streams.recurring_stream;
        if got_total != want_total {
            return Err(mismatch("labeled miss total", got_total, want_total));
        }
        if coverage.0 != want.coverage.total {
            return Err(mismatch("coverage total", coverage.0, want.coverage.total));
        }
    }
    if top != want.top_origins {
        return Err(mismatch("top origins", &top, &want.top_origins));
    }
    Ok(())
}

/// Exercises the delta protocol on a fresh control connection: the
/// first `QueryDelta` is absolute (delta from the empty cursor), the
/// second must be all-zero at the same watermark.
fn verify_delta_control(
    stream: &mut TcpStream,
    want: &offline::Expected,
    top_n: u16,
    exact: bool,
    sent_records: u64,
) -> Result<(), String> {
    let first = match call_v2(stream, 1, &Frame::QueryDelta)? {
        Frame::DeltaReply(d) => d,
        other => return Err(format!("unexpected delta reply: {other:?}")),
    };
    if first.applied != sent_records {
        return Err(mismatch(
            "delta applied watermark",
            first.applied,
            sent_records,
        ));
    }
    let mut acc = DeltaAcc::default();
    acc.absorb(&first);
    check_delta_acc(&acc, want, top_n, exact, sent_records)?;
    let second = match call_v2(stream, 2, &Frame::QueryDelta)? {
        Frame::DeltaReply(d) => d,
        other => return Err(format!("unexpected delta reply: {other:?}")),
    };
    if !second.is_empty() || second.applied != first.applied {
        return Err(mismatch("quiescent delta", &second, "all-zero delta"));
    }
    Ok(())
}

/// Checks accumulated deltas against the offline comparator: i64 sums
/// must telescope exactly to the absolute answers.
fn check_delta_acc(
    acc: &DeltaAcc,
    want: &offline::Expected,
    top_n: u16,
    exact: bool,
    sent_records: u64,
) -> Result<(), String> {
    if acc.applied != sent_records {
        return Err(mismatch(
            "delta applied watermark",
            acc.applied,
            sent_records,
        ));
    }
    if exact {
        let got = (
            acc.non_repetitive,
            acc.new_stream,
            acc.recurring_stream,
            acc.distinct_streams,
        );
        let want_streams = (
            signed(want.streams.non_repetitive),
            signed(want.streams.new_stream),
            signed(want.streams.recurring_stream),
            signed(want.streams.distinct_streams),
        );
        if got != want_streams {
            return Err(mismatch("delta stream fraction", got, want_streams));
        }
        let got_cov = (acc.total, acc.covered, acc.issued);
        let want_cov = (
            signed(want.coverage.total),
            signed(want.coverage.covered),
            signed(want.coverage.issued),
        );
        if got_cov != want_cov {
            return Err(mismatch("delta coverage", got_cov, want_cov));
        }
    } else {
        let got_total = acc.non_repetitive + acc.new_stream + acc.recurring_stream;
        let want_total = signed(
            want.streams.non_repetitive + want.streams.new_stream + want.streams.recurring_stream,
        );
        if got_total != want_total {
            return Err(mismatch("delta labeled miss total", got_total, want_total));
        }
        if acc.total != signed(want.coverage.total) {
            return Err(mismatch(
                "delta coverage total",
                acc.total,
                want.coverage.total,
            ));
        }
    }
    let got_top = acc.top_origins(top_n as usize)?;
    if got_top != want.top_origins {
        return Err(mismatch("delta top origins", &got_top, &want.top_origins));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // Seeded workload replay: simulate once, then cycle the trace to
    // fill the byte budget.
    let cfg = ExperimentConfig::quick().with_seed(args.seed);
    let (trace, _symbols) = tempstream_core::stages::collect_multi_chip(&cfg, args.workload);
    if trace.is_empty() {
        return Err("workload produced an empty trace".to_string());
    }
    let total_records = (args.bytes / RECORD_BYTES).max(1);
    let source = trace.records();
    let sent: Vec<MissRecord<MissClass>> = (0..total_records)
        .map(|i| source[i % source.len()])
        .collect();
    let batches: Vec<Vec<MissRecord<MissClass>>> = sent
        .chunks(args.batch)
        .map(<[MissRecord<MissClass>]>::to_vec)
        .collect();

    // Round-robin batch assignment across connections.
    let mut per_conn: Vec<Vec<Vec<MissRecord<MissClass>>>> = vec![Vec::new(); args.connections];
    for (i, batch) in batches.iter().enumerate() {
        per_conn[i % args.connections].push(batch.clone());
    }

    // Inline deltas ride the pipelined connection only when their
    // accumulated answer is checkable (single connection, verifying).
    let inline_deltas = args.verify && args.window > 1 && args.connections == 1;

    let registry = Registry::new();
    let latency = registry.histogram("load/ingest_latency_us");
    let started = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn
            .iter()
            .map(|batches| {
                let latency = latency.clone();
                let addr = args.addr.as_str();
                let window = args.window;
                scope.spawn(move || {
                    if window > 1 {
                        run_connection_pipelined(addr, batches, window, inline_deltas, &latency)
                    } else {
                        run_connection(addr, batches, &latency)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread panicked"))
            .collect::<Result<Vec<_>, String>>()
    })?;
    let elapsed = started.elapsed();
    let busy_retries: u64 = outcomes.iter().map(|o| o.retries).sum();
    let delta_queries: u64 = outcomes
        .iter()
        .filter_map(|o| o.deltas.as_ref())
        .map(|d| d.queries)
        .sum();

    // Effective ingest order: with one pipelined connection, the ack
    // order is the admission order (FIFO replies), so the comparator
    // runs over the batches in exactly their admission order.
    let effective: Vec<MissRecord<MissClass>> = if args.connections == 1 && args.window > 1 {
        outcomes[0]
            .acked
            .iter()
            .flat_map(|&i| batches[i].iter().copied())
            .collect()
    } else {
        sent.clone()
    };

    let mut control = TcpStream::connect(&args.addr).map_err(|e| format!("connect: {e}"))?;
    control.set_nodelay(true).ok();
    let verify_mode = if args.verify {
        let exact = args.connections == 1;
        let want = offline::expected(
            &effective,
            args.shards,
            ShardConfig::default(),
            args.top as usize,
        );
        verify_absolute(&mut control, &want, args.top, exact)?;
        verify_delta_control(&mut control, &want, args.top, exact, sent.len() as u64)?;
        if let Some(acc) = outcomes.iter().find_map(|o| o.deltas.as_ref()) {
            check_delta_acc(acc, &want, args.top, exact, sent.len() as u64)?;
        }
        if exact {
            "exact"
        } else {
            "totals"
        }
    } else {
        "skipped"
    };

    let metrics = match call(&mut control, &Frame::QueryMetricsSnapshot)? {
        Frame::MetricsReply(json) => {
            Json::parse(&json).map_err(|e| format!("bad metrics snapshot json: {e:?}"))?
        }
        other => return Err(format!("unexpected metrics reply: {other:?}")),
    };

    if args.shutdown {
        match call(&mut control, &Frame::Shutdown)? {
            Frame::ShutdownAck => {}
            other => return Err(format!("unexpected shutdown reply: {other:?}")),
        }
    }

    let mut summary = Json::obj();
    summary.set("verify", Json::Str(verify_mode.to_string()));
    summary.set("workload", Json::Str(args.workload.name().to_string()));
    summary.set("connections", Json::UInt(args.connections as u64));
    summary.set("window", Json::UInt(args.window as u64));
    summary.set("sent_records", Json::UInt(sent.len() as u64));
    summary.set("sent_bytes", Json::UInt((sent.len() * RECORD_BYTES) as u64));
    summary.set("busy_retries", Json::UInt(busy_retries));
    summary.set("delta_queries", Json::UInt(delta_queries));
    summary.set("elapsed_us", Json::UInt(elapsed.as_micros() as u64));
    summary.set(
        "records_per_sec",
        Json::Float(sent.len() as f64 / elapsed.as_secs_f64().max(1e-9)),
    );
    summary.set("load", registry.snapshot());
    summary.set("metrics", metrics);
    let rendered = summary.render();
    println!("{rendered}");
    if let Some(path) = &args.metrics_out {
        let mut file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        file.write_all(rendered.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("serve-load: {msg}");
            ExitCode::FAILURE
        }
    }
}
