//! # tempstream-schedcheck
//!
//! Schedule-exploring model checks for `tempstream-runtime`'s
//! synchronization primitives.
//!
//! The runtime's channel, work-stealing deque, pool, and spill store
//! are all built on the [`tempstream_runtime::sync`] shim. Compiled
//! with the `schedcheck` feature (as this crate always does), the shim
//! can hand every interleaving decision — who acquires a contended
//! mutex, which `notify_one` waiter wakes, which runnable thread runs
//! next — to the cooperative scheduler in
//! [`tempstream_runtime::sync::sched`]. This crate defines small closed
//! **models** (2–4 thread programs exercising one primitive with full
//! correctness assertions) and drives them through:
//!
//! * exhaustive bounded-preemption DFS ([`sched::explore_dfs`]) for the
//!   2-thread configurations, and
//! * seeded random scheduling ([`sched::explore_random`]) for the
//!   larger ones — fully deterministic per seed.
//!
//! Every failure carries a minimal replayable [`sched::Schedule`]. The
//! [`mutation`] module holds a deliberately broken primitive (a queue
//! that drops a `notify_one`) proving the checker actually catches lost
//! wakeups; `ci.sh` gates on both directions.
//!
//! Properties checked per model are documented on [`models`].

use tempstream_runtime::sync::sched::{
    self, Counterexample, DfsOptions, ExploreStats, RandomOptions,
};

pub mod models;
pub mod mutation;

/// One named model plus the exploration settings it is checked under.
pub struct ModelSpec {
    /// Stable name (CLI `--model` selector).
    pub name: &'static str,
    /// Threads in the closed model, counting the root.
    pub threads: usize,
    /// Exhaustive bounded-preemption search settings.
    pub dfs: DfsOptions,
    /// Seeded random search settings.
    pub random: RandomOptions,
    /// The model itself. Must be deterministic modulo scheduling.
    pub model: fn(),
}

/// Search statistics for one fully passed model.
pub struct ModelReport {
    /// The model's name.
    pub name: &'static str,
    /// Threads in the model.
    pub threads: usize,
    /// DFS statistics (check `capped` — 2-thread models never cap).
    pub dfs: ExploreStats,
    /// Random-run statistics.
    pub random: ExploreStats,
}

/// A failed model: which one, and the replayable counterexample.
pub struct ModelFailure {
    /// The failing model's name.
    pub name: &'static str,
    /// The counterexample, with its minimal replayable schedule.
    pub counterexample: Box<Counterexample>,
}

const DECISION_LIMIT: usize = 50_000;

fn dfs(max_preemptions: u32) -> DfsOptions {
    DfsOptions {
        max_preemptions,
        max_executions: 60_000,
        max_decisions: DECISION_LIMIT,
    }
}

fn random(runs: usize) -> RandomOptions {
    RandomOptions {
        runs,
        max_decisions: DECISION_LIMIT,
        ..RandomOptions::default()
    }
}

/// Every model in the suite, in check order.
///
/// 2-thread models run exhaustively at preemption bound 2; the wider
/// (3-thread) and I/O-heavy (spill) models run exhaustively at bound 1
/// plus a seeded random sweep, which keeps a full suite run inside a CI
/// time box.
pub fn all_models() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "channel_spsc_close",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: models::channel_spsc_close,
        },
        ModelSpec {
            name: "channel_receiver_drop",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: models::channel_receiver_drop,
        },
        ModelSpec {
            name: "channel_recv_many_drains",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: models::channel_recv_many_drains,
        },
        ModelSpec {
            name: "channel_mpmc_2p1c",
            threads: 3,
            dfs: dfs(1),
            random: random(128),
            model: models::channel_mpmc_2p1c,
        },
        ModelSpec {
            name: "deque_steal_race",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: models::deque_steal_race,
        },
        ModelSpec {
            name: "pool_single_worker",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: models::pool_single_worker,
        },
        ModelSpec {
            name: "pool_two_workers",
            threads: 3,
            dfs: dfs(1),
            random: random(128),
            model: models::pool_two_workers,
        },
        ModelSpec {
            name: "spill_flush_pins_counters",
            threads: 2,
            dfs: dfs(2),
            random: random(32),
            model: models::spill_flush_pins_counters,
        },
        ModelSpec {
            name: "spill_concurrent_reader",
            threads: 3,
            dfs: dfs(1),
            random: random(32),
            model: models::spill_concurrent_reader,
        },
        ModelSpec {
            name: "serve_routing_fifo",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: models::serve_routing_fifo,
        },
        ModelSpec {
            name: "serve_routing_admission",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: models::serve_routing_admission,
        },
        ModelSpec {
            name: "serve_routing_drain",
            threads: 3,
            dfs: dfs(1),
            random: random(128),
            model: models::serve_routing_drain,
        },
        ModelSpec {
            name: "serve_reply_fifo",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: models::serve_reply_fifo,
        },
        ModelSpec {
            name: "serve_reply_writer_exit",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: models::serve_reply_writer_exit,
        },
        ModelSpec {
            name: "mutation_control",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: mutation::control_model,
        },
        ModelSpec {
            name: "serve_mutation_control",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: mutation::serve_drain_control_model,
        },
        ModelSpec {
            name: "serve_reply_mutation_control",
            threads: 2,
            dfs: dfs(2),
            random: random(64),
            model: mutation::serve_reply_close_control_model,
        },
    ]
}

/// Looks a model up by name.
pub fn find_model(name: &str) -> Option<ModelSpec> {
    all_models().into_iter().find(|m| m.name == name)
}

/// Checks one model: exhaustive DFS first, then the random sweep.
///
/// `seed` overrides the random sweep's master seed (`None` keeps the
/// spec default), and `random_runs` its run count.
///
/// # Errors
///
/// Returns the first counterexample found by either strategy.
pub fn check_model(
    spec: &ModelSpec,
    seed: Option<u64>,
    random_runs: Option<usize>,
) -> Result<ModelReport, Box<Counterexample>> {
    let dfs_stats = sched::explore_dfs(&spec.dfs, &spec.model)?;
    let mut ropts = spec.random;
    if let Some(s) = seed {
        ropts.seed = s;
    }
    if let Some(r) = random_runs {
        ropts.runs = r;
    }
    let random_stats = sched::explore_random(&ropts, &spec.model)?;
    Ok(ModelReport {
        name: spec.name,
        threads: spec.threads,
        dfs: dfs_stats,
        random: random_stats,
    })
}

/// Checks every model in [`all_models`].
///
/// # Errors
///
/// Stops at the first failing model and returns its counterexample.
pub fn check_all(seed: Option<u64>) -> Result<Vec<ModelReport>, Box<ModelFailure>> {
    let mut reports = Vec::new();
    for spec in all_models() {
        match check_model(&spec, seed, None) {
            Ok(r) => reports.push(r),
            Err(counterexample) => {
                return Err(Box::new(ModelFailure {
                    name: spec.name,
                    counterexample,
                }))
            }
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_runtime::sync::sched::{run_random, run_with_schedule, FailureKind, Schedule};

    #[test]
    fn two_thread_channel_models_are_exhausted_clean() {
        // The acceptance gate in miniature: bounded-preemption DFS over
        // the 2-thread channel close/drop models finishes the whole
        // space (never capped) with zero counterexamples. This is the
        // property test for close/drop semantics under the shim:
        // receivers drain everything after senders drop, and senders
        // observe closed receivers, in EVERY ≤2-preemption schedule.
        for name in [
            "channel_spsc_close",
            "channel_receiver_drop",
            "channel_recv_many_drains",
        ] {
            let spec = find_model(name).unwrap();
            let report = check_model(&spec, None, Some(16)).unwrap_or_else(|cx| {
                panic!("model {name} failed:\n{cx}");
            });
            assert!(!report.dfs.capped, "{name}: DFS budget too small");
            assert!(
                report.dfs.executions > 1,
                "{name}: exhaustive search explored nothing"
            );
        }
    }

    #[test]
    fn deque_model_is_exhausted_clean() {
        let spec = find_model("deque_steal_race").unwrap();
        let report = check_model(&spec, None, Some(16))
            .unwrap_or_else(|cx| panic!("deque model failed:\n{cx}"));
        assert!(!report.dfs.capped);
        assert!(report.dfs.executions > 1);
    }

    #[test]
    fn mutation_lost_notify_is_caught_and_replays() {
        // The checker must catch the injected bug: a queue whose push
        // drops its notify_one deadlocks the consumer in some schedule.
        let opts = sched::DfsOptions {
            max_preemptions: 2,
            max_executions: 60_000,
            max_decisions: 50_000,
        };
        let cx = sched::explore_dfs(&opts, &(mutation::lossy_model as fn()))
            .expect_err("lost notify_one must produce a counterexample");
        assert_eq!(cx.kind, FailureKind::Deadlock, "expected a lost wakeup");
        assert!(
            !cx.schedule.choices.is_empty(),
            "counterexample must carry a replayable schedule"
        );
        // Seeded replay regression: the printed schedule round-trips
        // through its text form and reproduces the same failure.
        let text = cx.schedule.to_string();
        let parsed = Schedule::parse(&text).expect("schedule text must parse");
        assert_eq!(parsed, cx.schedule);
        let replay = run_with_schedule(&parsed, 50_000, &(mutation::lossy_model as fn()));
        let rcx = replay
            .counterexample
            .expect("replaying the schedule must reproduce the failure");
        assert_eq!(rcx.kind, FailureKind::Deadlock);
    }

    #[test]
    fn serve_queue_models_are_exhausted_clean() {
        // The server's queues under the same microscope as the runtime
        // channel: per-lane FIFO under reader-side routing,
        // all-or-nothing batch admission, the two-worker drain race,
        // and the per-connection reply queue (pipelined FIFO +
        // writer-exit close) all exhaust their bounded schedule space
        // with zero counterexamples.
        for name in [
            "serve_routing_fifo",
            "serve_routing_admission",
            "serve_routing_drain",
            "serve_reply_fifo",
            "serve_reply_writer_exit",
        ] {
            let spec = find_model(name).unwrap();
            let report = check_model(&spec, None, Some(16))
                .unwrap_or_else(|cx| panic!("model {name} failed:\n{cx}"));
            assert!(!report.dfs.capped, "{name}: DFS budget too small");
            assert!(
                report.dfs.executions > 1,
                "{name}: exhaustive search explored nothing"
            );
        }
    }

    #[test]
    fn serve_lossy_drain_is_caught_as_deadlock() {
        // Drop the drain handshake's notify_all and the consumer that
        // parks after finishing the backlog sleeps forever — the
        // checker must find that schedule and it must replay.
        let opts = sched::DfsOptions {
            max_preemptions: 2,
            max_executions: 60_000,
            max_decisions: 50_000,
        };
        let cx = sched::explore_dfs(&opts, &(mutation::serve_drain_lossy_model as fn()))
            .expect_err("lost drain wakeup must produce a counterexample");
        assert_eq!(cx.kind, FailureKind::Deadlock, "expected a lost wakeup");
        let replay = run_with_schedule(
            &cx.schedule,
            50_000,
            &(mutation::serve_drain_lossy_model as fn()),
        );
        let rcx = replay
            .counterexample
            .expect("replaying the schedule must reproduce the failure");
        assert_eq!(rcx.kind, FailureKind::Deadlock);
    }

    #[test]
    fn serve_reply_lossy_close_is_caught_as_deadlock() {
        // Drop the reply queue's close notify_all and a reader parked
        // waiting for space never learns the writer died — the checker
        // must find that schedule and it must replay.
        let opts = sched::DfsOptions {
            max_preemptions: 2,
            max_executions: 60_000,
            max_decisions: 50_000,
        };
        let cx = sched::explore_dfs(&opts, &(mutation::serve_reply_close_lossy_model as fn()))
            .expect_err("lost close wakeup must produce a counterexample");
        assert_eq!(cx.kind, FailureKind::Deadlock, "expected a lost wakeup");
        let replay = run_with_schedule(
            &cx.schedule,
            50_000,
            &(mutation::serve_reply_close_lossy_model as fn()),
        );
        let rcx = replay
            .counterexample
            .expect("replaying the schedule must reproduce the failure");
        assert_eq!(rcx.kind, FailureKind::Deadlock);
    }

    #[test]
    fn mutation_control_passes() {
        // Same queue with the notify intact: clean at the same bound,
        // so the mutation test discriminates.
        let spec = find_model("mutation_control").unwrap();
        check_model(&spec, None, Some(16))
            .unwrap_or_else(|cx| panic!("control model failed:\n{cx}"));
    }

    #[test]
    fn same_seed_gives_byte_identical_schedules() {
        for seed in [1u64, 0xdead_beef, u64::MAX] {
            let a = run_random(seed, 50_000, &(models::channel_mpmc_2p1c as fn()));
            let b = run_random(seed, 50_000, &(models::channel_mpmc_2p1c as fn()));
            assert!(a.counterexample.is_none(), "model must pass");
            assert_eq!(
                a.schedule.to_string(),
                b.schedule.to_string(),
                "seed {seed} not deterministic"
            );
            assert_eq!(a.trace, b.trace);
        }
    }

    #[test]
    fn schedule_text_round_trips() {
        let s = Schedule {
            seed: Some(42),
            choices: vec![0, 1, 2, 0],
        };
        assert_eq!(Schedule::parse(&s.to_string()), Some(s));
        let empty = Schedule {
            seed: None,
            choices: vec![],
        };
        assert_eq!(Schedule::parse(&empty.to_string()), Some(empty));
    }
}
