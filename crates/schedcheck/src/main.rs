//! `check-schedules`: the schedule-exploration CI gate.
//!
//! Runs every model in [`tempstream_schedcheck::all_models`] through
//! exhaustive bounded-preemption DFS plus a seeded random sweep,
//! prints per-model statistics, and exits non-zero with a minimal
//! replayable schedule on the first counterexample.
//!
//! ```text
//! check-schedules [--seed N] [--budget-secs N] [--model NAME]
//!                 [--replay "seed=<N|-> choices=0,1,..." --model NAME]
//!                 [--expect-mutation]
//! ```
//!
//! * `--seed N` — master seed for the random sweeps (default: each
//!   model's fixed built-in seed, so CI is reproducible run to run).
//! * `--budget-secs N` — soft time box: once exceeded, remaining
//!   models run DFS only and the skipped random sweeps are reported.
//! * `--model NAME` — check (or replay against) a single model.
//! * `--replay S` — replay a failure schedule printed by an earlier
//!   run and show its decision trace.
//! * `--expect-mutation` — verify the checker still CATCHES the
//!   injected bugs — the lost-`notify_one` queue, the server routing
//!   lanes' lost drain wakeup, and the per-connection reply queue's
//!   lost close wakeup (exits non-zero if it no longer does).

use std::time::Instant;
use tempstream_runtime::sync::sched::{self, Schedule};
use tempstream_schedcheck::{all_models, check_model, find_model, ModelSpec};

struct Args {
    seed: Option<u64>,
    budget_secs: Option<u64>,
    model: Option<String>,
    replay: Option<String>,
    expect_mutation: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: None,
        budget_secs: None,
        model: None,
        replay: None,
        expect_mutation: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match a.as_str() {
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--budget-secs" => {
                args.budget_secs = Some(
                    value("--budget-secs")?
                        .parse()
                        .map_err(|e| format!("--budget-secs: {e}"))?,
                );
            }
            "--model" => args.model = Some(value("--model")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--expect-mutation" => args.expect_mutation = true,
            "--help" | "-h" => {
                println!(
                    "usage: check-schedules [--seed N] [--budget-secs N] [--model NAME] \
                     [--replay SCHEDULE] [--expect-mutation]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn run_replay(text: &str, model_name: &str) -> i32 {
    let Some(schedule) = Schedule::parse(text) else {
        eprintln!("check-schedules: unparseable schedule: {text}");
        return 2;
    };
    let Some(spec) = find_model(model_name) else {
        eprintln!("check-schedules: unknown model: {model_name}");
        return 2;
    };
    let report = sched::run_with_schedule(&schedule, spec.dfs.max_decisions, &spec.model);
    for line in &report.trace {
        println!("{line}");
    }
    match report.counterexample {
        Some(cx) => {
            println!("{cx}");
            1
        }
        None => {
            println!("replay of {model_name}: PASSED (schedule reproduces no failure)");
            0
        }
    }
}

fn run_expect_mutation() -> i32 {
    let opts = sched::DfsOptions {
        max_preemptions: 2,
        max_executions: 60_000,
        max_decisions: 50_000,
    };
    let mutants: [(&str, fn()); 3] = [
        (
            "lost notify_one",
            tempstream_schedcheck::mutation::lossy_model,
        ),
        (
            "serve lost drain wakeup",
            tempstream_schedcheck::mutation::serve_drain_lossy_model,
        ),
        (
            "serve lost reply-queue close wakeup",
            tempstream_schedcheck::mutation::serve_reply_close_lossy_model,
        ),
    ];
    for (what, model) in mutants {
        match sched::explore_dfs(&opts, &model) {
            Err(cx) => {
                println!("mutation: {what} CAUGHT as expected ({})", cx.kind);
                println!("  minimal replayable schedule: {}", cx.schedule);
            }
            Ok(stats) => {
                eprintln!(
                    "mutation: checker FAILED to catch the {what} \
                     ({} executions explored) — the checker itself has regressed",
                    stats.executions
                );
                return 1;
            }
        }
    }
    0
}

fn check_one(spec: &ModelSpec, seed: Option<u64>, dfs_only: bool) -> Result<(), i32> {
    let t0 = Instant::now();
    let outcome = check_model(spec, seed, if dfs_only { Some(0) } else { None });
    match outcome {
        Ok(report) => {
            let capped = if report.dfs.capped { " (capped)" } else { "" };
            println!(
                "  {:<26} {}t  dfs: {} executions / {} decisions @ bound {}{}  \
                 random: {} runs  [{:.2}s]",
                report.name,
                report.threads,
                report.dfs.executions,
                report.dfs.decisions,
                report.dfs.max_preemptions,
                capped,
                report.random.executions,
                t0.elapsed().as_secs_f64()
            );
            Ok(())
        }
        Err(cx) => {
            eprintln!("  {:<26} FAILED", spec.name);
            eprintln!("{cx}");
            eprintln!(
                "replay with: check-schedules --model {} --replay \"{}\"",
                spec.name, cx.schedule
            );
            Err(1)
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("check-schedules: {e}");
            std::process::exit(2);
        }
    };

    if let Some(replay) = &args.replay {
        let Some(model) = &args.model else {
            eprintln!("check-schedules: --replay requires --model NAME");
            std::process::exit(2);
        };
        std::process::exit(run_replay(replay, model));
    }
    if args.expect_mutation {
        std::process::exit(run_expect_mutation());
    }

    let specs: Vec<ModelSpec> = match &args.model {
        Some(name) => match find_model(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("check-schedules: unknown model: {name}");
                std::process::exit(2);
            }
        },
        None => all_models(),
    };

    println!(
        "check-schedules: {} models, seed {}",
        specs.len(),
        args.seed
            .map_or_else(|| "per-model default".to_string(), |s| s.to_string())
    );
    let start = Instant::now();
    let mut skipped_random = 0usize;
    for spec in &specs {
        let over_budget = args
            .budget_secs
            .is_some_and(|b| start.elapsed().as_secs() >= b);
        if over_budget {
            skipped_random += 1;
        }
        if let Err(code) = check_one(spec, args.seed, over_budget) {
            std::process::exit(code);
        }
    }
    if skipped_random > 0 {
        println!(
            "note: over --budget-secs; random sweeps skipped for the last {skipped_random} models"
        );
    }
    println!(
        "check-schedules: all {} models clean in {:.2}s",
        specs.len(),
        start.elapsed().as_secs_f64()
    );
}
