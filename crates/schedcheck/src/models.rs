//! The closed models the checker explores.
//!
//! Each model is a small deterministic multi-threaded program built
//! entirely on runtime primitives, with its correctness properties
//! stated as assertions:
//!
//! * **channel** models — per-producer FIFO, no lost or duplicated
//!   items, receivers drain everything queued after the last sender
//!   drops, and blocked senders observe a closed receiver instead of
//!   hanging;
//! * **deque** models — no job is lost or duplicated across concurrent
//!   owner pops and thief steals, owner order is LIFO, thief order is
//!   FIFO;
//! * **pool** models — every spawned job (including jobs spawned by
//!   jobs) runs exactly once and the pool shuts down cleanly;
//! * **spill** models — a trace is readable while its background write
//!   is in flight (`Writing → OnDisk` never loses the data), and
//!   `flush()` pins the spill counters;
//! * **serve** models — the server's bounded [`ShardQueues`] (the
//!   reader-side routing lanes): all-or-nothing admission of split
//!   batches racing lane workers never half-admits a frame and never
//!   loses anything it accepted, per-lane delivery stays FIFO, and the
//!   drain handshake delivers every lane's backlog to its worker before
//!   the workers observe the close; the per-connection [`ReplyQueue`]:
//!   pipelined replies leave in strict FIFO dispatch order, and a
//!   writer closing the queue under a blocked reader bounces the
//!   undeliverable reply back instead of losing it or hanging.
//!
//! Deadlock-freedom and lost-wakeup-freedom need no assertions: the
//! scheduler itself reports any execution where every live thread
//! blocks.

use tempstream_runtime::channel;
use tempstream_runtime::deque::WorkDeque;
use tempstream_runtime::pool;
use tempstream_runtime::spill::TraceStore;
use tempstream_runtime::sync::atomic::{AtomicUsize, Ordering};
use tempstream_runtime::sync::{thread, Arc};
use tempstream_serve::queue::{PushError, ReplyQueue, ShardQueues};
use tempstream_trace::io::TraceClass;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, MissTrace, ThreadId};

/// A single producer streams three items through a capacity-1 channel
/// and hangs up; the consumer must drain exactly `[0, 1, 2]` in order.
pub fn channel_spsc_close() {
    let (tx, rx) = channel::bounded::<u32>(1);
    let producer = thread::spawn(move || {
        for i in 0..3 {
            tx.send(i).expect("receiver alive for the whole stream");
        }
    });
    let mut got = Vec::new();
    while let Ok(v) = rx.recv() {
        got.push(v);
    }
    producer.join().expect("producer clean");
    assert_eq!(got, [0, 1, 2], "items lost, duplicated, or reordered");
}

/// A sender blocked on a full channel must error out — not hang — once
/// the only receiver drops.
pub fn channel_receiver_drop() {
    let (tx, rx) = channel::bounded::<u32>(1);
    tx.send(0).expect("receiver alive");
    let sender = thread::spawn(move || tx.send(1));
    drop(rx);
    let result = sender.join().expect("sender clean");
    assert!(result.is_err(), "send must observe the closed receiver");
}

/// `recv_many` must hand back everything queued, in order, and then
/// report disconnection once the producer hangs up.
pub fn channel_recv_many_drains() {
    let (tx, rx) = channel::bounded::<u32>(4);
    let producer = thread::spawn(move || {
        for i in 0..3 {
            tx.send(i).expect("receiver alive");
        }
    });
    let mut buf = Vec::new();
    while rx.recv_many(&mut buf).is_ok() {}
    producer.join().expect("producer clean");
    assert_eq!(buf, [0, 1, 2], "drain lost, duplicated, or reordered items");
}

/// Two producers race two items each through a capacity-1 channel into
/// one consumer: every item arrives exactly once and each producer's
/// items stay in that producer's send order.
pub fn channel_mpmc_2p1c() {
    let (tx, rx) = channel::bounded::<(usize, u32)>(1);
    let producers: Vec<_> = (0..2)
        .map(|p| {
            let tx = tx.clone();
            thread::spawn(move || {
                for i in 0..2 {
                    tx.send((p, i)).expect("receiver alive");
                }
            })
        })
        .collect();
    drop(tx);
    let mut next = [0u32; 2];
    let mut received = 0;
    while let Ok((p, i)) = rx.recv() {
        assert_eq!(i, next[p], "producer {p} items reordered");
        next[p] += 1;
        received += 1;
    }
    for h in producers {
        h.join().expect("producer clean");
    }
    assert_eq!(received, 4, "items lost or duplicated");
}

/// An owner popping (LIFO) races a thief stealing (FIFO) over four
/// queued jobs: the union is exactly the original set, the owner's
/// sequence strictly decreases, the thief's strictly increases.
pub fn deque_steal_race() {
    let deque = Arc::new(WorkDeque::new());
    for i in 0..4u32 {
        deque.push(i);
    }
    let d = Arc::clone(&deque);
    let thief = thread::spawn(move || {
        let mut stolen = Vec::new();
        while let Some(v) = d.steal() {
            stolen.push(v);
        }
        stolen
    });
    let mut popped = Vec::new();
    while let Some(v) = deque.pop() {
        popped.push(v);
    }
    let stolen = thief.join().expect("thief clean");
    let mut all = popped.clone();
    all.extend(&stolen);
    all.sort_unstable();
    assert_eq!(all, [0, 1, 2, 3], "jobs lost or duplicated across steals");
    assert!(
        popped.windows(2).all(|w| w[0] > w[1]),
        "owner must pop LIFO: {popped:?}"
    );
    assert!(
        stolen.windows(2).all(|w| w[0] < w[1]),
        "thief must steal FIFO: {stolen:?}"
    );
}

fn pool_model(workers: usize, jobs: usize) {
    let ran = AtomicUsize::new(0);
    pool::scope(workers, |p| {
        for _ in 0..jobs {
            p.spawn(|w| {
                ran.fetch_add(1, Ordering::SeqCst);
                // A dependent job exercises the worker-deque path.
                w.spawn(|_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            });
        }
    });
    // `scope` returning at all is the clean-shutdown property; the
    // count is exactly-once execution.
    assert_eq!(
        ran.load(Ordering::SeqCst),
        2 * jobs,
        "jobs lost or duplicated"
    );
}

/// One worker, two injector jobs each spawning a dependent job: all
/// four run exactly once and the pool quiesces and shuts down.
pub fn pool_single_worker() {
    pool_model(1, 2);
}

/// Two workers, two fan-out jobs: adds the steal path and the
/// worker-vs-worker wakeup races.
pub fn pool_two_workers() {
    pool_model(2, 2);
}

fn tiny_trace(len: usize) -> MissTrace<MissClass> {
    let mut t = MissTrace::new(2);
    t.set_instructions(99);
    for i in 0..len {
        t.push(MissRecord {
            block: Block::new(i as u64 * 7),
            cpu: CpuId::new((i % 2) as u32),
            thread: ThreadId::new(i as u32),
            function: FunctionId::new(0),
            class: MissClass::from_byte((i % 4) as u8).unwrap(),
        });
    }
    t
}

/// A spilling `put` races `flush` and the drop-join of the writer
/// thread: the trace stays readable while the write is in flight
/// (`Writing → OnDisk` is never a window of unreadability) and after
/// `flush` the spill counter is pinned at exactly one.
pub fn spill_flush_pins_counters() {
    let store = TraceStore::new(0).expect("spill dir");
    let shared = store.put(tiny_trace(6));
    // Readable at every point of the write's lifetime.
    assert_eq!(shared.trace_or_empty().len(), 6, "in-flight trace lost");
    store.flush();
    assert_eq!(store.spilled_traces(), 1, "flush must pin the counter");
    assert_eq!(store.spill_fallbacks(), 0);
    drop(store);
}

/// A reader thread races the background spill write and `flush`: in
/// every interleaving it sees the full trace, whether it claims the
/// resident copy or reloads the landed file.
pub fn spill_concurrent_reader() {
    let store = TraceStore::new(0).expect("spill dir");
    let shared = Arc::new(store.put(tiny_trace(5)));
    let reader_view = Arc::clone(&shared);
    let reader = thread::spawn(move || reader_view.trace_or_empty().len());
    store.flush();
    assert_eq!(reader.join().expect("reader clean"), 5, "reader lost data");
    assert_eq!(shared.trace_or_empty().len(), 5);
    assert_eq!(store.spilled_traces(), 1);
}

// --- serve routing-lane models --------------------------------------------

/// A connection reader streams three split batches onto two routing
/// lanes while lane 0's worker races it; lane capacity 3 means every
/// admission succeeds. Lane 0 must deliver exactly `[0, 1, 2]` in push
/// order and then observe the close; lane 1's backlog survives the
/// drain intact and ordered. Per-lane FIFO here is what makes
/// reader-side routing order-equivalent to the old single router.
pub fn serve_routing_fifo() {
    let queues = Arc::new(ShardQueues::new(2, 3));
    let worker_queues = Arc::clone(&queues);
    let worker = thread::spawn(move || {
        let mut got = Vec::new();
        while let Some(batch) = worker_queues.pop(0) {
            got.extend(batch);
        }
        got
    });
    for i in 0..3u32 {
        let mut subs = vec![vec![i], vec![10 + i]];
        queues
            .try_push_batches(&mut subs)
            .expect("capacity 3 admits all three frames");
    }
    queues.drain();
    let got = worker.join().expect("worker clean");
    assert_eq!(got, [0, 1, 2], "lane 0 lost, duplicated, or reordered");
    assert!(queues.pop(0).is_none(), "drained lane stays closed");
    let mut lane1 = Vec::new();
    while let Some(batch) = queues.pop(1) {
        lane1.extend(batch);
    }
    assert_eq!(lane1, [10, 11, 12], "lane 1 backlog delivered after drain");
}

/// The admission path: all-or-nothing `try_push_batches` against a
/// racing lane worker never blocks, never half-admits, and never lies —
/// a frame blocked by ANY full lane leaves every lane untouched, and
/// whatever was reported accepted is exactly what the workers receive.
pub fn serve_routing_admission() {
    let queues = Arc::new(ShardQueues::new(2, 1));
    let worker_queues = Arc::clone(&queues);
    let worker = thread::spawn(move || {
        let mut got = Vec::new();
        while let Some(batch) = worker_queues.pop(0) {
            got.extend(batch);
        }
        got
    });
    let mut accepted = vec![1u32];
    let mut first = vec![vec![1u32], vec![2]];
    queues
        .try_push_batches(&mut first)
        .expect("empty lanes accept");
    // Nothing pops lane 1, so it stays full: the next split frame must
    // be refused whole — lane 0 gets nothing even when it has space.
    let mut second = vec![vec![3u32], vec![4]];
    assert_eq!(
        queues.try_push_batches(&mut second),
        Err(PushError::Full(())),
        "a full lane must refuse the whole frame"
    );
    assert_eq!(second[0], [3], "refused frame keeps its records");
    // A lane-0-only frame races the worker: accepted or refused, its
    // fate must match what the worker ends up delivering.
    let mut third = vec![vec![5u32], Vec::new()];
    if queues.try_push_batches(&mut third).is_ok() {
        accepted.push(5);
    }
    queues.drain();
    let got = worker.join().expect("worker clean");
    assert_eq!(got, accepted, "delivered set must equal the accepted set");
    let mut lane1 = Vec::new();
    while let Some(batch) = queues.pop(1) {
        lane1.extend(batch);
    }
    assert_eq!(lane1, [2], "lane 1 holds exactly the admitted sub-batch");
}

/// The per-connection reply path under pipelining: the reader pushes
/// three sequenced replies through a capacity-1 [`ReplyQueue`]
/// (blocking whenever the writer lags — the backpressure path) and
/// closes; the writer must drain exactly `[0, 1, 2]` in order and then
/// observe the close. FIFO here *is* the protocol property that lets a
/// pipelined client match replies to requests by position.
pub fn serve_reply_fifo() {
    let queue = Arc::new(ReplyQueue::new(1));
    let reader_queue = Arc::clone(&queue);
    let reader = thread::spawn(move || {
        for i in 0..3u32 {
            reader_queue.push(i).expect("writer alive for the stream");
        }
        reader_queue.close();
    });
    let mut got = Vec::new();
    while let Some(v) = queue.pop() {
        got.push(v);
    }
    reader.join().expect("reader clean");
    assert_eq!(got, [0, 1, 2], "replies lost, duplicated, or reordered");
    assert!(queue.pop().is_none(), "closed queue stays closed");
}

/// The writer-exit race: the socket writer closes the reply queue out
/// from under a reader mid-push (peer hung up). In every interleaving
/// each reply is either delivered (still poppable after the close) or
/// bounced back to the reader — never silently dropped — and whatever
/// was delivered kept FIFO order. The close waking a parked pusher is
/// the lost-wakeup property the mutation gate breaks on purpose.
pub fn serve_reply_writer_exit() {
    let queue = Arc::new(ReplyQueue::new(1));
    let reader_queue = Arc::clone(&queue);
    let reader = thread::spawn(move || {
        let first = reader_queue.push(0u32);
        let second = reader_queue.push(1u32);
        (first, second)
    });
    queue.close();
    let (first, second) = reader.join().expect("reader clean");
    let mut delivered = Vec::new();
    while let Some(v) = queue.pop() {
        delivered.push(v);
    }
    assert!(
        delivered.windows(2).all(|w| w[0] < w[1]),
        "FIFO violated: {delivered:?}"
    );
    let mut all = delivered;
    if let Err(v) = first {
        all.push(v);
    }
    if let Err(v) = second {
        all.push(v);
    }
    all.sort_unstable();
    assert_eq!(all, [0, 1], "a reply vanished at writer exit");
}

/// Both lane workers race the drain handshake (the server's shutdown
/// topology in miniature): each worker must receive exactly its lane's
/// sub-batch before observing the close — `drain`'s per-lane wakeups
/// must reach every parked worker, and no sub-batch may leak across
/// lanes or vanish.
pub fn serve_routing_drain() {
    let queues = Arc::new(ShardQueues::new(2, 2));
    let workers: Vec<_> = (0..2)
        .map(|lane| {
            let q = Arc::clone(&queues);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(batch) = q.pop(lane) {
                    got.extend(batch);
                }
                got
            })
        })
        .collect();
    let mut subs = vec![vec![0u32], vec![1]];
    queues.try_push_batches(&mut subs).expect("accepting");
    queues.drain();
    let results: Vec<Vec<u32>> = workers
        .into_iter()
        .map(|w| w.join().expect("worker clean"))
        .collect();
    assert_eq!(results[0], [0], "lane 0 worker gets exactly its sub-batch");
    assert_eq!(results[1], [1], "lane 1 worker gets exactly its sub-batch");
}
