//! The mutation test: a deliberately broken primitive the checker must
//! catch.
//!
//! [`LossyQueue`] is a minimal condvar-guarded queue with an injectable
//! bug: when constructed lossy, `push` skips its `notify_one`. The
//! classic lost-wakeup schedule — consumer checks the queue, finds it
//! empty, and parks; producer then pushes without notifying — deadlocks
//! the consumer forever. [`lossy_model`] must therefore fail
//! exploration (it does, with one preemption), while [`control_model`]
//! — the same program with the notify intact — must pass at the same
//! bound. Together they prove the checker discriminates real lost
//! wakeups rather than passing everything or flagging anything.

use tempstream_runtime::sync::{thread, Arc, Condvar, Mutex};

/// A one-condvar queue whose `push` can be built to drop its wakeup.
pub struct LossyQueue {
    items: Mutex<Vec<u32>>,
    ready: Condvar,
    lose_notify: bool,
}

impl LossyQueue {
    /// Creates the queue; `lose_notify` injects the lost-wakeup bug.
    pub fn new(lose_notify: bool) -> Self {
        LossyQueue {
            items: Mutex::new(Vec::new()),
            ready: Condvar::new(),
            lose_notify,
        }
    }

    /// Appends `value`, waking a waiting consumer — unless this queue
    /// was built lossy, in which case the wakeup is silently dropped.
    pub fn push(&self, value: u32) {
        let mut items = self.items.lock();
        items.push(value);
        if !self.lose_notify {
            self.ready.notify_one();
        }
    }

    /// Blocks until an item is available and takes it.
    pub fn pop_blocking(&self) -> u32 {
        let mut items = self.items.lock();
        loop {
            if let Some(v) = items.pop() {
                return v;
            }
            items = self.ready.wait(items);
        }
    }
}

fn queue_model(lose_notify: bool) {
    let queue = Arc::new(LossyQueue::new(lose_notify));
    let consumer_queue = Arc::clone(&queue);
    let consumer = thread::spawn(move || consumer_queue.pop_blocking());
    queue.push(7);
    assert_eq!(consumer.join().expect("consumer clean"), 7);
}

/// The broken queue: exploration MUST find the lost-wakeup deadlock
/// (consumer parks first, push never notifies).
pub fn lossy_model() {
    queue_model(true);
}

/// The correct queue: exploration must find nothing at the same bound.
pub fn control_model() {
    queue_model(false);
}
