//! The mutation tests: deliberately broken primitives the checker must
//! catch.
//!
//! [`LossyQueue`] is a minimal condvar-guarded queue with an injectable
//! bug: when constructed lossy, `push` skips its `notify_one`. The
//! classic lost-wakeup schedule — consumer checks the queue, finds it
//! empty, and parks; producer then pushes without notifying — deadlocks
//! the consumer forever. [`lossy_model`] must therefore fail
//! exploration (it does, with one preemption), while [`control_model`]
//! — the same program with the notify intact — must pass at the same
//! bound. Together they prove the checker discriminates real lost
//! wakeups rather than passing everything or flagging anything.
//!
//! [`serve_drain_lossy_model`] is the same gate aimed at the server's
//! routing lanes: `ShardQueues::new_lossy_for_modelcheck` builds lanes
//! whose `drain` flips the draining flag but drops its per-lane
//! wakeups, so a lane worker parked waiting for sub-batches never
//! learns the queues closed — the exact bug the drain handshake's
//! wakeup exists to prevent. [`serve_drain_control_model`] runs the
//! identical program on the correct queues and must pass.
//!
//! [`serve_reply_close_lossy_model`] does the same for the
//! per-connection [`ReplyQueue`]: `close` flips the closed flag but
//! drops both `notify_all`s, so a connection reader parked waiting for
//! reply-queue space never learns the writer died — the leak the
//! reader/writer split's close-on-drop guard exists to prevent.
//! [`serve_reply_close_control_model`] must pass unmutated.

use tempstream_runtime::sync::{thread, Arc, Condvar, Mutex};
use tempstream_serve::queue::{ReplyQueue, ShardQueues};

/// A one-condvar queue whose `push` can be built to drop its wakeup.
pub struct LossyQueue {
    items: Mutex<Vec<u32>>,
    ready: Condvar,
    lose_notify: bool,
}

impl LossyQueue {
    /// Creates the queue; `lose_notify` injects the lost-wakeup bug.
    pub fn new(lose_notify: bool) -> Self {
        LossyQueue {
            items: Mutex::new(Vec::new()),
            ready: Condvar::new(),
            lose_notify,
        }
    }

    /// Appends `value`, waking a waiting consumer — unless this queue
    /// was built lossy, in which case the wakeup is silently dropped.
    pub fn push(&self, value: u32) {
        let mut items = self.items.lock();
        items.push(value);
        if !self.lose_notify {
            self.ready.notify_one();
        }
    }

    /// Blocks until an item is available and takes it.
    pub fn pop_blocking(&self) -> u32 {
        let mut items = self.items.lock();
        loop {
            if let Some(v) = items.pop() {
                return v;
            }
            items = self.ready.wait(items);
        }
    }
}

fn queue_model(lose_notify: bool) {
    let queue = Arc::new(LossyQueue::new(lose_notify));
    let consumer_queue = Arc::clone(&queue);
    let consumer = thread::spawn(move || consumer_queue.pop_blocking());
    queue.push(7);
    assert_eq!(consumer.join().expect("consumer clean"), 7);
}

/// The broken queue: exploration MUST find the lost-wakeup deadlock
/// (consumer parks first, push never notifies).
pub fn lossy_model() {
    queue_model(true);
}

/// The correct queue: exploration must find nothing at the same bound.
pub fn control_model() {
    queue_model(false);
}

fn serve_drain_model(lossy: bool) {
    let queues = Arc::new(if lossy {
        ShardQueues::new_lossy_for_modelcheck(2, 1)
    } else {
        ShardQueues::new(2, 1)
    });
    let worker_queues = Arc::clone(&queues);
    let worker = thread::spawn(move || {
        let mut drained = 0u32;
        while worker_queues.pop(0).is_some() {
            drained += 1;
        }
        drained
    });
    let mut subs = vec![vec![7u32], Vec::new()];
    queues
        .try_push_batches(&mut subs)
        .expect("empty lanes accept");
    queues.drain();
    let drained = worker.join().expect("worker clean");
    assert_eq!(drained, 1, "backlog must be delivered before close");
}

/// The server's routing lanes with the drain wakeups dropped: in the
/// schedule where the lane worker finishes the backlog and parks before
/// `drain` runs, nothing ever wakes it — exploration MUST report the
/// deadlock.
pub fn serve_drain_lossy_model() {
    serve_drain_model(true);
}

/// The correct routing lanes under the identical program: clean at the
/// same bound.
pub fn serve_drain_control_model() {
    serve_drain_model(false);
}

fn serve_reply_close_model(lossy: bool) {
    let queue = Arc::new(if lossy {
        ReplyQueue::new_lossy_for_modelcheck(1)
    } else {
        ReplyQueue::new(1)
    });
    let reader_queue = Arc::clone(&queue);
    let reader = thread::spawn(move || {
        // Fill the queue, then block pushing into it.
        let first = reader_queue.push(0u32);
        let second = reader_queue.push(1u32);
        (first, second)
    });
    queue.close();
    let (_, second) = reader.join().expect("reader clean");
    assert!(second.is_err(), "push must observe the closed queue");
}

/// The reply queue with its close wakeup dropped: in the schedule
/// where the reader parks waiting for space before `close` runs,
/// nothing ever wakes it — exploration MUST report the deadlock.
pub fn serve_reply_close_lossy_model() {
    serve_reply_close_model(true);
}

/// The correct reply queue under the identical program: clean at the
/// same bound.
pub fn serve_reply_close_control_model() {
    serve_reply_close_model(false);
}
