//! Temporal-streaming prefetcher.
//!
//! Modeled on Wenisch et al. \[25\]: all misses are appended to a global
//! circular log; an index maps each block to its most recent log
//! position. A miss that hits the index locates the previous occurrence
//! of (what may be) a stream and replays the blocks recorded after it.
//!
//! Two retrieval policies, matching the paper's §4.4 discussion:
//!
//! - **fixed depth** — replay exactly `depth` blocks per lookup, like the
//!   fixed-degree proposals the paper criticizes ("there is no one size
//!   that fits all temporal streams");
//! - **adaptive** — start with a small burst and keep streaming further
//!   ahead while the program's misses keep following the log, as
//!   temporal streaming's stream engines do.

use crate::Prefetcher;
use tempstream_fxhash::FxHashMap;
use tempstream_trace::{Block, CpuId};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    Fixed(u32),
    Adaptive { burst: u32, max_ahead: u32 },
}

/// Per-CPU replay state for the adaptive policy.
#[derive(Debug, Clone, Copy, Default)]
struct StreamEngine {
    /// Log position the replay cursor has reached (next to fetch).
    cursor: usize,
    /// Log position the demand stream has confirmed up to.
    confirmed: usize,
    active: bool,
}

/// The temporal-streaming prefetcher.
#[derive(Debug, Clone)]
pub struct TemporalPrefetcher {
    log: Vec<Block>,
    /// block -> most recent log index.
    index: FxHashMap<Block, usize>,
    capacity: usize,
    policy: Policy,
    engines: Vec<StreamEngine>,
}

impl TemporalPrefetcher {
    /// Fixed-depth retrieval: replay `depth` blocks per index hit.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn fixed(depth: u32) -> Self {
        assert!(depth > 0, "depth must be positive");
        Self::with_policy(Policy::Fixed(depth))
    }

    /// Adaptive retrieval: an index hit starts a stream engine that
    /// fetches `burst` blocks and keeps running up to `max_ahead` blocks
    /// past the last confirmed miss while the demand stream follows.
    ///
    /// # Panics
    ///
    /// Panics if `burst` or `max_ahead` is zero.
    pub fn adaptive(burst: u32, max_ahead: u32) -> Self {
        assert!(burst > 0 && max_ahead > 0, "degenerate adaptive policy");
        Self::with_policy(Policy::Adaptive { burst, max_ahead })
    }

    fn with_policy(policy: Policy) -> Self {
        TemporalPrefetcher {
            log: Vec::new(),
            index: FxHashMap::default(),
            capacity: 4_000_000,
            policy,
            engines: Vec::new(),
        }
    }

    /// Bounds the miss log (default 4M entries; the paper sizes stream
    /// storage against reuse distances).
    pub fn with_log_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 1, "log too small");
        self.capacity = capacity;
        self
    }

    /// Misses recorded so far (capped at the log capacity).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    fn replay(&self, from: usize, n: u32) -> Vec<Block> {
        let end = (from + n as usize).min(self.log.len());
        self.log[from.min(end)..end].to_vec()
    }
}

impl Prefetcher for TemporalPrefetcher {
    fn on_miss(&mut self, cpu: CpuId, block: Block) -> Vec<Block> {
        if self.engines.len() <= cpu.index() {
            self.engines
                .resize(cpu.index() + 1, StreamEngine::default());
        }

        // Locate the previous occurrence before logging this miss.
        let hit = self.index.get(&block).copied();

        let out = match self.policy {
            Policy::Fixed(depth) => match hit {
                Some(pos) => self.replay(pos + 1, depth),
                None => Vec::new(),
            },
            Policy::Adaptive { burst, max_ahead } => {
                let eng = self.engines[cpu.index()];
                let mut next = StreamEngine::default();
                let mut out = Vec::new();
                // Does this miss follow the active stream?
                let follows = eng.active
                    && eng.confirmed < self.log.len()
                    && self.log.get(eng.confirmed) == Some(&block);
                if follows {
                    next = eng;
                    next.confirmed += 1;
                    // Stream further ahead, up to max_ahead unconfirmed.
                    let ahead = next.cursor.saturating_sub(next.confirmed) as u32;
                    let fetch = max_ahead.saturating_sub(ahead);
                    out = self.replay(next.cursor, fetch.max(1));
                    next.cursor += out.len();
                    next.active = true;
                } else if let Some(pos) = hit {
                    // (Re)start an engine at the previous occurrence.
                    out = self.replay(pos + 1, burst);
                    next = StreamEngine {
                        confirmed: pos + 1,
                        cursor: pos + 1 + out.len(),
                        active: !out.is_empty(),
                    };
                }
                self.engines[cpu.index()] = next;
                out
            }
        };

        // Append to the (bounded) log and index the new position.
        if self.log.len() >= self.capacity {
            // Wholesale reset models the bounded history of real designs
            // without the complexity of a true circular index.
            self.log.clear();
            self.index.clear();
            for e in &mut self.engines {
                *e = StreamEngine::default();
            }
        }
        self.index.insert(block, self.log.len());
        self.log.push(block);
        out
    }

    fn name(&self) -> &'static str {
        match self.policy {
            Policy::Fixed(_) => "temporal-fixed",
            Policy::Adaptive { .. } => "temporal-adaptive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: u64) -> Block {
        Block::new(x)
    }

    fn c0() -> CpuId {
        CpuId::new(0)
    }

    #[test]
    fn fixed_replays_previous_occurrence() {
        let mut p = TemporalPrefetcher::fixed(3);
        for x in [1u64, 2, 3, 4, 99] {
            p.on_miss(c0(), b(x));
        }
        // Revisiting 1 replays what followed it last time.
        assert_eq!(p.on_miss(c0(), b(1)), vec![b(2), b(3), b(4)]);
    }

    #[test]
    fn fixed_depth_truncates_at_log_end() {
        let mut p = TemporalPrefetcher::fixed(8);
        p.on_miss(c0(), b(5));
        p.on_miss(c0(), b(6));
        assert_eq!(p.on_miss(c0(), b(5)), vec![b(6)]);
    }

    #[test]
    fn adaptive_streams_while_followed() {
        let mut p = TemporalPrefetcher::adaptive(2, 4);
        let stream: Vec<u64> = (10..30).collect();
        for &x in &stream {
            p.on_miss(c0(), b(x));
        }
        p.on_miss(c0(), b(1000)); // break
                                  // Second occurrence: the engine keeps supplying as we follow.
        let mut covered = 0;
        let mut predicted: std::collections::HashSet<Block> = Default::default();
        for &x in &stream {
            if predicted.contains(&b(x)) {
                covered += 1;
            }
            for f in p.on_miss(c0(), b(x)) {
                predicted.insert(f);
            }
        }
        assert!(
            covered >= stream.len() - 3,
            "adaptive engine must cover nearly the whole stream, got {covered}"
        );
    }

    #[test]
    fn adaptive_stops_when_divergent() {
        let mut p = TemporalPrefetcher::adaptive(2, 4);
        for x in [1u64, 2, 3, 4, 5] {
            p.on_miss(c0(), b(x));
        }
        // Revisit 1 (starts engine), then diverge; the engine must not
        // keep issuing along the stale path.
        p.on_miss(c0(), b(1));
        let out = p.on_miss(c0(), b(777));
        assert!(
            out.is_empty(),
            "divergent miss must stop the engine: {out:?}"
        );
    }

    #[test]
    fn log_capacity_bounds_memory() {
        let mut p = TemporalPrefetcher::fixed(2).with_log_capacity(100);
        for x in 0..1000u64 {
            p.on_miss(c0(), b(x));
        }
        assert!(p.log_len() <= 100);
    }

    #[test]
    fn per_cpu_engines_do_not_interfere() {
        let mut p = TemporalPrefetcher::adaptive(2, 4);
        for x in [1u64, 2, 3, 9, 9, 9] {
            p.on_miss(c0(), b(x));
        }
        // CPU 1 replays the stream; CPU 0's engine state is separate.
        let out = p.on_miss(CpuId::new(1), b(1));
        assert!(!out.is_empty());
        let out0 = p.on_miss(c0(), b(555));
        assert!(out0.is_empty());
    }
}
