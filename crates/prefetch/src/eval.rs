//! Trace-driven prefetcher evaluation.
//!
//! A simple buffer model: prefetched blocks enter a FIFO prefetch buffer
//! of bounded capacity; a demand miss that finds its block in the buffer
//! is *covered* (and consumes the entry). Coverage and accuracy are the
//! standard figures of merit:
//!
//! - coverage = covered misses / all misses;
//! - accuracy = covered misses / issued prefetches.

use crate::Prefetcher;
use std::collections::VecDeque;
use tempstream_fxhash::FxHashSet;
use tempstream_trace::miss::MissRecord;

/// Result of one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evaluation {
    /// Demand misses observed.
    pub total: u64,
    /// Demand misses found in the prefetch buffer.
    pub covered: u64,
    /// Prefetches issued.
    pub issued: u64,
}

impl Evaluation {
    /// Fraction of misses covered (the shared [`tempstream_obsv::frac`]
    /// zero-denominator guard, like every other report ratio).
    pub fn coverage(&self) -> f64 {
        tempstream_obsv::frac(self.covered, self.total)
    }

    /// Fraction of issued prefetches that covered a miss.
    pub fn accuracy(&self) -> f64 {
        tempstream_obsv::frac(self.covered, self.issued)
    }
}

impl std::fmt::Display for Evaluation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coverage {:>5.1}%  accuracy {:>5.1}%  ({} covered / {} misses, {} issued)",
            self.coverage() * 100.0,
            self.accuracy() * 100.0,
            self.covered,
            self.total,
            self.issued
        )
    }
}

/// Incremental form of [`evaluate`]: the same FIFO prefetch-buffer
/// model, driven one demand miss at a time.
///
/// `tempstream-serve` holds one of these per shard and feeds it each
/// ingested record as it arrives; because [`evaluate`] is reimplemented
/// on top of [`observe`](OnlineEvaluator::observe), the online
/// coverage/accuracy answer is bit-identical to an offline batch run
/// over the same record sequence.
#[derive(Debug, Clone)]
pub struct OnlineEvaluator {
    buffer: FxHashSet<tempstream_trace::Block>,
    order: VecDeque<tempstream_trace::Block>,
    capacity: usize,
    eval: Evaluation,
}

impl OnlineEvaluator {
    /// Creates an evaluator with a prefetch buffer of `buffer_capacity`
    /// blocks.
    pub fn new(buffer_capacity: usize) -> Self {
        OnlineEvaluator {
            buffer: FxHashSet::default(),
            order: VecDeque::new(),
            capacity: buffer_capacity,
            eval: Evaluation {
                total: 0,
                covered: 0,
                issued: 0,
            },
        }
    }

    /// Feeds one demand miss: scores it against the buffer, then lets
    /// `prefetcher` react and fills the buffer with its predictions.
    pub fn observe(
        &mut self,
        prefetcher: &mut dyn Prefetcher,
        cpu: tempstream_trace::CpuId,
        block: tempstream_trace::Block,
    ) {
        self.eval.total += 1;
        if self.buffer.remove(&block) {
            self.eval.covered += 1;
            // Leave the stale FIFO entry; it is skipped on eviction.
        }
        for p in prefetcher.on_miss(cpu, block) {
            // Prefetches redundant with the buffer are filtered (as a
            // cache/MSHR lookup would) and not charged against accuracy.
            if self.buffer.insert(p) {
                self.eval.issued += 1;
                self.order.push_back(p);
                while self.buffer.len() > self.capacity {
                    let victim = self.order.pop_front().expect("order tracks buffer");
                    self.buffer.remove(&victim);
                }
            }
        }
    }

    /// The figures of merit accumulated so far.
    pub fn snapshot(&self) -> Evaluation {
        self.eval
    }
}

/// Evaluates `prefetcher` over `records` with a prefetch buffer of
/// `buffer_capacity` blocks.
pub fn evaluate<C: Copy>(
    prefetcher: &mut dyn Prefetcher,
    records: &[MissRecord<C>],
    buffer_capacity: usize,
) -> Evaluation {
    let mut online = OnlineEvaluator::new(buffer_capacity);
    for r in records {
        online.observe(prefetcher, r.cpu, r.block);
    }
    online.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StridePrefetcher, TemporalPrefetcher};
    use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

    fn records(blocks: &[u64]) -> Vec<MissRecord<MissClass>> {
        blocks
            .iter()
            .map(|&b| MissRecord {
                block: Block::new(b),
                cpu: CpuId::new(0),
                thread: ThreadId::new(0),
                function: FunctionId::new(0),
                class: MissClass::Replacement,
            })
            .collect()
    }

    #[test]
    fn stride_covers_sequential_misses() {
        let r = records(&(0..100u64).collect::<Vec<_>>());
        let mut p = StridePrefetcher::new(4);
        let e = evaluate(&mut p, &r, 64);
        assert!(e.coverage() > 0.9, "coverage {:.3}", e.coverage());
        assert!(e.accuracy() > 0.8, "accuracy {:.3}", e.accuracy());
    }

    #[test]
    fn temporal_covers_recurrences_not_first_pass() {
        let pattern: Vec<u64> = vec![5, 90, 17, 230, 44, 8, 61];
        let mut blocks = pattern.clone();
        blocks.push(1000);
        blocks.extend(&pattern);
        blocks.push(2000);
        blocks.extend(&pattern);
        let r = records(&blocks);
        let mut p = TemporalPrefetcher::fixed(8);
        let e = evaluate(&mut p, &r, 64);
        // Two of the three occurrences are predictable.
        let predictable = 2 * (pattern.len() as u64 - 1);
        assert!(
            e.covered >= predictable - 2,
            "covered {} of expected ~{}",
            e.covered,
            predictable
        );
    }

    #[test]
    fn stride_cannot_cover_pointer_chase() {
        let pattern: Vec<u64> = vec![5, 900, 17, 2030, 404, 8];
        let mut blocks = pattern.clone();
        blocks.extend(&pattern);
        let r = records(&blocks);
        let mut p = StridePrefetcher::new(4);
        let e = evaluate(&mut p, &r, 64);
        assert_eq!(e.covered, 0);
    }

    #[test]
    fn buffer_capacity_limits_coverage() {
        // Fixed depth 32 floods a tiny buffer; deep prefetches get evicted
        // before use.
        let pattern: Vec<u64> = (0..64).map(|i| i * 97 % 1000).collect();
        let mut blocks = pattern.clone();
        blocks.extend(&pattern);
        let r = records(&blocks);
        let mut big = TemporalPrefetcher::fixed(32);
        let mut small = TemporalPrefetcher::fixed(32);
        let e_big = evaluate(&mut big, &r, 256);
        let e_small = evaluate(&mut small, &r, 4);
        assert!(e_big.covered > e_small.covered);
    }

    #[test]
    fn online_evaluator_is_bit_identical_to_batch() {
        let pattern: Vec<u64> = (0..64).map(|i| i * 131 % 509).collect();
        let mut blocks = pattern.clone();
        blocks.push(9999);
        blocks.extend(&pattern);
        blocks.extend(&pattern);
        let r = records(&blocks);
        let mut batch_p = TemporalPrefetcher::adaptive(2, 8);
        let batch = evaluate(&mut batch_p, &r, 32);
        let mut online_p = TemporalPrefetcher::adaptive(2, 8);
        let mut online = OnlineEvaluator::new(32);
        for rec in &r {
            online.observe(&mut online_p, rec.cpu, rec.block);
        }
        assert_eq!(online.snapshot(), batch);
        assert!(batch.covered > 0, "test must exercise coverage");
    }

    #[test]
    fn empty_trace() {
        let mut p = StridePrefetcher::new(1);
        let e = evaluate(&mut p, &records(&[]), 8);
        assert_eq!(e.total, 0);
        assert_eq!(e.coverage(), 0.0);
        assert_eq!(e.accuracy(), 0.0);
    }
}
