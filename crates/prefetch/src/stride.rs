//! Per-processor stride prefetcher.
//!
//! A reference-prediction-table-style detector over the miss stream: when
//! a processor's last two miss deltas agree (and are non-zero and
//! bounded), the next `degree` blocks along that stride are fetched. This
//! is the "widely-deployed" baseline the paper says provides only limited
//! benefit for pointer-chasing server workloads — but it *can* eliminate
//! compulsory misses on copies and scans, which temporal streaming cannot.

use crate::Prefetcher;
use tempstream_trace::{Block, CpuId};

/// Maximum tracked stride in blocks (matches the analysis detector).
const MAX_STRIDE: i64 = 64;

#[derive(Debug, Clone, Copy, Default)]
struct CpuState {
    last_block: Option<Block>,
    last_delta: Option<i64>,
    confident: bool,
}

/// The stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    states: Vec<CpuState>,
    degree: u32,
}

impl StridePrefetcher {
    /// Creates a prefetcher issuing `degree` blocks ahead once a stride is
    /// confirmed.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: u32) -> Self {
        assert!(degree > 0, "degree must be positive");
        StridePrefetcher {
            states: Vec::new(),
            degree,
        }
    }

    /// The configured prefetch degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_miss(&mut self, cpu: CpuId, block: Block) -> Vec<Block> {
        if self.states.len() <= cpu.index() {
            self.states.resize(cpu.index() + 1, CpuState::default());
        }
        let st = &mut self.states[cpu.index()];
        let delta = st.last_block.map(|lb| block.stride_from(lb));
        let usable = delta.is_some_and(|d| d != 0 && d.abs() <= MAX_STRIDE);
        st.confident = usable && delta == st.last_delta;
        let out = if st.confident {
            let d = delta.expect("confident implies delta");
            (1..=i64::from(self.degree))
                .map(|k| block.offset(d * k))
                .collect()
        } else {
            Vec::new()
        };
        st.last_delta = delta;
        st.last_block = Some(block);
        out
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: u64) -> Block {
        Block::new(x)
    }

    #[test]
    fn confirmed_stride_prefetches_ahead() {
        let mut p = StridePrefetcher::new(2);
        assert!(p.on_miss(CpuId::new(0), b(10)).is_empty());
        assert!(p.on_miss(CpuId::new(0), b(11)).is_empty()); // first delta
        assert_eq!(p.on_miss(CpuId::new(0), b(12)), vec![b(13), b(14)]);
        assert_eq!(p.on_miss(CpuId::new(0), b(13)), vec![b(14), b(15)]);
    }

    #[test]
    fn negative_and_page_strides_work() {
        let mut p = StridePrefetcher::new(1);
        p.on_miss(CpuId::new(0), b(300));
        p.on_miss(CpuId::new(0), b(236));
        assert_eq!(p.on_miss(CpuId::new(0), b(172)), vec![b(108)]);
    }

    #[test]
    fn broken_stride_resets_confidence() {
        let mut p = StridePrefetcher::new(1);
        p.on_miss(CpuId::new(0), b(1));
        p.on_miss(CpuId::new(0), b(2));
        assert!(p.on_miss(CpuId::new(0), b(100)).is_empty());
        assert!(p.on_miss(CpuId::new(0), b(5)).is_empty());
    }

    #[test]
    fn cpus_tracked_independently() {
        let mut p = StridePrefetcher::new(1);
        p.on_miss(CpuId::new(0), b(10));
        p.on_miss(CpuId::new(1), b(500));
        p.on_miss(CpuId::new(0), b(11));
        p.on_miss(CpuId::new(1), b(600));
        assert_eq!(p.on_miss(CpuId::new(0), b(12)), vec![b(13)]);
        assert!(p.on_miss(CpuId::new(1), b(700)).is_empty()); // delta 100 > MAX
    }

    #[test]
    fn zero_delta_never_confirms() {
        let mut p = StridePrefetcher::new(4);
        for _ in 0..5 {
            assert!(p.on_miss(CpuId::new(0), b(7)).is_empty());
        }
    }
}
