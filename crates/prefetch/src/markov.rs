//! Pair-wise address-correlation ("Markov") prefetcher.
//!
//! Joseph & Grunwald style: a table maps each miss block to the blocks
//! most recently observed to follow it; on a miss, the remembered
//! successors are fetched. Correlates *pairs* only — the design temporal
//! streams generalize to arbitrary-length sequences.

use crate::Prefetcher;
use tempstream_fxhash::FxHashMap;
use tempstream_trace::{Block, CpuId};

/// The Markov prefetcher.
#[derive(Debug, Clone)]
pub struct MarkovPrefetcher {
    /// block -> up to `ways` successors, most recent first.
    table: FxHashMap<Block, Vec<Block>>,
    ways: usize,
    max_entries: usize,
    last: Option<Block>,
}

impl MarkovPrefetcher {
    /// Creates a prefetcher remembering up to `ways` successors per block,
    /// bounded at `max_entries` table entries (FIFO-ish reset when full:
    /// real designs bound their correlation tables).
    ///
    /// # Panics
    ///
    /// Panics if `ways` or `max_entries` is zero.
    pub fn new(ways: usize, max_entries: usize) -> Self {
        assert!(ways > 0 && max_entries > 0, "degenerate markov table");
        MarkovPrefetcher {
            table: FxHashMap::default(),
            ways,
            max_entries,
            last: None,
        }
    }

    /// Table entries currently populated.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn on_miss(&mut self, _cpu: CpuId, block: Block) -> Vec<Block> {
        // Learn: the previous miss is followed by this one.
        if let Some(prev) = self.last {
            if self.table.len() >= self.max_entries && !self.table.contains_key(&prev) {
                self.table.clear();
            }
            let succ = self.table.entry(prev).or_default();
            if let Some(pos) = succ.iter().position(|&s| s == block) {
                succ.remove(pos);
            }
            succ.insert(0, block);
            succ.truncate(self.ways);
        }
        self.last = Some(block);
        // Predict: this block's remembered successors.
        self.table.get(&block).cloned().unwrap_or_default()
    }

    fn name(&self) -> &'static str {
        "markov"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: u64) -> Block {
        Block::new(x)
    }

    #[test]
    fn learns_pairs() {
        let mut p = MarkovPrefetcher::new(2, 1024);
        p.on_miss(CpuId::new(0), b(1));
        p.on_miss(CpuId::new(0), b(2));
        p.on_miss(CpuId::new(0), b(9));
        // Revisit 1: successor 2 is predicted.
        assert_eq!(p.on_miss(CpuId::new(0), b(1)), vec![b(2)]);
    }

    #[test]
    fn most_recent_successor_first() {
        let mut p = MarkovPrefetcher::new(2, 1024);
        for pair in [(1, 2), (1, 3)] {
            p.on_miss(CpuId::new(0), b(pair.0));
            p.on_miss(CpuId::new(0), b(pair.1));
        }
        assert_eq!(p.on_miss(CpuId::new(0), b(1)), vec![b(3), b(2)]);
    }

    #[test]
    fn ways_bound_successors() {
        let mut p = MarkovPrefetcher::new(1, 1024);
        for pair in [(1, 2), (1, 3), (1, 4)] {
            p.on_miss(CpuId::new(0), b(pair.0));
            p.on_miss(CpuId::new(0), b(pair.1));
        }
        assert_eq!(p.on_miss(CpuId::new(0), b(1)), vec![b(4)]);
    }

    #[test]
    fn capacity_reset() {
        let mut p = MarkovPrefetcher::new(1, 2);
        for x in 0..10u64 {
            p.on_miss(CpuId::new(0), b(x));
        }
        assert!(p.entries() <= 2);
    }

    #[test]
    fn cold_block_predicts_nothing() {
        let mut p = MarkovPrefetcher::new(2, 16);
        assert!(p.on_miss(CpuId::new(0), b(77)).is_empty());
    }
}
