//! Prefetchers over miss traces.
//!
//! The paper characterizes temporal streams because "over a decade of
//! research" builds prefetchers on them (§1-2). This crate closes the
//! loop: it implements the three predictor families the paper contrasts
//! and evaluates them on the suite's miss traces:
//!
//! - [`stride::StridePrefetcher`] — the widely-deployed baseline; covers
//!   bulk copies and table scans, "only limited benefit" elsewhere;
//! - [`markov::MarkovPrefetcher`] — pair-wise address correlation (Joseph
//!   & Grunwald style), the pre-stream correlating design;
//! - [`temporal::TemporalPrefetcher`] — temporal streaming (Wenisch et
//!   al. \[25\] style): a global miss log plus a head index; on a miss that
//!   hits the index, the recorded stream is replayed either to a fixed
//!   depth or adaptively while predictions keep hitting.
//!
//! [`eval::evaluate`] measures coverage and accuracy with a simple
//! prefetch-buffer model; `reproduce`-style output lives in the bench
//! crate's `prefetch_eval` binary.
//!
//! # Example
//!
//! ```
//! use tempstream_prefetch::prelude::*;
//! use tempstream_trace::prelude::*;
//!
//! // A miss trace where the sequence [8, 9, 10] recurs.
//! let mut t: MissTrace<MissClass> = MissTrace::new(1);
//! for b in [8u64, 9, 10, 50, 8, 9, 10] {
//!     t.push(MissRecord {
//!         block: Block::new(b),
//!         cpu: CpuId::new(0),
//!         thread: ThreadId::new(0),
//!         function: FunctionId::new(0),
//!         class: MissClass::Replacement,
//!     });
//! }
//! let mut p = TemporalPrefetcher::fixed(4);
//! let e = evaluate(&mut p, t.records(), 64);
//! assert!(e.covered > 0, "the second occurrence is predicted");
//! ```

pub mod eval;
pub mod markov;
pub mod stride;
pub mod temporal;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::eval::{evaluate, Evaluation};
    pub use crate::markov::MarkovPrefetcher;
    pub use crate::stride::StridePrefetcher;
    pub use crate::temporal::TemporalPrefetcher;
    pub use crate::Prefetcher;
}

pub use eval::{evaluate, Evaluation, OnlineEvaluator};
pub use markov::MarkovPrefetcher;
pub use stride::StridePrefetcher;
pub use temporal::TemporalPrefetcher;

use tempstream_trace::{Block, CpuId};

/// A miss-stream-driven prefetcher.
///
/// The evaluation harness calls [`on_miss`](Prefetcher::on_miss) for every
/// demand miss in trace order; the prefetcher returns the blocks it would
/// fetch.
pub trait Prefetcher {
    /// Observes a demand miss and returns the predicted future blocks.
    fn on_miss(&mut self, cpu: CpuId, block: Block) -> Vec<Block>;

    /// Short display name.
    fn name(&self) -> &'static str;
}
