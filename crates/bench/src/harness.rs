//! A dependency-free micro-benchmark harness with a criterion-shaped API.
//!
//! The workspace builds fully offline, so the benches cannot pull the
//! `criterion` crate from a registry. This module provides the small slice
//! of criterion's surface the benches actually use — [`Criterion`],
//! benchmark groups, [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple
//! warmup-then-sample timing loop. Porting a bench file is a one-line
//! import change.
//!
//! Reported numbers are wall-clock medians over `sample_size` samples,
//! with elements/second derived from [`Throughput::Elements`] when set.
//! They are indicative, not statistically rigorous; the point of keeping
//! the benches alive is catching order-of-magnitude regressions.

use std::hint::black_box;
use std::time::Instant;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured closure processes this many logical elements.
    Elements(u64),
}

/// A named group of benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark: a warmup run, then `sample_size` samples.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { elapsed_ns: 0 };
        // Warmup (untimed for reporting, but the closure still runs).
        f(&mut b);
        let mut samples: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed_ns = 0;
            f(&mut b);
            samples.push(b.elapsed_ns);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let line = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0 => {
                let eps = (n as f64) * 1e9 / median as f64;
                format!("{name:<40} {median:>12} ns/iter {eps:>14.0} elem/s")
            }
            _ => format!("{name:<40} {median:>12} ns/iter"),
        };
        println!("  {line}");
        self
    }

    /// Ends the group (prints nothing; provided for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to the measured closure; times the inner workload.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `f` once under the timer, accumulating its wall-clock cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Declares a function that runs the listed benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        let mut runs = 0u32;
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        g.finish();
        // warmup + 3 samples
        assert_eq!(runs, 4);
    }
}
