//! A dependency-free micro-benchmark harness with a criterion-shaped API.
//!
//! The workspace builds fully offline, so the benches cannot pull the
//! `criterion` crate from a registry. This module provides the small slice
//! of criterion's surface the benches actually use — [`Criterion`],
//! benchmark groups, [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple
//! warmup-then-sample timing loop. Porting a bench file is a one-line
//! import change.
//!
//! Reported numbers are wall-clock medians over `sample_size` samples,
//! with elements/second derived from [`Throughput::Elements`] when set.
//! They are indicative, not statistically rigorous; the point of keeping
//! the benches alive is catching order-of-magnitude regressions.
//!
//! Besides the console table, each group writes its results to
//! `BENCH_<group>.json` in the working directory (set
//! `TEMPSTREAM_BENCH_DIR` to redirect) so runs can be archived and
//! diffed mechanically. `TEMPSTREAM_BENCH_SAMPLES` overrides every
//! group's sample count — CI's perf smoke gate uses it to trade
//! precision for wall-clock. A group may name one benchmark as its
//! [`baseline`](BenchmarkGroup::baseline); every other result then
//! carries a `speedup_vs_<baseline>` ratio (>1 means faster than the
//! baseline) in the JSON.

use std::hint::black_box;
use std::time::Instant;
use tempstream_obsv::json::Json;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: sample_override().unwrap_or(10),
            throughput: None,
            baseline: None,
            results: Vec::new(),
        }
    }
}

/// The `TEMPSTREAM_BENCH_SAMPLES` override, if set and parseable.
fn sample_override() -> Option<usize> {
    std::env::var("TEMPSTREAM_BENCH_SAMPLES")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

/// One finished benchmark's numbers, as written to `BENCH_<group>.json`.
#[derive(Debug)]
struct BenchResult {
    name: String,
    median_ns: u64,
    elements: Option<u64>,
}

impl BenchResult {
    fn to_json(&self, baseline: Option<(&str, u64)>) -> Json {
        let mut o = Json::obj();
        o.set("name", Json::Str(self.name.clone()));
        o.set("median_ns", Json::UInt(self.median_ns));
        if let Some(n) = self.elements {
            o.set("elements", Json::UInt(n));
            o.set(
                "elements_per_sec",
                Json::Float(n as f64 * 1e9 / self.median_ns.max(1) as f64),
            );
        }
        if let Some((base_name, base_ns)) = baseline {
            if self.name != base_name {
                o.set(
                    &format!("speedup_vs_{base_name}"),
                    Json::Float(base_ns as f64 / self.median_ns.max(1) as f64),
                );
            }
        }
        o
    }
}

/// Per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured closure processes this many logical elements.
    Elements(u64),
}

/// A named group of benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    baseline: Option<String>,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark. The
    /// `TEMPSTREAM_BENCH_SAMPLES` environment variable, when set, wins
    /// over the programmatic value.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = sample_override().unwrap_or(n).max(1);
        self
    }

    /// Names the benchmark every other result in this group is compared
    /// against: the JSON for each non-baseline result gains a
    /// `speedup_vs_<name>` ratio (baseline median over its median).
    pub fn baseline<N: std::fmt::Display>(&mut self, name: N) -> &mut Self {
        self.baseline = Some(name.to_string());
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark: a warmup run, then `sample_size` samples.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { elapsed_ns: 0 };
        // Warmup (untimed for reporting, but the closure still runs).
        f(&mut b);
        let mut samples: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed_ns = 0;
            f(&mut b);
            samples.push(b.elapsed_ns);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let line = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0 => {
                let eps = (n as f64) * 1e9 / median as f64;
                format!("{name:<40} {median:>12} ns/iter {eps:>14.0} elem/s")
            }
            _ => format!("{name:<40} {median:>12} ns/iter"),
        };
        println!("  {line}");
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns: median.min(u128::from(u64::MAX)) as u64,
            elements: self.throughput.map(|Throughput::Elements(n)| n),
        });
        self
    }

    /// Ends the group, writing `BENCH_<group>.json` (console output is
    /// unchanged; the file lands in `TEMPSTREAM_BENCH_DIR` or the
    /// working directory).
    pub fn finish(&mut self) {
        let baseline = self.baseline.as_deref().and_then(|base| {
            self.results
                .iter()
                .find(|r| r.name == base)
                .map(|r| (base, r.median_ns))
        });
        let mut doc = Json::obj();
        doc.set("group", Json::Str(self.name.clone()));
        doc.set("sample_size", Json::UInt(self.sample_size as u64));
        // Scaling numbers are meaningless without the parallelism they
        // ran under; archive it next to the results (0 = unknown).
        doc.set(
            "host_cores",
            Json::UInt(std::thread::available_parallelism().map_or(0, |n| n.get() as u64)),
        );
        if let Some((base, _)) = baseline {
            doc.set("baseline", Json::Str(base.to_string()));
        }
        doc.set(
            "results",
            Json::Arr(self.results.iter().map(|r| r.to_json(baseline)).collect()),
        );
        let file = format!(
            "BENCH_{}.json",
            self.name.replace(
                |c: char| !c.is_ascii_alphanumeric() && c != '_' && c != '-',
                "_"
            )
        );
        let path = match std::env::var_os("TEMPSTREAM_BENCH_DIR") {
            Some(dir) => std::path::PathBuf::from(dir).join(file),
            None => std::path::PathBuf::from(file),
        };
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("warning: could not write {} ({e})", path.display());
        }
    }
}

/// Passed to the measured closure; times the inner workload.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `f` once under the timer, accumulating its wall-clock cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Declares a function that runs the listed benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the `TEMPSTREAM_BENCH_DIR` process
    /// environment.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bench_function_runs_closure_and_writes_json() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("tempstream-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("TEMPSTREAM_BENCH_DIR", &dir);

        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        let mut runs = 0u32;
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        g.finish();
        // warmup + 3 samples
        assert_eq!(runs, 4);

        let text = std::fs::read_to_string(dir.join("BENCH_selftest.json")).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("group").and_then(Json::as_str), Some("selftest"));
        assert!(
            doc.get("host_cores").and_then(Json::as_u64) >= Some(1),
            "host parallelism is archived with the results"
        );
        let Some(Json::Arr(results)) = doc.get("results") else {
            panic!("results array missing");
        };
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("elements").and_then(Json::as_u64), Some(10));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_adds_speedup_ratios() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("tempstream-bench-bl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("TEMPSTREAM_BENCH_DIR", &dir);

        let mut c = Criterion::default();
        let mut g = c.benchmark_group("speedtest");
        g.sample_size(2).baseline("slow");
        g.bench_function("slow", |b| {
            b.iter(|| std::thread::sleep(std::time::Duration::from_millis(8)));
        });
        g.bench_function("fast", |b| {
            b.iter(|| std::thread::sleep(std::time::Duration::from_millis(1)));
        });
        g.finish();

        let text = std::fs::read_to_string(dir.join("BENCH_speedtest.json")).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("baseline").and_then(Json::as_str), Some("slow"));
        let Some(Json::Arr(results)) = doc.get("results") else {
            panic!("results array missing");
        };
        assert!(
            results[0].get("speedup_vs_slow").is_none(),
            "baseline must not report a self-speedup"
        );
        let speedup = results[1]
            .get("speedup_vs_slow")
            .and_then(Json::as_f64)
            .expect("non-baseline result must report speedup_vs_slow");
        assert!(speedup > 1.0, "8ms baseline / 1ms sample, got {speedup}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
