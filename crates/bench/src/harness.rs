//! A dependency-free micro-benchmark harness with a criterion-shaped API.
//!
//! The workspace builds fully offline, so the benches cannot pull the
//! `criterion` crate from a registry. This module provides the small slice
//! of criterion's surface the benches actually use — [`Criterion`],
//! benchmark groups, [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple
//! warmup-then-sample timing loop. Porting a bench file is a one-line
//! import change.
//!
//! Reported numbers are wall-clock medians over `sample_size` samples,
//! with elements/second derived from [`Throughput::Elements`] when set.
//! They are indicative, not statistically rigorous; the point of keeping
//! the benches alive is catching order-of-magnitude regressions.
//!
//! Besides the console table, each group writes its results to
//! `BENCH_<group>.json` in the working directory (set
//! `TEMPSTREAM_BENCH_DIR` to redirect) so runs can be archived and
//! diffed mechanically.

use std::hint::black_box;
use std::time::Instant;
use tempstream_obsv::json::Json;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            results: Vec::new(),
        }
    }
}

/// One finished benchmark's numbers, as written to `BENCH_<group>.json`.
#[derive(Debug)]
struct BenchResult {
    name: String,
    median_ns: u64,
    elements: Option<u64>,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("name", Json::Str(self.name.clone()));
        o.set("median_ns", Json::UInt(self.median_ns));
        if let Some(n) = self.elements {
            o.set("elements", Json::UInt(n));
            o.set(
                "elements_per_sec",
                Json::Float(n as f64 * 1e9 / self.median_ns.max(1) as f64),
            );
        }
        o
    }
}

/// Per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured closure processes this many logical elements.
    Elements(u64),
}

/// A named group of benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark: a warmup run, then `sample_size` samples.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { elapsed_ns: 0 };
        // Warmup (untimed for reporting, but the closure still runs).
        f(&mut b);
        let mut samples: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed_ns = 0;
            f(&mut b);
            samples.push(b.elapsed_ns);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let line = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0 => {
                let eps = (n as f64) * 1e9 / median as f64;
                format!("{name:<40} {median:>12} ns/iter {eps:>14.0} elem/s")
            }
            _ => format!("{name:<40} {median:>12} ns/iter"),
        };
        println!("  {line}");
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns: median.min(u128::from(u64::MAX)) as u64,
            elements: self.throughput.map(|Throughput::Elements(n)| n),
        });
        self
    }

    /// Ends the group, writing `BENCH_<group>.json` (console output is
    /// unchanged; the file lands in `TEMPSTREAM_BENCH_DIR` or the
    /// working directory).
    pub fn finish(&mut self) {
        let mut doc = Json::obj();
        doc.set("group", Json::Str(self.name.clone()));
        doc.set("sample_size", Json::UInt(self.sample_size as u64));
        doc.set(
            "results",
            Json::Arr(self.results.iter().map(BenchResult::to_json).collect()),
        );
        let file = format!(
            "BENCH_{}.json",
            self.name.replace(
                |c: char| !c.is_ascii_alphanumeric() && c != '_' && c != '-',
                "_"
            )
        );
        let path = match std::env::var_os("TEMPSTREAM_BENCH_DIR") {
            Some(dir) => std::path::PathBuf::from(dir).join(file),
            None => std::path::PathBuf::from(file),
        };
        if let Err(e) = std::fs::write(&path, doc.render() + "\n") {
            eprintln!("warning: could not write {} ({e})", path.display());
        }
    }
}

/// Passed to the measured closure; times the inner workload.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `f` once under the timer, accumulating its wall-clock cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Declares a function that runs the listed benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure_and_writes_json() {
        let dir = std::env::temp_dir().join(format!("tempstream-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("TEMPSTREAM_BENCH_DIR", &dir);

        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        let mut runs = 0u32;
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        g.finish();
        // warmup + 3 samples
        assert_eq!(runs, 4);

        let text = std::fs::read_to_string(dir.join("BENCH_selftest.json")).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("group").and_then(Json::as_str), Some("selftest"));
        let Some(Json::Arr(results)) = doc.get("results") else {
            panic!("results array missing");
        };
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("elements").and_then(Json::as_u64), Some(10));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
