//! Prefetcher evaluation over the suite's miss traces.
//!
//! Quantifies the paper's motivation: stride prefetching covers copies
//! and scans but little else; pair-correlation helps; replaying whole
//! temporal streams covers the most — and fixed replay depths leave
//! coverage on the table relative to adaptive streaming (§4.4's "no one
//! size fits all").
//!
//! ```text
//! prefetch_eval [--quick] [--seed N]
//! ```

use tempstream_coherence::{MultiChipConfig, MultiChipSim};
use tempstream_prefetch::{
    evaluate, MarkovPrefetcher, Prefetcher, StridePrefetcher, TemporalPrefetcher,
};
use tempstream_trace::{MissClass, MissTrace};
use tempstream_workloads::{Scale, Workload, WorkloadSession};

/// Prefetch-buffer capacity in blocks (a generous 64 KB).
const BUFFER_BLOCKS: usize = 1024;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x715C_2008);

    let (config, scale_div) = if quick {
        (MultiChipConfig::small(8), 20)
    } else {
        (MultiChipConfig::paper(), 1)
    };

    println!("== Prefetcher coverage on multi-chip off-chip miss traces ==");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "workload", "misses", "stride", "markov", "temporal-1", "temporal-8", "temporal-adpt"
    );
    let mut depth_tables = Vec::new();
    for w in Workload::ALL {
        let trace = collect(w, config, scale_div, seed);
        let mut row = format!("{:<8} {:>10}", w.name(), trace.len());
        let prefetchers: Vec<Box<dyn Prefetcher>> = vec![
            Box::new(StridePrefetcher::new(4)),
            Box::new(MarkovPrefetcher::new(2, 1 << 20)),
            Box::new(TemporalPrefetcher::fixed(1)),
            Box::new(TemporalPrefetcher::fixed(8)),
            Box::new(TemporalPrefetcher::adaptive(4, 32)),
        ];
        for mut p in prefetchers {
            let e = evaluate(p.as_mut(), trace.records(), BUFFER_BLOCKS);
            row.push_str(&format!("{:>11.1}%", e.coverage() * 100.0));
        }
        println!("{row}");

        // Depth sweep for the ablation table below.
        let mut sweeps = Vec::new();
        for depth in [1u32, 2, 4, 8, 16, 32] {
            let mut p = TemporalPrefetcher::fixed(depth);
            let e = evaluate(&mut p, trace.records(), BUFFER_BLOCKS);
            sweeps.push((depth, e.coverage()));
        }
        let mut adaptive = TemporalPrefetcher::adaptive(4, 32);
        let ae = evaluate(&mut adaptive, trace.records(), BUFFER_BLOCKS);
        depth_tables.push((w, sweeps, ae.coverage()));
    }

    println!("\n== Ablation: temporal-stream coverage vs fixed replay depth ==");
    println!("(the paper's §4.4: median streams are ~8-10 misses and lengths");
    println!(" vary over three orders of magnitude, so no fixed depth wins)");
    print!("{:<8}", "workload");
    for depth in [1, 2, 4, 8, 16, 32] {
        print!("{:>9}", format!("d={depth}"));
    }
    println!("{:>10}", "adaptive");
    for (w, sweeps, adaptive) in depth_tables {
        print!("{:<8}", w.name());
        for (_, cov) in sweeps {
            print!("{:>8.1}%", cov * 100.0);
        }
        println!("{:>9.1}%", adaptive * 100.0);
    }
}

fn collect(
    w: Workload,
    config: MultiChipConfig,
    scale_div: u64,
    seed: u64,
) -> MissTrace<MissClass> {
    let scale = w.default_scale();
    let scale = Scale {
        warmup_ops: scale.warmup_ops / scale_div,
        ops: (scale.ops / scale_div).max(50),
    };
    eprintln!("[prefetch_eval] collecting {w} ({} ops)...", scale.ops);
    let mut session = WorkloadSession::new(w, config.nodes, seed);
    let mut sim = MultiChipSim::new(config);
    sim.set_recording(false);
    session.run(&mut sim, scale.warmup_ops);
    sim.set_recording(true);
    let stats = session.run(&mut sim, scale.ops);
    sim.finish(stats.instructions)
}
