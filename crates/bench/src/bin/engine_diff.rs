//! Engine differential digest for the CI gate.
//!
//! Feeds seeded random traces into an `AnalysisEngine` in `--chunks N`
//! interleaved chunks — snapshotting every accessor at each chunk
//! boundary, exactly as an online consumer would — and prints a
//! deterministic digest of the final snapshots. `ci.sh` runs this at
//! `--chunks 1` (one batch feed) and `--chunks 2` / `--chunks 7`
//! (incremental feeds) and byte-diffs the outputs: any divergence
//! between incremental-interleaved and batch feeding fails CI, the
//! same shape as the PR-2 serial/parallel determinism gate.
//!
//! ```text
//! engine_diff [--chunks N] [--records N]
//! ```

use tempstream_core::engine::{AnalysisEngine, EngineConfig};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::rng::SplitMix64;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

fn seeded_records(seed: u64, n: usize, block_universe: u64) -> Vec<MissRecord<MissClass>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| MissRecord {
            block: Block::new(rng.next_u64() % block_universe),
            cpu: CpuId::new((rng.next_u64() % 4) as u32),
            thread: ThreadId::new((rng.next_u64() % 8) as u32),
            function: FunctionId::new((rng.next_u64() % 17) as u32),
            class: MissClass::Replacement,
        })
        .collect()
}

/// Prints one engine's full answer set as stable, diffable lines.
fn print_digest(label: &str, engine: &mut AnalysisEngine<MissClass>) {
    let s = engine.stream_counts();
    let c = engine.coverage();
    let j = engine.joint_breakdown();
    println!(
        "{label} version={} overflow={}",
        engine.version(),
        engine.overflow()
    );
    println!(
        "{label} streams non_rep={} new={} rec={} distinct={}",
        s.non_repetitive, s.new_stream, s.recurring_stream, s.distinct_streams
    );
    println!(
        "{label} coverage total={} covered={} issued={}",
        c.total, c.covered, c.issued
    );
    println!(
        "{label} joint nn={} ns={} rn={} rs={}",
        j.non_repetitive_non_strided,
        j.non_repetitive_strided,
        j.repetitive_non_strided,
        j.repetitive_strided
    );
    let top: Vec<String> = engine
        .origin_table()
        .top_n(8)
        .into_iter()
        .map(|(f, n)| format!("{f}:{n}"))
        .collect();
    println!("{label} origins {}", top.join(","));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let chunks = get("--chunks", 1).max(1);
    let records_n = get("--records", 20_000);

    // Two trace shapes (dense recurrence, sparse recurrence) and a
    // retention-capped config: the cap must trip at the same record
    // regardless of chunking.
    let cases = [
        ("dense", 0xd1ff_0001u64, 131u64, EngineConfig::default()),
        ("sparse", 0xd1ff_0002, 4099, EngineConfig::default()),
        (
            "capped",
            0xd1ff_0003,
            131,
            EngineConfig {
                max_retained: records_n / 3,
                ..EngineConfig::default()
            },
        ),
    ];
    for (name, seed, universe, config) in cases {
        let records = seeded_records(seed, records_n, universe);
        let mut engine: AnalysisEngine<MissClass> = AnalysisEngine::new(config);
        let chunk_len = records.len().div_ceil(chunks).max(1);
        for chunk in records.chunks(chunk_len) {
            engine.push_records(chunk);
            // Interleaved mid-stream reads: these must not perturb the
            // final digest (memoization may only skip work, never
            // change an answer).
            let _ = engine.stream_counts();
            let _ = engine.joint_breakdown();
        }
        print_digest(name, &mut engine);
    }
}
