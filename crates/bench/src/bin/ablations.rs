//! Design-space ablations called out in DESIGN.md §6.
//!
//! ```text
//! ablations [l2|cores|window|all] [--quick]
//! ```
//!
//! - `l2`: off-chip miss-class mix vs multi-chip L2 capacity (the paper's
//!   choice of 8 MB, and \[3\]'s coherence-dominates-at-large-caches);
//! - `cores`: single-chip intra-chip coherence share vs core count;
//! - `window`: measured stream fraction vs analysis-window length (how
//!   much history SEQUITUR needs before recurrences become visible).

use tempstream_cache::CacheConfig;
use tempstream_coherence::{MultiChipConfig, MultiChipSim, SingleChipConfig, SingleChipSim};
use tempstream_core::streams::StreamAnalysis;
use tempstream_trace::{IntraChipClass, MissClass};
use tempstream_workloads::{Workload, WorkloadSession};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("all", String::as_str);
    let ops = if quick { 700 } else { 6_000 };
    match cmd {
        "l2" => l2_sweep(ops),
        "cores" => core_sweep(ops),
        "window" => window_sweep(ops),
        "all" => {
            l2_sweep(ops);
            core_sweep(ops);
            window_sweep(ops);
        }
        other => {
            eprintln!("unknown ablation {other}; use l2|cores|window|all");
            std::process::exit(2);
        }
    }
}

fn l2_sweep(ops: u64) {
    println!("== Ablation: OLTP multi-chip miss-class mix vs per-node L2 capacity ==");
    println!(
        "{:<8} {:>12} {:>14} {:>13} {:>11}",
        "L2", "Compulsory", "I/O Coherence", "Replacement", "Coherence"
    );
    for l2_kb in [256u64, 1024, 4096, 8192, 16384] {
        let mut config = MultiChipConfig::paper();
        config.l2 = CacheConfig::new(l2_kb * 1024, 16);
        let mut session = WorkloadSession::new(Workload::Oltp, config.nodes, 1);
        let mut sim = MultiChipSim::new(config);
        sim.set_recording(false);
        session.run(&mut sim, ops / 6);
        sim.set_recording(true);
        session.run(&mut sim, ops);
        let trace = sim.finish(1);
        let total = trace.len().max(1) as f64;
        let pct = |c| trace.count_class(c) as f64 * 100.0 / total;
        println!(
            "{:<8} {:>11.1}% {:>13.1}% {:>12.1}% {:>10.1}%",
            if l2_kb >= 1024 {
                format!("{}MB", l2_kb / 1024)
            } else {
                format!("{l2_kb}KB")
            },
            pct(MissClass::Compulsory),
            pct(MissClass::IoCoherence),
            pct(MissClass::Replacement),
            pct(MissClass::Coherence),
        );
    }
    println!();
}

fn core_sweep(ops: u64) {
    println!("== Ablation: Apache intra-chip coherence share vs core count ==");
    println!(
        "{:<8} {:>16} {:>18}",
        "cores", "coherence (L1+L2)", "of intra misses"
    );
    for cores in [1u32, 2, 4, 8] {
        let mut config = SingleChipConfig::paper();
        config.cores = cores;
        let mut session = WorkloadSession::new(Workload::Apache, cores, 1);
        let mut sim = SingleChipSim::new(config);
        sim.set_recording(false);
        session.run(&mut sim, ops / 6);
        sim.set_recording(true);
        session.run(&mut sim, ops);
        let traces = sim.finish(1);
        let coh = traces
            .intra_chip
            .count_class(IntraChipClass::CoherencePeerL1)
            + traces.intra_chip.count_class(IntraChipClass::CoherenceL2);
        println!(
            "{:<8} {:>16} {:>17.1}%",
            cores,
            coh,
            coh as f64 * 100.0 / traces.intra_chip.len().max(1) as f64
        );
    }
    println!();
}

fn window_sweep(ops: u64) {
    println!("== Ablation: OLTP multi-chip stream fraction vs analysis window ==");
    println!("{:<12} {:>14}", "window", "% in streams");
    let config = MultiChipConfig::paper();
    let mut session = WorkloadSession::new(Workload::Oltp, config.nodes, 1);
    let mut sim = MultiChipSim::new(config);
    sim.set_recording(false);
    session.run(&mut sim, ops / 6);
    sim.set_recording(true);
    session.run(&mut sim, ops);
    let trace = sim.finish(1);
    for window in [5_000usize, 20_000, 80_000, 320_000, trace.len()] {
        let window = window.min(trace.len());
        let analysis = StreamAnalysis::of_records(&trace.records()[..window], trace.num_cpus());
        println!(
            "{:<12} {:>13.1}%",
            window,
            analysis.stream_fraction() * 100.0
        );
        if window == trace.len() {
            break;
        }
    }
    println!();
}
