//! Regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [all|table1|table2|fig1|fig2|fig3|fig4|table3|table4|table5]
//!           [--quick] [--seed N] [--jobs N] [--metrics-json PATH]
//! ```
//!
//! `--quick` runs reduced systems and smoke-scale workloads (seconds);
//! the default runs the paper configuration (16-node DSM + 4-core CMP,
//! 64 KB L1 / 8 MB L2) at full measurement scale. `--jobs N` runs the
//! pipeline on N worker threads via `tempstream-runtime` (default: the
//! host's available parallelism); results are bit-identical to
//! `--jobs 1`, and the per-stage summary goes to stderr so stdout can
//! be diffed across job counts. `--metrics-json PATH` additionally
//! writes the run's observability registry (stage spans, simulator
//! miss-class counters, SEQUITUR grammar stats) as JSON to PATH —
//! stdout stays byte-identical with or without the flag.

use std::collections::HashMap;
use std::time::Instant;
use tempstream_core::experiment::{Experiment, ExperimentConfig, WorkloadResults};
use tempstream_core::functions::format_function_table;
use tempstream_core::report::{format_length_cdf, format_origin_table, format_reuse_pdf};
use tempstream_obsv::{frac, json::Json};
use tempstream_runtime::{RunSummary, RuntimeConfig};
use tempstream_trace::{IntraChipClass, MissCategory, MissClass};
use tempstream_workloads::{spec, Workload};

/// Parsed command line: flags first, then one positional command.
struct Options {
    quick: bool,
    seed: Option<u64>,
    jobs: usize,
    metrics_json: Option<String>,
    cmd: String,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut quick = false;
    let mut seed = None;
    let mut jobs = None;
    let mut metrics_json = None;
    let mut positionals = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed requires a value")?;
                seed = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --seed value: {v}"))?,
                );
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs requires a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid --jobs value: {v}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                jobs = Some(n);
            }
            "--metrics-json" => {
                let v = it.next().ok_or("--metrics-json requires a path")?;
                metrics_json = Some(v.clone());
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => positionals.push(other.to_string()),
        }
    }
    if positionals.len() > 1 {
        return Err(format!(
            "expected at most one command, got: {}",
            positionals.join(" ")
        ));
    }
    Ok(Options {
        quick,
        seed,
        jobs: jobs.unwrap_or_else(RuntimeConfig::default_workers),
        metrics_json,
        cmd: positionals.pop().unwrap_or_else(|| "all".to_string()),
    })
}

/// The workloads a command touches through the [`Runner`] cache, for
/// parallel prefetching. `None` means the command runs no workloads (or
/// manages its own, like `spatial` and `stability`).
fn workload_set(cmd: &str) -> Option<Vec<Workload>> {
    match cmd {
        "all" | "fig1" | "fig2" | "fig3" | "fig4" | "stats" | "functions" => {
            Some(Workload::ALL.to_vec())
        }
        "table3" => Some(vec![Workload::Apache, Workload::Zeus]),
        "table4" => Some(vec![Workload::Oltp]),
        "table5" => Some(vec![Workload::DssQ1, Workload::DssQ2, Workload::DssQ17]),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: reproduce [command] [--quick] [--seed N] [--jobs N] [--metrics-json PATH]\n\
                 commands: all table1 table2 fig1 fig2 fig3 fig4 table3 table4 table5 stats functions spatial stability"
            );
            std::process::exit(2);
        }
    };

    let mut cfg = if opts.quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    };
    if let Some(s) = opts.seed {
        cfg = cfg.with_seed(s);
    }

    let mut runner = Runner::new(cfg, opts.jobs);
    if opts.jobs > 1 {
        if let Some(set) = workload_set(&opts.cmd) {
            runner.prefetch(&set);
        }
    }
    match opts.cmd.as_str() {
        "table1" => print_table1(),
        "table2" => print_table2(),
        "fig1" => print_fig1(&mut runner),
        "fig2" => print_fig2(&mut runner),
        "fig3" => print_fig3(&mut runner),
        "fig4" => print_fig4(&mut runner),
        "table3" => print_table3(&mut runner),
        "table4" => print_table4(&mut runner),
        "table5" => print_table5(&mut runner),
        "stats" => print_stats(&mut runner),
        "functions" => print_functions(&mut runner),
        "spatial" => print_spatial(&cfg),
        "stability" => print_stability(&cfg),
        "all" => {
            print_table1();
            print_table2();
            print_fig1(&mut runner);
            print_fig2(&mut runner);
            print_fig3(&mut runner);
            print_fig4(&mut runner);
            print_table3(&mut runner);
            print_table4(&mut runner);
            print_table5(&mut runner);
            print_stats(&mut runner);
            print_functions(&mut runner);
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!(
            "commands: all table1 table2 fig1 fig2 fig3 fig4 table3 table4 table5 stats functions spatial stability"
        );
            std::process::exit(2);
        }
    }

    if let Some(path) = &opts.metrics_json {
        if let Err(e) = write_metrics_json(path, &opts, runner.last_summary.as_ref()) {
            eprintln!("error: could not write metrics to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[reproduce] metrics written to {path}");
    }
}

/// Serializes the global observability registry (plus run metadata and,
/// for parallel runs, the pipeline summary) to `path`.
fn write_metrics_json(
    path: &str,
    opts: &Options,
    summary: Option<&RunSummary>,
) -> std::io::Result<()> {
    let mut meta = Json::obj();
    meta.set("command", Json::Str(opts.cmd.clone()));
    meta.set("quick", Json::Bool(opts.quick));
    meta.set("jobs", Json::UInt(opts.jobs as u64));
    if let Some(s) = opts.seed {
        meta.set("seed", Json::UInt(s));
    }

    let mut doc = Json::obj();
    doc.set("meta", meta);
    doc.set("metrics", tempstream_obsv::global().snapshot());
    doc.set(
        "runtime",
        summary.map_or(Json::Null, |s| {
            let mut r = Json::obj();
            r.set("workers", Json::UInt(s.workers as u64));
            r.set("wall_secs", Json::Float(s.wall.as_secs_f64()));
            r.set("utilization", Json::Float(s.utilization()));
            let mut stages = Json::obj();
            for st in &s.stages {
                let mut o = Json::obj();
                o.set("jobs", Json::UInt(st.jobs as u64));
                o.set("busy_secs", Json::Float(st.busy.as_secs_f64()));
                o.set("max_job_secs", Json::Float(st.max_job.as_secs_f64()));
                stages.set(st.stage.name(), o);
            }
            r.set("stages", stages);
            r.set(
                "max_injector_depth",
                Json::UInt(s.max_injector_depth as u64),
            );
            r.set("max_deque_depth", Json::UInt(s.max_deque_depth as u64));
            r.set("max_channel_depth", Json::UInt(s.max_channel_depth as u64));
            r.set("spilled_traces", Json::UInt(s.spilled_traces as u64));
            r.set("spilled_bytes", Json::UInt(s.spilled_bytes));
            r
        }),
    );
    std::fs::write(path, doc.render() + "\n")
}

/// Caches per-workload results so `all` runs each workload once.
struct Runner {
    cfg: ExperimentConfig,
    experiment: Experiment,
    jobs: usize,
    cache: HashMap<Workload, WorkloadResults>,
    last_summary: Option<RunSummary>,
}

impl Runner {
    fn new(cfg: ExperimentConfig, jobs: usize) -> Self {
        Runner {
            cfg,
            experiment: Experiment::new(cfg),
            jobs,
            cache: HashMap::new(),
            last_summary: None,
        }
    }

    /// Runs every uncached workload in `workloads` through the parallel
    /// pipeline in one batch, so independent workloads overlap.
    fn prefetch(&mut self, workloads: &[Workload]) {
        let missing: Vec<Workload> = workloads
            .iter()
            .copied()
            .filter(|w| !self.cache.contains_key(w))
            .collect();
        if missing.is_empty() {
            return;
        }
        eprintln!(
            "[reproduce] running {} workloads on {} worker threads ...",
            missing.len(),
            self.jobs
        );
        let (results, summary) = tempstream_runtime::run_workloads(
            &self.cfg,
            RuntimeConfig::with_workers(self.jobs),
            &missing,
        );
        for r in results {
            eprintln!(
                "[reproduce] {}: mc={} sc={} intra={} misses",
                r.workload,
                r.multi_chip.total_misses,
                r.single_chip.total_misses,
                r.intra_chip.total_misses
            );
            self.cache.insert(r.workload, r);
        }
        eprintln!("{summary}");
        self.last_summary = Some(summary);
    }

    fn results(&mut self, w: Workload) -> &WorkloadResults {
        if !self.cache.contains_key(&w) {
            if self.jobs > 1 {
                self.prefetch(&[w]);
            } else {
                let t = Instant::now();
                eprintln!("[reproduce] running {w} ...");
                let r = self.experiment.run_workload(w);
                eprintln!(
                    "[reproduce] {w}: mc={} sc={} intra={} misses in {:.1}s",
                    r.multi_chip.total_misses,
                    r.single_chip.total_misses,
                    r.intra_chip.total_misses,
                    t.elapsed().as_secs_f64()
                );
                self.cache.insert(w, r);
            }
        }
        &self.cache[&w]
    }
}

fn rule(title: &str) {
    println!("\n==== {title} ====");
}

fn print_table1() {
    rule("Table 1: Application parameters");
    for s in spec::table1() {
        println!("{:<7} [{}]", s.name, s.app_class);
        println!("    paper: {}", s.paper_config);
        println!("    model: {}", s.model_config);
    }
}

fn print_table2() {
    rule("Table 2: Miss categories");
    for (title, cats) in [
        (
            "Cross-application categories",
            MissCategory::CROSS_APP.to_vec(),
        ),
        ("Web-specific categories", MissCategory::WEB.to_vec()),
        ("DB2-specific categories", MissCategory::DB2.to_vec()),
    ] {
        println!("-- {title}");
        for c in cats {
            println!("  {:<34} {}", c.label(), c.description());
        }
    }
}

fn print_fig1(r: &mut Runner) {
    rule("Figure 1 (left): off-chip read misses per 1000 instructions");
    println!(
        "{:<8} {:<12} {:>11} {:>13} {:>12} {:>11} {:>8}",
        "workload", "context", "Compulsory", "I/O Coherence", "Replacement", "Coherence", "total"
    );
    for w in Workload::ALL {
        let res = r.results(w);
        for (ctx, b) in [
            ("multi-chip", &res.multi_chip.breakdown),
            ("single-chip", &res.single_chip.breakdown),
        ] {
            println!(
                "{:<8} {:<12} {:>11.4} {:>13.4} {:>12.4} {:>11.4} {:>8.3}",
                w.name(),
                ctx,
                b.mpki(MissClass::Compulsory),
                b.mpki(MissClass::IoCoherence),
                b.mpki(MissClass::Replacement),
                b.mpki(MissClass::Coherence),
                b.total_mpki()
            );
        }
    }
    rule("Figure 1 (right): intra-chip (L1) read misses per 1000 instructions");
    println!(
        "{:<8} {:>9} {:>15} {:>14} {:>18}",
        "workload", "Off-chip", "Replacement:L2", "Coherence:L2", "Coherence:Peer-L1"
    );
    for w in Workload::ALL {
        let b = &r.results(w).intra_chip.breakdown;
        println!(
            "{:<8} {:>9.4} {:>15.4} {:>14.4} {:>18.4}",
            w.name(),
            b.mpki(IntraChipClass::OffChip),
            b.mpki(IntraChipClass::ReplacementL2),
            b.mpki(IntraChipClass::CoherenceL2),
            b.mpki(IntraChipClass::CoherencePeerL1)
        );
    }
}

fn for_each_context(
    r: &mut Runner,
    mut f: impl FnMut(Workload, &'static str, &tempstream_core::experiment::StreamResults),
) {
    for w in Workload::ALL {
        let res = r.results(w);
        f(w, "multi-chip", &res.multi_chip.streams);
        f(w, "single-chip", &res.single_chip.streams);
        f(w, "intra-chip", &res.intra_chip.streams);
    }
}

fn print_fig2(r: &mut Runner) {
    rule("Figure 2: fraction of misses in temporal streams");
    println!(
        "{:<8} {:<12} {:>15} {:>12} {:>18}",
        "workload", "context", "non-repetitive", "new stream", "recurring stream"
    );
    for_each_context(r, |w, ctx, s| {
        let t = s.stream_fraction.total();
        println!(
            "{:<8} {:<12} {:>14.1}% {:>11.1}% {:>17.1}%",
            w.name(),
            ctx,
            frac(s.stream_fraction.non_repetitive * 100, t),
            frac(s.stream_fraction.new_stream * 100, t),
            frac(s.stream_fraction.recurring_stream * 100, t)
        );
    });
}

fn print_fig3(r: &mut Runner) {
    rule("Figure 3: strides and temporal streams (joint breakdown)");
    println!(
        "{:<8} {:<12} {:>13} {:>13} {:>13} {:>13}",
        "workload", "context", "rep+strided", "rep+nonstr", "nonrep+strided", "nonrep+nonstr"
    );
    for_each_context(r, |w, ctx, s| {
        let j = &s.stride_joint;
        let t = j.total();
        println!(
            "{:<8} {:<12} {:>12.1}% {:>12.1}% {:>12.1}% {:>12.1}%",
            w.name(),
            ctx,
            frac(j.repetitive_strided * 100, t),
            frac(j.repetitive_non_strided * 100, t),
            frac(j.non_repetitive_strided * 100, t),
            frac(j.non_repetitive_non_strided * 100, t)
        );
    });
}

fn print_fig4(r: &mut Runner) {
    rule("Figure 4 (left): temporal stream length CDFs");
    for_each_context(r, |w, ctx, s| {
        println!("{} / {ctx}:", w.name());
        print!("{}", format_length_cdf(&s.length_cdf));
    });
    rule("Figure 4 (right): stream reuse distance PDFs");
    for_each_context(r, |w, ctx, s| {
        println!("{} / {ctx}:", w.name());
        print!("{}", format_reuse_pdf(&s.reuse_pdf));
    });
}

fn print_origin_tables(r: &mut Runner, title: &str, workloads: &[Workload]) {
    rule(title);
    for &w in workloads {
        let res = r.results(w);
        for (ctx, s) in [
            ("multi-chip", &res.multi_chip.streams),
            ("single-chip", &res.single_chip.streams),
            ("intra-chip", &res.intra_chip.streams),
        ] {
            println!("{} / {ctx}:", w.name());
            print!("{}", format_origin_table(&s.origins));
        }
    }
}

/// Spatial-pattern predictability (SMS-style companion analysis).
fn print_spatial(cfg: &ExperimentConfig) {
    use tempstream_core::spatial::SpatialAnalysis;
    rule("Spatial-pattern predictability (SMS-style, multi-chip traces)");
    println!(
        "{:<8} {:>12} {:>14} {:>16} {:>14}",
        "workload", "generations", "% predicted", "% misses pred.", "mean density"
    );
    for w in Workload::ALL {
        // Re-collect traces (cheaper than caching records in Runner).
        let (trace, _) = tempstream_core::stages::collect_multi_chip(cfg, w);
        let a = SpatialAnalysis::of_trace(&trace);
        println!(
            "{:<8} {:>12} {:>13.1}% {:>15.1}% {:>14.1}",
            w.name(),
            a.generations,
            a.prediction_rate() * 100.0,
            a.predicted_miss_fraction() * 100.0,
            a.mean_density()
        );
    }
}

/// Seed-stability check: headline metrics across three seeds.
fn print_stability(cfg: &ExperimentConfig) {
    rule("Seed stability: multi-chip stream fraction across seeds");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>8}",
        "workload", "seed A", "seed B", "seed C", "spread"
    );
    for w in Workload::ALL {
        let mut fractions = Vec::new();
        for (i, seed) in [1u64, 0xBEEF, 0x715C_2008].iter().enumerate() {
            let exp = Experiment::new(cfg.with_seed(*seed));
            eprintln!("[reproduce] stability {w} seed {i}...");
            let r = exp.run_workload(w);
            fractions.push(r.multi_chip.streams.stream_fraction.in_streams());
        }
        let max = fractions.iter().copied().fold(f64::MIN, f64::max);
        let min = fractions.iter().copied().fold(f64::MAX, f64::min);
        println!(
            "{:<8} {:>9.1}% {:>9.1}% {:>9.1}% {:>7.1}%",
            w.name(),
            fractions[0] * 100.0,
            fractions[1] * 100.0,
            fractions[2] * 100.0,
            (max - min) * 100.0
        );
    }
}

fn print_functions(r: &mut Runner) {
    rule("Per-function stream origins (top 12, multi-chip)");
    for w in Workload::ALL {
        let res = r.results(w);
        println!("{}:", w.name());
        print!(
            "{}",
            format_function_table(&res.multi_chip.streams.functions, 12)
        );
        if let Some(most) = res.multi_chip.streams.functions.most_repetitive(500) {
            println!(
                "  most repetitive function: {} ({:.1}% of its misses in streams)",
                most.name,
                most.stream_fraction() * 100.0
            );
        }
        println!(
            "  dispatcher (disp*) share of all misses: {:.1}%",
            res.multi_chip.streams.functions.share_of_prefix("disp") * 100.0
        );
    }
}

fn print_stats(r: &mut Runner) {
    rule("Trace statistics (collection summary)");
    println!(
        "{:<8} {:<12} {:>10} {:>14} {:>12} {:>8}",
        "workload", "context", "misses", "analyzed", "in streams", "streams"
    );
    for w in Workload::ALL {
        let res = r.results(w);
        // Stream counts come from the analysis; the analyzed column shows
        // how many misses fed SEQUITUR (capped for the largest traces).
        for (ctx, s, total) in [
            (
                "multi-chip",
                &res.multi_chip.streams,
                res.multi_chip.total_misses,
            ),
            (
                "single-chip",
                &res.single_chip.streams,
                res.single_chip.total_misses,
            ),
            (
                "intra-chip",
                &res.intra_chip.streams,
                res.intra_chip.total_misses,
            ),
        ] {
            println!(
                "{:<8} {:<12} {:>10} {:>14} {:>11.1}% {:>8}",
                w.name(),
                ctx,
                total,
                s.analyzed_misses,
                s.stream_fraction.in_streams() * 100.0,
                s.distinct_streams
            );
        }
    }
}

fn print_table3(r: &mut Runner) {
    print_origin_tables(
        r,
        "Table 3: Temporal stream origins in Web applications",
        &[Workload::Apache, Workload::Zeus],
    );
}

fn print_table4(r: &mut Runner) {
    print_origin_tables(
        r,
        "Table 4: Temporal stream origins in OLTP (DB2)",
        &[Workload::Oltp],
    );
}

fn print_table5(r: &mut Runner) {
    print_origin_tables(
        r,
        "Table 5: Temporal stream origins in DSS (DB2)",
        &[Workload::DssQ1, Workload::DssQ2, Workload::DssQ17],
    );
}
