//! Shared helpers for the benchmark harness and the `reproduce` binary.

pub mod harness;

use tempstream_core::experiment::{Experiment, ExperimentConfig, WorkloadResults};
use tempstream_workloads::Workload;

/// Runs one workload at the given configuration.
pub fn run_one(cfg: ExperimentConfig, w: Workload) -> WorkloadResults {
    Experiment::new(cfg).run_workload(w)
}

/// Formats a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// The standard column header for per-workload series.
pub fn workload_header() -> String {
    let mut s = format!("{:<22}", "series");
    for w in Workload::ALL {
        s.push_str(&format!("{:>9}", w.name()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn header_contains_all_workloads() {
        let h = workload_header();
        for w in Workload::ALL {
            assert!(h.contains(w.name()));
        }
    }
}
