//! SEQUITUR core throughput on synthetic inputs with known repetition
//! structure (the analysis's asymptotic cost driver).

use std::hint::black_box;
use tempstream_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use tempstream_sequitur::Sequitur;
use tempstream_trace::rng::SmallRng;

fn inputs() -> Vec<(&'static str, Vec<u64>)> {
    let n = 100_000usize;
    let mut rng = SmallRng::seed_from_u64(17);
    let periodic: Vec<u64> = (0..n).map(|i| (i % 64) as u64).collect();
    let random_small: Vec<u64> = (0..n).map(|_| rng.gen_range(0..256)).collect();
    let random_large: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
    // Miss-trace-like: repeated bursts (streams) separated by noise.
    let mut bursty = Vec::with_capacity(n);
    let streams: Vec<Vec<u64>> = (0..32)
        .map(|s| (0..24).map(|i| 1_000_000 + s * 1_000 + i).collect())
        .collect();
    while bursty.len() < n {
        if rng.gen_ratio(3, 5) {
            bursty.extend(&streams[rng.gen_range(0..streams.len())]);
        } else {
            for _ in 0..8 {
                bursty.push(rng.gen_range(0..1_000_000));
            }
        }
    }
    bursty.truncate(n);
    vec![
        ("periodic", periodic),
        ("random_small_alphabet", random_small),
        ("random_large_alphabet", random_large),
        ("bursty_streams", bursty),
    ]
}

fn sequitur_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequitur");
    g.sample_size(10);
    for (name, input) in inputs() {
        g.throughput(Throughput::Elements(input.len() as u64));
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut s = Sequitur::with_capacity(input.len());
                s.extend(input.iter().copied());
                black_box(s.into_grammar().rule_count())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, sequitur_throughput);
criterion_main!(benches);
