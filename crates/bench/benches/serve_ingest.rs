//! End-to-end server ingest throughput, loopback TCP.
//!
//! Two shapes, both over protocol v2 with a pipelined request window
//! so the wire round trip is off the critical path and the number
//! reflects the server's routing + apply rate:
//!
//! * `ingest/{1,2,4}shard` — one connection streams every record; the
//!   1-shard run is the JSON baseline.
//! * `ingest-mc/{1,4}shard` — four client connections split the same
//!   record set, the shape reader-side routing exists for: on a
//!   multi-core host the 4-shard run should clearly beat 1 shard
//!   (ci.sh gates on it, thresholded by the `host_cores` field the
//!   harness archives in `BENCH_serve.json`).
//!
//! Each sample covers the whole lifecycle — bind, ingest, drain,
//! shutdown — but at 128 Ki records the setup cost is noise, not the
//! measurement (the old 16 Ki/blocking-ack version mostly timed
//! setup and per-frame latency).

use std::collections::VecDeque;
use std::hint::black_box;
use std::net::TcpStream;

use tempstream_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use tempstream_serve::wire::{read_frame, write_frame, write_message, Frame, MessageReader};
use tempstream_serve::{Server, ServerConfig};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::rng::SplitMix64;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

const RECORDS: usize = 131_072;
const BATCH: usize = 1024;
/// In-flight request cap per connection (v2 pipelining).
const WINDOW: usize = 16;
/// Connections in the multi-connection variant.
const CLIENTS: usize = 4;

fn seeded_records(seed: u64, n: usize) -> Vec<MissRecord<MissClass>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| MissRecord {
            block: Block::new(rng.next_u64() % 4096),
            cpu: CpuId::new((rng.next_u64() % 4) as u32),
            thread: ThreadId::new((rng.next_u64() % 8) as u32),
            function: FunctionId::new((rng.next_u64() % 64) as u32),
            class: MissClass::Replacement,
        })
        .collect()
}

/// Streams `records` over one v2 connection with up to [`WINDOW`]
/// ingest frames in flight; `Busy` frames are re-queued and retried.
fn ingest_pipelined(conn: &mut TcpStream, records: &[MissRecord<MissClass>]) {
    let batches: Vec<&[MissRecord<MissClass>]> = records.chunks(BATCH).collect();
    let mut reader = MessageReader::new();
    let mut pending: VecDeque<usize> = (0..batches.len()).collect();
    let mut inflight: VecDeque<(u32, usize)> = VecDeque::new();
    let mut seq: u32 = 0;
    loop {
        while inflight.len() < WINDOW {
            let Some(idx) = pending.pop_front() else {
                break;
            };
            write_message(&mut *conn, Some(seq), &Frame::Ingest(batches[idx].to_vec()))
                .expect("send ingest");
            inflight.push_back((seq, idx));
            seq = seq.wrapping_add(1);
        }
        let Some((want_seq, idx)) = inflight.pop_front() else {
            break;
        };
        let msg = reader.next_from(&mut *conn).expect("pipelined reply");
        assert_eq!(msg.seq, Some(want_seq), "replies are FIFO");
        match msg.frame {
            Frame::IngestAck(n) => assert_eq!(n as usize, batches[idx].len()),
            Frame::Busy => {
                pending.push_front(idx);
                std::thread::yield_now();
            }
            other => panic!("unexpected ingest reply: {other:?}"),
        }
    }
}

fn bind_server(
    shards: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let config = ServerConfig {
        shards,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

/// Drains the server and returns the final coverage total so the work
/// cannot be optimized away.
fn finish_server(
    conn: &mut TcpStream,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
) -> u64 {
    write_frame(&mut *conn, &Frame::QueryCoverage).expect("send");
    let total = match read_frame(&mut *conn).expect("recv") {
        Frame::CoverageReply { total, .. } => total,
        other => panic!("unexpected coverage reply: {other:?}"),
    };
    write_frame(&mut *conn, &Frame::Shutdown).expect("send");
    assert_eq!(read_frame(&mut *conn).expect("recv"), Frame::ShutdownAck);
    handle.join().expect("server thread").expect("server run");
    total
}

/// One full lifecycle, single connection.
fn ingest_once(records: &[MissRecord<MissClass>], shards: usize) -> u64 {
    let (addr, handle) = bind_server(shards);
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).ok();
    ingest_pipelined(&mut conn, records);
    finish_server(&mut conn, handle)
}

/// One full lifecycle, [`CLIENTS`] connections splitting the records.
fn ingest_once_mc(records: &[MissRecord<MissClass>], shards: usize) -> u64 {
    let (addr, handle) = bind_server(shards);
    let per_client = records.len().div_ceil(CLIENTS);
    std::thread::scope(|scope| {
        for slice in records.chunks(per_client) {
            scope.spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("connect client");
                conn.set_nodelay(true).ok();
                ingest_pipelined(&mut conn, slice);
            });
        }
    });
    let mut conn = TcpStream::connect(addr).expect("connect finisher");
    conn.set_nodelay(true).ok();
    finish_server(&mut conn, handle)
}

fn serve_ingest(c: &mut Criterion) {
    let records = seeded_records(0x5e7e, RECORDS);
    let mut g = c.benchmark_group("serve");
    g.sample_size(10)
        .throughput(Throughput::Elements(RECORDS as u64))
        .baseline("ingest/1shard");
    for shards in [1usize, 2, 4] {
        g.bench_function(format!("ingest/{shards}shard"), |b| {
            b.iter(|| black_box(ingest_once(&records, shards)));
        });
    }
    for shards in [1usize, 4] {
        g.bench_function(format!("ingest-mc/{shards}shard"), |b| {
            b.iter(|| black_box(ingest_once_mc(&records, shards)));
        });
    }
    g.finish();
}

criterion_group!(benches, serve_ingest);
criterion_main!(benches);
