//! End-to-end server ingest throughput: a loopback `tempstream-serve`
//! instance at 1, 2, and 4 shards, fed a fixed seeded record set over
//! one TCP connection with acknowledged batches. Each sample covers
//! the whole lifecycle — bind, ingest, drain, shutdown — so the number
//! is what a client actually observes, and the 1-shard run is the
//! baseline the JSON speedup ratios are measured against.

use std::hint::black_box;
use std::net::TcpStream;

use tempstream_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use tempstream_serve::wire::{read_frame, write_frame, Frame};
use tempstream_serve::{Server, ServerConfig};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::rng::SplitMix64;
use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

const RECORDS: usize = 16_384;
const BATCH: usize = 512;

fn seeded_records(seed: u64, n: usize) -> Vec<MissRecord<MissClass>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| MissRecord {
            block: Block::new(rng.next_u64() % 4096),
            cpu: CpuId::new((rng.next_u64() % 4) as u32),
            thread: ThreadId::new((rng.next_u64() % 8) as u32),
            function: FunctionId::new((rng.next_u64() % 64) as u32),
            class: MissClass::Replacement,
        })
        .collect()
}

/// One full server lifecycle: bind, ingest every batch with acks,
/// drain, shutdown. Returns the applied-record count from a final
/// coverage query so the work cannot be optimized away.
fn ingest_once(records: &[MissRecord<MissClass>], shards: usize) -> u64 {
    let config = ServerConfig {
        shards,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).ok();
    for chunk in records.chunks(BATCH) {
        loop {
            write_frame(&mut conn, &Frame::Ingest(chunk.to_vec())).expect("send");
            match read_frame(&mut conn).expect("recv") {
                Frame::IngestAck(n) => {
                    assert_eq!(n as usize, chunk.len());
                    break;
                }
                Frame::Busy => std::thread::yield_now(),
                other => panic!("unexpected ingest reply: {other:?}"),
            }
        }
    }
    write_frame(&mut conn, &Frame::QueryCoverage).expect("send");
    let total = match read_frame(&mut conn).expect("recv") {
        Frame::CoverageReply { total, .. } => total,
        other => panic!("unexpected coverage reply: {other:?}"),
    };
    write_frame(&mut conn, &Frame::Shutdown).expect("send");
    assert_eq!(read_frame(&mut conn).expect("recv"), Frame::ShutdownAck);
    handle.join().expect("server thread").expect("server run");
    total
}

fn serve_ingest(c: &mut Criterion) {
    let records = seeded_records(0x5e7e, RECORDS);
    let mut g = c.benchmark_group("serve");
    g.sample_size(10)
        .throughput(Throughput::Elements(RECORDS as u64))
        .baseline("ingest/1shard");
    for shards in [1usize, 2, 4] {
        g.bench_function(format!("ingest/{shards}shard"), |b| {
            b.iter(|| black_box(ingest_once(&records, shards)));
        });
    }
    g.finish();
}

criterion_group!(benches, serve_ingest);
criterion_main!(benches);
