//! Memory-system simulator throughput (accesses per second) on a
//! pre-generated access stream.

use std::hint::black_box;
use tempstream_bench::harness::{criterion_group, criterion_main, Criterion, Throughput};
use tempstream_coherence::{MultiChipConfig, MultiChipSim, SingleChipConfig, SingleChipSim};
use tempstream_trace::MemoryAccess;
use tempstream_workloads::{Workload, WorkloadSession};

fn generate(w: Workload, cpus: u32, ops: u64) -> Vec<MemoryAccess> {
    let mut out: Vec<MemoryAccess> = Vec::new();
    let mut session = WorkloadSession::new(w, cpus, 1);
    session.run(&mut out, ops);
    out
}

fn simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let accesses = generate(Workload::Oltp, 8, 300);
    g.throughput(Throughput::Elements(accesses.len() as u64));
    g.bench_function(format!("multi_chip_paper/{}acc", accesses.len()), |b| {
        b.iter(|| {
            let mut sim = MultiChipSim::new(MultiChipConfig {
                nodes: 8,
                ..MultiChipConfig::paper()
            });
            sim.run(accesses.iter());
            black_box(sim.miss_count())
        });
    });
    let accesses4 = generate(Workload::Oltp, 4, 300);
    g.throughput(Throughput::Elements(accesses4.len() as u64));
    g.bench_function(format!("single_chip_paper/{}acc", accesses4.len()), |b| {
        b.iter(|| {
            let mut sim = SingleChipSim::new(SingleChipConfig::paper());
            sim.run(accesses4.iter());
            let t = sim.finish(1);
            black_box(t.off_chip.len() + t.intra_chip.len())
        });
    });
    g.finish();
}

criterion_group!(benches, simulator_throughput);
criterion_main!(benches);
