//! Parallel-pipeline scaling: the quick-configuration reproduction run
//! at 1, 2, and 4 worker threads, plus the serial runner as the
//! baseline the speedup is measured against.

use std::hint::black_box;
use tempstream_bench::harness::{criterion_group, criterion_main, Criterion};
use tempstream_core::{Experiment, ExperimentConfig};
use tempstream_runtime::{run_workloads, RuntimeConfig};
use tempstream_workloads::Workload;

const WORKLOADS: [Workload; 3] = [Workload::Apache, Workload::Oltp, Workload::DssQ2];

fn runtime_scaling(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let mut g = c.benchmark_group("runtime_scaling");
    g.sample_size(10).baseline("serial");

    g.bench_function("serial", |b| {
        b.iter(|| {
            let exp = Experiment::new(cfg);
            let results: Vec<_> = WORKLOADS.iter().map(|&w| exp.run_workload(w)).collect();
            black_box(results.len())
        });
    });

    for workers in [1usize, 2, 4] {
        g.bench_function(format!("parallel/{workers}w"), |b| {
            b.iter(|| {
                let (results, summary) =
                    run_workloads(&cfg, RuntimeConfig::with_workers(workers), &WORKLOADS);
                black_box((results.len(), summary.wall))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, runtime_scaling);
criterion_main!(benches);
