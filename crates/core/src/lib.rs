//! Temporal-stream characterization of commercial server applications.
//!
//! This crate is the top of the reproduction stack for Wenisch et al.,
//! *Temporal Streams in Commercial Server Applications* (IISWC 2008). It
//! turns classified read-miss traces (produced by `tempstream-coherence`
//! from `tempstream-workloads` access streams) into the paper's analyses:
//!
//! - [`streams`] — SEQUITUR-based temporal-stream identification: which
//!   misses belong to the first (*New*) or a later (*Recurring*)
//!   occurrence of a repeated miss sequence, stream-length distributions,
//!   and reuse distances measured in intervening misses on the first
//!   processor;
//! - [`stride`] — constant-stride run detection, orthogonal to
//!   repetitiveness (Figure 3's joint breakdown);
//! - [`distribution`] — weighted CDF / log-binned PDF helpers used by
//!   Figure 4;
//! - [`origins`] — code-module attribution (Tables 3-5) and
//!   [`functions`] — the finer per-function view behind §5's narrative;
//! - [`spatial`] — spatial-pattern (SMS-style) predictability, the
//!   companion phenomenon the intro contrasts streams with;
//! - [`report`] — typed report structures with `Display` impls that print
//!   the paper's figures and tables;
//! - [`experiment`] — the end-to-end runner: workload × system context →
//!   full characterization;
//! - [`stages`] — the pure emit/simulate/analyze stage functions behind
//!   the runner, shared with the parallel `tempstream-runtime` executor;
//! - [`engine`] — the unified incremental [`AnalysisEngine`] all of the
//!   above analyze on: the batch stages feed it all-then-snapshot, the
//!   online server (`tempstream-serve`) feeds it record by record, and
//!   both read the same version-memoized snapshot accessors.
//!
//! # Quickstart
//!
//! ```no_run
//! use tempstream_core::experiment::{Experiment, ExperimentConfig};
//! use tempstream_workloads::Workload;
//!
//! let cfg = ExperimentConfig::quick();
//! let results = Experiment::new(cfg).run_workload(Workload::Apache);
//! println!("{}", results.multi_chip.streams.stream_fraction);
//! ```

pub mod distribution;
pub mod engine;
pub mod experiment;
pub mod functions;
pub mod origins;
pub mod report;
pub mod spatial;
pub mod stages;
pub mod streams;
pub mod stride;

pub use engine::AnalysisEngine;
pub use experiment::{Experiment, ExperimentConfig, WorkloadResults};
pub use streams::{StreamAnalysis, StreamLabel};
pub use stride::StrideDetector;
