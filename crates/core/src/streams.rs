//! Temporal-stream identification via SEQUITUR.
//!
//! A temporal stream is a sequence of two or more misses that occurs at
//! least twice (paper §2). Running SEQUITUR over the block-address miss
//! sequence yields a grammar whose non-root rules are exactly the distinct
//! repeated subsequences. Walking the root rule segments the trace into
//! stream occurrences (root-level rule references) and non-repetitive
//! misses (root-level terminals); an occurrence is *New* if no rule in its
//! expansion has been emitted before, else *Recurring*.

use crate::distribution::{LengthCdf, ReuseDistancePdf};
use tempstream_sequitur::{GrammarSymbol, RuleId};
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissTrace;

/// Per-miss stream label (Figure 2's three segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamLabel {
    /// Not part of any repeated sequence.
    NonRepetitive,
    /// Part of the first occurrence of a temporal stream.
    NewStream,
    /// Part of the second or a later occurrence of a temporal stream.
    RecurringStream,
}

/// One root-level stream occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOccurrence {
    /// Grammar rule identifying the stream.
    pub rule: RuleId,
    /// Trace position of the occurrence's first miss.
    pub start: usize,
    /// Occurrence length in misses.
    pub len: u64,
    /// `true` for the stream's first occurrence.
    pub new: bool,
    /// Reuse distance from the previous occurrence: intervening misses
    /// observed by the previous occurrence's processor (paper §4.5).
    /// `None` for first occurrences.
    pub reuse_distance: Option<u64>,
}

/// The result of stream analysis over one miss trace.
#[derive(Debug, Clone)]
pub struct StreamAnalysis {
    labels: Vec<StreamLabel>,
    occurrences: Vec<StreamOccurrence>,
    rule_count: usize,
}

impl StreamAnalysis {
    /// Analyzes a miss trace (any classification type).
    ///
    /// Cost is linear-ish in trace length; the SEQUITUR grammar and all
    /// per-position labels are materialized.
    pub fn of_trace<C: Copy>(trace: &MissTrace<C>) -> Self {
        Self::of_records(trace.records(), trace.num_cpus())
    }

    /// Analyzes a raw record slice: a streams-only
    /// [`AnalysisEngine`](crate::engine::AnalysisEngine) in
    /// feed-all-then-snapshot mode (see
    /// [`crate::engine::batch_stream_analysis`], which also exports the
    /// grammar-inference metrics).
    pub fn of_records<C: Copy>(records: &[MissRecord<C>], num_cpus: u32) -> Self {
        crate::engine::batch_stream_analysis(records, num_cpus)
    }

    /// Labels `records` against an already-built grammar over their
    /// block sequence (step 2 of [`of_records`](Self::of_records),
    /// without the SEQUITUR push loop or any metrics export).
    ///
    /// `tempstream-serve` uses this to answer stream queries from a
    /// *live* builder: each shard keeps an incremental
    /// [`Sequitur`] and snapshots it with
    /// [`Sequitur::grammar`]; because the root walk below is a pure
    /// function of (grammar, records), the online answer is
    /// bit-identical to the offline batch path.
    ///
    /// `grammar` must derive from exactly the block sequence of
    /// `records` (debug-asserted by the walk covering the whole slice).
    pub fn of_grammar<C: Copy>(
        grammar: &tempstream_sequitur::Grammar,
        records: &[MissRecord<C>],
        num_cpus: u32,
    ) -> Self {
        // Root walk: label positions, collect occurrences, measure
        // reuse distances with per-cpu miss counters.
        let root_body = grammar.rule_body(RuleId::ROOT);
        let mut labels = vec![StreamLabel::NonRepetitive; records.len()];
        // Root-level rule references bound the occurrence count, so one
        // reservation covers the whole walk.
        let mut occurrences = Vec::with_capacity(
            root_body
                .iter()
                .filter(|s| matches!(s, GrammarSymbol::Rule(_)))
                .count(),
        );
        // seen[r]: rule r's expansion has already been emitted somewhere.
        let mut seen = vec![false; grammar.rule_count()];
        // Scratch stack for mark_seen, reused across occurrences.
        let mut seen_stack: Vec<RuleId> = Vec::new();
        // last_occ[r]: (cpu of last occurrence, that cpu's miss count at
        // the occurrence's end).
        let mut last_occ: Vec<Option<(u32, u64)>> = vec![None; grammar.rule_count()];
        let mut cpu_counts = vec![0u64; num_cpus.max(1) as usize];
        let mut pos = 0usize;

        for sym in root_body {
            match *sym {
                GrammarSymbol::Terminal(_) => {
                    cpu_counts[records[pos].cpu.index()] += 1;
                    pos += 1;
                }
                GrammarSymbol::Rule(rule) => {
                    let len = grammar.expansion_len(rule);
                    let new = !seen[rule.index()];
                    if new {
                        mark_seen(grammar, rule, &mut seen, &mut seen_stack);
                    }
                    let occ_cpu = records[pos].cpu.raw();
                    let reuse_distance = last_occ[rule.index()]
                        .map(|(pcpu, pcount)| cpu_counts[pcpu as usize] - pcount);
                    let label = if new {
                        StreamLabel::NewStream
                    } else {
                        StreamLabel::RecurringStream
                    };
                    for l in &mut labels[pos..pos + len as usize] {
                        *l = label;
                    }
                    for r in &records[pos..pos + len as usize] {
                        cpu_counts[r.cpu.index()] += 1;
                    }
                    occurrences.push(StreamOccurrence {
                        rule,
                        start: pos,
                        len,
                        new,
                        reuse_distance,
                    });
                    last_occ[rule.index()] = Some((occ_cpu, cpu_counts[occ_cpu as usize]));
                    pos += len as usize;
                }
            }
        }
        debug_assert_eq!(pos, records.len(), "root walk must cover the trace");

        StreamAnalysis {
            labels,
            occurrences,
            rule_count: grammar.rule_count(),
        }
    }

    /// Per-miss labels, index-aligned with the analyzed trace.
    pub fn labels(&self) -> &[StreamLabel] {
        &self.labels
    }

    /// All root-level stream occurrences in trace order.
    pub fn occurrences(&self) -> &[StreamOccurrence] {
        &self.occurrences
    }

    /// Number of grammar rules (including the root): distinct streams + 1.
    pub fn distinct_streams(&self) -> usize {
        self.rule_count.saturating_sub(1)
    }

    /// Trace length analyzed.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the analyzed trace was empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Counts of (non-repetitive, new, recurring) misses.
    pub fn label_counts(&self) -> (u64, u64, u64) {
        let mut n = (0, 0, 0);
        for l in &self.labels {
            match l {
                StreamLabel::NonRepetitive => n.0 += 1,
                StreamLabel::NewStream => n.1 += 1,
                StreamLabel::RecurringStream => n.2 += 1,
            }
        }
        n
    }

    /// Fraction of misses in temporal streams (new + recurring).
    pub fn stream_fraction(&self) -> f64 {
        let (_, new, rec) = self.label_counts();
        crate::engine::frac(new + rec, self.labels.len() as u64)
    }

    /// Stream-length distribution weighted by contribution to temporal
    /// streams (Figure 4, left).
    pub fn length_cdf(&self) -> LengthCdf {
        let mut cdf = LengthCdf::new();
        for occ in &self.occurrences {
            cdf.add(occ.len, occ.len);
        }
        cdf
    }

    /// Reuse-distance distribution, log-decade binned and truncated at
    /// 10^7 (Figure 4, right), weighted by occurrence length.
    pub fn reuse_distance_pdf(&self) -> ReuseDistancePdf {
        let mut pdf = ReuseDistancePdf::new();
        for occ in &self.occurrences {
            if let Some(d) = occ.reuse_distance {
                pdf.add(d, occ.len);
            }
        }
        pdf
    }
}

/// Marks `rule` and every rule reachable from it as seen. `stack` is
/// caller-provided scratch (left empty on return) so the root walk does
/// not allocate per occurrence.
fn mark_seen(
    grammar: &tempstream_sequitur::Grammar,
    rule: RuleId,
    seen: &mut [bool],
    stack: &mut Vec<RuleId>,
) {
    debug_assert!(stack.is_empty());
    stack.push(rule);
    while let Some(r) = stack.pop() {
        if seen[r.index()] {
            continue;
        }
        seen[r.index()] = true;
        for sym in grammar.rule_body(r) {
            if let GrammarSymbol::Rule(sub) = sym {
                if !seen[sub.index()] {
                    stack.push(*sub);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_sequitur::Sequitur;
    use tempstream_trace::{Block, CpuId, FunctionId, MissClass, ThreadId};

    fn trace_of(blocks: &[(u64, u32)]) -> MissTrace<MissClass> {
        let cpus = blocks.iter().map(|&(_, c)| c).max().unwrap_or(0) + 1;
        let mut t = MissTrace::new(cpus);
        for &(b, c) in blocks {
            t.push(MissRecord {
                block: Block::new(b),
                cpu: CpuId::new(c),
                thread: ThreadId::new(c),
                function: FunctionId::new(0),
                class: MissClass::Replacement,
            });
        }
        t
    }

    fn seq(blocks: &[u64]) -> MissTrace<MissClass> {
        let v: Vec<(u64, u32)> = blocks.iter().map(|&b| (b, 0)).collect();
        trace_of(&v)
    }

    #[test]
    fn empty_trace() {
        let a = StreamAnalysis::of_trace(&seq(&[]));
        assert!(a.is_empty());
        assert_eq!(a.stream_fraction(), 0.0);
        assert_eq!(a.distinct_streams(), 0);
    }

    #[test]
    fn no_repetition_all_non_repetitive() {
        let a = StreamAnalysis::of_trace(&seq(&[1, 2, 3, 4, 5]));
        assert_eq!(a.label_counts(), (5, 0, 0));
        assert!(a.occurrences().is_empty());
    }

    #[test]
    fn repeated_pair_new_then_recurring() {
        let a = StreamAnalysis::of_trace(&seq(&[1, 2, 9, 1, 2]));
        assert_eq!(a.label_counts(), (1, 2, 2));
        assert_eq!(a.occurrences().len(), 2);
        assert!(a.occurrences()[0].new);
        assert!(!a.occurrences()[1].new);
        assert_eq!(a.occurrences()[1].reuse_distance, Some(1)); // the "9"
        assert_eq!(a.labels()[2], StreamLabel::NonRepetitive);
    }

    #[test]
    fn back_to_back_repetition_has_zero_distance() {
        let a = StreamAnalysis::of_trace(&seq(&[1, 2, 3, 1, 2, 3]));
        assert_eq!(a.occurrences().len(), 2);
        assert_eq!(a.occurrences()[1].reuse_distance, Some(0));
        assert_eq!(a.occurrences()[0].len, 3);
    }

    #[test]
    fn reuse_distance_counts_first_processor_only() {
        // Stream [1,2] on cpu 0; between its occurrences, 3 misses by cpu
        // 1 and 2 by cpu 0.
        let a = StreamAnalysis::of_trace(&trace_of(&[
            (1, 0),
            (2, 0),
            (10, 1),
            (11, 0),
            (12, 1),
            (13, 0),
            (14, 1),
            (1, 0),
            (2, 0),
        ]));
        let occ: Vec<_> = a.occurrences().iter().filter(|o| o.len == 2).collect();
        assert_eq!(occ.len(), 2);
        assert_eq!(
            occ[1].reuse_distance,
            Some(2),
            "only cpu 0's intervening misses count"
        );
    }

    #[test]
    fn three_occurrences_chain_distances() {
        let a = StreamAnalysis::of_trace(&seq(&[1, 2, 7, 1, 2, 8, 9, 1, 2]));
        let occ = a.occurrences();
        assert_eq!(occ.len(), 3);
        assert_eq!(occ[1].reuse_distance, Some(1));
        assert_eq!(occ[2].reuse_distance, Some(2));
        assert_eq!(a.label_counts(), (3, 2, 4));
    }

    #[test]
    fn stream_fraction_matches_labels() {
        let a = StreamAnalysis::of_trace(&seq(&[1, 2, 3, 1, 2, 3, 9, 9]));
        let (non, new, rec) = a.label_counts();
        assert_eq!(non + new + rec, 8);
        assert!((a.stream_fraction() - (new + rec) as f64 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn nested_rule_first_emission_counts_as_new() {
        // "abab" then later "ab" alone: the "ab" rule was already emitted
        // inside the bigger stream, so its standalone occurrence recurs.
        let a = StreamAnalysis::of_trace(&seq(&[1, 2, 1, 2, 5, 1, 2, 1, 2, 6, 1, 2]));
        // The final [1,2] occurrence must be Recurring, not New.
        let last = a.occurrences().last().unwrap();
        assert_eq!(last.start, 10);
        assert!(!last.new, "nested emission already seen");
    }

    #[test]
    fn length_cdf_weights_by_contribution() {
        let a = StreamAnalysis::of_trace(&seq(&[1, 2, 3, 1, 2, 3]));
        let cdf = a.length_cdf();
        // One stream of length 3 occurring twice: 6 weighted misses at 3.
        assert_eq!(cdf.total_weight(), 6);
        assert_eq!(cdf.median(), Some(3));
    }

    #[test]
    fn of_grammar_on_live_snapshot_matches_batch() {
        // The serve-crate contract: feed a live builder record by
        // record, snapshot its grammar, and the root walk must produce
        // exactly the batch analysis of the same prefix.
        let t = seq(&[1, 2, 3, 1, 2, 3, 9, 4, 1, 2, 5, 4, 1, 2, 5, 9]);
        let mut live = Sequitur::new();
        for (n, r) in t.records().iter().enumerate() {
            live.push(r.block.raw());
            let online =
                StreamAnalysis::of_grammar(&live.grammar(), &t.records()[..=n], t.num_cpus());
            let batch = StreamAnalysis::of_records(&t.records()[..=n], t.num_cpus());
            assert_eq!(online.labels(), batch.labels(), "prefix {n}");
            assert_eq!(online.occurrences(), batch.occurrences(), "prefix {n}");
            assert_eq!(online.distinct_streams(), batch.distinct_streams());
        }
    }

    #[test]
    fn labels_align_with_trace_positions() {
        let t = seq(&[4, 1, 2, 5, 1, 2]);
        let a = StreamAnalysis::of_trace(&t);
        assert_eq!(a.len(), t.len());
        assert_eq!(a.labels()[0], StreamLabel::NonRepetitive);
        assert_eq!(a.labels()[1], StreamLabel::NewStream);
        assert_eq!(a.labels()[4], StreamLabel::RecurringStream);
    }
}
