//! Function-granularity stream origins.
//!
//! The paper's §5 narrative makes *function-level* claims on top of the
//! category tables: the dispatcher functions "account for an astounding
//! number of misses ... as much as 12% of all off-chip misses", and
//! `Perl_sv_gets` is "the single most repetitive function we have
//! identified, with just under 99% of its misses repeating a prior
//! temporal stream". This module produces that per-function view.

use crate::engine::frac;
use crate::streams::StreamLabel;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::{FunctionId, MissCategory, SymbolTable};

/// Per-function miss and stream counts.
#[derive(Debug, Clone)]
pub struct FunctionRow {
    /// The function.
    pub function: FunctionId,
    /// Its name.
    pub name: String,
    /// Its Table-2 category.
    pub category: MissCategory,
    /// Misses attributed to the function.
    pub misses: u64,
    /// Of those, misses inside temporal streams.
    pub misses_in_streams: u64,
}

impl FunctionRow {
    /// Within-function stream fraction.
    pub fn stream_fraction(&self) -> f64 {
        frac(self.misses_in_streams, self.misses)
    }
}

/// A per-function origin table, sorted by miss count descending.
#[derive(Debug, Clone)]
pub struct FunctionTable {
    rows: Vec<FunctionRow>,
    total_misses: u64,
}

impl FunctionTable {
    /// Builds the table by joining records, stream labels, and the symbol
    /// table.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is not index-aligned with `records`.
    pub fn build<C: Copy>(
        records: &[MissRecord<C>],
        labels: &[StreamLabel],
        symbols: &SymbolTable,
    ) -> Self {
        assert_eq!(
            records.len(),
            labels.len(),
            "labels must align with records"
        );
        // Interned function ids are dense (0..symbols.len()), so a
        // direct-indexed table replaces the former per-record hash-map
        // probe; ids beyond the symbol table (untracked functions) grow
        // it on demand.
        let mut counts: Vec<(u64, u64)> = vec![(0, 0); symbols.len()];
        for (r, &label) in records.iter().zip(labels) {
            let idx = r.function.index();
            if idx >= counts.len() {
                counts.resize(idx + 1, (0, 0));
            }
            let e = &mut counts[idx];
            e.0 += 1;
            if label != StreamLabel::NonRepetitive {
                e.1 += 1;
            }
        }
        let mut rows: Vec<FunctionRow> = counts
            .into_iter()
            .enumerate()
            .filter(|&(_, (misses, _))| misses > 0)
            .map(|(i, (misses, in_streams))| {
                let function = FunctionId::new(u32::try_from(i).expect("function id overflow"));
                FunctionRow {
                    function,
                    name: symbols.name(function).to_owned(),
                    category: symbols.category(function),
                    misses,
                    misses_in_streams: in_streams,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.misses.cmp(&a.misses).then(a.name.cmp(&b.name)));
        FunctionTable {
            rows,
            total_misses: records.len() as u64,
        }
    }

    /// Rows sorted by miss count (descending).
    pub fn rows(&self) -> &[FunctionRow] {
        &self.rows
    }

    /// Total misses in the analyzed trace.
    pub fn total_misses(&self) -> u64 {
        self.total_misses
    }

    /// The `n` heaviest functions.
    pub fn top(&self, n: usize) -> &[FunctionRow] {
        &self.rows[..n.min(self.rows.len())]
    }

    /// The row for a function name, if it missed at all.
    pub fn by_name(&self, name: &str) -> Option<&FunctionRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// The most repetitive function among those with at least `min_misses`
    /// (guards against tiny-sample artifacts).
    pub fn most_repetitive(&self, min_misses: u64) -> Option<&FunctionRow> {
        self.rows
            .iter()
            .filter(|r| r.misses >= min_misses)
            .max_by(|a, b| {
                a.stream_fraction()
                    .partial_cmp(&b.stream_fraction())
                    .expect("fractions are finite")
            })
    }

    /// Combined miss share of all functions whose names start with
    /// `prefix` (e.g. `disp` for the dispatcher family).
    pub fn share_of_prefix(&self, prefix: &str) -> f64 {
        let n: u64 = self
            .rows
            .iter()
            .filter(|r| r.name.starts_with(prefix))
            .map(|r| r.misses)
            .sum();
        frac(n, self.total_misses)
    }
}

/// Renders the top-`n` rows as text.
pub fn format_function_table(table: &FunctionTable, n: usize) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<28} {:<34} {:>9} {:>10}",
        "function", "category", "% misses", "% in strm"
    );
    for row in table.top(n) {
        let _ = writeln!(
            s,
            "  {:<28} {:<34} {:>8.1}% {:>9.1}%",
            row.name,
            row.category.label(),
            frac(row.misses * 100, table.total_misses()),
            row.stream_fraction() * 100.0
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Block, CpuId, MissClass, ThreadId};

    fn rec(function: FunctionId) -> MissRecord<MissClass> {
        MissRecord {
            block: Block::new(0),
            cpu: CpuId::new(0),
            thread: ThreadId::new(0),
            function,
            class: MissClass::Replacement,
        }
    }

    fn setup() -> (Vec<MissRecord<MissClass>>, Vec<StreamLabel>, SymbolTable) {
        let mut sym = SymbolTable::new();
        let a = sym.intern("disp_getwork", MissCategory::KernelScheduler);
        let b = sym.intern("Perl_sv_gets", MissCategory::CgiPerlInput);
        let records = vec![rec(a), rec(a), rec(a), rec(b), rec(b)];
        let labels = vec![
            StreamLabel::RecurringStream,
            StreamLabel::NonRepetitive,
            StreamLabel::NewStream,
            StreamLabel::RecurringStream,
            StreamLabel::RecurringStream,
        ];
        (records, labels, sym)
    }

    #[test]
    fn rows_sorted_by_misses() {
        let (records, labels, sym) = setup();
        let t = FunctionTable::build(&records, &labels, &sym);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0].name, "disp_getwork");
        assert_eq!(t.rows()[0].misses, 3);
        assert_eq!(t.total_misses(), 5);
    }

    #[test]
    fn stream_fractions_per_function() {
        let (records, labels, sym) = setup();
        let t = FunctionTable::build(&records, &labels, &sym);
        let perl = t.by_name("Perl_sv_gets").unwrap();
        assert!((perl.stream_fraction() - 1.0).abs() < 1e-12);
        let disp = t.by_name("disp_getwork").unwrap();
        assert!((disp.stream_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn most_repetitive_respects_min_misses() {
        let (records, labels, sym) = setup();
        let t = FunctionTable::build(&records, &labels, &sym);
        assert_eq!(t.most_repetitive(1).unwrap().name, "Perl_sv_gets");
        // With a floor of 3, only disp_getwork qualifies.
        assert_eq!(t.most_repetitive(3).unwrap().name, "disp_getwork");
        assert!(t.most_repetitive(100).is_none());
    }

    #[test]
    fn prefix_share() {
        let (records, labels, sym) = setup();
        let t = FunctionTable::build(&records, &labels, &sym);
        assert!((t.share_of_prefix("disp") - 0.6).abs() < 1e-12);
        assert!((t.share_of_prefix("Perl") - 0.4).abs() < 1e-12);
        assert_eq!(t.share_of_prefix("sql"), 0.0);
    }

    #[test]
    fn top_and_format() {
        let (records, labels, sym) = setup();
        let t = FunctionTable::build(&records, &labels, &sym);
        assert_eq!(t.top(1).len(), 1);
        assert_eq!(t.top(10).len(), 2);
        let text = format_function_table(&t, 5);
        assert!(text.contains("disp_getwork"));
        assert!(text.contains("Perl_sv_gets"));
    }

    #[test]
    fn empty_table() {
        let sym = SymbolTable::new();
        let t = FunctionTable::build::<MissClass>(&[], &[], &sym);
        assert!(t.rows().is_empty());
        assert_eq!(t.share_of_prefix("x"), 0.0);
        assert!(t.most_repetitive(0).is_none());
    }
}
