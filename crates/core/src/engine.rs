//! The unified incremental analysis engine.
//!
//! Every consumer of the paper's characterization — the batch pipeline
//! in [`crate::stages`], the online server's shards
//! (`tempstream-serve`), and the server's offline verification
//! comparator — runs on the one [`AnalysisEngine`] defined here. The
//! engine owns the full incremental state of the characterization:
//!
//! - a live SEQUITUR builder over the block sequence (stream
//!   detection), plus the retained record prefix its root walk labels;
//! - an optional [`OnlineEvaluator`] driving the temporal prefetch
//!   engine (coverage/accuracy) — present in the server's full
//!   configuration, absent in the batch pipeline's streams-only mode
//!   so `analyze_streams` pays for exactly what it reports;
//! - a per-function miss counter ([`OriginTable`]: direct-indexed
//!   dense array with a hashmap spill);
//! - a monotone [`version()`](AnalysisEngine::version) and a
//!   version-keyed memoized snapshot of the grammar root walk.
//!
//! # Feeding modes and bit-identity
//!
//! The engine is *incremental*: [`push_record`] /
//! [`push_records`](AnalysisEngine::push_records) may be interleaved
//! freely with the snapshot accessors. Because a SEQUITUR grammar
//! snapshot over an ingest prefix equals the batch grammar of that
//! prefix, and the root walk is a pure function of (grammar, records),
//! **any interleaving of pushes and snapshots yields bit-identical
//! answers to one batch feed of the same records** — the differential
//! property test (`crates/core/tests/engine_differential.rs`) and the
//! `engine-diff` CI gate pin this for K-chunked feeds at K ∈ {1, 2, 7}.
//! The batch pipeline calls the same engine in feed-all-then-snapshot
//! mode via [`batch_stream_analysis`].
//!
//! # Version / memoization contract
//!
//! [`version()`](AnalysisEngine::version) advances exactly once per
//! applied record — i.e. exactly when observable state changes. The
//! expensive snapshot (a grammar root walk producing the full
//! [`StreamAnalysis`]) is cached keyed by the version at which it was
//! taken, so any number of snapshot reads against a quiet engine cost
//! O(1) and are guaranteed fresh: a stale answer would require the
//! cache key to equal a version it was not computed at, which a
//! monotone counter rules out. [`grammar_walks`] counts cache misses
//! (actual root walks) so callers can *prove* the memoization — the
//! server exports it as a gauge and its loopback tests pin exact walk
//! counts.
//!
//! The shared zero-denominator guards [`frac`] / [`fracf`] (PR 3) are
//! re-exported here as the engine-level definition every report type
//! routes through (they live in `tempstream-obsv`, the dependency
//! root, so the leaf crates can reach them too).
//!
//! [`push_record`]: AnalysisEngine::push_record
//! [`grammar_walks`]: AnalysisEngine::grammar_walks

use crate::report::StrideJointReport;
use crate::streams::StreamAnalysis;
use crate::stride::StrideDetector;
use tempstream_fxhash::FxHashMap;
use tempstream_prefetch::{OnlineEvaluator, TemporalPrefetcher};
use tempstream_sequitur::Sequitur;
use tempstream_trace::miss::MissRecord;
use tempstream_trace::MissClass;

pub use tempstream_obsv::{frac, fracf};

/// Analysis parameters an engine runs with. The online server's shards,
/// its offline comparator, and the load generator's `--verify` mode all
/// construct engines from the same values, so defaults changing can
/// never silently diverge the paths (`tempstream-serve` re-exports this
/// as its `ShardConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// FIFO prefetch-buffer capacity (blocks) for the evaluation model.
    pub buffer_capacity: usize,
    /// Temporal prefetcher burst size (blocks fetched per trigger).
    pub burst: u32,
    /// Temporal prefetcher adaptive look-ahead cap.
    pub max_ahead: u32,
    /// Miss-log capacity of the temporal engine.
    pub log_capacity: usize,
    /// Records retained for SEQUITUR analysis; ingest beyond this still
    /// counts toward coverage and origins but no longer grows the
    /// grammar (the batch pipeline's `max_analysis_misses` cap, applied
    /// per engine).
    pub max_retained: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            buffer_capacity: 512,
            burst: 2,
            max_ahead: 8,
            log_capacity: 1 << 20,
            max_retained: 1 << 20,
        }
    }
}

/// Function ids below this are counted in a direct-indexed array; ids
/// at or above it spill to a hashmap. Real traces use small dense id
/// spaces, so the spill path exists only to keep hostile ids from
/// ballooning memory.
const DENSE_LIMIT: u32 = 1 << 16;

/// Per-function miss counts: a direct-indexed dense table for small
/// function ids with a hashmap spill for large ones.
///
/// Incrementing is a bounds-checked array add for the dense range (the
/// PR 4 direct-index pattern) instead of a hashmap probe per record.
/// The table is also the reusable merge target for
/// [`merge_top_origins`] and the server's per-cursor origin caches —
/// counts are monotone non-decreasing per engine, which is what lets
/// delta cursors patch a cached merge instead of rebuilding it.
#[derive(Debug, Clone, Default)]
pub struct OriginTable {
    /// Counts for function ids `< DENSE_LIMIT`, indexed directly; grown
    /// on demand to the highest id seen.
    dense: Vec<u64>,
    /// Counts for function ids `>= DENSE_LIMIT`.
    sparse: FxHashMap<u32, u64>,
}

impl OriginTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to `function`'s count.
    #[inline]
    pub fn add(&mut self, function: u32, n: u64) {
        if function < DENSE_LIMIT {
            let idx = function as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0);
            }
            self.dense[idx] += n;
        } else {
            *self.sparse.entry(function).or_insert(0) += n;
        }
    }

    /// `function`'s count (zero if never seen).
    #[inline]
    pub fn get(&self, function: u32) -> u64 {
        if function < DENSE_LIMIT {
            self.dense.get(function as usize).copied().unwrap_or(0)
        } else {
            self.sparse.get(&function).copied().unwrap_or(0)
        }
    }

    /// True when no function has a nonzero count.
    pub fn is_empty(&self) -> bool {
        self.dense.iter().all(|&c| c == 0) && self.sparse.is_empty()
    }

    /// Iterates nonzero `(function, count)` entries: the dense range in
    /// ascending id order, then the spill entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(f, &c)| (f as u32, c))
            .chain(self.sparse.iter().map(|(&f, &c)| (f, c)))
    }

    /// The top-`n` functions by count descending, function id ascending
    /// as the tiebreak (a total order, so the answer never depends on
    /// iteration order).
    pub fn top_n(&self, n: usize) -> Vec<(u32, u64)> {
        let mut rows: Vec<(u32, u64)> = self.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Overwrites `self` with `src`'s contents, reusing `self`'s
    /// allocations — the server's cursor caches call this once per
    /// changed shard per delta, so it must not allocate in steady state.
    pub fn copy_from(&mut self, src: &OriginTable) {
        self.dense.clear();
        self.dense.extend_from_slice(&src.dense);
        self.sparse.clone_from(&src.sparse);
    }
}

/// Merged stream-fraction counts (the online form of the batch
/// `StreamFractionReport` plus the distinct-stream total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounts {
    /// Misses outside any repeated sequence.
    pub non_repetitive: u64,
    /// Misses in first occurrences.
    pub new_stream: u64,
    /// Misses in later occurrences.
    pub recurring_stream: u64,
    /// Distinct streams (summed over engines when merged).
    pub distinct_streams: u64,
}

impl StreamCounts {
    /// All analyzed misses.
    pub fn total(&self) -> u64 {
        self.non_repetitive + self.new_stream + self.recurring_stream
    }
}

/// Merged prefetch-evaluation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageCounts {
    /// Demand misses observed.
    pub total: u64,
    /// Misses covered by the prefetch buffer.
    pub covered: u64,
    /// Prefetches issued.
    pub issued: u64,
}

/// The version-keyed memoized root-walk snapshot.
#[derive(Debug)]
struct Snapshot {
    /// Engine version the walk ran at.
    version: u64,
    /// The full root-walk result (labels, occurrences, rule count).
    analysis: StreamAnalysis,
    /// Label totals derived from `analysis`, pre-folded for O(1) reads.
    counts: StreamCounts,
}

/// The temporal-prefetch evaluation component: present in the full
/// (server) configuration, absent in streams-only batch mode.
#[derive(Debug)]
struct PrefetchEval {
    prefetcher: TemporalPrefetcher,
    eval: OnlineEvaluator,
}

/// One incremental instance of the paper's characterization.
///
/// Generic over the trace classification type `C` (the classification
/// never affects stream/origin/coverage analysis — it rides along in
/// the records) so the batch pipeline can run it over both off-chip
/// (`MissClass`) and intra-chip traces; the online server always uses
/// the `MissClass` default.
#[derive(Debug)]
pub struct AnalysisEngine<C: Copy = MissClass> {
    config: EngineConfig,
    seq: Sequitur,
    /// Records retained for grammar queries, in arrival order.
    records: Vec<MissRecord<C>>,
    /// Highest cpu id seen (drives the root walk's per-cpu counters).
    max_cpu: u32,
    /// Coverage/accuracy component (`None` in streams-only mode).
    prefetch: Option<PrefetchEval>,
    origin_counts: OriginTable,
    /// Every record ever pushed, retained or not.
    ingested: u64,
    /// Records past `max_retained` (analyzed for coverage/origins only).
    overflow: u64,
    /// Root-walk snapshot memoized at a version; valid while the engine
    /// has not ingested past it.
    snapshot: Option<Snapshot>,
    /// Joint stride × stream breakdown memoized at a version.
    joint_cache: Option<(u64, StrideJointReport)>,
    /// Grammar root walks performed (snapshot-cache misses); the server
    /// exports this as a gauge so tests can assert quiet engines answer
    /// without walking.
    walks: u64,
}

impl<C: Copy> AnalysisEngine<C> {
    /// Creates an empty engine in the full configuration: grammar,
    /// origin counts, *and* the temporal-prefetch evaluation component
    /// (what the server runs per shard).
    pub fn new(config: EngineConfig) -> Self {
        let prefetcher = TemporalPrefetcher::adaptive(config.burst, config.max_ahead)
            .with_log_capacity(config.log_capacity);
        let mut engine = Self::streams_only_with_config(config, 0);
        engine.prefetch = Some(PrefetchEval {
            prefetcher,
            eval: OnlineEvaluator::new(config.buffer_capacity),
        });
        engine
    }

    /// Creates an engine without the prefetch-evaluation component,
    /// pre-sized for `capacity` records — the batch pipeline's mode,
    /// where coverage is a separate concern (`tempstream-prefetch`
    /// sweeps) and the grammar push loop must not pay for it. The
    /// retention cap is lifted (`usize::MAX`): batch callers cap their
    /// input with [`crate::stages::cap`] instead.
    pub fn streams_only(capacity: usize) -> Self {
        Self::streams_only_with_config(
            EngineConfig {
                max_retained: usize::MAX,
                ..EngineConfig::default()
            },
            capacity,
        )
    }

    fn streams_only_with_config(config: EngineConfig, capacity: usize) -> Self {
        AnalysisEngine {
            config,
            seq: Sequitur::with_capacity(capacity),
            records: Vec::with_capacity(capacity.min(config.max_retained)),
            max_cpu: 0,
            prefetch: None,
            origin_counts: OriginTable::new(),
            ingested: 0,
            overflow: 0,
            snapshot: None,
            joint_cache: None,
            walks: 0,
        }
    }

    /// Ingests one record: feeds the origin counts and (when present)
    /// the prefetch evaluation always, and the SEQUITUR builder until
    /// the retention cap. Advances [`version`](Self::version) by one.
    #[inline]
    pub fn push_record(&mut self, record: &MissRecord<C>) {
        self.ingested += 1;
        self.max_cpu = self.max_cpu.max(record.cpu.raw());
        self.origin_counts.add(record.function.raw(), 1);
        if let Some(p) = &mut self.prefetch {
            p.eval.observe(&mut p.prefetcher, record.cpu, record.block);
        }
        if self.records.len() < self.config.max_retained {
            self.seq.push(record.block.raw());
            self.records.push(*record);
        } else {
            self.overflow += 1;
        }
    }

    /// Ingests a batch of records in order (equivalent to
    /// [`push_record`](Self::push_record) per element).
    pub fn push_records(&mut self, records: &[MissRecord<C>]) {
        for r in records {
            self.push_record(r);
        }
    }

    /// Records ever pushed into this engine.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Monotone state version: advances exactly when observable state
    /// changes (once per applied record), so delta cursors and the
    /// memoized snapshot can skip the expensive grammar walk for an
    /// engine that has not moved since their last read.
    pub fn version(&self) -> u64 {
        self.ingested
    }

    /// Records past the retention cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Grammar root walks performed so far — i.e. snapshot-cache
    /// misses. Tests use this to prove version-keyed caching: querying
    /// a quiet engine must not move it.
    pub fn grammar_walks(&self) -> u64 {
        self.walks
    }

    /// Ensures the memoized snapshot is at the current version, walking
    /// the grammar root if the engine has ingested since the last walk.
    fn refresh_snapshot(&mut self) {
        if let Some(s) = &self.snapshot {
            if s.version == self.ingested {
                return;
            }
        }
        let grammar = self.seq.grammar();
        let analysis = StreamAnalysis::of_grammar(&grammar, &self.records, self.max_cpu + 1);
        let (non, new, rec) = analysis.label_counts();
        let counts = StreamCounts {
            non_repetitive: non,
            new_stream: new,
            recurring_stream: rec,
            distinct_streams: analysis.distinct_streams() as u64,
        };
        self.snapshot = Some(Snapshot {
            version: self.ingested,
            analysis,
            counts,
        });
        self.walks += 1;
    }

    /// The full root-walk analysis (labels, occurrences, distributions)
    /// of the retained records at the current version — bit-identical
    /// to batch-analyzing those records. Memoized per the module-level
    /// version contract.
    pub fn stream_analysis(&mut self) -> &StreamAnalysis {
        self.refresh_snapshot();
        &self.snapshot.as_ref().expect("refreshed above").analysis
    }

    /// Stream-fraction counts at the current version (memoized; the
    /// grammar root walk only runs when the engine ingested since the
    /// previous snapshot read).
    pub fn stream_counts(&mut self) -> StreamCounts {
        self.refresh_snapshot();
        self.snapshot.as_ref().expect("refreshed above").counts
    }

    /// The joint repetitive × strided breakdown (Figure 3) over the
    /// retained records, memoized on the same version key.
    pub fn joint_breakdown(&mut self) -> StrideJointReport {
        if let Some((version, joint)) = self.joint_cache {
            if version == self.ingested {
                return joint;
            }
        }
        self.refresh_snapshot();
        let snap = self.snapshot.as_ref().expect("refreshed above");
        let flags = StrideDetector::of_records(&self.records, self.max_cpu + 1);
        let joint = crate::stages::joint_breakdown(snap.analysis.labels(), flags.flags());
        self.joint_cache = Some((self.ingested, joint));
        joint
    }

    /// Prefetch coverage counters accumulated so far (all zero in
    /// streams-only mode, which has no evaluation component).
    pub fn coverage(&self) -> CoverageCounts {
        match &self.prefetch {
            Some(p) => {
                let e = p.eval.snapshot();
                CoverageCounts {
                    total: e.total,
                    covered: e.covered,
                    issued: e.issued,
                }
            }
            None => CoverageCounts::default(),
        }
    }

    /// Per-function miss counts (shared reference; merge with
    /// [`merge_top_origins`]).
    pub fn origin_table(&self) -> &OriginTable {
        &self.origin_counts
    }

    /// Drops the memoized snapshot so the next accessor re-walks the
    /// grammar from scratch (a testing aid: cache-consistency tests
    /// compare the cached answer against a forced fresh walk).
    #[doc(hidden)]
    pub fn invalidate_snapshot(&mut self) {
        self.snapshot = None;
        self.joint_cache = None;
    }

    /// Current size of the SEQUITUR digram index (builder footprint).
    pub fn digram_index_len(&self) -> usize {
        self.seq.digram_index_len()
    }

    /// Current size of the SEQUITUR node arena (builder footprint).
    pub fn node_arena_len(&self) -> usize {
        self.seq.node_arena_len()
    }

    /// Consumes the engine, yielding the final grammar — the terminal
    /// snapshot of feed-all-then-snapshot mode. Cheaper than a live
    /// [`stream_analysis`](Self::stream_analysis) snapshot (no rule
    /// copy) and exactly the batch pipeline's historical code path.
    pub fn into_grammar(self) -> tempstream_sequitur::Grammar {
        self.seq.into_grammar()
    }
}

/// Feed-all-then-snapshot batch mode: runs one streams-only engine over
/// `records` and returns the full [`StreamAnalysis`], exporting the
/// grammar-inference metrics (`sequitur/*` spans/counters/gauges and
/// the `streams/*` histograms) exactly as the batch pipeline always
/// has. This is the engine behind
/// [`StreamAnalysis::of_records`] — the batch pipeline, the runtime's
/// Analyze jobs, and the benches all route here.
pub fn batch_stream_analysis<C: Copy>(records: &[MissRecord<C>], num_cpus: u32) -> StreamAnalysis {
    let registry = tempstream_obsv::global();
    // The push loop is the grammar-inference hot path: its span plus
    // the symbol counter give push throughput, and the builder-size
    // gauges capture the peak index/arena footprint.
    let mut engine: AnalysisEngine<C> = AnalysisEngine::streams_only(records.len());
    registry.time("sequitur/push", || engine.push_records(records));
    registry
        .counter("sequitur/pushed_symbols")
        .add(records.len() as u64);
    registry
        .gauge("sequitur/digram_index")
        .set_max(engine.digram_index_len() as u64);
    registry
        .gauge("sequitur/node_arena")
        .set_max(engine.node_arena_len() as u64);
    let grammar = engine.into_grammar();
    tempstream_sequitur::GrammarStats::of(&grammar).export(registry, "sequitur");

    let analysis = StreamAnalysis::of_grammar(&grammar, records, num_cpus);

    let len_hist = registry.histogram("streams/occurrence_len");
    let reuse_hist = registry.histogram("streams/reuse_distance");
    for occ in analysis.occurrences() {
        len_hist.record(occ.len);
        if let Some(d) = occ.reuse_distance {
            reuse_hist.record(d);
        }
    }
    analysis
}

/// Sums per-engine stream counts.
pub fn merge_stream_counts<I: IntoIterator<Item = StreamCounts>>(parts: I) -> StreamCounts {
    parts
        .into_iter()
        .fold(StreamCounts::default(), |a, b| StreamCounts {
            non_repetitive: a.non_repetitive + b.non_repetitive,
            new_stream: a.new_stream + b.new_stream,
            recurring_stream: a.recurring_stream + b.recurring_stream,
            distinct_streams: a.distinct_streams + b.distinct_streams,
        })
}

/// Sums per-engine coverage counters.
pub fn merge_coverage_counts<I: IntoIterator<Item = CoverageCounts>>(parts: I) -> CoverageCounts {
    parts
        .into_iter()
        .fold(CoverageCounts::default(), |a, b| CoverageCounts {
            total: a.total + b.total,
            covered: a.covered + b.covered,
            issued: a.issued + b.issued,
        })
}

/// Merges per-engine origin tables into the global top-`n` list,
/// ordered by count descending with function id ascending as the
/// tiebreak (a total order, so the answer never depends on iteration
/// order).
pub fn merge_top_origins<'a, I>(tables: I, n: usize) -> Vec<(u32, u64)>
where
    I: IntoIterator<Item = &'a OriginTable>,
{
    let mut merged = OriginTable::new();
    for table in tables {
        for (function, count) in table.iter() {
            merged.add(function, count);
        }
    }
    merged.top_n(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempstream_trace::{Block, CpuId, FunctionId, ThreadId};

    fn record(block: u64, cpu: u32, function: u32) -> MissRecord<MissClass> {
        MissRecord {
            block: Block::new(block),
            cpu: CpuId::new(cpu),
            thread: ThreadId::new(cpu),
            function: FunctionId::new(function),
            class: MissClass::Replacement,
        }
    }

    #[test]
    fn incremental_engine_matches_batch_stages() {
        let blocks = [1u64, 2, 3, 1, 2, 3, 9, 4, 1, 2, 5, 4, 1, 2, 5, 9];
        let records: Vec<_> = blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| record(b, (i % 2) as u32, (b % 3) as u32))
            .collect();
        let cfg = EngineConfig::default();
        let mut engine = AnalysisEngine::new(cfg);
        for r in &records {
            engine.push_record(r);
        }
        let partial = crate::stages::analyze_streams(&records, 2);
        let online = engine.stream_counts();
        assert_eq!(
            online.non_repetitive,
            partial.stream_fraction.non_repetitive
        );
        assert_eq!(online.new_stream, partial.stream_fraction.new_stream);
        assert_eq!(
            online.recurring_stream,
            partial.stream_fraction.recurring_stream
        );
        assert_eq!(online.distinct_streams, partial.distinct_streams as u64);

        let mut batch_prefetcher = TemporalPrefetcher::adaptive(cfg.burst, cfg.max_ahead)
            .with_log_capacity(cfg.log_capacity);
        let batch =
            tempstream_prefetch::evaluate(&mut batch_prefetcher, &records, cfg.buffer_capacity);
        let cov = engine.coverage();
        assert_eq!(
            (cov.total, cov.covered, cov.issued),
            (batch.total, batch.covered, batch.issued)
        );
    }

    #[test]
    fn retention_cap_freezes_grammar_not_coverage() {
        let cfg = EngineConfig {
            max_retained: 4,
            ..EngineConfig::default()
        };
        let mut engine: AnalysisEngine = AnalysisEngine::new(cfg);
        for i in 0..10u64 {
            engine.push_record(&record(i % 3, 0, 0));
        }
        assert_eq!(engine.ingested(), 10);
        assert_eq!(engine.overflow(), 6);
        assert_eq!(engine.stream_counts().total(), 4, "grammar capped");
        assert_eq!(engine.coverage().total, 10, "coverage uncapped");
    }

    #[test]
    fn snapshot_cache_is_version_keyed() {
        let mut engine: AnalysisEngine = AnalysisEngine::new(EngineConfig::default());
        for i in 0..8u64 {
            engine.push_record(&record(i % 3, 0, 0));
        }
        assert_eq!(engine.grammar_walks(), 0, "no walk before first query");
        let first = engine.stream_counts();
        assert_eq!(engine.grammar_walks(), 1);
        assert_eq!(engine.stream_counts(), first, "cache hit answers equally");
        assert_eq!(engine.grammar_walks(), 1, "quiet engine must not re-walk");
        engine.push_record(&record(1, 0, 0));
        let second = engine.stream_counts();
        assert_eq!(engine.grammar_walks(), 2, "new version forces a walk");
        assert_eq!(second.total(), first.total() + 1);
        // The cached answer equals a from-scratch walk of the same state.
        engine.invalidate_snapshot();
        assert_eq!(engine.stream_counts(), second);
        assert_eq!(engine.grammar_walks(), 3, "invalidation forces a walk");
    }

    #[test]
    fn joint_breakdown_matches_batch_and_is_memoized() {
        // Strided run [10,11,12,13] plus a repeated pair.
        let blocks = [10u64, 11, 12, 13, 1, 2, 7, 1, 2];
        let records: Vec<_> = blocks.iter().map(|&b| record(b, 0, 0)).collect();
        let mut engine: AnalysisEngine = AnalysisEngine::new(EngineConfig::default());
        engine.push_records(&records);
        let streams = crate::stages::analyze_streams(&records, 1);
        let flags = crate::stages::analyze_strides(&records, 1);
        let want = crate::stages::joint_breakdown(&streams.labels, &flags);
        assert_eq!(engine.joint_breakdown(), want);
        let walks = engine.grammar_walks();
        assert_eq!(engine.joint_breakdown(), want, "memoized answer stable");
        assert_eq!(engine.grammar_walks(), walks, "no re-walk while quiet");
    }

    #[test]
    fn streams_only_mode_reports_zero_coverage() {
        let mut engine: AnalysisEngine = AnalysisEngine::streams_only(4);
        engine.push_records(&[record(1, 0, 0), record(2, 0, 1), record(1, 0, 0)]);
        assert_eq!(engine.coverage(), CoverageCounts::default());
        assert_eq!(engine.origin_table().get(0), 2, "origins still counted");
        assert_eq!(engine.version(), 3);
    }

    #[test]
    fn origin_table_counts_and_spills() {
        let mut t = OriginTable::new();
        assert!(t.is_empty());
        t.add(3, 2);
        t.add(3, 1);
        t.add(0, 5);
        let huge = DENSE_LIMIT + 17;
        t.add(huge, 4);
        assert_eq!(t.get(3), 3);
        assert_eq!(t.get(0), 5);
        assert_eq!(t.get(huge), 4);
        assert_eq!(t.get(1), 0, "unseen dense id");
        assert_eq!(t.get(DENSE_LIMIT + 1), 0, "unseen sparse id");
        let mut rows: Vec<_> = t.iter().collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![(0, 5), (3, 3), (huge, 4)]);

        let mut copy = OriginTable::new();
        copy.add(9, 99);
        copy.copy_from(&t);
        assert_eq!(copy.get(9), 0, "copy_from overwrites");
        assert_eq!(copy.get(huge), 4);
        assert_eq!(copy.top_n(2), vec![(0, 5), (huge, 4)]);
    }

    #[test]
    fn top_origins_merge_is_ordered_and_total() {
        let mut a = OriginTable::new();
        a.add(1, 5);
        a.add(2, 3);
        let mut b = OriginTable::new();
        b.add(2, 2);
        b.add(3, 5);
        let rows = merge_top_origins([&a, &b], 3);
        // count desc, then function asc: 1→5, 2→5, 3→5 all tie on count.
        assert_eq!(rows, vec![(1, 5), (2, 5), (3, 5)]);
        assert_eq!(merge_top_origins([&a, &b], 2), vec![(1, 5), (2, 5)]);
    }
}
