//! End-to-end experiment runner: workload × system context → the paper's
//! full characterization.
//!
//! For each workload the runner builds two independent simulations (the
//! 16-node multi-chip system and the 4-core single-chip system), warms
//! them without recording (the paper warms for thousands of transactions
//! before tracing), records the measured phase, and runs the stream,
//! stride, distribution, and origin analyses over the three resulting
//! traces (multi-chip off-chip, single-chip off-chip, intra-chip).
//!
//! The runner itself is a thin serial composition of the pure stage
//! functions in [`crate::stages`]; the `tempstream-runtime` crate
//! composes the same stages into a parallel job DAG and is required to
//! produce bit-identical results.

use crate::distribution::{LengthCdf, ReuseDistancePdf};
use crate::functions::FunctionTable;
use crate::origins::OriginTable;
use crate::report::{
    IntraClassBreakdown, MissClassBreakdown, StreamFractionReport, StrideJointReport,
};
use crate::stages;
use tempstream_coherence::{MultiChipConfig, SingleChipConfig};
use tempstream_trace::{MissTrace, SymbolTable};
use tempstream_workloads::{Scale, Workload};

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Workload-generation seed.
    pub seed: u64,
    /// Multi-chip system geometry.
    pub multi_chip: MultiChipConfig,
    /// Single-chip system geometry.
    pub single_chip: SingleChipConfig,
    /// Overrides each workload's default scale when set.
    pub scale_override: Option<Scale>,
    /// Cap on the misses fed to the SEQUITUR analysis (memory bound);
    /// class breakdowns always use the full trace. The parallel
    /// executor also spills traces larger than this to disk between the
    /// simulate and analyze stages.
    pub max_analysis_misses: usize,
}

impl ExperimentConfig {
    /// The paper's systems at the default measurement scale.
    pub fn paper() -> Self {
        ExperimentConfig {
            seed: 0x715C_2008,
            multi_chip: MultiChipConfig::paper(),
            single_chip: SingleChipConfig::paper(),
            scale_override: None,
            max_analysis_misses: 1_500_000,
        }
    }

    /// A reduced configuration for tests and doc examples: small caches,
    /// fewer nodes, smoke-scale workloads.
    pub fn quick() -> Self {
        ExperimentConfig {
            seed: 7,
            multi_chip: MultiChipConfig::small(8),
            single_chip: SingleChipConfig::small(4),
            scale_override: Some(Scale {
                warmup_ops: 30,
                ops: 250,
            }),
            max_analysis_misses: 200_000,
        }
    }

    /// Returns `self` with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns `self` with a scale override.
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale_override = Some(scale);
        self
    }
}

/// Stream/stride/origin results shared by all three contexts.
#[derive(Debug, Clone)]
pub struct StreamResults {
    /// Figure 2 segments.
    pub stream_fraction: StreamFractionReport,
    /// Figure 3 joint breakdown.
    pub stride_joint: StrideJointReport,
    /// Figure 4 (left).
    pub length_cdf: LengthCdf,
    /// Figure 4 (right).
    pub reuse_pdf: ReuseDistancePdf,
    /// Tables 3-5 rows.
    pub origins: OriginTable,
    /// Per-function drill-down behind the origin table (§5 narrative).
    pub functions: FunctionTable,
    /// Distinct streams found by SEQUITUR.
    pub distinct_streams: usize,
    /// Misses fed to the stream analysis (may be capped).
    pub analyzed_misses: usize,
}

/// Results for one off-chip context (multi-chip or single-chip).
#[derive(Debug, Clone)]
pub struct OffChipResults {
    /// Figure 1 (left) bars.
    pub breakdown: MissClassBreakdown,
    /// Figure 2/3/4 and the origin table.
    pub streams: StreamResults,
    /// Total recorded misses (before any analysis cap).
    pub total_misses: usize,
}

/// Results for the intra-chip context.
#[derive(Debug, Clone)]
pub struct IntraChipResults {
    /// Figure 1 (right) bars.
    pub breakdown: IntraClassBreakdown,
    /// Figure 2/3/4 and the origin table.
    pub streams: StreamResults,
    /// Total recorded misses.
    pub total_misses: usize,
}

/// All three contexts for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadResults {
    /// The workload analyzed.
    pub workload: Workload,
    /// Off-chip misses of the 16-node DSM.
    pub multi_chip: OffChipResults,
    /// Off-chip misses of the 4-core CMP.
    pub single_chip: OffChipResults,
    /// On-chip-satisfied L1 misses of the CMP.
    pub intra_chip: IntraChipResults,
}

/// The serial experiment runner.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates a runner.
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs one workload through both systems and analyzes all three
    /// contexts.
    pub fn run_workload(&self, workload: Workload) -> WorkloadResults {
        stages::run_workload_serial(&self.config, workload)
    }

    /// Runs every workload.
    pub fn run_all(&self) -> Vec<WorkloadResults> {
        Workload::ALL
            .iter()
            .map(|&w| self.run_workload(w))
            .collect()
    }

    /// Collects the multi-chip trace for one workload (used by the
    /// spatial-analysis command; analyses normally go through
    /// [`Experiment::run_workload`]).
    pub fn collect_multi_chip(
        &self,
        workload: Workload,
    ) -> (MissTrace<tempstream_trace::MissClass>, SymbolTable) {
        stages::collect_multi_chip(&self.config, workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_produces_all_contexts() {
        let r = Experiment::new(ExperimentConfig::quick()).run_workload(Workload::Apache);
        assert!(r.multi_chip.total_misses > 0, "multi-chip trace empty");
        assert!(r.single_chip.total_misses > 0, "single-chip trace empty");
        assert!(r.intra_chip.total_misses > 0, "intra-chip trace empty");
        // Intra-chip misses include all off-chip L1 misses, so there are
        // at least as many.
        assert!(r.intra_chip.total_misses >= r.single_chip.total_misses);
        // Labels and counts are internally consistent.
        assert_eq!(
            r.multi_chip.streams.stream_fraction.total() as usize,
            r.multi_chip.streams.analyzed_misses
        );
    }

    #[test]
    fn determinism_across_runs() {
        let cfg = ExperimentConfig::quick();
        let a = Experiment::new(cfg).run_workload(Workload::Oltp);
        let b = Experiment::new(cfg).run_workload(Workload::Oltp);
        assert_eq!(a.multi_chip.total_misses, b.multi_chip.total_misses);
        assert_eq!(
            a.multi_chip.streams.stream_fraction.recurring_stream,
            b.multi_chip.streams.stream_fraction.recurring_stream
        );
        assert_eq!(a.intra_chip.total_misses, b.intra_chip.total_misses);
    }

    #[test]
    fn analysis_cap_is_respected() {
        let mut cfg = ExperimentConfig::quick();
        cfg.max_analysis_misses = 100;
        let r = Experiment::new(cfg).run_workload(Workload::DssQ1);
        assert!(r.multi_chip.streams.analyzed_misses <= 100);
        assert!(r.multi_chip.total_misses >= r.multi_chip.streams.analyzed_misses);
    }

    #[test]
    fn origin_tables_cover_all_misses() {
        let r = Experiment::new(ExperimentConfig::quick()).run_workload(Workload::Zeus);
        let t = &r.multi_chip.streams.origins;
        let sum: u64 = t.rows.iter().map(|row| row.misses).sum();
        assert_eq!(sum, t.total_misses);
    }
}
